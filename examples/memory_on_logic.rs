//! Memory-on-logic case study: the paper's headline experiment at a
//! reduced scale — 2D baseline vs Macro-3D on the small-cache tile,
//! with the Table II metrics and the iso-performance power check.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example memory_on_logic [-- <scale>]
//! ```

use macro3d::flows::{Flow, Flow2d, Macro3d};
use macro3d::report::{comparison_table, PpaResult};
use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24.0);
    let cfg = FlowConfig::default();
    let tile = generate_tile(&TileConfig::small_cache().with_scale(scale));
    println!(
        "small-cache tile at scale {scale}: {} instances",
        tile.design.num_insts()
    );

    let imp2d = Flow2d.run(&tile, &cfg).implemented;
    let imp3d = Macro3d.run(&tile, &cfg).implemented;
    let r2d = PpaResult::from_impl("2D", &imp2d);
    let r3d = PpaResult::from_impl("Macro-3D", &imp3d);

    println!("{}", comparison_table(&[&r2d, &r3d]));

    let d = |a: f64, b: f64| 100.0 * (a - b) / b;
    println!(
        "fclk {:+.1}% (paper +20.5%), footprint {:+.1}% (paper -50.0%), \
         wirelength {:+.1}% (paper -11.8%), crit-path WL {:+.1}% (paper -63.0%)",
        d(r3d.fclk_mhz, r2d.fclk_mhz),
        d(r3d.footprint_mm2, r2d.footprint_mm2),
        d(r3d.total_wirelength_m, r2d.total_wirelength_m),
        d(r3d.crit_path_wl_mm, r2d.crit_path_wl_mm),
    );

    // iso-performance: both designs at the 2D max frequency
    let toggle = imp2d.constraints.toggle_rate;
    let p2d = imp2d.power_at(r2d.fclk_mhz, toggle).total_mw;
    let p3d = imp3d.power_at(r2d.fclk_mhz, toggle).total_mw;
    println!(
        "iso-performance power at {:.0} MHz: 2D {:.2} mW vs Macro-3D {:.2} mW ({:+.1}%, paper -3.2%)",
        r2d.fclk_mhz,
        p2d,
        p3d,
        d(p3d, p2d)
    );
}
