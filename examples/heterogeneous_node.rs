//! Heterogeneous memory-node study — the paper's stated *future
//! work*: "The considered design style enables to design memory or
//! sensor blocks of an SoC without the need to be process compatible
//! with standard logic. Exploiting this feature to boost the
//! 3D-integration gains further is left for future work."
//!
//! Here the macro die is re-targeted from the logic-compatible N28
//! node to an older, memory-optimised N40-class node: bitcells are
//! ~1.9x larger but the wafer is ~45 % cheaper per area and leaks
//! ~60 % less. The Macro-3D flow absorbs the change transparently —
//! macros are black boxes — so the comparison quantifies the
//! system-level cost of the heterogeneity (slower macros, bigger
//! macro die) against its benefits (silicon cost, leakage).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example heterogeneous_node [-- <scale>]
//! ```

use macro3d::flows::{Flow, Flow2d, Macro3d};
use macro3d::report::{comparison_table, PpaResult};
use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig};
use macro3d_sram::MemoryNode;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24.0);
    let cfg = FlowConfig::default();

    let tile_n28 = generate_tile(&TileConfig::small_cache().with_scale(scale));
    let tile_n40 = generate_tile(
        &TileConfig::small_cache()
            .with_scale(scale)
            .with_n40_memory(),
    );

    let r28 = {
        let mut r = Macro3d.run(&tile_n28, &cfg).ppa;
        r.flow = "MoL N28 mem".to_string();
        r
    };
    let r40 = {
        let mut r = Macro3d.run(&tile_n40, &cfg).ppa;
        r.flow = "MoL N40 mem".to_string();
        r
    };
    let r2d = Flow2d.run(&tile_n28, &cfg).ppa;
    println!("{}", comparison_table(&[&r2d, &r28, &r40]));

    // silicon-cost model: logic die at N28 cost, macro die at its node
    let cost = |r: &PpaResult, node: MemoryNode| r.footprint_mm2 * (1.0 + node.cost_scale);
    let cost2d = r2d.footprint_mm2 * 1.0;
    println!(
        "relative silicon cost (N28-mm2 equivalents): 2D {:.2}, MoL/N28 {:.2}, MoL/N40 {:.2}",
        cost2d,
        cost(&r28, MemoryNode::N28),
        cost(&r40, MemoryNode::N40),
    );
    println!(
        "fclk: MoL/N40 vs MoL/N28 {:+.1}% (slower macros), leakage {:+.1}%",
        PpaResult::delta_pct(r40.fclk_mhz, r28.fclk_mhz),
        PpaResult::delta_pct(
            r40.power.leakage_mw + r40.power.macro_mw,
            r28.power.leakage_mw + r28.power.macro_mw
        ),
    );
}
