//! Heterogeneous BEOL study (the paper's Table III / Sec. V-A-1):
//! because SRAM internal routing only occupies M1–M4, the macro die's
//! metal stack can be trimmed from six to four layers — cutting metal
//! mask cost — with negligible performance impact, since most signal
//! routing stays in the logic die and the top BEOL mainly serves
//! macro pin access.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example heterogeneous_beol [-- <scale>]
//! ```

use macro3d::flows::{Flow, Macro3d};
use macro3d::report::{comparison_table, PpaResult};
use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24.0);
    let tile = generate_tile(&TileConfig::small_cache().with_scale(scale));

    let m6m6 = FlowConfig::builder()
        .macro_metals(6)
        .build()
        .expect("valid config");
    let m6m4 = FlowConfig::builder()
        .macro_metals(4)
        .build()
        .expect("valid config");

    let r66 = Macro3d.run(&tile, &m6m6).ppa;
    let r64 = Macro3d.run(&tile, &m6m4).ppa;
    println!("{}", comparison_table(&[&r66, &r64]));

    let d = |a: f64, b: f64| PpaResult::delta_pct(a, b);
    println!(
        "removing two macro-die metals: fclk {:+.1}% (paper -1.8%), \
         metal area {:+.1}% (paper -16.7%), F2F bumps {:+.1}% (paper -18.4%)",
        d(r64.fclk_mhz, r66.fclk_mhz),
        d(r64.metal_area_mm2, r66.metal_area_mm2),
        d(r64.f2f_bumps as f64, r66.f2f_bumps as f64),
    );
}
