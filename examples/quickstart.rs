//! Quickstart: generate an OpenPiton-like tile, run the Macro-3D flow
//! on it, and print the resulting PPA.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use macro3d::flows::{Flow, Macro3d};
use macro3d::{FlowConfig, PpaResult};
use macro3d_netlist::DesignStats;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    // 1. Generate the benchmark netlist: the paper's small-cache tile
    //    (8 kB L1I, 16 kB L1D, 16 kB L2, 256 kB L3). `scale`
    //    compresses the instance count while keeping areas calibrated
    //    (see DESIGN.md §5); 32 runs in a few seconds.
    let config = TileConfig::small_cache().with_scale(32.0);
    let tile = generate_tile(&config);
    let stats = DesignStats::compute(&tile.design);
    println!("generated {}:\n{stats}\n", tile.design.name());

    // 2. Run the Macro-3D flow: dual floorplans, memory-on-logic
    //    projection, one P&R pass over the combined two-die BEOL.
    //    `FlowConfig::builder()` validates the knobs up front.
    let flow_cfg = FlowConfig::builder().build().expect("valid config");
    let imp = Macro3d.run(&tile, &flow_cfg).implemented;

    // 3. Report PPA — these are the quantities of the paper's tables.
    let ppa = PpaResult::from_impl("Macro-3D", &imp);
    println!("{ppa}");
    println!(
        "\ncritical path: {} stages, {} F2F bumps used, routing overflow {:.0}",
        imp.timing.crit_path_stages, imp.routed.f2f_bumps, imp.routed.overflow
    );

    // 4. Die separation (flow step 4): split the result back into the
    //    two dies and write their layouts as SVG.
    let (logic_die, macro_die) = macro3d::layout::separate(&imp);
    std::fs::write(
        "quickstart_logic_die.svg",
        macro3d::layout::svg_layout(&logic_die),
    )
    .expect("write logic-die SVG");
    std::fs::write(
        "quickstart_macro_die.svg",
        macro3d::layout::svg_layout(&macro_die),
    )
    .expect("write macro-die SVG");
    println!("\nwrote quickstart_logic_die.svg and quickstart_macro_die.svg");
}
