//! Sensor-on-logic: the paper's second heterogeneous design style
//! (abstract/Sec. II) — an imaging SoC whose sensor arrays occupy the
//! top die while the readout/DSP logic sits below. The sensor die
//! needs only two metal layers, so this example also exercises the
//! heterogeneous-BEOL support (M6–M2 combined stack would be possible;
//! we use M6–M4 here since the combined stack builder takes whole
//! n28 stacks).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example sensor_on_logic
//! ```

use macro3d::flows::{Flow, Flow2d, Macro3d};
use macro3d::report::{comparison_table, PpaResult};
use macro3d::FlowConfig;
use macro3d_netlist::rent::{generate_logic, LogicIo, LogicSpec};
use macro3d_netlist::{Design, NetId, PinRef, Side};
use macro3d_soc::{TileNetlist, TimingConstraints};
use macro3d_sram::{MemoryCompiler, PinClass};
use macro3d_tech::libgen::n28_library;
use macro3d_tech::PinDir;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds a sensor-hub SoC: four 32-channel sensor arrays + readout
/// logic + a small line buffer SRAM.
fn sensor_hub(scale: f64, seed: u64) -> TileNetlist {
    let lib = Arc::new(n28_library(scale));
    let mut d = Design::new("sensor_hub", lib);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let compiler = MemoryCompiler::n28();

    let clk_port = d.add_port("clk", PinDir::Input, Some(Side::West));
    let clk = d.add_net("clk");
    d.connect(clk, PinRef::Port(clk_port));

    // sensor arrays: full-custom macros, destined for the top die
    let mut sensor_outputs: Vec<NetId> = Vec::new();
    let mut sensor_controls: Vec<NetId> = Vec::new();
    for k in 0..4 {
        let def = compiler.sensor_array(&format!("imager{k}"), 32);
        let mm = d.add_macro_master(def);
        let g = d.add_group(format!("imager{k}"));
        let inst = d.add_macro_in(format!("imager{k}"), mm, g);
        let def = match d.inst(inst).master {
            macro3d_netlist::Master::Macro(m) => d.macro_master(m).clone(),
            _ => unreachable!("just added a macro"),
        };
        for (p, pin) in def.pins.iter().enumerate() {
            let pr = PinRef::inst(inst, p as u16);
            match pin.class {
                PinClass::Clock => d.connect(clk, pr),
                PinClass::Sensor => {
                    let n = d.add_net(format!("imager{k}_d{p}"));
                    d.connect(n, pr);
                    sensor_outputs.push(n);
                }
                _ => {
                    let n = d.add_net(format!("imager{k}_c{p}"));
                    d.connect(n, pr);
                    sensor_controls.push(n);
                }
            }
        }
    }

    // line-buffer SRAM (stays with the sensors on the top die)
    let buf = d.add_macro_master(compiler.sram("linebuf", 1024, 64));
    let gb = d.add_group("linebuf");
    let buf_inst = d.add_macro_in("linebuf0", buf, gb);
    let buf_def = match d.inst(buf_inst).master {
        macro3d_netlist::Master::Macro(m) => d.macro_master(m).clone(),
        _ => unreachable!("just added a macro"),
    };
    let mut buf_inputs = Vec::new();
    let mut buf_outputs = Vec::new();
    for (p, pin) in buf_def.pins.iter().enumerate() {
        let pr = PinRef::inst(buf_inst, p as u16);
        match pin.class {
            PinClass::Clock => d.connect(clk, pr),
            PinClass::DataOut => {
                let n = d.add_net(format!("lb_q{p}"));
                d.connect(n, pr);
                buf_outputs.push(n);
            }
            _ => {
                let n = d.add_net(format!("lb_i{p}"));
                d.connect(n, pr);
                buf_inputs.push(n);
            }
        }
    }

    // chip outputs (processed pixel stream)
    let mut out_nets = Vec::new();
    let mut half_cycle = Vec::new();
    for b in 0..16 {
        let port = d.add_port(format!("pix[{b}]"), PinDir::Output, Some(Side::East));
        let n = d.add_net(format!("pix{b}"));
        d.connect(n, PinRef::Port(port));
        out_nets.push(n);
        half_cycle.push(port);
    }

    // readout + DSP logic
    let g = d.add_group("dsp");
    let mut spec = LogicSpec::new("dsp", (40_000.0 / scale) as usize, g);
    spec.max_depth = 14;
    let ext: Vec<NetId> = sensor_outputs
        .iter()
        .chain(buf_outputs.iter())
        .copied()
        .collect();
    let drive: Vec<NetId> = sensor_controls
        .iter()
        .chain(buf_inputs.iter())
        .chain(out_nets.iter())
        .copied()
        .collect();
    generate_logic(
        &mut d,
        &mut rng,
        &spec,
        clk,
        LogicIo {
            ext_in: &ext,
            drive: &drive,
        },
    );

    d.validate().expect("sensor hub netlist is consistent");
    let mut constraints = TimingConstraints::new(clk, clk_port);
    constraints.half_cycle_ports = half_cycle;
    TileNetlist {
        design: d,
        constraints,
    }
}

fn main() {
    let tile = sensor_hub(16.0, 0xde5);
    println!("sensor hub: {} instances", tile.design.num_insts());

    // the sensor die is routing-sparse
    let cfg = FlowConfig::builder()
        .macro_metals(4)
        .build()
        .expect("valid config");
    let r2d = Flow2d.run(&tile, &cfg).ppa;
    let r3d = Macro3d.run(&tile, &cfg).ppa;
    println!("{}", comparison_table(&[&r2d, &r3d]));
    println!(
        "sensor-on-logic gain: fclk {:+.1}%, footprint {:+.1}%",
        PpaResult::delta_pct(r3d.fclk_mhz, r2d.fclk_mhz),
        PpaResult::delta_pct(r3d.footprint_mm2, r2d.footprint_mm2),
    );
}
