#!/bin/bash
# Regenerates all paper experiments and captures outputs.
set -x
cd /root/repo
cargo build --release -p macro3d-bench 2>&1 | tail -1
./target/release/repro_table1 --scale 8 --obs full > results_table1.txt 2>&1
./target/release/repro_table2 --scale 8 > results_table2.txt 2>&1
./target/release/repro_table3 --scale 8 > results_table3.txt 2>&1
./target/release/repro_figs --scale 12 > results_figs.txt 2>&1
./target/release/ablations --scale 12 > results_ablations.txt 2>&1
echo ALL-EXPERIMENTS-DONE
