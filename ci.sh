#!/usr/bin/env bash
# Repository CI gate: formatting, lints, release build, full test
# suite. Run from the workspace root; everything must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection smoke (typed errors, budgets, degradation)"
cargo test -q --test fault_injection

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> bench smoke (MACRO3D_BENCH_SMOKE=1)"
MACRO3D_BENCH_SMOKE=1 cargo bench -p macro3d-bench --bench engines
python3 -c "
import json
r = json.load(open('target/BENCH_route_smoke.json'))
ids = {m['id'] for m in r['route']}
assert 'route_parallelism/serial' in ids, ids
assert 'route_parallelism/incremental' in ids, ids
assert 'route_parallelism/budgeted' in ids, ids
assert r['macro3d_stage_seconds'], 'missing stage times'
assert 'host_cpus' in r and 'effective_threads' in r, r.keys()
print('route bench smoke OK:', sorted(ids))
p = json.load(open('target/BENCH_place_smoke.json'))
ids = {m['id'] for m in p['place']}
assert 'place_parallelism/serial' in ids, ids
assert 'place_parallelism/analytical_serial' in ids, ids
assert 'place_parallelism/analytical_parallel' in ids, ids
assert 'host_cpus' in p and 'effective_threads' in p, p.keys()
assert p['hpwl_bisection_um'] > 0 and p['hpwl_analytical_um'] > 0, p
print('place bench smoke OK:', sorted(ids), 'hpwl_ratio', p['hpwl_ratio'])
"

echo "==> obs smoke (full-trace flows, both placer backends + JSON validation)"
./target/release/obs_smoke
python3 -c "
import json
trace = json.load(open('traces/trace_smoke.json'))
assert len(trace['traceEvents']) >= 6, trace.keys()
metrics = json.load(open('traces/metrics_smoke.json'))
assert 'route/overflow' in metrics['series']
print('obs trace OK:', len(trace['traceEvents']), 'events')
metrics = json.load(open('traces/metrics_smoke_analytical.json'))
assert 'place/nesterov_iters' in metrics['counters'], metrics['counters'].keys()
assert 'place/overflow' in metrics['series'], metrics['series'].keys()
print('analytical obs trace OK:', metrics['counters']['place/nesterov_iters'], 'nesterov iters')
"

echo "CI OK"
