#!/usr/bin/env bash
# Repository CI gate: formatting, lints, release build, full test
# suite. Run from the workspace root; everything must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection smoke (typed errors, budgets, degradation)"
cargo test -q --test fault_injection

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> bench smoke (MACRO3D_BENCH_SMOKE=1)"
MACRO3D_BENCH_SMOKE=1 cargo bench -p macro3d-bench --bench engines
python3 -c "
import json
r = json.load(open('target/BENCH_route_smoke.json'))
ids = {m['id'] for m in r['route']}
assert 'route_parallelism/serial' in ids, ids
assert 'route_parallelism/incremental' in ids, ids
assert 'route_parallelism/budgeted' in ids, ids
assert r['macro3d_stage_seconds'], 'missing stage times'
print('route bench smoke OK:', sorted(ids))
"

echo "==> obs smoke (full-trace flow + JSON validation)"
./target/release/obs_smoke
python3 -c "
import json
trace = json.load(open('traces/trace_smoke.json'))
assert len(trace['traceEvents']) >= 6, trace.keys()
metrics = json.load(open('traces/metrics_smoke.json'))
assert 'route/overflow' in metrics['series']
print('obs trace OK:', len(trace['traceEvents']), 'events')
"

echo "CI OK"
