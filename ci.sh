#!/usr/bin/env bash
# Repository CI gate: formatting, lints, release build, full test
# suite. Run from the workspace root; everything must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection smoke (typed errors, budgets, degradation)"
cargo test -q --test fault_injection

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> bench smoke (MACRO3D_BENCH_SMOKE=1)"
MACRO3D_BENCH_SMOKE=1 cargo bench -p macro3d-bench --bench engines
python3 -c "
import json
r = json.load(open('target/BENCH_route_smoke.json'))
ids = {m['id'] for m in r['route']}
assert 'route_parallelism/serial' in ids, ids
assert 'route_parallelism/incremental' in ids, ids
assert 'route_parallelism/budgeted' in ids, ids
assert r['macro3d_stage_seconds'], 'missing stage times'
assert r['schema_version'] == 1, r.keys()
assert 'host_cpus' in r and 'effective_threads' in r, r.keys()
print('route bench smoke OK:', sorted(ids))
p = json.load(open('target/BENCH_place_smoke.json'))
ids = {m['id'] for m in p['place']}
assert 'place_parallelism/serial' in ids, ids
assert 'place_parallelism/analytical_serial' in ids, ids
assert 'place_parallelism/analytical_parallel' in ids, ids
assert p['schema_version'] == 1, p.keys()
assert 'host_cpus' in p and 'effective_threads' in p, p.keys()
assert p['hpwl_bisection_um'] > 0 and p['hpwl_analytical_um'] > 0, p
print('place bench smoke OK:', sorted(ids), 'hpwl_ratio', p['hpwl_ratio'])
d = json.load(open('target/BENCH_dse_smoke.json'))
assert d['schema_version'] == 1 and d['bench'] == 'dse_service', d
assert d['fingerprints_identical'] is True, d
assert d['warm_cache_hits'] > 0 and d['warm_flows_executed'] == 0, d
assert 'host_cpus' in d and 'effective_threads' in d, d.keys()
assert max(d['reuse_depths']) == 4, d['reuse_depths']
assert d['reuse_fingerprints_identical'] is True, d
assert d['reuse_stage_hits'] > 0, d
print('dse bench smoke OK: %d points, %.0fx warm speedup, reuse depths %s'
      % (d['points'], d['speedup'], d['reuse_depths']))
"

echo "==> obs smoke (full-trace flows, both placer backends + JSON validation)"
./target/release/obs_smoke
python3 -c "
import json
trace = json.load(open('traces/trace_smoke.json'))
assert len(trace['traceEvents']) >= 6, trace.keys()
metrics = json.load(open('traces/metrics_smoke.json'))
assert 'route/overflow' in metrics['series']
print('obs trace OK:', len(trace['traceEvents']), 'events')
metrics = json.load(open('traces/metrics_smoke_analytical.json'))
assert 'place/nesterov_iters' in metrics['counters'], metrics['counters'].keys()
assert 'place/overflow' in metrics['series'], metrics['series'].keys()
print('analytical obs trace OK:', metrics['counters']['place/nesterov_iters'], 'nesterov iters')
"

echo "==> dse smoke (NDJSON server cold/warm sweep + persisted-cache validation)"
DSE_CACHE=target/dse_smoke_cache
rm -rf "$DSE_CACHE"
DSE_REQ='{"cmd":"ping"}
{"cmd":"sweep","spec":{"flow":"Macro-3D","tile":"mini","knobs":{"sizing_rounds":"1","route_iterations":"1"}},"axes":[{"knob":"macro_metals","values":["4","6"]},{"knob":"util_logic","values":["0.55","0.65"]}]}
{"cmd":"stats"}
{"cmd":"shutdown"}'
printf '%s\n' "$DSE_REQ" | ./target/release/dse_server --workers 2 --cache-dir "$DSE_CACHE" \
  > target/dse_smoke_cold.ndjson
printf '%s\n' "$DSE_REQ" | ./target/release/dse_server --workers 2 --cache-dir "$DSE_CACHE" \
  > target/dse_smoke_warm.ndjson
python3 -c "
import json
def load(path):
    return [json.loads(l) for l in open(path) if l.strip()]
cold, warm = load('target/dse_smoke_cold.ndjson'), load('target/dse_smoke_warm.ndjson')
for name, lines in (('cold', cold), ('warm', warm)):
    assert all(l['ok'] for l in lines), (name, lines)
    points = [l for l in lines if 'point' in l]
    assert len(points) == 4, (name, len(points))
    done = [l for l in lines if l.get('sweep_done')]
    assert len(done) == 1 and done[0]['points'] == 4, (name, done)
    assert done[0]['stats']['schema_version'] == 1, done[0]['stats']
cold_fp = [l['fingerprint'] for l in cold if 'point' in l]
warm_fp = [l['fingerprint'] for l in warm if 'point' in l]
assert cold_fp == warm_fp, 'cold/warm fingerprints differ'
stats = [l for l in warm if l.get('sweep_done')][0]['stats']
assert stats['cache_hits'] > 0, stats
assert stats['disk_hits'] > 0, stats
assert stats['flows_executed'] == 0, stats
print('dse server smoke OK: 4 points, warm cache hits', stats['cache_hits'])
"

echo "==> dse sweep CLI (cold+warm bench over the persisted cache)"
rm -rf target/dse_sweep_cache
./target/release/dse_sweep --flow Macro-3D --tile mini \
  --set sizing_rounds=1 --set route_iterations=1 \
  --axis macro_metals=4,6 --axis util_logic=0.55,0.65 \
  --cache-dir target/dse_sweep_cache \
  --out target/dse_sweep_table.txt --bench-out target/BENCH_dse_ci.json
python3 -c "
import json
b = json.load(open('target/BENCH_dse_ci.json'))
assert b['schema_version'] == 1 and b['bench'] == 'dse_service', b
assert b['points'] == 4 and b['fingerprints_identical'] is True, b
assert b['warm_cache_hits'] > 0 and b['warm_flows_executed'] == 0, b
assert b['speedup'] > 1.0, b
assert len(b['reuse_depths']) == 4 and len(b['fingerprints']) == 4, b
print('dse sweep bench OK: %.0fx warm speedup, %.1f cold jobs/s'
      % (b['speedup'], b['cold_jobs_per_s']))
"

echo "==> sweep-reuse gate (stage-graph prefix reuse, depth + determinism)"
# 2-axis mini sweep on one worker: util_logic changes the floorplan
# key (two cold prefixes), sizing_rounds only the STA key (one depth-4
# re-entry per prefix). The scratch run (reuse off) must be all-cold
# and bit-identical.
./target/release/dse_sweep --flow Macro-3D --tile mini --set route_iterations=2 \
  --axis util_logic=0.55,0.6 --axis sizing_rounds=1,2 --workers 1 \
  --out target/sweep_reuse_on.txt
./target/release/dse_sweep --flow Macro-3D --tile mini --set route_iterations=2 \
  --axis util_logic=0.55,0.6 --axis sizing_rounds=1,2 --workers 1 \
  --no-stage-reuse --out target/sweep_reuse_off.txt
python3 -c "
def rows(path):
    out = {}
    for line in open(path):
        parts = line.split()
        if parts and parts[0].count('=') >= 2:  # 'util_logic=..,sizing_rounds=..'
            out[parts[0]] = (int(parts[6]), parts[7])  # (reuse depth, fingerprint)
    return out
on, off = rows('target/sweep_reuse_on.txt'), rows('target/sweep_reuse_off.txt')
assert len(on) == 4 and len(off) == 4, (on, off)
depths = sorted(d for d, _ in on.values())
assert depths == [0, 0, 4, 4], 'one cold + one depth-4 point per util_logic prefix: %s' % on
assert all(d == 0 for d, _ in off.values()), 'reuse off must run everything cold: %s' % off
for label in on:
    assert on[label][1] == off[label][1], 'fingerprint mismatch at %s' % label
print('sweep-reuse gate OK: depths %s, fingerprints bit-identical to scratch run' % depths)
"

echo "CI OK"
