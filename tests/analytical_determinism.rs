//! Thread-count invariance and QoR of the analytical placer backend.
//!
//! Every hot kernel of the ePlace-style placer — WA wirelength terms,
//! per-cell gradients with field interpolation, chunked bin density,
//! the Nesterov position update — runs through the `macro3d-par`
//! order-preserving primitives, and every reduction is a serial sum
//! in fixed index order, so the whole solve must be bit-identical for
//! any thread budget. The QoR check pins the analytical backend's
//! legalized HPWL to within 5% of recursive bisection on the Table-1
//! small-cache tile, and the flow checks run the backend end-to-end
//! through all four flows.

use macro3d::flows::standard_flows;
use macro3d::{FlowConfig, Parallelism, PlacerBackend};
use macro3d_place::floorplan::die_for_area;
use macro3d_place::{
    global_place, legalize, legalize_abacus, total_hpwl, Floorplan, GlobalPlaceConfig, PortPlan,
};
use macro3d_soc::{generate_tile, TileConfig, TileNetlist};

/// The miniature tile used by the integration tests.
fn tiny_tile() -> TileNetlist {
    let mut cfg = TileConfig::small_cache().with_scale(32.0);
    cfg.l3_kb = 64;
    cfg.l2_kb = 8;
    cfg.l1i_kb = 8;
    cfg.l1d_kb = 8;
    cfg.noc_width = 4;
    cfg.core_kgates = 26.0;
    cfg.l3_ctrl_kgates = 5.0;
    cfg.l2_ctrl_kgates = 4.0;
    cfg.l1i_ctrl_kgates = 3.0;
    cfg.l1d_ctrl_kgates = 3.0;
    cfg.noc_kgates = 2.0;
    generate_tile(&cfg)
}

/// A cells-only floorplan big enough for the tile at 60% utilization.
fn cells_floorplan(tile: &TileNetlist) -> (Floorplan, PortPlan) {
    let design = &tile.design;
    let lib = design.library().clone();
    let cell_um2: f64 = design
        .inst_ids()
        .filter(|&i| !design.is_macro(i))
        .map(|i| design.inst_area_um2(i))
        .sum();
    let die = die_for_area(cell_um2 / 0.6, 1.0, lib.row_height(), lib.site_width());
    let fp = Floorplan::new(die, lib.row_height(), lib.site_width());
    let ports = PortPlan::assign(design, die);
    (fp, ports)
}

#[test]
fn analytical_placement_is_invariant_to_thread_count() {
    let tile = tiny_tile();
    let (fp, ports) = cells_floorplan(&tile);

    let place = |threads: usize| {
        let cfg = GlobalPlaceConfig {
            backend: PlacerBackend::Analytical,
            parallelism: Parallelism::threads(threads),
            ..GlobalPlaceConfig::default()
        };
        global_place(&tile.design, &fp, &ports, &cfg)
    };

    let base = place(1);
    // sanity: the serial run actually spread the cells out
    let distinct: std::collections::BTreeSet<_> = base.pos.iter().map(|p| (p.x, p.y)).collect();
    assert!(distinct.len() > 16, "degenerate placement");

    for threads in [4, 8] {
        let got = place(threads);
        assert_eq!(got.pos, base.pos, "positions differ at {threads} threads");
        assert_eq!(
            got.orient, base.orient,
            "orientations differ at {threads} threads"
        );
    }
}

/// Legalized HPWL of the analytical backend stays within 5% of
/// recursive bisection on the Table-1 small-cache tile (each backend
/// goes through its own legalizer, like the flow's place pipeline).
#[test]
fn analytical_hpwl_rivals_bisection() {
    let tile = tiny_tile();
    let (fp, ports) = cells_floorplan(&tile);
    let movable: Vec<_> = tile
        .design
        .inst_ids()
        .filter(|&i| !tile.design.is_macro(i))
        .collect();

    let hpwl_of = |backend: PlacerBackend| {
        let cfg = GlobalPlaceConfig {
            backend,
            ..GlobalPlaceConfig::default()
        };
        let mut p = global_place(&tile.design, &fp, &ports, &cfg);
        let rep = match backend {
            PlacerBackend::Bisection => legalize(&tile.design, &fp, &mut p, &movable),
            PlacerBackend::Analytical => legalize_abacus(&tile.design, &fp, &mut p, &movable),
        };
        assert_eq!(rep.failed, 0, "{backend:?} legalization failed cells");
        total_hpwl(&tile.design, &p, &ports).to_um()
    };

    let bisection = hpwl_of(PlacerBackend::Bisection);
    let analytical = hpwl_of(PlacerBackend::Analytical);
    assert!(
        analytical <= bisection * 1.05,
        "analytical HPWL {analytical:.1}um exceeds bisection {bisection:.1}um by more than 5%"
    );
}

/// The analytical backend runs end-to-end through all four flows
/// (2D, S2D, C2D, Macro-3D) and produces working implementations.
#[test]
fn analytical_backend_runs_all_flows() {
    let tile = tiny_tile();
    let mut cfg = FlowConfig::builder()
        .sizing_rounds(1)
        .placer(PlacerBackend::Analytical)
        .build()
        .expect("valid config");
    cfg.route.iterations = 2;

    for flow in standard_flows() {
        let out = flow.run(&tile, &cfg);
        assert!(
            out.ppa.fclk_mhz > 0.0,
            "{}: degenerate clock frequency",
            flow.name()
        );
        assert!(
            out.ppa.total_wirelength_m > 0.0,
            "{}: no routed wirelength",
            flow.name()
        );
    }
}
