//! Thread-count invariance of fork-join global placement.
//!
//! After each bisection cut the two sub-problems are independent —
//! children see the rest of the design only through an immutable
//! fork-time snapshot — so `global_place` must produce a bit-identical
//! `Placement` for any thread budget.

use macro3d::Parallelism;
use macro3d_place::floorplan::die_for_area;
use macro3d_place::{global_place, Floorplan, GlobalPlaceConfig, PortPlan};
use macro3d_soc::{generate_tile, TileConfig, TileNetlist};

/// The miniature tile used by the integration tests.
fn tiny_tile() -> TileNetlist {
    let mut cfg = TileConfig::small_cache().with_scale(32.0);
    cfg.l3_kb = 64;
    cfg.l2_kb = 8;
    cfg.l1i_kb = 8;
    cfg.l1d_kb = 8;
    cfg.noc_width = 4;
    cfg.core_kgates = 26.0;
    cfg.l3_ctrl_kgates = 5.0;
    cfg.l2_ctrl_kgates = 4.0;
    cfg.l1i_ctrl_kgates = 3.0;
    cfg.l1d_ctrl_kgates = 3.0;
    cfg.noc_kgates = 2.0;
    generate_tile(&cfg)
}

#[test]
fn placement_is_invariant_to_thread_count() {
    let tile = tiny_tile();
    let design = &tile.design;
    let lib = design.library().clone();

    // a standalone cells-only floorplan large enough for the tile
    let cell_um2: f64 = design
        .inst_ids()
        .filter(|&i| !design.is_macro(i))
        .map(|i| design.inst_area_um2(i))
        .sum();
    let die = die_for_area(cell_um2 / 0.6, 1.0, lib.row_height(), lib.site_width());
    let fp = Floorplan::new(die, lib.row_height(), lib.site_width());
    let ports = PortPlan::assign(design, die);

    let place = |threads: usize| {
        let cfg = GlobalPlaceConfig {
            parallelism: Parallelism::threads(threads),
            ..GlobalPlaceConfig::default()
        };
        global_place(design, &fp, &ports, &cfg)
    };

    let base = place(1);
    // sanity: the serial run actually spread the cells out
    let distinct: std::collections::BTreeSet<_> = base.pos.iter().map(|p| (p.x, p.y)).collect();
    assert!(distinct.len() > 16, "degenerate placement");

    for threads in [4, 8] {
        let got = place(threads);
        assert_eq!(got.pos, base.pos, "positions differ at {threads} threads");
        assert_eq!(
            got.orient, base.orient,
            "orientations differ at {threads} threads"
        );
        assert_eq!(
            got.die_of, base.die_of,
            "die assignments differ at {threads} threads"
        );
    }
}
