//! Cross-crate property tests: invariants that span multiple
//! subsystems.

use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::{Design, InstId, NetId, PinRef};
use macro3d_place::density::count_overlaps;
use macro3d_place::{legalize, Floorplan, Placement};
use macro3d_route::{RouteConfig, RouteRequest, Router};
use macro3d_sram::MemoryCompiler;
use macro3d_tech::libgen::n28_library;
use macro3d_tech::stack::{n28_stack, DieRole};
use macro3d_tech::{CellClass, CombinedBeol, Corner, F2fSpec};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Legalization produces overlap-free, in-bounds placements for
    /// any random cell soup.
    #[test]
    fn legalize_is_always_legal(
        n in 10usize..300,
        seed in 0u64..1_000,
        w in 30.0f64..120.0,
    ) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let nand = lib.smallest(CellClass::Nand2).expect("nand");
        let mut d = Design::new("t", lib);
        let insts: Vec<InstId> = (0..n)
            .map(|i| d.add_cell(format!("c{i}"), if i % 2 == 0 { inv } else { nand }))
            .collect();
        let fp = Floorplan::new(
            Rect::from_um(0.0, 0.0, w, 120.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        let mut p = Placement::new(&d);
        let mut rng_state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) as f64 / (1u64 << 31) as f64
        };
        for &i in &insts {
            p.pos[i.index()] = Point::from_um(next() * w, next() * 120.0);
        }
        let rep = legalize(&d, &fp, &mut p, &insts);
        prop_assert_eq!(rep.failed, 0);
        prop_assert_eq!(count_overlaps(&d, &p, &insts), 0);
        for &i in &insts {
            prop_assert!(fp.die().contains_rect(p.rect(&d, i)));
        }
    }

    /// Any two-pin net routed in a combined stack between the two
    /// dies crosses the F2F cut an odd number of times; same-die
    /// connections cross an even number of times.
    #[test]
    fn f2f_crossing_parity(
        x0 in 5.0f64..195.0,
        y0 in 5.0f64..195.0,
        x1 in 5.0f64..195.0,
        y1 in 5.0f64..195.0,
        to_macro_die in proptest::bool::ANY,
    ) {
        let combined = CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(4, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        );
        let dst_layer: u16 = if to_macro_die { 8 } else { 2 };
        let nets = vec![(
            NetId(0),
            vec![
                (Point::from_um(x0, y0), 0u16),
                (Point::from_um(x1, y1), dst_layer),
            ],
        )];
        let r = Router::new(
            &RouteRequest {
                die: Rect::from_um(0.0, 0.0, 200.0, 200.0),
                stack: combined.stack(),
                obstacles: &[],
                nets: &nets,
                num_nets: 1,
            },
            &RouteConfig::default(),
        )
        .route();
        let net = r.net(NetId(0)).expect("routed");
        if to_macro_die {
            prop_assert_eq!(net.f2f_crossings % 2, 1, "inter-die nets cross oddly");
        } else {
            prop_assert_eq!(net.f2f_crossings % 2, 0, "same-die nets cross evenly");
        }
    }

    /// Extraction is monotone: longer routes never have less wire
    /// capacitance or faster Elmore delay.
    #[test]
    fn extraction_monotone_in_length(len1 in 10.0f64..200.0, extra in 10.0f64..300.0) {
        use macro3d_route::{RouteSeg, RoutedNet};
        let stack = n28_stack(6, DieRole::Logic);
        let mk = |len: f64| RoutedNet {
            segments: vec![RouteSeg {
                layer: 2,
                from: Point::from_um(0.0, 0.0),
                to: Point::from_um(len, 0.0),
            }],
            vias: vec![],
            f2f_crossings: 0,
        };
        let sink = |len: f64| [(Point::from_um(len, 0.0), 1.0)];
        let short = macro3d_extract::extract_net(
            &stack, &mk(len1), Point::ORIGIN, &sink(len1), Corner::Tt,
        );
        let long = macro3d_extract::extract_net(
            &stack, &mk(len1 + extra), Point::ORIGIN, &sink(len1 + extra), Corner::Tt,
        );
        prop_assert!(long.wire_cap_ff > short.wire_cap_ff);
        prop_assert!(long.elmore_ps[0] > short.elmore_ps[0]);
    }

    /// The SRAM compiler always produces valid macros whose area
    /// follows capacity.
    #[test]
    fn sram_compiler_valid_and_monotone(
        words_exp in 6u32..14,
        bits in proptest::sample::select(vec![16u32, 32, 64, 128]),
    ) {
        let words = 1u32 << words_exp;
        let c = MemoryCompiler::n28();
        let small = c.sram("a", words, bits);
        let big = c.sram("b", words * 2, bits);
        prop_assert!(small.validate().is_ok());
        prop_assert!(big.validate().is_ok());
        prop_assert!(big.area_um2() > small.area_um2());
        prop_assert!(big.access_ps >= small.access_ps);
    }
}

/// A deterministic end-to-end mini check usable under proptest's
/// budget: netlist validity is preserved by the whole flow pipeline.
#[test]
fn flow_preserves_netlist_validity() {
    let mut cfg = macro3d_soc::TileConfig::small_cache().with_scale(64.0);
    cfg.l3_kb = 32;
    cfg.core_kgates = 20.0;
    cfg.l3_ctrl_kgates = 4.0;
    cfg.l2_ctrl_kgates = 3.0;
    cfg.l1i_ctrl_kgates = 2.0;
    cfg.l1d_ctrl_kgates = 2.0;
    cfg.noc_kgates = 2.0;
    cfg.noc_width = 4;
    let tile = macro3d_soc::generate_tile(&cfg);
    assert!(tile.design.validate().is_ok());
    use macro3d::flows::Flow as _;
    let imp = macro3d::flows::Macro3d
        .run(&tile, &macro3d::FlowConfig::default())
        .implemented;
    assert!(imp.design.validate().is_ok());
    // pin refs in nets stay within bounds after CTS/repeaters/sizing
    for n in imp.design.net_ids() {
        for &p in &imp.design.net(n).pins {
            if let PinRef::Inst { inst, pin } = p {
                let count = imp.design.inst(inst).conns.len();
                assert!((pin as usize) < count);
            }
        }
    }
}
