//! Observability determinism: the stitched span tree and every metric
//! value must be bit-identical for any worker count, matching the
//! engine-level determinism guarantees.

use macro3d::flows::{Flow, Macro3d};
use macro3d::{FlowConfig, ObsConfig};
use macro3d_soc::{generate_tile, TileConfig, TileNetlist};

fn tiny_tile() -> TileNetlist {
    let mut cfg = TileConfig::small_cache().with_scale(32.0);
    cfg.l3_kb = 64;
    cfg.l2_kb = 8;
    cfg.l1i_kb = 8;
    cfg.l1d_kb = 8;
    cfg.noc_width = 4;
    cfg.core_kgates = 26.0;
    cfg.l3_ctrl_kgates = 5.0;
    cfg.l2_ctrl_kgates = 4.0;
    cfg.l1i_ctrl_kgates = 3.0;
    cfg.l1d_ctrl_kgates = 3.0;
    cfg.noc_kgates = 2.0;
    generate_tile(&cfg)
}

fn traced_cfg(threads: usize) -> FlowConfig {
    let mut cfg = FlowConfig::builder()
        .sizing_rounds(2)
        .threads(threads)
        .obs(ObsConfig::full())
        .build()
        .expect("valid config");
    cfg.route.iterations = 2;
    cfg
}

/// One test function: the obs session state is global, so runs must
/// not interleave with each other.
#[test]
fn full_trace_is_identical_across_thread_counts() {
    let tile = tiny_tile();

    // Warm-up pass: the build cache is process-global, so without it
    // the first traced run would record cache misses and the second
    // hits, which is a (correct) run-order difference, not a
    // thread-count difference.
    Macro3d.run(&tile, &traced_cfg(1));

    let t1 = Macro3d
        .run(&tile, &traced_cfg(1))
        .obs
        .expect("trace at 1 thread");
    let t8 = Macro3d
        .run(&tile, &traced_cfg(8))
        .obs
        .expect("trace at 8 threads");

    assert_eq!(
        t1.tree_signature(),
        t8.tree_signature(),
        "span tree differs between 1 and 8 threads"
    );
    assert_eq!(
        t1.metrics_json(),
        t8.metrics_json(),
        "metric values differ between 1 and 8 threads"
    );

    // the trace carries the instrumented engines end to end (anneal
    // counters live inside the cached floorplan builder and are only
    // recorded on a cold cache, so they are asserted by `obs_smoke`,
    // not here)
    assert!(t1.stage_names().len() >= 6, "{:?}", t1.stage_names());
    let m = &t1.metrics;
    for counter in [
        "place/fm_passes",
        "route/iterations",
        "extract/nets",
        "sta/arcs_evaluated",
    ] {
        assert!(m.counters.contains_key(counter), "{counter} missing");
    }
    assert!(m.series.contains_key("route/overflow"));
    assert!(m.counters.keys().any(|k| k.starts_with("cache/")));
    let derived = t1.metrics_json();
    assert!(derived.contains("hit_rate"));
}
