//! Thread-count invariance of the parallel engines.
//!
//! The batched router commits chunk results in chunk order against a
//! congestion snapshot, extraction is a pure per-net map, and the STA
//! endpoint reduction breaks slack ties by check index — so the
//! *entire flow* must produce bit-identical results for any worker
//! count. Only `chunk_size` (commit granularity) is allowed to change
//! outcomes, and it is held fixed here.

use macro3d::flows::{Flow, Macro3d};
use macro3d::{FlowConfig, ImplementedDesign, Parallelism};
use macro3d_soc::{generate_tile, TileConfig, TileNetlist};

/// The miniature tile used by the integration tests.
fn tiny_tile() -> TileNetlist {
    let mut cfg = TileConfig::small_cache().with_scale(32.0);
    cfg.l3_kb = 64;
    cfg.l2_kb = 8;
    cfg.l1i_kb = 8;
    cfg.l1d_kb = 8;
    cfg.noc_width = 4;
    cfg.core_kgates = 26.0;
    cfg.l3_ctrl_kgates = 5.0;
    cfg.l2_ctrl_kgates = 4.0;
    cfg.l1i_ctrl_kgates = 3.0;
    cfg.l1d_ctrl_kgates = 3.0;
    cfg.noc_kgates = 2.0;
    generate_tile(&cfg)
}

fn run_with_threads(tile: &TileNetlist, threads: usize) -> ImplementedDesign {
    let mut cfg = FlowConfig::builder()
        .sizing_rounds(2)
        .parallelism(Parallelism::threads(threads).with_chunk_size(8))
        .build()
        .expect("valid config");
    cfg.route.iterations = 2;
    Macro3d.run(tile, &cfg).implemented
}

#[test]
fn flow_is_invariant_to_thread_count() {
    let tile = tiny_tile();
    let base = run_with_threads(&tile, 1);
    assert!(base.routed.total_wirelength_um > 0.0);

    for threads in [2, 4] {
        let imp = run_with_threads(&tile, threads);
        assert_eq!(
            imp.routed.total_wirelength_um.to_bits(),
            base.routed.total_wirelength_um.to_bits(),
            "wirelength differs at {threads} threads"
        );
        assert_eq!(
            imp.routed.overflow.to_bits(),
            base.routed.overflow.to_bits(),
            "overflow differs at {threads} threads"
        );
        assert_eq!(
            imp.routed.f2f_bumps, base.routed.f2f_bumps,
            "bump count differs at {threads} threads"
        );
        let vias = |d: &ImplementedDesign| -> usize {
            d.routed.nets.iter().flatten().map(|n| n.vias.len()).sum()
        };
        assert_eq!(
            vias(&imp),
            vias(&base),
            "via totals differ at {threads} threads"
        );
        // extraction + STA parallelism must not shift sign-off either
        assert_eq!(
            imp.timing.min_period_ps.to_bits(),
            base.timing.min_period_ps.to_bits(),
            "min period differs at {threads} threads"
        );
        assert_eq!(
            imp.timing.crit_path_nets, base.timing.crit_path_nets,
            "critical path differs at {threads} threads"
        );
    }
}
