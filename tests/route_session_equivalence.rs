//! Incremental rip-up-and-reroute equivalence.
//!
//! A `Router` session that absorbs a pin perturbation through
//! `update()` keeps the committed paths of every unchanged net and
//! re-routes only the changed ones. A from-scratch router sees the
//! perturbed netlist with no history at all and routes everything in
//! span order. In the convergent (zero-overflow) regime the
//! negotiated-congestion scheme drives both to the same fixed point:
//! identical total wirelength, overflow, and F2F bump counts. A
//! seeded LCG picks which nets move so the perturbation is
//! reproducible.
//!
//! The demand is subsampled to keep both routers in that regime: at
//! the tiles' native congestion the two histories legitimately settle
//! on different (equally legal) detours and only approximate equality
//! would hold, which is exactly the kind of assertion that rots.

use macro3d::flow::route_pins;
use macro3d_geom::Dbu;
use macro3d_netlist::NetId;
use macro3d_place::{global_place, Floorplan, GlobalPlaceConfig, PortPlan};
use macro3d_route::{RoutePin, RouteRequest, RoutedDesign, Router};
use macro3d_soc::{generate_tile, TileConfig, TileNetlist};
use macro3d_tech::stack::DieRole;

/// Splitmix-style seeded generator — the same idiom the other
/// workspace property tests use for reproducible randomness.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Floorplan + global placement + route pins for a tile, without the
/// full flow (mirrors the route bench's setup).
fn tile_nets(tile: &TileNetlist) -> (macro3d_geom::Rect, Vec<(NetId, Vec<RoutePin>)>) {
    let cfg = macro3d::FlowConfig::default();
    let lib = tile.design.library().clone();
    let budget = macro3d::flow::area_budget(&tile.design, &cfg);
    let die = macro3d_place::floorplan::die_for_area(
        4.0 * budget.a3d_um2,
        1.0,
        lib.row_height(),
        lib.site_width(),
    );
    let mut fp = Floorplan::new(die, lib.row_height(), lib.site_width());
    let halo = Dbu::from_um(cfg.halo_um);
    let mol = macro3d::build_cache::cached_mol_floorplan(
        &tile.design,
        die,
        halo,
        cfg.util_macro,
        cfg.halo_um,
    );
    for &mp in mol.0.iter().chain(mol.1.iter()) {
        fp.add_macro(mp, DieRole::Logic, halo);
    }
    let ports = PortPlan::assign(&tile.design, die);
    let placement = global_place(&tile.design, &fp, &ports, &GlobalPlaceConfig::default());
    let stack = macro3d_tech::stack::n28_stack(cfg.logic_metals, DieRole::Logic);
    let nets = route_pins(
        &tile.design,
        &placement,
        &ports,
        cfg.logic_metals,
        stack.num_layers(),
        false,
    );
    (die, nets)
}

fn totals(r: &RoutedDesign) -> (u64, u64, u64) {
    (
        r.total_wirelength_um.to_bits(),
        r.overflow.to_bits(),
        r.f2f_bumps,
    )
}

fn check_equivalence(tile_cfg: TileConfig, seed: u64) {
    let cfg = macro3d::FlowConfig::default();
    let tile = generate_tile(&tile_cfg);
    let (die, all_nets) = tile_nets(&tile);
    // every 6th net + full-capacity tracks: low enough demand that
    // negotiation converges to zero overflow from either history
    let nets: Vec<(NetId, Vec<RoutePin>)> = all_nets
        .iter()
        .enumerate()
        .filter(|(k, _)| k % 6 == 0)
        .map(|(_, n)| n.clone())
        .collect();
    let stack = macro3d_tech::stack::n28_stack(cfg.logic_metals, DieRole::Logic);
    let rc = macro3d_route::RouteConfig::builder()
        .utilization(1.0)
        .iterations(8)
        .build()
        .expect("valid route config");
    let request = RouteRequest {
        die,
        stack: &stack,
        obstacles: &[],
        nets: &nets,
        num_nets: tile.design.num_nets(),
    };

    // seeded perturbation: ~5% of nets get every pin shifted by one
    // gcell in a direction drawn from the LCG, clamped to the die
    let mut rng = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1));
    let gcell = Dbu::from_um(cfg.route.gcell_um);
    let changed: Vec<(NetId, Vec<RoutePin>)> = nets
        .iter()
        .filter_map(|(id, pins)| {
            if !rng.next().is_multiple_of(20) {
                return None;
            }
            let (dx, dy) = match rng.next() % 4 {
                0 => (gcell, Dbu(0)),
                1 => (Dbu(0) - gcell, Dbu(0)),
                2 => (Dbu(0), gcell),
                _ => (Dbu(0), Dbu(0) - gcell),
            };
            let moved = pins
                .iter()
                .map(|&(p, l)| {
                    let q = macro3d_geom::Point::new(p.x + dx, p.y + dy);
                    (q.min(die.hi).max(die.lo), l)
                })
                .collect();
            Some((*id, moved))
        })
        .collect();
    assert!(!changed.is_empty(), "seed produced no perturbation");

    // incremental: route once, then absorb the perturbation
    let mut session = Router::new(&request, &rc);
    session.route();
    let incremental = session.update(&changed);

    // from-scratch: the perturbed netlist routed with no history
    let mut perturbed = nets.clone();
    for (id, pins) in &changed {
        let k = perturbed.iter().position(|(n, _)| n == id).expect("known");
        perturbed[k].1.clone_from(pins);
    }
    let scratch = Router::new(
        &RouteRequest {
            nets: &perturbed,
            ..request
        },
        &rc,
    )
    .route();

    eprintln!(
        "inc: wl {} ov {} edges {} | scr: wl {} ov {} edges {}",
        incremental.total_wirelength_um,
        incremental.overflow,
        incremental.overflowed_edges,
        scratch.total_wirelength_um,
        scratch.overflow,
        scratch.overflowed_edges
    );
    assert_eq!(
        totals(&incremental),
        totals(&scratch),
        "incremental update and from-scratch reroute diverged \
         (wirelength_bits, overflow_bits, f2f_bumps)"
    );
    assert!(incremental.total_wirelength_um > 0.0);
}

#[test]
fn small_cache_incremental_matches_scratch() {
    check_equivalence(TileConfig::small_cache().with_scale(32.0), 7);
}

#[test]
fn large_cache_incremental_matches_scratch() {
    check_equivalence(TileConfig::large_cache().with_scale(32.0), 11);
}
