//! Fault-injection robustness tests: every flow, driven through
//! [`Flow::try_run`] under randomized seeded fault plans and starved
//! budgets, must terminate without panicking — returning either a
//! typed [`FlowError`] or a well-formed degraded [`FlowOutcome`] —
//! and produce bit-identical results for any thread count.

use macro3d::flows::{standard_flows, Flow, Macro3d};
use macro3d::{
    FaultAction, FaultPlan, FlowBudget, FlowConfig, FlowError, FlowOutcome, StopReason,
    STANDARD_SITES,
};
use macro3d_soc::{generate_tile, TileConfig, TileNetlist};
use proptest::prelude::*;
use std::time::Duration;

/// The same miniature tile as `flow_integration.rs`.
fn tiny_tile() -> TileNetlist {
    let mut cfg = TileConfig::small_cache().with_scale(32.0);
    cfg.l3_kb = 64;
    cfg.l2_kb = 8;
    cfg.l1i_kb = 8;
    cfg.l1d_kb = 8;
    cfg.noc_width = 4;
    cfg.core_kgates = 26.0;
    cfg.l3_ctrl_kgates = 5.0;
    cfg.l2_ctrl_kgates = 4.0;
    cfg.l1i_ctrl_kgates = 3.0;
    cfg.l1d_ctrl_kgates = 3.0;
    cfg.noc_kgates = 2.0;
    generate_tile(&cfg)
}

fn fast_flow_cfg(threads: usize) -> FlowConfig {
    let mut cfg = FlowConfig::builder()
        .sizing_rounds(2)
        .threads(threads)
        .build()
        .expect("valid config");
    cfg.route.iterations = 2;
    cfg
}

/// A degraded outcome is *well-formed*: every recorded stage names a
/// known checkpoint site with a non-empty reason/detail, and the PPA
/// numbers are still finite (best-so-far, never garbage).
fn assert_well_formed(outcome: &FlowOutcome) {
    for stage in &outcome.degradation.stages {
        assert!(
            STANDARD_SITES.contains(&stage.site.as_str()) || stage.site == "flow/via_plan",
            "unknown degradation site {}",
            stage.site
        );
        assert!(!stage.detail.is_empty(), "empty detail for {}", stage.site);
        assert!(!stage.reason.to_string().is_empty());
    }
    assert!(outcome.ppa.fclk_mhz.is_finite());
    assert!(outcome.ppa.footprint_mm2.is_finite());
    assert!(outcome.implemented.design.validate().is_ok());
}

/// Fingerprint for bit-identity comparison across thread counts.
fn fingerprint(outcome: &FlowOutcome) -> (u64, u64, u64, u64) {
    (
        outcome.ppa.fclk_mhz.to_bits(),
        outcome.ppa.total_wirelength_m.to_bits(),
        outcome.ppa.footprint_mm2.to_bits(),
        outcome.ppa.f2f_bumps,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: any seeded fault plan, on any flow,
    /// yields a typed error or a well-formed degraded outcome — never
    /// a panic — and both the outcome and the degradation report are
    /// identical at 1 and 8 threads.
    #[test]
    fn any_fault_plan_is_survivable_and_thread_invariant(seed in 0u64..1_000) {
        let tile = tiny_tile();
        let plan = FaultPlan::random(seed, STANDARD_SITES);
        for flow in standard_flows() {
            let run = |threads: usize| {
                let mut cfg = fast_flow_cfg(threads);
                cfg.fault_plan = Some(plan.clone());
                flow.try_run(&tile, &cfg)
            };
            let serial = run(1);
            let wide = run(8);
            match (&serial, &wide) {
                (Ok(a), Ok(b)) => {
                    assert_well_formed(a);
                    assert_well_formed(b);
                    prop_assert_eq!(
                        fingerprint(a),
                        fingerprint(b),
                        "{} diverged across thread counts (seed {seed})",
                        flow.name()
                    );
                    prop_assert_eq!(&a.degradation, &b.degradation);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(
                    false,
                    "{} Ok/Err split across thread counts (seed {seed}): \
                     serial_err={:?} wide_err={:?}",
                    flow.name(),
                    serial.as_ref().err(),
                    wide.as_ref().err()
                ),
            }
        }
    }
}

/// An injected *error* at each flow gate surfaces as the typed
/// `FlowError::Injected` naming that site — on every flow that
/// reaches the gate.
#[test]
fn injected_errors_at_flow_gates_are_typed() {
    let tile = tiny_tile();
    for site in [
        "flow/floorplan",
        "flow/place",
        "flow/route",
        "flow/extract",
        "flow/sta",
    ] {
        let plan = FaultPlan::new().with_fault(site, 1, FaultAction::Error);
        for flow in standard_flows() {
            let mut cfg = fast_flow_cfg(0);
            cfg.fault_plan = Some(plan.clone());
            match flow.try_run(&tile, &cfg) {
                Err(FlowError::Injected { site: got, visit }) => {
                    assert_eq!(got, site, "{}", flow.name());
                    assert_eq!(visit, 1, "{}", flow.name());
                }
                Err(other) => panic!(
                    "{} at {site}: expected Injected error, got {other:?}",
                    flow.name()
                ),
                Ok(_) => panic!("{} at {site}: expected Injected error, got Ok", flow.name()),
            }
        }
    }
}

/// Injected *exhaustion* at every standard site never errors: the
/// stage degrades (best-so-far) and the flow completes, naming the
/// site when the checkpoint fired.
#[test]
fn injected_exhaustion_degrades_instead_of_failing() {
    let tile = tiny_tile();
    // sites guaranteed to fire for Macro-3D with this config
    let firing = ["flow/route", "route/iterations", "sta/sizing_rounds"];
    for &site in STANDARD_SITES {
        let plan = FaultPlan::new().with_fault(site, 1, FaultAction::Exhaust);
        let mut cfg = fast_flow_cfg(0);
        cfg.fault_plan = Some(plan);
        let outcome = Macro3d
            .try_run(&tile, &cfg)
            .unwrap_or_else(|e| panic!("exhaustion at {site} must not fail: {e}"));
        assert_well_formed(&outcome);
        if firing.contains(&site) {
            assert!(
                outcome.degradation.stage(site).is_some(),
                "{site} fired but is not in the report: {}",
                outcome.degradation
            );
        }
    }
}

/// Iteration caps cut loops short and report what was left undone.
#[test]
fn iteration_caps_degrade_gracefully() {
    let tile = tiny_tile();
    let mut cfg = fast_flow_cfg(0);
    cfg.budget = FlowBudget::unlimited()
        .with_cap("route/iterations", 1)
        .with_cap("sta/sizing_rounds", 1);
    let outcome = Macro3d.try_run(&tile, &cfg).expect("caps never error");
    assert_well_formed(&outcome);
    let routed = outcome
        .degradation
        .stage("route/iterations")
        .expect("route cap of 1 must trip on a 2-iteration config");
    assert_eq!(routed.reason, StopReason::IterationCap);
    assert!(
        outcome.degradation.stage("sta/sizing_rounds").is_some(),
        "{}",
        outcome.degradation
    );
}

/// A wall-clock budget 10x too small (effectively zero) terminates
/// promptly with a degraded — not hung, not panicked — outcome, and
/// the deadline is reported.
#[test]
fn starved_wall_clock_budget_terminates_promptly() {
    let tile = tiny_tile();
    let mut cfg = fast_flow_cfg(0);
    cfg.budget = FlowBudget::unlimited().with_wall_clock(Duration::from_nanos(1));
    let outcome = Macro3d.try_run(&tile, &cfg).expect("deadlines never error");
    assert_well_formed(&outcome);
    assert!(
        outcome.degradation.is_degraded(),
        "zero budget must degrade"
    );
    assert!(
        outcome
            .degradation
            .stages
            .iter()
            .any(|s| s.reason == StopReason::DeadlineExceeded),
        "{}",
        outcome.degradation
    );
}

/// A failed run tears down its budget scope and obs session: a clean
/// run after the failure behaves exactly like a clean run before it
/// (no leaked fault plan, no leaked degradation records). Note the
/// clean runs may legitimately degrade — the 2-iteration router does
/// not converge on this tile, and that residual overflow is *supposed*
/// to be reported — so the assertion is before/after equality, not
/// emptiness.
#[test]
fn failed_runs_leak_no_state_into_the_next() {
    let tile = tiny_tile();
    let clean = fast_flow_cfg(0);
    let before = Macro3d.try_run(&tile, &clean).expect("clean run succeeds");

    let mut cfg = fast_flow_cfg(0);
    cfg.fault_plan = Some(FaultPlan::new().with_fault("flow/place", 1, FaultAction::Error));
    assert!(Macro3d.try_run(&tile, &cfg).is_err());

    let after = Macro3d.try_run(&tile, &clean).expect("clean run succeeds");
    assert_eq!(fingerprint(&before), fingerprint(&after));
    assert_eq!(before.degradation, after.degradation);
    assert!(
        !after.degradation.stages.iter().any(|s| matches!(
            s.reason,
            StopReason::InjectedError | StopReason::InjectedExhaust
        )),
        "leaked fault plan: {}",
        after.degradation
    );
}
