//! Workspace integration tests: every flow runs end-to-end on a tiny
//! tile and produces consistent, physically sensible results.

use macro3d::flows::{C2d, Flow, Flow2d, Macro3d, S2d};
use macro3d::report::PpaResult;
use macro3d::s2d::S2dStyle;
use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig, TileNetlist};

/// A miniature tile that keeps debug-mode tests fast.
fn tiny_tile() -> TileNetlist {
    generate_tile(&TileConfig::mini())
}

fn fast_flow_cfg() -> FlowConfig {
    let mut cfg = FlowConfig::builder()
        .sizing_rounds(2)
        .build()
        .expect("valid config");
    cfg.route.iterations = 2;
    cfg
}

#[test]
fn flow_2d_completes_with_sane_ppa() {
    let tile = tiny_tile();
    let imp = Flow2d.run(&tile, &fast_flow_cfg()).implemented;
    let check = macro3d::check::verify(&imp);
    assert_eq!(check.cell_overlaps, 0, "{check}");
    assert_eq!(check.out_of_die, 0, "{check}");
    assert!(check.netlist_error.is_none(), "{check}");
    let ppa = PpaResult::from_impl("2D", &imp);
    assert!(
        ppa.fclk_mhz > 50.0 && ppa.fclk_mhz < 5_000.0,
        "fclk {}",
        ppa.fclk_mhz
    );
    assert!(ppa.footprint_mm2 > 0.01);
    assert_eq!(ppa.f2f_bumps, 0, "2D designs use no bumps");
    assert!(ppa.total_wirelength_m > 0.0);
    assert!(
        imp.design.validate().is_ok(),
        "flow mutations keep netlist valid"
    );
}

#[test]
fn macro3d_halves_footprint_and_uses_bumps() {
    let tile = tiny_tile();
    let cfg = fast_flow_cfg();
    let r2d = PpaResult::from_impl("2D", &Flow2d.run(&tile, &cfg).implemented);
    let imp3d = Macro3d.run(&tile, &cfg).implemented;
    let check = macro3d::check::verify(&imp3d);
    assert!(check.is_clean(), "{check}");
    let r3d = PpaResult::from_impl("Macro-3D", &imp3d);

    let ratio = r3d.footprint_mm2 / r2d.footprint_mm2;
    assert!((0.45..0.55).contains(&ratio), "footprint ratio {ratio}");
    assert!(r3d.f2f_bumps > 0, "MoL stacking needs F2F bumps");
    assert!(
        r3d.total_wirelength_m < r2d.total_wirelength_m,
        "half footprint shortens wires: {} vs {}",
        r3d.total_wirelength_m,
        r2d.total_wirelength_m
    );
    // standard cells stay on the logic die in MoL designs
    for i in imp3d.design.inst_ids() {
        if !imp3d.design.is_macro(i) {
            assert_eq!(
                imp3d.placement.die_of[i.index()],
                macro3d_tech::stack::DieRole::Logic
            );
        }
    }
}

#[test]
fn s2d_completes_in_both_styles() {
    let tile = tiny_tile();
    let cfg = fast_flow_cfg();
    for style in [S2dStyle::MemoryOnLogic, S2dStyle::Balanced] {
        let out = S2d { style }.run(&tile, &cfg);
        let (imp, diag) = (out.implemented, out.diagnostics.expect("S2D diagnostics"));
        assert!(
            imp.timing.fclk_mhz > 10.0,
            "{style:?} fclk {}",
            imp.timing.fclk_mhz
        );
        assert!(imp.design.validate().is_ok());
        assert!(diag.planned_bumps > 0, "{style:?} plans bumps");
    }
}

#[test]
fn c2d_completes() {
    let tile = tiny_tile();
    let out = C2d.run(&tile, &fast_flow_cfg());
    let (imp, diag) = (out.implemented, out.diagnostics.expect("C2D diagnostics"));
    assert!(imp.timing.fclk_mhz > 10.0);
    assert!(imp.design.validate().is_ok());
    assert!(diag.planned_bumps > 0);
}

#[test]
fn table3_variant_reduces_metal_area() {
    let tile = tiny_tile();
    let mut c66 = fast_flow_cfg();
    c66.macro_metals = 6;
    let mut c64 = fast_flow_cfg();
    c64.macro_metals = 4;
    let r66 = Macro3d.run(&tile, &c66).ppa;
    let r64 = Macro3d.run(&tile, &c64).ppa;
    assert!(r64.metal_area_mm2 < r66.metal_area_mm2);
    // performance must not collapse (paper: within ~2%)
    assert!(r64.fclk_mhz > 0.6 * r66.fclk_mhz);
}

#[test]
fn die_separation_partitions_everything() {
    let tile = tiny_tile();
    let imp = Macro3d.run(&tile, &fast_flow_cfg()).implemented;
    let (logic, upper) = macro3d::layout::separate(&imp);
    let total_insts = imp.design.num_insts();
    assert_eq!(
        logic.cells.len() + logic.macros.len() + upper.cells.len() + upper.macros.len(),
        total_insts
    );
    // the F2F via layer is present in both parts (paper Sec. IV)
    assert_eq!(logic.f2f_bumps.len(), upper.f2f_bumps.len());
    assert!(!logic.f2f_bumps.is_empty());
    // SVG rendering works for both dies
    let svg = macro3d::layout::svg_layout(&upper);
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("circle"), "bumps rendered as red dots");
}

#[test]
fn def_export_lists_all_components() {
    let tile = tiny_tile();
    let imp = Flow2d.run(&tile, &fast_flow_cfg()).implemented;
    let def = macro3d::layout::write_def(&imp.design, &imp);
    assert!(def.contains("DIEAREA"));
    assert!(def.contains(&format!("COMPONENTS {}", imp.design.num_insts())));
    assert!(def.ends_with("END DESIGN\n"));
}

#[test]
fn hold_is_clean_after_cts() {
    let tile = tiny_tile();
    let imp = Macro3d.run(&tile, &fast_flow_cfg()).implemented;
    // delay-pad CTS balancing plus the hold-fix pass must leave no
    // (meaningful) violation
    assert!(
        imp.hold.worst_slack_ps > -10.0,
        "hold slack {}",
        imp.hold.worst_slack_ps
    );
}

#[test]
fn svg_figures_render_for_tiny_tile() {
    let tile = tiny_tile();
    let cfg = fast_flow_cfg();
    let imp2d = Flow2d.run(&tile, &cfg).implemented;
    let macros: Vec<_> = imp2d
        .fp
        .macros
        .iter()
        .map(|mp| (mp.inst, mp.rect, mp.die))
        .collect();
    let fig4 = macro3d::layout::svg_floorplan(&imp2d.design, imp2d.fp.die(), &macros);
    assert!(fig4.contains("</svg>"));
    let fig5 = macro3d::layout::svg_implemented(&imp2d);
    assert!(fig5.matches("<line").count() > 100, "routed wires rendered");
}

#[test]
fn iso_performance_power_is_computable() {
    let tile = tiny_tile();
    let cfg = fast_flow_cfg();
    let imp = Macro3d.run(&tile, &cfg).implemented;
    let p1 = imp.power_at(100.0, 0.2);
    let p2 = imp.power_at(200.0, 0.2);
    assert!(p2.total_mw > p1.total_mw);
    assert!(p1.total_mw > 0.0);
}
