//! Integration tests for the DSE job service: concurrent-submission
//! determinism, fault/budget isolation between tenants, persisted-
//! cache restarts, and the NDJSON protocol.

use macro3d::{ppa_fingerprint, ppa_to_json, FaultAction, FaultPlan, StopReason};
use macro3d_dse::server::serve;
use macro3d_dse::sweep::{run_sweep, SweepAxis, SweepSpec};
use macro3d_dse::{DseConfig, DseService, JobError, JobSpec};
use macro3d_json::Json;
use macro3d_soc::TileConfig;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spec fast enough to run many times in a debug-mode test.
fn fast_spec() -> JobSpec {
    let mut spec = JobSpec::new("Macro-3D", TileConfig::mini());
    spec.config.sizing_rounds = 1;
    spec.config.route.iterations = 1;
    spec
}

/// The headline determinism contract: N identical jobs racing in from
/// several tenant threads produce bit-identical fingerprints, execute
/// the flow exactly once, and the fingerprint does not depend on the
/// worker count.
#[test]
fn concurrent_identical_jobs_execute_once_and_agree() {
    let mut fingerprint_by_workers = Vec::new();
    for workers in [1usize, 8] {
        let service = DseService::start(DseConfig {
            workers,
            queue_capacity: 64,
            ..DseConfig::default()
        })
        .unwrap();
        let client = service.client();
        let results: Vec<_> = (0..3)
            .map(|_| {
                let client = client.clone();
                thread::spawn(move || {
                    (0..2)
                        .map(|_| {
                            let id = client.submit(fast_spec()).unwrap();
                            client.wait(id).unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(results.len(), 6);

        let fingerprints: Vec<u64> = results.iter().map(|r| ppa_fingerprint(&r.ppa)).collect();
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "all tenants must see the same result at workers={workers}"
        );
        let cold = results.iter().filter(|r| !r.cache_hit).count();
        assert_eq!(cold, 1, "exactly one cold execution at workers={workers}");
        assert_eq!(client.stats().flows_executed, 1);
        fingerprint_by_workers.push(fingerprints[0]);
        service.shutdown();
    }
    assert_eq!(
        fingerprint_by_workers[0], fingerprint_by_workers[1],
        "worker count must not change the result"
    );
}

/// One tenant's failure or degradation never leaks into another's
/// job, and the service keeps serving afterwards.
#[test]
fn faulty_jobs_are_isolated_from_siblings() {
    let service = DseService::start(DseConfig {
        workers: 2,
        ..DseConfig::default()
    })
    .unwrap();
    let client = service.client();

    // a budget-exhausted job: completes Done with a degradation
    let mut exhausted = fast_spec();
    exhausted.config.fault_plan =
        Some(FaultPlan::new().with_fault("route/iterations", 1, FaultAction::Exhaust));
    // an injected hard error: fails
    let mut broken = fast_spec();
    broken.config.fault_plan =
        Some(FaultPlan::new().with_fault("flow/place", 1, FaultAction::Error));
    // an untouched sibling
    let clean = fast_spec();

    let id_exhausted = client.submit(exhausted).unwrap();
    let id_broken = client.submit(broken).unwrap();
    let id_clean = client.submit(clean).unwrap();

    let injected = |reason: StopReason| {
        matches!(
            reason,
            StopReason::InjectedExhaust | StopReason::InjectedError
        )
    };
    let degraded = client.wait(id_exhausted).unwrap();
    assert!(
        degraded
            .degradation
            .stages
            .iter()
            .any(|s| injected(s.reason)),
        "exhaust fault must surface in the degradation report: {}",
        degraded.degradation
    );
    match client.wait(id_broken) {
        Err(JobError::Failed(msg)) => assert!(msg.contains("injected"), "{msg}"),
        other => panic!("injected error must fail the job, got {other:?}"),
    }
    // the sibling may carry organic degradations (route.iterations is
    // turned way down for test speed) but no injected ones
    let clean_result = client.wait(id_clean).unwrap();
    assert!(
        !clean_result
            .degradation
            .stages
            .iter()
            .any(|s| injected(s.reason)),
        "sibling job must not see a neighbor's faults: {}",
        clean_result.degradation
    );

    // service is still healthy: a fresh submit completes
    let id_again = client.submit(fast_spec()).unwrap();
    assert!(client.wait(id_again).is_ok());
    // the failure was not cached: resubmitting the broken spec retries
    // (and fails again, deterministically)
    let mut broken_again = fast_spec();
    broken_again.config.fault_plan =
        Some(FaultPlan::new().with_fault("flow/place", 1, FaultAction::Error));
    let id_retry = client.submit(broken_again).unwrap();
    assert!(matches!(client.wait(id_retry), Err(JobError::Failed(_))));
    assert_eq!(client.stats().jobs_failed, 2);
    service.shutdown();
}

/// Results persist across service restarts and come back bit-exact.
#[test]
fn persisted_cache_survives_restart_bit_exactly() {
    let dir = scratch("dse_restart");
    let cold_ppa_json;
    {
        let service = DseService::start(DseConfig {
            workers: 1,
            queue_capacity: 8,
            cache_dir: Some(dir.clone()),
            ..DseConfig::default()
        })
        .unwrap();
        let client = service.client();
        let id = client.submit(fast_spec()).unwrap();
        let result = client.wait(id).unwrap();
        assert!(!result.cache_hit);
        cold_ppa_json = ppa_to_json(&result.ppa).emit();
        service.shutdown();
    }
    // a brand-new service over the same directory: only the disk
    // layer can answer
    let service = DseService::start(DseConfig {
        workers: 1,
        queue_capacity: 8,
        cache_dir: Some(dir),
        ..DseConfig::default()
    })
    .unwrap();
    let client = service.client();
    let id = client.submit(fast_spec()).unwrap();
    let warm = client.wait(id).unwrap();
    assert!(warm.cache_hit, "restarted service must hit the disk layer");
    assert_eq!(client.stats().cache.disk_hits, 1);
    assert_eq!(client.stats().flows_executed, 0, "warm hit skips the flow");
    assert_eq!(
        ppa_to_json(&warm.ppa).emit(),
        cold_ppa_json,
        "persisted result must be bit-identical to the cold run"
    );
    service.shutdown();
}

/// Sweep results stream in grid order and the cache dedups the grid's
/// shared points across two sweeps within one service.
#[test]
fn sweep_streams_points_and_dedups_repeats() {
    let service = DseService::start(DseConfig {
        workers: 4,
        ..DseConfig::default()
    })
    .unwrap();
    let client = service.client();
    let sweep = SweepSpec {
        base: fast_spec(),
        axes: vec![
            SweepAxis::new("macro_metals", &["4", "6"]),
            SweepAxis::new("util_logic", &["0.55", "0.65"]),
        ],
    };
    let mut streamed = Vec::new();
    let first = run_sweep(&client, &sweep, |p| streamed.push(p.label.clone())).unwrap();
    assert_eq!(streamed.len(), 4);
    assert_eq!(streamed[0], "macro_metals=4,util_logic=0.55");
    assert!(first.points.iter().all(|p| p.ok().is_some()));
    assert!(!first.pareto.is_empty());
    assert_eq!(client.stats().flows_executed, 4);

    // identical sweep again: all hits, no new executions
    let second = run_sweep(&client, &sweep, |_| {}).unwrap();
    assert!(second
        .points
        .iter()
        .all(|p| p.ok().is_some_and(|r| r.cache_hit)));
    assert_eq!(client.stats().flows_executed, 4);
    // per-point fingerprints bit-identical cold vs warm
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(
            a.ok().map(|r| ppa_fingerprint(&r.ppa)),
            b.ok().map(|r| ppa_fingerprint(&r.ppa))
        );
    }
    service.shutdown();
}

/// The NDJSON protocol end-to-end over in-memory buffers.
#[test]
fn ndjson_protocol_round_trip() {
    let service = DseService::start(DseConfig::default()).unwrap();
    let client = service.client();
    let requests = concat!(
        r#"{"cmd":"ping"}"#,
        "\n",
        r#"{"cmd":"submit","spec":{"flow":"2D","tile":"mini","knobs":{"sizing_rounds":"1","route_iterations":"1"}}}"#,
        "\n",
        r#"{"cmd":"wait","job":1}"#,
        "\n",
        r#"{"cmd":"status","job":1}"#,
        "\n",
        r#"{"cmd":"sweep","spec":{"flow":"2D","tile":"mini","knobs":{"sizing_rounds":"1","route_iterations":"1"}},"axes":[{"knob":"macro_metals","values":["4","6"]}]}"#,
        "\n",
        r#"{"cmd":"stats"}"#,
        "\n",
        "this is not json\n",
        r#"{"cmd":"shutdown"}"#,
        "\n",
        r#"{"cmd":"ping"}"#,
        "\n",
    );
    let mut out = Vec::new();
    serve(Cursor::new(requests), &mut out, &client).unwrap();
    let lines: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();

    // ping, submit, wait, status, 2 sweep points + summary, stats,
    // bad-json error, shutdown — and nothing after shutdown
    assert_eq!(lines.len(), 10);
    assert_eq!(lines[0].get("reply").and_then(Json::as_str), Some("pong"));
    assert_eq!(lines[1].get("job").and_then(Json::as_u64), Some(1));
    let wait = &lines[2];
    assert_eq!(wait.get("ok").and_then(Json::as_bool), Some(true));
    assert!(wait.get("ppa").is_some(), "wait returns the full PPA");
    assert_eq!(
        wait.get("fingerprint").and_then(Json::as_str).map(str::len),
        Some(16)
    );
    assert_eq!(lines[3].get("status").and_then(Json::as_str), Some("done"));
    // sweep: two point lines then the summary
    assert_eq!(
        lines[4].get("point").and_then(Json::as_str),
        Some("macro_metals=4")
    );
    assert_eq!(
        lines[5].get("point").and_then(Json::as_str),
        Some("macro_metals=6")
    );
    assert_eq!(
        lines[6].get("sweep_done").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(lines[6].get("points").and_then(Json::as_u64), Some(2));
    let stats = lines[7].get("stats").expect("stats payload");
    assert!(stats.get("flows_executed").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(lines[8].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(lines[9].get("bye").and_then(Json::as_bool), Some(true));
    service.shutdown();
}

/// Submissions survive queue-full backpressure without deadlock or
/// loss: more jobs than queue slots, all complete.
#[test]
fn bounded_queue_applies_backpressure_without_loss() {
    let service = DseService::start(DseConfig {
        workers: 2,
        queue_capacity: 2,
        ..DseConfig::default()
    })
    .unwrap();
    let client = service.client();
    let ids: Vec<_> = (0..10)
        .map(|i| {
            let mut spec = fast_spec();
            // pairs of identical specs, mixing cold runs and cache
            // hits through the tiny queue
            spec.config.util_logic = 0.55 + 0.01 * f64::from(i / 2);
            client.submit(spec).unwrap()
        })
        .collect();
    let results: Vec<Arc<_>> = ids.into_iter().map(|id| client.wait(id).unwrap()).collect();
    assert_eq!(results.len(), 10);
    assert_eq!(client.stats().flows_executed, 5, "5 distinct specs");
    // each pair's second job is served without a flow run, whether it
    // hit the cache or joined the leader in flight
    assert_eq!(results.iter().filter(|r| r.cache_hit).count(), 5);
    service.shutdown();
}
