//! The stage-graph reuse determinism contract (DESIGN.md §17):
//! a flow re-entered from a worker's stage cache must produce a PPA
//! fingerprint bit-identical to a fully cold run — across worker
//! counts, across sweep-point submission orderings, and with reuse
//! disabled outright. Budget and fault-plan knobs must key every
//! stage and turn stage caching off entirely.

use macro3d::ppa_fingerprint;
use macro3d_dse::sweep::{apply_knob, run_sweep, SweepAxis, SweepSpec};
use macro3d_dse::{DseConfig, DseService, JobSpec, SweepOutcome};
use macro3d_soc::TileConfig;

/// A spec fast enough to run many times in a debug-mode test.
fn fast_spec() -> JobSpec {
    let mut spec = JobSpec::new("Macro-3D", TileConfig::mini());
    spec.config.sizing_rounds = 1;
    spec.config.route.iterations = 1;
    spec
}

fn service(workers: usize, stage_reuse: bool) -> DseService {
    DseService::start(DseConfig {
        workers,
        stage_reuse,
        ..DseConfig::default()
    })
    .unwrap()
}

/// Runs the sweep on a fresh service and returns the outcome plus the
/// service's stage-cache hit counter.
fn run_fresh(sweep: &SweepSpec, workers: usize, stage_reuse: bool) -> (SweepOutcome, u64) {
    let service = service(workers, stage_reuse);
    let client = service.client();
    let outcome = run_sweep(&client, sweep, |_| {}).unwrap();
    let stage_hits = client.stats().stage_hits;
    service.shutdown();
    (outcome, stage_hits)
}

fn fingerprints(outcome: &SweepOutcome) -> Vec<u64> {
    outcome
        .points
        .iter()
        .map(|p| ppa_fingerprint(&p.ok().expect("point succeeded").ppa))
        .collect()
}

fn reuse_depths(outcome: &SweepOutcome) -> Vec<usize> {
    outcome
        .points
        .iter()
        .map(|p| p.ok().expect("point succeeded").reuse_depth)
        .collect()
}

/// The headline contract: a grid over late-stage knobs (route + STA)
/// shares its floorplan/place prefix, so warm points re-enter the
/// flow mid-way — and every fingerprint matches the cold scratch run,
/// at one worker and at eight.
#[test]
fn warm_prefix_fingerprints_match_cold_across_worker_counts() {
    let sweep = SweepSpec {
        base: fast_spec(),
        axes: vec![
            SweepAxis::new("route_iterations", &["1", "2"]),
            SweepAxis::new("sizing_rounds", &["0", "1"]),
        ],
    };
    let (serial, serial_hits) = run_fresh(&sweep, 1, true);
    let (wide, _) = run_fresh(&sweep, 8, true);
    let (cold, cold_hits) = run_fresh(&sweep, 1, false);

    assert!(
        serial_hits > 0,
        "a route/STA-only grid on one worker must reuse the place prefix"
    );
    assert_eq!(cold_hits, 0, "reuse off means no stage hits");
    assert!(
        reuse_depths(&serial).iter().any(|&d| d >= 2),
        "varying only route/STA knobs must re-enter after place, got {:?}",
        reuse_depths(&serial)
    );
    assert!(reuse_depths(&cold).iter().all(|&d| d == 0));

    let fp_cold = fingerprints(&cold);
    assert_eq!(
        fingerprints(&serial),
        fp_cold,
        "warm results must be bit-identical to the cold scratch run"
    );
    assert_eq!(
        fingerprints(&wide),
        fp_cold,
        "worker count must not change any result"
    );
}

/// Submission order is a pure scheduling concern: a grid submitted in
/// reversed grid order (different cache temperatures per point)
/// produces the same per-point fingerprints.
#[test]
fn point_ordering_never_changes_results() {
    let axes = vec![
        SweepAxis::new("sizing_rounds", &["0", "1"]),
        SweepAxis::new("util_logic", &["0.55", "0.6"]),
    ];
    let forward = SweepSpec {
        base: fast_spec(),
        axes: axes.clone(),
    };
    let reversed = SweepSpec {
        base: fast_spec(),
        axes: axes
            .into_iter()
            .map(|a| SweepAxis {
                knob: a.knob,
                values: a.values.into_iter().rev().collect(),
            })
            .collect(),
    };
    let (f, _) = run_fresh(&forward, 2, true);
    let (r, _) = run_fresh(&reversed, 2, true);
    // same grid, mirrored labels: compare point-by-point via label
    let mut by_label: Vec<(String, u64)> = f
        .points
        .iter()
        .zip(fingerprints(&f))
        .map(|(p, fp)| (p.label.clone(), fp))
        .collect();
    by_label.sort();
    let mut by_label_rev: Vec<(String, u64)> = r
        .points
        .iter()
        .zip(fingerprints(&r))
        .map(|(p, fp)| (p.label.clone(), fp))
        .collect();
    by_label_rev.sort();
    assert_eq!(by_label, by_label_rev);
}

/// Budget and fault-plan knobs key every stage (no accidental prefix
/// sharing with unbudgeted runs) and disable stage caching for the
/// runs that carry them — a budgeted stage can cut work short, so its
/// boundary artifacts must never seed an unbudgeted run.
#[test]
fn budget_and_fault_knobs_key_stages_and_disable_reuse() {
    let base = fast_spec();
    let mut budgeted = fast_spec();
    apply_knob(&mut budgeted, "budget_wall_s", "10000").unwrap();
    let mut faulted = fast_spec();
    apply_knob(&mut faulted, "fault_site", "sta/sizing_rounds").unwrap();

    let kb = base.stage_keys();
    for other in [&budgeted, &faulted] {
        let ko = other.stage_keys();
        for stage in 0..macro3d::stage::NUM_STAGES {
            assert_ne!(
                kb.prefix[stage], ko.prefix[stage],
                "budget/fault must change the key of stage {stage}"
            );
        }
    }

    // two budgeted points sharing every upstream knob would reuse the
    // place prefix if caching were allowed; assert it is not
    let sweep = SweepSpec {
        base: budgeted,
        axes: vec![SweepAxis::new("sizing_rounds", &["0", "1"])],
    };
    let (outcome, stage_hits) = run_fresh(&sweep, 1, true);
    assert_eq!(stage_hits, 0, "budgeted runs must not use the stage cache");
    assert!(reuse_depths(&outcome).iter().all(|&d| d == 0));

    // a fault-exhaust point completes degraded, deterministically,
    // and never seeds the cache for its healthy sibling
    let sweep = SweepSpec {
        base: fast_spec(),
        axes: vec![SweepAxis::new("fault_site", &["sta/sizing_rounds", "none"])],
    };
    let (with_reuse, _) = run_fresh(&sweep, 1, true);
    let (no_reuse, _) = run_fresh(&sweep, 1, false);
    assert_eq!(fingerprints(&with_reuse), fingerprints(&no_reuse));
    assert_eq!(reuse_depths(&with_reuse)[0], 0, "faulted point stays cold");
}

/// Seeded pseudo-random grids (splitmix64, no external RNG): random
/// knob combinations submitted against a warm stage cache match a
/// scratch service point-for-point. Covers the 2D baseline too, so
/// both flow families exercise snapshot restore.
#[test]
fn random_knob_grids_are_reuse_invariant() {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    let mut state = 0xc0ffee_u64;
    for flow in ["Macro-3D", "2D"] {
        // a small random grid biased toward shared prefixes: one
        // early-stage knob (util_logic), two late-stage knobs
        let r = splitmix64(&mut state);
        let util = ["0.55", "0.6"][(r & 1) as usize];
        let rounds: Vec<&str> = match (r >> 1) & 1 {
            0 => vec!["0", "1"],
            _ => vec!["1", "2"],
        };
        let mut base = fast_spec();
        base.flow = flow.to_string();
        apply_knob(&mut base, "util_logic", util).unwrap();
        let sweep = SweepSpec {
            base,
            axes: vec![
                SweepAxis::new("sizing_rounds", &rounds),
                SweepAxis::new("sta_mode", &["probe", "parametric"]),
            ],
        };
        let (warm, hits) = run_fresh(&sweep, 1, true);
        let (cold, _) = run_fresh(&sweep, 1, false);
        assert!(hits > 0, "{flow}: grid must hit the stage cache");
        assert_eq!(
            fingerprints(&warm),
            fingerprints(&cold),
            "{flow}: warm grid diverged from scratch run"
        );
    }
}
