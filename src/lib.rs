//! Workspace umbrella crate for the Macro-3D reproduction.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). It re-exports the
//! member crates so examples can use one coherent namespace.
//!
//! See the [`macro3d`] crate for the flows themselves, and `DESIGN.md`
//! at the repository root for the system inventory.

pub use macro3d;
pub use macro3d_extract as extract;
pub use macro3d_geom as geom;
pub use macro3d_netlist as netlist;
pub use macro3d_place as place;
pub use macro3d_route as route;
pub use macro3d_soc as soc;
pub use macro3d_sram as sram;
pub use macro3d_sta as sta;
pub use macro3d_tech as tech;
