//! The Compact-2D (C2D) baseline flow \[Ku et al., ISPD'18\] as
//! characterised in the paper's Sec. III.
//!
//! C2D avoids S2D's shrunk geometries (which need a next-node P&R
//! engine) by *enlarging the floorplan* 2× instead: the unshrunk
//! design is placed and routed on a footprint twice the F2F target,
//! with macro blockages scaled up accordingly, while the estimated
//! interconnect parasitics per unit length are scaled by 1/√2 to
//! approximate the target stack. Cell locations are then mapped
//! linearly (×1/√2) into the F2F footprint, followed by the same tier
//! partitioning / overlap fixing / via planning / re-route tail as
//! S2D — plus the post-tier-partitioning optimization C2D adds.

use crate::build_cache::{cached_combined_beol, cached_stack, try_cached_mol_floorplan};
use crate::error::{flow_gate, FlowError};
use crate::flow::{
    area_budget, finish_design, macro_obstacles, route_pins, sta_constraints, FlowConfig,
    ImplementedDesign, StageTimer,
};
use crate::s2d::{partition_and_finalize, S2dDiagnostics};
use macro3d_geom::Dbu;
use macro3d_netlist::{InstId, NetId};
use macro3d_place::floorplan::die_for_area;
use macro3d_place::{BlockageKind, Floorplan, PortPlan};
use macro3d_route::{RouteRequest, Router};
use macro3d_soc::TileNetlist;
use macro3d_sta::{
    analyze_with, clock_arrivals, upsize_critical_path, StaInput, StaMode, StaSession,
};
use macro3d_tech::stack::DieRole;
use macro3d_tech::Corner;

/// Runs the C2D flow.
///
/// `reuse` is forwarded to the shared [`finish_design`] tail; like
/// S2D, C2D's stage-1 pseudo-2D run consumes the route/STA knobs, so
/// its stage keys are coarse and prefix reuse only triggers for
/// fully-identical upstream state (see `crate::stage`).
///
/// # Errors
///
/// Returns [`FlowError::Floorplan`] if macro packing fails and
/// [`FlowError::Injected`] when the active fault plan injects an
/// error at a flow gate.
pub(crate) fn implement(
    tile: &TileNetlist,
    cfg: &FlowConfig,
    reuse: Option<&mut crate::stage::StageReuse<'_>>,
) -> Result<(ImplementedDesign, S2dDiagnostics), FlowError> {
    let mut timer = StageTimer::new();
    let mut design = tile.design.clone();
    let constraints = sta_constraints(tile);
    let budget = area_budget(&design, cfg);
    let lib = design.library().clone();

    let die_3d = die_for_area(budget.a3d_um2, 1.0, lib.row_height(), lib.site_width());
    let die_2x = die_for_area(
        2.0 * budget.a3d_um2,
        1.0,
        lib.row_height(),
        lib.site_width(),
    );
    let halo = Dbu::from_um(cfg.halo_um);
    let up = (die_2x.width().0 as f64 / die_3d.width().0 as f64).max(1.0);

    // macro floorplans in the target (3D) space, MoL assignment
    // (shared with Macro-3D and MoL S2D through the build cache)
    flow_gate("flow/floorplan")?;
    let mol = try_cached_mol_floorplan(&design, die_3d, halo, cfg.util_macro, cfg.halo_um)?;
    let mut macro_placements = mol.0.clone();
    macro_placements.extend_from_slice(&mol.1);

    // --- stage 1: enlarged pseudo-2D design --------------------------
    // blockages scaled up by the enlargement factor
    let mut fp_2x = Floorplan::new(die_2x, lib.row_height(), lib.site_width());
    for mp in &macro_placements {
        fp_2x.add_blockage(mp.rect.scale(up).inflate(halo), BlockageKind::Partial(0.5));
        let mut scaled = *mp;
        scaled.rect = mp.rect.scale(up);
        fp_2x.macros.push(scaled);
    }
    fp_2x.quantize_partial_blockages(Dbu::from_um(cfg.partial_blockage_period_um));

    let ports_2x = PortPlan::assign(&design, die_2x);
    timer.mark("floorplan");
    flow_gate("flow/place")?;
    let (mut placement, tree) = crate::flow::place_pipeline(
        &mut design,
        &fp_2x,
        &ports_2x,
        &constraints,
        cfg,
        &mut timer,
    );

    let stack_2d = cached_stack(cfg.logic_metals, DieRole::Logic);
    let obstacles = macro_obstacles(
        &design,
        &fp_2x,
        cfg.logic_metals,
        stack_2d.num_layers(),
        false,
    );
    let nets = route_pins(
        &design,
        &placement,
        &ports_2x,
        cfg.logic_metals,
        stack_2d.num_layers(),
        false,
    );
    let routed_stage1 = Router::new(
        &RouteRequest {
            die: die_2x,
            stack: &stack_2d,
            obstacles: &obstacles,
            nets: &nets,
            num_nets: design.num_nets(),
        },
        &cfg.route,
    )
    .route();
    timer.mark("c2d_stage1_route");
    let mut parasitics = crate::flow::extract_all(
        &design,
        &placement,
        &ports_2x,
        &stack_2d,
        &routed_stage1,
        &constraints,
        Corner::signoff(),
        &cfg.parallelism,
    );
    // C2D's per-unit-length parasitic scaling: 1/sqrt(2) on R and C
    let s = 1.0 / 2.0_f64.sqrt();
    for p in &mut parasitics {
        let old_wire = p.wire_cap_ff;
        p.wire_cap_ff *= s;
        p.total_res_ohm *= s;
        for e in &mut p.elmore_ps {
            *e *= s * s;
        }
        p.driver_load_ff -= old_wire - p.wire_cap_ff;
    }
    let clock_stage1 = clock_arrivals(&design, &tree, &parasitics, Corner::signoff());
    // parametric mode: one StaSession across the sizing rounds,
    // re-timing only the cones downstream of resized gates
    let mut session = match cfg.sta_mode {
        StaMode::Parametric => Some(StaSession::new(&StaInput {
            design: &design,
            parasitics: &parasitics,
            routed: Some(&routed_stage1),
            constraints: &constraints,
            clock: &clock_stage1,
            corner: Corner::signoff(),
        })),
        StaMode::Probe => None,
    };
    let mut touched: Vec<NetId> = Vec::new();
    for round in 0..cfg.sizing_rounds {
        // budget checkpoint: stopping keeps the current valid sizing
        if let macro3d_par::Checkpoint::Stop(reason) = macro3d_par::checkpoint("sta/sizing_rounds")
        {
            macro3d_par::note_degradation(
                "sta/sizing_rounds",
                reason,
                format!(
                    "stopped after {round} of {} sizing rounds",
                    cfg.sizing_rounds
                ),
            );
            break;
        }
        let input = StaInput {
            design: &design,
            parasitics: &parasitics,
            routed: Some(&routed_stage1),
            constraints: &constraints,
            clock: &clock_stage1,
            corner: Corner::signoff(),
        };
        let t = match &mut session {
            Some(s) if round > 0 => s.update(&input, &touched, &cfg.parallelism),
            Some(s) => s.analyze(&input, &cfg.parallelism),
            None => analyze_with(&input, &cfg.parallelism, StaMode::Probe),
        };
        let changes = upsize_critical_path(&mut design, &t);
        if changes.is_empty() {
            break;
        }
        touched = macro3d_sta::opt::apply_sizing_to_parasitics(&design, &changes, &mut parasitics);
    }
    timer.mark("c2d_stage1_sizing");

    // --- stage 2: linear mapping into the F2F footprint --------------
    let down = 1.0 / up;
    for i in design.inst_ids() {
        if !design.is_macro(i) {
            placement.pos[i.index()] = placement.pos[i.index()].scale(down);
        }
    }
    let insts: Vec<InstId> = design.inst_ids().collect();
    let _ = insts;

    // --- stage 3: tier partition + overlap fix + via plan ------------
    let diag = partition_and_finalize(
        &mut design,
        &mut placement,
        &macro_placements,
        die_3d,
        halo,
        &tree,
        cfg,
    );
    timer.mark("c2d_partition_fix");

    // --- stage 4: re-route on the combined stack with C2D's
    // post-tier-partitioning optimization enabled ----------------------
    let combined = cached_combined_beol(cfg.logic_metals, cfg.macro_metals);
    let mut fp_final = Floorplan::new(die_3d, lib.row_height(), lib.site_width());
    for mp in &macro_placements {
        fp_final.add_macro(*mp, DieRole::Logic, halo);
    }
    let ports = PortPlan::assign(&design, die_3d);

    let imp = finish_design(
        design,
        placement,
        ports,
        fp_final,
        combined.stack().clone(),
        cfg.logic_metals,
        tree,
        constraints,
        cfg,
        true,
        cfg.sizing_rounds, // post-partition optimization (C2D's addition)
        timer,
        reuse,
    )?;
    Ok((imp, diag))
}
