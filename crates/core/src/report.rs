//! Uniform PPA reporting across flows.

use crate::flow::ImplementedDesign;
use macro3d_sta::{PowerReport, TimingReport};
use std::fmt;

/// The metrics the paper's tables report, for one implemented design.
#[derive(Clone, Debug)]
pub struct PpaResult {
    /// Flow label (e.g. `"2D"`, `"Macro-3D"`).
    pub flow: String,
    /// Max clock frequency, MHz (Tables I–III).
    pub fclk_mhz: f64,
    /// Energy per cycle at max frequency, fJ (Tables I–III).
    pub emean_fj: f64,
    /// Die footprint, mm² (per die for 3D designs).
    pub footprint_mm2: f64,
    /// Standard-cell area, mm² (Table II).
    pub logic_cell_area_mm2: f64,
    /// Total routed wirelength, m (Table II).
    pub total_wirelength_m: f64,
    /// F2F bump count (Tables I–III).
    pub f2f_bumps: u64,
    /// Total pin capacitance, nF (Table II).
    pub cpin_nf: f64,
    /// Total wire capacitance, nF (Table II).
    pub cwire_nf: f64,
    /// Max clock-tree depth (Table II).
    pub clock_tree_depth: usize,
    /// Critical-path wirelength, mm (Table II).
    pub crit_path_wl_mm: f64,
    /// Total metal area (footprint × layers, summed over dies), mm²
    /// (Table III).
    pub metal_area_mm2: f64,
    /// Full timing report.
    pub timing: TimingReport,
    /// Full power report.
    pub power: PowerReport,
    /// Residual routing overflow (quality check).
    pub route_overflow: f64,
    /// Wall-clock per flow stage, in execution order.
    pub stage_times: crate::flow::StageTimes,
}

impl PpaResult {
    /// Assembles the result from an implemented design.
    pub fn from_impl(flow: impl Into<String>, imp: &ImplementedDesign) -> Self {
        let footprint_mm2 = imp.fp.die().size().area_mm2();
        let metal_area_mm2 = footprint_mm2 * imp.stack.num_layers() as f64;
        PpaResult {
            flow: flow.into(),
            fclk_mhz: imp.timing.fclk_mhz,
            emean_fj: imp.power.emean_fj_per_cycle,
            footprint_mm2,
            logic_cell_area_mm2: crate::flow::logic_cell_area_mm2(&imp.design),
            total_wirelength_m: imp.routed.total_wirelength_um * 1e-6,
            f2f_bumps: imp.routed.f2f_bumps,
            cpin_nf: imp.power.cpin_total_nf,
            cwire_nf: imp.power.cwire_total_nf,
            clock_tree_depth: imp.timing.clock_tree_depth,
            crit_path_wl_mm: imp.timing.crit_path_wirelength_mm,
            metal_area_mm2,
            timing: imp.timing.clone(),
            power: imp.power.clone(),
            route_overflow: imp.routed.overflow,
            stage_times: imp.stage_times.clone(),
        }
    }

    /// Percentage delta of a metric versus a baseline value
    /// (`+` = this result is larger).
    pub fn delta_pct(ours: f64, baseline: f64) -> f64 {
        if baseline == 0.0 {
            0.0
        } else {
            100.0 * (ours - baseline) / baseline
        }
    }
}

impl fmt::Display for PpaResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.flow)?;
        writeln!(f, "  fclk            {:8.1} MHz", self.fclk_mhz)?;
        writeln!(f, "  Emean           {:8.1} fJ/cycle", self.emean_fj)?;
        writeln!(f, "  footprint       {:8.3} mm^2", self.footprint_mm2)?;
        writeln!(f, "  logic cells     {:8.3} mm^2", self.logic_cell_area_mm2)?;
        writeln!(f, "  wirelength      {:8.3} m", self.total_wirelength_m)?;
        writeln!(f, "  F2F bumps       {:8}", self.f2f_bumps)?;
        writeln!(f, "  Cpin            {:8.4} nF", self.cpin_nf)?;
        writeln!(f, "  Cwire           {:8.4} nF", self.cwire_nf)?;
        writeln!(f, "  clk-tree depth  {:8}", self.clock_tree_depth)?;
        write!(f, "  crit-path WL    {:8.3} mm", self.crit_path_wl_mm)
    }
}

/// Renders a comparison table (rows = metrics, columns = flows) in
/// the style of the paper's tables.
pub fn comparison_table(results: &[&PpaResult]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "{:<22}", "metric");
    for r in results {
        let _ = write!(s, "{:>16}", r.flow);
    }
    let _ = writeln!(s);
    let mut row = |label: &str, get: &dyn Fn(&PpaResult) -> String| {
        let _ = write!(s, "{label:<22}");
        for r in results {
            let _ = write!(s, "{:>16}", get(r));
        }
        let _ = writeln!(s);
    };
    row("fclk [MHz]", &|r| format!("{:.0}", r.fclk_mhz));
    row("Emean [fJ/cycle]", &|r| format!("{:.1}", r.emean_fj));
    row("Afootprint [mm2]", &|r| format!("{:.2}", r.footprint_mm2));
    row("Alogic-cells [mm2]", &|r| {
        format!("{:.3}", r.logic_cell_area_mm2)
    });
    row("wirelength [m]", &|r| {
        format!("{:.3}", r.total_wirelength_m)
    });
    row("F2F bumps", &|r| format!("{}", r.f2f_bumps));
    row("Cpin [nF]", &|r| format!("{:.4}", r.cpin_nf));
    row("Cwire [nF]", &|r| format!("{:.4}", r.cwire_nf));
    row("clk-tree depth", &|r| format!("{}", r.clock_tree_depth));
    row("crit-path WL [mm]", &|r| {
        format!("{:.3}", r.crit_path_wl_mm)
    });
    row("Ametal [mm2]", &|r| format!("{:.2}", r.metal_area_mm2));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_pct() {
        assert!((PpaResult::delta_pct(470.0, 390.0) - 20.5).abs() < 0.1);
        assert_eq!(PpaResult::delta_pct(1.0, 0.0), 0.0);
        assert!((PpaResult::delta_pct(0.60, 1.20) + 50.0).abs() < 1e-9);
    }
}
