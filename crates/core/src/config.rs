//! Validated construction of [`FlowConfig`].
//!
//! `FlowConfig` is plain data and can be built literally, but most
//! call sites want the defaults plus a couple of overrides — and a
//! typo like `util_logic = 60.0` (percent instead of fraction) used
//! to surface only as a nonsensical floorplan. The builder checks
//! every range at [`FlowConfigBuilder::build`] time and returns a
//! [`ConfigError`] naming the offending field instead.

use crate::flow::FlowConfig;
use macro3d_par::{FaultPlan, FlowBudget, Parallelism};
use macro3d_place::GlobalPlaceConfig;
use macro3d_route::RouteConfig;
use macro3d_sta::{CtsConfig, StaMode};
use std::fmt;

/// A rejected [`FlowConfig`] field (see [`FlowConfigBuilder::build`]).
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A utilization target fell outside `(0, 1]`.
    Utilization {
        /// Offending field.
        field: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A metal stack was configured with zero layers.
    ZeroMetalLayers {
        /// Offending field.
        field: &'static str,
    },
    /// A length or period that must be strictly positive was not.
    NonPositive {
        /// Offending field.
        field: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A value that must be non-negative was negative.
    Negative {
        /// Offending field.
        field: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A parallelism chunk size of zero (no work per batch).
    ZeroChunkSize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Utilization { field, value } => {
                write!(f, "{field} must be in (0, 1], got {value}")
            }
            ConfigError::ZeroMetalLayers { field } => {
                write!(f, "{field} must be at least 1 metal layer")
            }
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be > 0, got {value}")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be >= 0, got {value}")
            }
            ConfigError::ZeroChunkSize => {
                write!(f, "parallelism chunk_size must be >= 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builds a [`FlowConfig`] with range validation (see the module
/// docs). Obtain one via [`FlowConfig::builder`].
///
/// # Examples
///
/// ```
/// use macro3d::FlowConfig;
///
/// let cfg = FlowConfig::builder()
///     .macro_metals(4)
///     .util_logic(0.65)
///     .threads(4)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.macro_metals, 4);
///
/// let err = FlowConfig::builder().util_logic(65.0).build();
/// assert!(err.is_err());
/// ```
#[derive(Clone, Debug)]
pub struct FlowConfigBuilder {
    cfg: FlowConfig,
}

impl FlowConfigBuilder {
    /// Starts from [`FlowConfig::default`].
    pub fn new() -> Self {
        FlowConfigBuilder {
            cfg: FlowConfig::default(),
        }
    }

    /// Metal layers on the logic die.
    pub fn logic_metals(mut self, n: usize) -> Self {
        self.cfg.logic_metals = n;
        self
    }

    /// Metal layers on the macro die.
    pub fn macro_metals(mut self, n: usize) -> Self {
        self.cfg.macro_metals = n;
        self
    }

    /// Standard-cell region utilization target, in `(0, 1]`.
    pub fn util_logic(mut self, u: f64) -> Self {
        self.cfg.util_logic = u;
        self
    }

    /// Macro packing utilization target, in `(0, 1]`.
    pub fn util_macro(mut self, u: f64) -> Self {
        self.cfg.util_macro = u;
        self
    }

    /// Macro keep-out halo, µm.
    pub fn halo_um(mut self, um: f64) -> Self {
        self.cfg.halo_um = um;
        self
    }

    /// Repeater insertion threshold, µm of HPWL.
    pub fn repeater_max_len_um(mut self, um: f64) -> Self {
        self.cfg.repeater_max_len_um = um;
        self
    }

    /// Post-route sizing iterations.
    pub fn sizing_rounds(mut self, rounds: usize) -> Self {
        self.cfg.sizing_rounds = rounds;
        self
    }

    /// Minimum-period engine ([`StaMode::Parametric`] by default;
    /// [`StaMode::Probe`] keeps the legacy binary search).
    pub fn sta_mode(mut self, mode: StaMode) -> Self {
        self.cfg.sta_mode = mode;
        self
    }

    /// Partial-blockage quantization period, µm.
    pub fn partial_blockage_period_um(mut self, um: f64) -> Self {
        self.cfg.partial_blockage_period_um = um;
        self
    }

    /// Replaces the router settings wholesale.
    pub fn route(mut self, route: RouteConfig) -> Self {
        self.cfg.route = route;
        self
    }

    /// Replaces the CTS settings wholesale.
    pub fn cts(mut self, cts: CtsConfig) -> Self {
        self.cfg.cts = cts;
        self
    }

    /// Replaces the global-placement settings wholesale.
    pub fn place(mut self, place: GlobalPlaceConfig) -> Self {
        self.cfg.place = place;
        self
    }

    /// Selects the global-placement backend: recursive bisection
    /// (default) or the ePlace-style analytical placer. The analytical
    /// backend also switches base legalization from Tetris first-fit
    /// to Abacus cluster collapse.
    pub fn placer(mut self, backend: macro3d_place::PlacerBackend) -> Self {
        self.cfg.place.backend = backend;
        self
    }

    /// Sets the parallelism knob for *every* engine: extraction and
    /// STA (`FlowConfig::parallelism`), the batched router
    /// (`RouteConfig::parallelism`), and the fork-join placer
    /// (`GlobalPlaceConfig::parallelism`).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.cfg.parallelism = par;
        self.cfg.route.parallelism = par;
        self.cfg.place.parallelism = par;
        self
    }

    /// Shorthand for [`Self::parallelism`] keeping the default chunk
    /// sizes: `0` = all hardware threads, `1` = serial.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.parallelism.threads = threads;
        self.cfg.route.parallelism.threads = threads;
        self.cfg.place.parallelism.threads = threads;
        self
    }

    /// Observability level for the flow run (off / summary / full).
    pub fn obs(mut self, obs: macro3d_obs::ObsConfig) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Stage budget: wall-clock deadline and per-site iteration caps.
    /// Exhaustion degrades gracefully (best-so-far results, reported
    /// in `FlowOutcome::degradation`) — it never errors.
    pub fn budget(mut self, budget: FlowBudget) -> Self {
        self.cfg.budget = budget;
        self
    }

    /// Deterministic fault plan for robustness testing: injects
    /// exhaustion or errors at named budget checkpoints.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// Validates every range and returns the config.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] encountered: utilizations
    /// (flow and router) outside `(0, 1]`, zero metal layers, zero or
    /// negative lengths/periods, or a zero parallelism chunk size.
    pub fn build(self) -> Result<FlowConfig, ConfigError> {
        let cfg = self.cfg;
        for (field, value) in [
            ("util_logic", cfg.util_logic),
            ("util_macro", cfg.util_macro),
            ("route.utilization", cfg.route.utilization),
        ] {
            if !(value > 0.0 && value <= 1.0) {
                return Err(ConfigError::Utilization { field, value });
            }
        }
        for (field, value) in [
            ("logic_metals", cfg.logic_metals),
            ("macro_metals", cfg.macro_metals),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroMetalLayers { field });
            }
        }
        for (field, value) in [
            ("repeater_max_len_um", cfg.repeater_max_len_um),
            ("partial_blockage_period_um", cfg.partial_blockage_period_um),
            ("route.gcell_um", cfg.route.gcell_um),
        ] {
            if value.is_nan() || value <= 0.0 {
                return Err(ConfigError::NonPositive { field, value });
            }
        }
        if cfg.halo_um.is_nan() || cfg.halo_um < 0.0 {
            return Err(ConfigError::Negative {
                field: "halo_um",
                value: cfg.halo_um,
            });
        }
        if cfg.parallelism.chunk_size == 0 || cfg.route.parallelism.chunk_size == 0 {
            return Err(ConfigError::ZeroChunkSize);
        }
        Ok(cfg)
    }
}

impl Default for FlowConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let cfg = FlowConfig::builder().build().expect("defaults are valid");
        assert_eq!(cfg.logic_metals, 6);
        assert_eq!(cfg.sizing_rounds, 8);
    }

    #[test]
    fn rejects_out_of_range_utilization() {
        for bad in [0.0, -0.2, 1.5, f64::NAN] {
            let err = FlowConfig::builder().util_logic(bad).build().unwrap_err();
            assert!(
                matches!(
                    err,
                    ConfigError::Utilization {
                        field: "util_logic",
                        ..
                    }
                ),
                "{bad}: {err}"
            );
        }
        assert!(FlowConfig::builder().util_macro(1.0).build().is_ok());
    }

    #[test]
    fn rejects_zero_metals_and_bad_lengths() {
        assert!(matches!(
            FlowConfig::builder().logic_metals(0).build().unwrap_err(),
            ConfigError::ZeroMetalLayers {
                field: "logic_metals"
            }
        ));
        assert!(matches!(
            FlowConfig::builder().macro_metals(0).build().unwrap_err(),
            ConfigError::ZeroMetalLayers {
                field: "macro_metals"
            }
        ));
        assert!(matches!(
            FlowConfig::builder()
                .repeater_max_len_um(0.0)
                .build()
                .unwrap_err(),
            ConfigError::NonPositive { .. }
        ));
        assert!(matches!(
            FlowConfig::builder().halo_um(-1.0).build().unwrap_err(),
            ConfigError::Negative {
                field: "halo_um",
                ..
            }
        ));
    }

    #[test]
    fn rejects_bad_route_config() {
        let route = RouteConfig {
            utilization: 2.0,
            ..RouteConfig::default()
        };
        let err = FlowConfig::builder().route(route).build().unwrap_err();
        assert!(matches!(
            err,
            ConfigError::Utilization {
                field: "route.utilization",
                ..
            }
        ));

        let mut route = RouteConfig::default();
        route.parallelism.chunk_size = 0;
        assert_eq!(
            FlowConfig::builder().route(route).build().unwrap_err(),
            ConfigError::ZeroChunkSize
        );
    }

    #[test]
    fn parallelism_reaches_both_knobs() {
        let par = Parallelism::threads(3).with_chunk_size(5);
        let cfg = FlowConfig::builder()
            .parallelism(par)
            .build()
            .expect("valid");
        assert_eq!(cfg.parallelism, par);
        assert_eq!(cfg.route.parallelism, par);
        assert_eq!(cfg.place.parallelism, par);

        let cfg = FlowConfig::builder().threads(7).build().expect("valid");
        assert_eq!(cfg.parallelism.threads, 7);
        assert_eq!(cfg.route.parallelism.threads, 7);
        assert_eq!(cfg.place.parallelism.threads, 7);
        // chunk sizes keep their defaults
        assert_eq!(
            cfg.parallelism.chunk_size,
            Parallelism::default().chunk_size
        );
    }

    #[test]
    fn errors_render_the_field() {
        let err = FlowConfig::builder().util_logic(65.0).build().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("util_logic") && msg.contains("65"), "{msg}");
    }

    #[test]
    fn sta_mode_defaults_parametric_and_builder_overrides() {
        let cfg = FlowConfig::builder().build().expect("valid");
        assert_eq!(cfg.sta_mode, StaMode::Parametric);
        let cfg = FlowConfig::builder()
            .sta_mode(StaMode::Probe)
            .build()
            .expect("valid");
        assert_eq!(cfg.sta_mode, StaMode::Probe);
    }

    #[test]
    fn obs_defaults_off_and_builder_sets_it() {
        let cfg = FlowConfig::builder().build().expect("valid");
        assert!(cfg.obs.is_off());
        let cfg = FlowConfig::builder()
            .obs(macro3d_obs::ObsConfig::full())
            .build()
            .expect("valid");
        assert_eq!(cfg.obs, macro3d_obs::ObsConfig::full());
    }
}
