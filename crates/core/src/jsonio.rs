//! JSON codecs for the flow's public data types.
//!
//! The DSE service persists results on disk, hashes job specs into
//! cache keys, and speaks newline-delimited JSON to clients — all of
//! which needs [`FlowConfig`], [`PpaResult`], [`DegradationReport`]
//! and [`TileConfig`] to serialize. This build environment cannot
//! fetch serde, so the codecs are hand-rolled over the shared
//! [`macro3d_json::Json`] value type, with two contracts:
//!
//! * **Exact round trip.** `from_json(to_json(x))` reconstructs `x`
//!   field-for-field: floats go through shortest-round-trip tokens,
//!   integers through exact decimal tokens, durations through
//!   nanosecond counts. This is what makes cold-vs-warm cache results
//!   bit-identical.
//! * **Deterministic emission.** Fields are emitted in declaration
//!   order and the writer is canonical, so the emitted string itself
//!   is a content key: [`ppa_fingerprint`] and the DSE spec hash are
//!   FNV-1a over emitted JSON, the same hashing discipline as
//!   [`crate::build_cache::design_fingerprint`].
//!
//! Decoders are strict — a missing or mistyped field is a
//! [`CodecError`] naming the path — but tolerate *extra* fields, so
//! records written by a newer minor revision still parse (the
//! persisted result cache additionally embeds the crate version in
//! its keys; see `DESIGN.md` §16).

use crate::flow::{FlowConfig, StageTimes};
use crate::report::PpaResult;
use macro3d_json::Json;
use macro3d_netlist::NetId;
use macro3d_obs::{ObsConfig, ObsLevel};
use macro3d_par::{
    DegradationReport, FaultAction, FaultPlan, FlowBudget, Parallelism, StageDegradation,
    StopReason,
};
use macro3d_place::{AnalyticalConfig, GlobalPlaceConfig, PlacerBackend};
use macro3d_route::RouteConfig;
use macro3d_soc::TileConfig;
use macro3d_sta::{CtsConfig, PowerReport, StaMode, TimingReport};
use std::fmt;
use std::time::Duration;

/// A malformed or mistyped JSON document (decode direction only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// A decode error with a caller-supplied message (public so
    /// downstream codecs building on these — e.g. the DSE job spec —
    /// can speak the same error type).
    pub fn new(msg: impl Into<String>) -> Self {
        CodecError(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit over raw bytes — the repo's one content-hash
/// primitive (shared with
/// [`crate::build_cache::design_fingerprint`]).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- decode helpers ----

fn get<'a>(v: &'a Json, key: &str) -> Result<&'a Json, CodecError> {
    v.get(key)
        .ok_or_else(|| CodecError::new(format!("missing field '{key}'")))
}

fn f64_of(v: &Json, key: &str) -> Result<f64, CodecError> {
    let field = get(v, key)?;
    if field.is_null() {
        // non-finite floats encode as null; NaN is the only value the
        // repo ever produces there (e.g. 0/0 ratios in degenerate runs)
        return Ok(f64::NAN);
    }
    field
        .as_f64()
        .ok_or_else(|| CodecError::new(format!("field '{key}' is not a number")))
}

fn usize_of(v: &Json, key: &str) -> Result<usize, CodecError> {
    get(v, key)?
        .as_usize()
        .ok_or_else(|| CodecError::new(format!("field '{key}' is not a non-negative integer")))
}

fn u64_of(v: &Json, key: &str) -> Result<u64, CodecError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| CodecError::new(format!("field '{key}' is not a non-negative integer")))
}

fn u32_of(v: &Json, key: &str) -> Result<u32, CodecError> {
    u64_of(v, key)?
        .try_into()
        .map_err(|_| CodecError::new(format!("field '{key}' exceeds u32")))
}

fn bool_of(v: &Json, key: &str) -> Result<bool, CodecError> {
    get(v, key)?
        .as_bool()
        .ok_or_else(|| CodecError::new(format!("field '{key}' is not a boolean")))
}

fn str_of<'a>(v: &'a Json, key: &str) -> Result<&'a str, CodecError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| CodecError::new(format!("field '{key}' is not a string")))
}

fn arr_of<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], CodecError> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| CodecError::new(format!("field '{key}' is not an array")))
}

// ---- Parallelism ----

fn parallelism_to_json(p: &Parallelism) -> Json {
    Json::obj()
        .field("threads", Json::from_usize(p.threads))
        .field("chunk_size", Json::from_usize(p.chunk_size))
}

fn parallelism_from_json(v: &Json) -> Result<Parallelism, CodecError> {
    Ok(Parallelism {
        threads: usize_of(v, "threads")?,
        chunk_size: usize_of(v, "chunk_size")?,
    })
}

// ---- RouteConfig / CtsConfig / GlobalPlaceConfig ----

fn route_config_to_json(r: &RouteConfig) -> Json {
    Json::obj()
        .field("gcell_um", Json::from_f64(r.gcell_um))
        .field("utilization", Json::from_f64(r.utilization))
        .field("iterations", Json::from_usize(r.iterations))
        .field("via_cost", Json::from_f64(r.via_cost))
        .field("max_net_degree", Json::from_usize(r.max_net_degree))
        .field(
            "f2f_pitch_um",
            r.f2f_pitch_um.map_or(Json::Null, Json::from_f64),
        )
        .field("parallelism", parallelism_to_json(&r.parallelism))
}

fn route_config_from_json(v: &Json) -> Result<RouteConfig, CodecError> {
    let pitch = get(v, "f2f_pitch_um")?;
    Ok(RouteConfig {
        gcell_um: f64_of(v, "gcell_um")?,
        utilization: f64_of(v, "utilization")?,
        iterations: usize_of(v, "iterations")?,
        via_cost: f64_of(v, "via_cost")?,
        max_net_degree: usize_of(v, "max_net_degree")?,
        f2f_pitch_um: if pitch.is_null() {
            None
        } else {
            Some(f64_of(v, "f2f_pitch_um")?)
        },
        parallelism: parallelism_from_json(get(v, "parallelism")?)?,
    })
}

fn cts_config_to_json(c: &CtsConfig) -> Json {
    Json::obj()
        .field("max_fanout", Json::from_usize(c.max_fanout))
        .field("repeater_spacing_um", Json::from_f64(c.repeater_spacing_um))
}

fn cts_config_from_json(v: &Json) -> Result<CtsConfig, CodecError> {
    Ok(CtsConfig {
        max_fanout: usize_of(v, "max_fanout")?,
        repeater_spacing_um: f64_of(v, "repeater_spacing_um")?,
    })
}

fn place_config_to_json(p: &GlobalPlaceConfig) -> Json {
    Json::obj()
        .field("min_cells", Json::from_usize(p.min_cells))
        .field("fm_passes", Json::from_usize(p.fm_passes))
        .field("max_net_degree", Json::from_usize(p.max_net_degree))
        .field("parallelism", parallelism_to_json(&p.parallelism))
        .field(
            "backend",
            Json::str(match p.backend {
                PlacerBackend::Bisection => "bisection",
                PlacerBackend::Analytical => "analytical",
            }),
        )
        .field(
            "analytical",
            Json::obj()
                .field("max_iters", Json::from_usize(p.analytical.max_iters))
                .field(
                    "target_overflow",
                    Json::from_f64(p.analytical.target_overflow),
                )
                .field("lambda_growth", Json::from_f64(p.analytical.lambda_growth)),
        )
}

fn place_config_from_json(v: &Json) -> Result<GlobalPlaceConfig, CodecError> {
    let a = get(v, "analytical")?;
    Ok(GlobalPlaceConfig {
        min_cells: usize_of(v, "min_cells")?,
        fm_passes: usize_of(v, "fm_passes")?,
        max_net_degree: usize_of(v, "max_net_degree")?,
        parallelism: parallelism_from_json(get(v, "parallelism")?)?,
        backend: match str_of(v, "backend")? {
            "bisection" => PlacerBackend::Bisection,
            "analytical" => PlacerBackend::Analytical,
            other => {
                return Err(CodecError::new(format!("unknown placer backend '{other}'")));
            }
        },
        analytical: AnalyticalConfig {
            max_iters: usize_of(a, "max_iters")?,
            target_overflow: f64_of(a, "target_overflow")?,
            lambda_growth: f64_of(a, "lambda_growth")?,
        },
    })
}

// ---- budget / fault plan / obs ----

fn budget_to_json(b: &FlowBudget) -> Json {
    let caps = b
        .caps()
        .iter()
        .map(|(site, max)| Json::Arr(vec![Json::str(site.clone()), Json::from_u64(*max)]))
        .collect();
    Json::obj()
        .field(
            "wall_clock_ns",
            b.wall_clock.map_or(Json::Null, |d| {
                Json::from_u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            }),
        )
        .field("caps", Json::Arr(caps))
}

fn budget_from_json(v: &Json) -> Result<FlowBudget, CodecError> {
    let mut budget = FlowBudget::unlimited();
    let wall = get(v, "wall_clock_ns")?;
    if !wall.is_null() {
        budget = budget.with_wall_clock(Duration::from_nanos(u64_of(v, "wall_clock_ns")?));
    }
    for cap in arr_of(v, "caps")? {
        let pair = cap
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| CodecError::new("budget cap is not a [site, max] pair"))?;
        let site = pair[0]
            .as_str()
            .ok_or_else(|| CodecError::new("budget cap site is not a string"))?;
        let max = pair[1]
            .as_u64()
            .ok_or_else(|| CodecError::new("budget cap max is not an integer"))?;
        budget = budget.with_cap(site, max);
    }
    Ok(budget)
}

fn fault_plan_to_json(plan: &FaultPlan) -> Json {
    Json::Arr(
        plan.faults()
            .iter()
            .map(|(site, f)| {
                Json::Arr(vec![
                    Json::str(site.clone()),
                    Json::from_u64(f.at_visit),
                    Json::str(match f.action {
                        FaultAction::Exhaust => "exhaust",
                        FaultAction::Error => "error",
                    }),
                ])
            })
            .collect(),
    )
}

fn fault_plan_from_json(v: &Json) -> Result<FaultPlan, CodecError> {
    let mut plan = FaultPlan::new();
    let items = v
        .as_arr()
        .ok_or_else(|| CodecError::new("fault_plan is not an array"))?;
    for item in items {
        let triple = item
            .as_arr()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| CodecError::new("fault is not a [site, at_visit, action] triple"))?;
        let site = triple[0]
            .as_str()
            .ok_or_else(|| CodecError::new("fault site is not a string"))?;
        let at_visit = triple[1]
            .as_u64()
            .ok_or_else(|| CodecError::new("fault at_visit is not an integer"))?;
        let action = match triple[2].as_str() {
            Some("exhaust") => FaultAction::Exhaust,
            Some("error") => FaultAction::Error,
            _ => return Err(CodecError::new("fault action must be 'exhaust' or 'error'")),
        };
        plan = plan.with_fault(site, at_visit, action);
    }
    Ok(plan)
}

fn obs_to_json(obs: &ObsConfig) -> Json {
    Json::str(match obs.level {
        ObsLevel::Off => "off",
        ObsLevel::Summary => "summary",
        ObsLevel::Full => "full",
    })
}

fn obs_from_json(v: &Json) -> Result<ObsConfig, CodecError> {
    match v.as_str() {
        Some("off") => Ok(ObsConfig::off()),
        Some("summary") => Ok(ObsConfig::summary()),
        Some("full") => Ok(ObsConfig::full()),
        _ => Err(CodecError::new("obs must be 'off', 'summary' or 'full'")),
    }
}

// ---- FlowConfig ----

/// Serializes a [`FlowConfig`] (all engines' knobs included).
pub fn flow_config_to_json(cfg: &FlowConfig) -> Json {
    Json::obj()
        .field("logic_metals", Json::from_usize(cfg.logic_metals))
        .field("macro_metals", Json::from_usize(cfg.macro_metals))
        .field("util_logic", Json::from_f64(cfg.util_logic))
        .field("util_macro", Json::from_f64(cfg.util_macro))
        .field("halo_um", Json::from_f64(cfg.halo_um))
        .field(
            "repeater_max_len_um",
            Json::from_f64(cfg.repeater_max_len_um),
        )
        .field("route", route_config_to_json(&cfg.route))
        .field("cts", cts_config_to_json(&cfg.cts))
        .field("sizing_rounds", Json::from_usize(cfg.sizing_rounds))
        .field(
            "sta_mode",
            Json::str(match cfg.sta_mode {
                StaMode::Probe => "probe",
                StaMode::Parametric => "parametric",
            }),
        )
        .field(
            "partial_blockage_period_um",
            Json::from_f64(cfg.partial_blockage_period_um),
        )
        .field("place", place_config_to_json(&cfg.place))
        .field("parallelism", parallelism_to_json(&cfg.parallelism))
        .field("obs", obs_to_json(&cfg.obs))
        .field("budget", budget_to_json(&cfg.budget))
        .field(
            "fault_plan",
            cfg.fault_plan
                .as_ref()
                .map_or(Json::Null, fault_plan_to_json),
        )
}

/// Decodes a [`FlowConfig`] written by [`flow_config_to_json`].
///
/// # Errors
///
/// Returns a [`CodecError`] naming the first missing or mistyped
/// field. Range validation is the builder's job, not the codec's.
pub fn flow_config_from_json(v: &Json) -> Result<FlowConfig, CodecError> {
    let fault_plan = get(v, "fault_plan")?;
    Ok(FlowConfig {
        logic_metals: usize_of(v, "logic_metals")?,
        macro_metals: usize_of(v, "macro_metals")?,
        util_logic: f64_of(v, "util_logic")?,
        util_macro: f64_of(v, "util_macro")?,
        halo_um: f64_of(v, "halo_um")?,
        repeater_max_len_um: f64_of(v, "repeater_max_len_um")?,
        route: route_config_from_json(get(v, "route")?)?,
        cts: cts_config_from_json(get(v, "cts")?)?,
        sizing_rounds: usize_of(v, "sizing_rounds")?,
        sta_mode: match str_of(v, "sta_mode")? {
            "probe" => StaMode::Probe,
            "parametric" => StaMode::Parametric,
            other => return Err(CodecError::new(format!("unknown sta_mode '{other}'"))),
        },
        partial_blockage_period_um: f64_of(v, "partial_blockage_period_um")?,
        place: place_config_from_json(get(v, "place")?)?,
        parallelism: parallelism_from_json(get(v, "parallelism")?)?,
        obs: obs_from_json(get(v, "obs")?)?,
        budget: budget_from_json(get(v, "budget")?)?,
        fault_plan: if fault_plan.is_null() {
            None
        } else {
            Some(fault_plan_from_json(fault_plan)?)
        },
    })
}

// ---- TileConfig ----

/// Serializes a [`TileConfig`] (every netlist-generation input).
pub fn tile_config_to_json(t: &TileConfig) -> Json {
    Json::obj()
        .field("name", Json::str(t.name.clone()))
        .field("l1i_kb", Json::from_u64(t.l1i_kb as u64))
        .field("l1d_kb", Json::from_u64(t.l1d_kb as u64))
        .field("l2_kb", Json::from_u64(t.l2_kb as u64))
        .field("l3_kb", Json::from_u64(t.l3_kb as u64))
        .field("scale", Json::from_f64(t.scale))
        .field("noc_width", Json::from_u64(t.noc_width as u64))
        .field("num_nocs", Json::from_u64(t.num_nocs as u64))
        .field("seed", Json::from_u64(t.seed))
        .field("n40_memory_die", Json::Bool(t.n40_memory_die))
        .field("core_kgates", Json::from_f64(t.core_kgates))
        .field("l1i_ctrl_kgates", Json::from_f64(t.l1i_ctrl_kgates))
        .field("l1d_ctrl_kgates", Json::from_f64(t.l1d_ctrl_kgates))
        .field("l2_ctrl_kgates", Json::from_f64(t.l2_ctrl_kgates))
        .field("l3_ctrl_kgates", Json::from_f64(t.l3_ctrl_kgates))
        .field("noc_kgates", Json::from_f64(t.noc_kgates))
}

/// Decodes a [`TileConfig`] written by [`tile_config_to_json`].
///
/// # Errors
///
/// Returns a [`CodecError`] naming the first missing or mistyped
/// field.
pub fn tile_config_from_json(v: &Json) -> Result<TileConfig, CodecError> {
    Ok(TileConfig {
        name: str_of(v, "name")?.to_string(),
        l1i_kb: u32_of(v, "l1i_kb")?,
        l1d_kb: u32_of(v, "l1d_kb")?,
        l2_kb: u32_of(v, "l2_kb")?,
        l3_kb: u32_of(v, "l3_kb")?,
        scale: f64_of(v, "scale")?,
        noc_width: u32_of(v, "noc_width")?,
        num_nocs: u32_of(v, "num_nocs")?,
        seed: u64_of(v, "seed")?,
        n40_memory_die: bool_of(v, "n40_memory_die")?,
        core_kgates: f64_of(v, "core_kgates")?,
        l1i_ctrl_kgates: f64_of(v, "l1i_ctrl_kgates")?,
        l1d_ctrl_kgates: f64_of(v, "l1d_ctrl_kgates")?,
        l2_ctrl_kgates: f64_of(v, "l2_ctrl_kgates")?,
        l3_ctrl_kgates: f64_of(v, "l3_ctrl_kgates")?,
        noc_kgates: f64_of(v, "noc_kgates")?,
    })
}

// ---- PpaResult ----

fn timing_to_json(t: &TimingReport) -> Json {
    Json::obj()
        .field("min_period_ps", Json::from_f64(t.min_period_ps))
        .field("fclk_mhz", Json::from_f64(t.fclk_mhz))
        .field(
            "crit_path_nets",
            Json::Arr(
                t.crit_path_nets
                    .iter()
                    .map(|n| Json::from_u64(n.0 as u64))
                    .collect(),
            ),
        )
        .field(
            "crit_path_wirelength_mm",
            Json::from_f64(t.crit_path_wirelength_mm),
        )
        .field("crit_path_stages", Json::from_usize(t.crit_path_stages))
        .field("clock_tree_depth", Json::from_usize(t.clock_tree_depth))
        .field("clock_skew_ps", Json::from_f64(t.clock_skew_ps))
}

fn timing_from_json(v: &Json) -> Result<TimingReport, CodecError> {
    let nets = arr_of(v, "crit_path_nets")?
        .iter()
        .map(|n| {
            n.as_u64()
                .and_then(|id| u32::try_from(id).ok())
                .map(NetId)
                .ok_or_else(|| CodecError::new("crit_path_nets entry is not a u32"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TimingReport {
        min_period_ps: f64_of(v, "min_period_ps")?,
        fclk_mhz: f64_of(v, "fclk_mhz")?,
        crit_path_nets: nets,
        crit_path_wirelength_mm: f64_of(v, "crit_path_wirelength_mm")?,
        crit_path_stages: usize_of(v, "crit_path_stages")?,
        clock_tree_depth: usize_of(v, "clock_tree_depth")?,
        clock_skew_ps: f64_of(v, "clock_skew_ps")?,
    })
}

fn power_to_json(p: &PowerReport) -> Json {
    Json::obj()
        .field("total_mw", Json::from_f64(p.total_mw))
        .field("switching_mw", Json::from_f64(p.switching_mw))
        .field("internal_mw", Json::from_f64(p.internal_mw))
        .field("leakage_mw", Json::from_f64(p.leakage_mw))
        .field("macro_mw", Json::from_f64(p.macro_mw))
        .field("emean_fj_per_cycle", Json::from_f64(p.emean_fj_per_cycle))
        .field("cpin_total_nf", Json::from_f64(p.cpin_total_nf))
        .field("cwire_total_nf", Json::from_f64(p.cwire_total_nf))
}

fn power_from_json(v: &Json) -> Result<PowerReport, CodecError> {
    Ok(PowerReport {
        total_mw: f64_of(v, "total_mw")?,
        switching_mw: f64_of(v, "switching_mw")?,
        internal_mw: f64_of(v, "internal_mw")?,
        leakage_mw: f64_of(v, "leakage_mw")?,
        macro_mw: f64_of(v, "macro_mw")?,
        emean_fj_per_cycle: f64_of(v, "emean_fj_per_cycle")?,
        cpin_total_nf: f64_of(v, "cpin_total_nf")?,
        cwire_total_nf: f64_of(v, "cwire_total_nf")?,
    })
}

/// Serializes per-stage wall-clock as `[[name, seconds], …]` — also
/// used standalone by the DSE server's per-job telemetry.
pub fn stage_times_to_json(s: &StageTimes) -> Json {
    Json::Arr(
        s.stages
            .iter()
            .map(|(stage, secs)| Json::Arr(vec![Json::str(stage.clone()), Json::from_f64(*secs)]))
            .collect(),
    )
}

fn stage_times_from_json(v: &Json) -> Result<StageTimes, CodecError> {
    let stages = v
        .as_arr()
        .ok_or_else(|| CodecError::new("stage_times is not an array"))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| CodecError::new("stage time is not a [name, seconds] pair"))?;
            let name = pair[0]
                .as_str()
                .ok_or_else(|| CodecError::new("stage name is not a string"))?;
            let secs = if pair[1].is_null() {
                f64::NAN
            } else {
                pair[1]
                    .as_f64()
                    .ok_or_else(|| CodecError::new("stage seconds is not a number"))?
            };
            Ok((name.to_string(), secs))
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(StageTimes { stages })
}

/// Serializes a [`PpaResult`] including the nested timing and power
/// reports and the per-stage wall-clock.
pub fn ppa_to_json(ppa: &PpaResult) -> Json {
    Json::obj()
        .field("flow", Json::str(ppa.flow.clone()))
        .field("fclk_mhz", Json::from_f64(ppa.fclk_mhz))
        .field("emean_fj", Json::from_f64(ppa.emean_fj))
        .field("footprint_mm2", Json::from_f64(ppa.footprint_mm2))
        .field(
            "logic_cell_area_mm2",
            Json::from_f64(ppa.logic_cell_area_mm2),
        )
        .field("total_wirelength_m", Json::from_f64(ppa.total_wirelength_m))
        .field("f2f_bumps", Json::from_u64(ppa.f2f_bumps))
        .field("cpin_nf", Json::from_f64(ppa.cpin_nf))
        .field("cwire_nf", Json::from_f64(ppa.cwire_nf))
        .field("clock_tree_depth", Json::from_usize(ppa.clock_tree_depth))
        .field("crit_path_wl_mm", Json::from_f64(ppa.crit_path_wl_mm))
        .field("metal_area_mm2", Json::from_f64(ppa.metal_area_mm2))
        .field("timing", timing_to_json(&ppa.timing))
        .field("power", power_to_json(&ppa.power))
        .field("route_overflow", Json::from_f64(ppa.route_overflow))
        .field("stage_times", stage_times_to_json(&ppa.stage_times))
}

/// Decodes a [`PpaResult`] written by [`ppa_to_json`].
///
/// # Errors
///
/// Returns a [`CodecError`] naming the first missing or mistyped
/// field.
pub fn ppa_from_json(v: &Json) -> Result<PpaResult, CodecError> {
    Ok(PpaResult {
        flow: str_of(v, "flow")?.to_string(),
        fclk_mhz: f64_of(v, "fclk_mhz")?,
        emean_fj: f64_of(v, "emean_fj")?,
        footprint_mm2: f64_of(v, "footprint_mm2")?,
        logic_cell_area_mm2: f64_of(v, "logic_cell_area_mm2")?,
        total_wirelength_m: f64_of(v, "total_wirelength_m")?,
        f2f_bumps: u64_of(v, "f2f_bumps")?,
        cpin_nf: f64_of(v, "cpin_nf")?,
        cwire_nf: f64_of(v, "cwire_nf")?,
        clock_tree_depth: usize_of(v, "clock_tree_depth")?,
        crit_path_wl_mm: f64_of(v, "crit_path_wl_mm")?,
        metal_area_mm2: f64_of(v, "metal_area_mm2")?,
        timing: timing_from_json(get(v, "timing")?)?,
        power: power_from_json(get(v, "power")?)?,
        route_overflow: f64_of(v, "route_overflow")?,
        stage_times: stage_times_from_json(get(v, "stage_times")?)?,
    })
}

/// Content fingerprint of a [`PpaResult`]: FNV-1a 64 over its
/// canonical JSON **excluding** `stage_times` — wall-clock is the one
/// field that legitimately differs between two runs of the same spec,
/// so the fingerprint captures exactly the deterministic payload. The
/// DSE determinism tests compare these across worker counts and
/// cold-vs-warm cache paths.
pub fn ppa_fingerprint(ppa: &PpaResult) -> u64 {
    let json = ppa_to_json(ppa);
    let Json::Obj(members) = json else {
        // INVARIANT: ppa_to_json always returns an object
        return 0;
    };
    let stripped = Json::Obj(
        members
            .into_iter()
            .filter(|(k, _)| k != "stage_times")
            .collect(),
    );
    fnv1a_64(stripped.emit().as_bytes())
}

// ---- DegradationReport ----

fn stop_reason_str(r: StopReason) -> &'static str {
    match r {
        StopReason::DeadlineExceeded => "deadline_exceeded",
        StopReason::IterationCap => "iteration_cap",
        StopReason::InjectedExhaust => "injected_exhaust",
        StopReason::InjectedError => "injected_error",
    }
}

/// Serializes a [`DegradationReport`] (empty array = clean run).
pub fn degradation_to_json(report: &DegradationReport) -> Json {
    Json::obj().field(
        "stages",
        Json::Arr(
            report
                .stages
                .iter()
                .map(|s| {
                    Json::obj()
                        .field("site", Json::str(s.site.clone()))
                        .field("reason", Json::str(stop_reason_str(s.reason)))
                        .field("detail", Json::str(s.detail.clone()))
                })
                .collect(),
        ),
    )
}

/// Decodes a [`DegradationReport`] written by [`degradation_to_json`].
///
/// # Errors
///
/// Returns a [`CodecError`] naming the first missing or mistyped
/// field.
pub fn degradation_from_json(v: &Json) -> Result<DegradationReport, CodecError> {
    let stages = arr_of(v, "stages")?
        .iter()
        .map(|s| {
            Ok(StageDegradation {
                site: str_of(s, "site")?.to_string(),
                reason: match str_of(s, "reason")? {
                    "deadline_exceeded" => StopReason::DeadlineExceeded,
                    "iteration_cap" => StopReason::IterationCap,
                    "injected_exhaust" => StopReason::InjectedExhaust,
                    "injected_error" => StopReason::InjectedError,
                    other => {
                        return Err(CodecError::new(format!("unknown stop reason '{other}'")));
                    }
                },
                detail: str_of(s, "detail")?.to_string(),
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(DegradationReport { stages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_par::FlowBudget;

    fn exotic_config() -> FlowConfig {
        let mut cfg = FlowConfig {
            logic_metals: 7,
            macro_metals: 4,
            util_logic: 0.55,
            halo_um: 3.5,
            ..FlowConfig::default()
        };
        cfg.route.iterations = 5;
        cfg.route.f2f_pitch_um = None;
        cfg.route.parallelism = Parallelism::threads(4).with_chunk_size(9);
        cfg.cts.max_fanout = 12;
        cfg.sizing_rounds = 3;
        cfg.sta_mode = StaMode::Probe;
        cfg.place.backend = PlacerBackend::Analytical;
        cfg.place.analytical.max_iters = 77;
        cfg.obs = ObsConfig::summary();
        cfg.budget = FlowBudget::unlimited()
            .with_wall_clock(Duration::from_millis(1234))
            .with_cap("route/iterations", 2)
            .with_cap("sta/sizing_rounds", 1);
        cfg.fault_plan = Some(
            FaultPlan::new()
                .with_fault("place/fm_passes", 3, FaultAction::Exhaust)
                .with_fault("flow/route", 1, FaultAction::Error),
        );
        cfg
    }

    fn sample_ppa() -> PpaResult {
        PpaResult {
            flow: "Macro-3D M6-M4".to_string(),
            fclk_mhz: 812.345678901,
            emean_fj: 1234.5,
            footprint_mm2: 0.145,
            logic_cell_area_mm2: 0.0721,
            total_wirelength_m: 1.25e-1,
            f2f_bumps: 1312,
            cpin_nf: 0.0123,
            cwire_nf: 0.0456,
            clock_tree_depth: 7,
            crit_path_wl_mm: 0.91,
            metal_area_mm2: 1.45,
            timing: TimingReport {
                min_period_ps: 1231.1,
                fclk_mhz: 812.345678901,
                crit_path_nets: vec![NetId(3), NetId(999), NetId(0)],
                crit_path_wirelength_mm: 0.91,
                crit_path_stages: 14,
                clock_tree_depth: 7,
                clock_skew_ps: 11.5,
            },
            power: PowerReport {
                total_mw: 100.25,
                switching_mw: 40.5,
                internal_mw: 30.25,
                leakage_mw: 4.5,
                macro_mw: 25.0,
                emean_fj_per_cycle: 1234.5,
                cpin_total_nf: 0.0123,
                cwire_total_nf: 0.0456,
            },
            route_overflow: 0.0,
            stage_times: StageTimes {
                stages: vec![("place".into(), 0.51), ("route".into(), 1.75)],
            },
        }
    }

    #[test]
    fn flow_config_round_trips_exactly() {
        for cfg in [FlowConfig::default(), exotic_config()] {
            let json = flow_config_to_json(&cfg);
            let text = json.emit();
            let back = flow_config_from_json(&Json::parse(&text).unwrap()).unwrap();
            // FlowConfig is not PartialEq (FaultPlan isn't); compare
            // the canonical emission, which covers every field
            assert_eq!(flow_config_to_json(&back).emit(), text);
            assert_eq!(back.budget, cfg.budget);
            assert_eq!(back.sta_mode, cfg.sta_mode);
            assert_eq!(back.route.f2f_pitch_um, cfg.route.f2f_pitch_um);
        }
    }

    #[test]
    fn tile_config_round_trips_exactly() {
        for tile in [
            TileConfig::small_cache(),
            TileConfig::large_cache().with_scale(12.5).with_n40_memory(),
        ] {
            let text = tile_config_to_json(&tile).emit();
            let back = tile_config_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, tile);
        }
    }

    #[test]
    fn ppa_round_trips_exactly() {
        let ppa = sample_ppa();
        let text = ppa_to_json(&ppa).emit();
        let back = ppa_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(ppa_to_json(&back).emit(), text, "byte-exact round trip");
        assert_eq!(back.fclk_mhz, ppa.fclk_mhz, "f64 bits preserved");
        assert_eq!(back.timing.crit_path_nets, ppa.timing.crit_path_nets);
        assert_eq!(back.stage_times.stages, ppa.stage_times.stages);
    }

    #[test]
    fn degradation_round_trips_exactly() {
        let report = DegradationReport {
            stages: vec![
                StageDegradation {
                    site: "route/iterations".into(),
                    reason: StopReason::IterationCap,
                    detail: "3 nets unrouted, 7 overflowed \"edges\"".into(),
                },
                StageDegradation {
                    site: "sta/sizing_rounds".into(),
                    reason: StopReason::InjectedExhaust,
                    detail: String::new(),
                },
            ],
        };
        let text = degradation_to_json(&report).emit();
        let back = degradation_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        assert_eq!(
            degradation_from_json(&Json::parse("{\"stages\":[]}").unwrap()).unwrap(),
            DegradationReport::default()
        );
    }

    #[test]
    fn fingerprint_ignores_stage_times_only() {
        let ppa = sample_ppa();
        let mut retimed = ppa.clone();
        retimed.stage_times.stages[0].1 = 99.0;
        assert_eq!(
            ppa_fingerprint(&ppa),
            ppa_fingerprint(&retimed),
            "wall-clock must not affect the fingerprint"
        );
        let mut changed = ppa.clone();
        changed.fclk_mhz += 1e-9;
        assert_ne!(
            ppa_fingerprint(&ppa),
            ppa_fingerprint(&changed),
            "any payload bit flips the fingerprint"
        );
    }

    #[test]
    fn decoders_name_the_broken_field() {
        let mut json = flow_config_to_json(&FlowConfig::default());
        if let Json::Obj(members) = &mut json {
            members.retain(|(k, _)| k != "sizing_rounds");
        }
        let err = flow_config_from_json(&json).unwrap_err();
        assert!(err.to_string().contains("sizing_rounds"), "{err}");

        let err = ppa_from_json(&Json::parse("{\"flow\":3}").unwrap()).unwrap_err();
        assert!(err.to_string().contains("flow"), "{err}");
    }

    #[test]
    fn nan_fields_survive_as_null() {
        let mut ppa = sample_ppa();
        ppa.route_overflow = f64::NAN;
        let text = ppa_to_json(&ppa).emit();
        assert!(text.contains("\"route_overflow\":null"), "{text}");
        let back = ppa_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(back.route_overflow.is_nan());
    }

    #[test]
    fn extra_fields_are_tolerated() {
        let mut json = tile_config_to_json(&TileConfig::small_cache());
        json = json.field("future_knob", Json::from_u64(9));
        assert!(tile_config_from_json(&json).is_ok());
    }
}
