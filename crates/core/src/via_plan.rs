//! F2F-via planning for the S2D/C2D baselines.
//!
//! After tier partitioning, every net spanning both dies needs an F2F
//! bump. The planner snaps each crossing to the bump pitch grid and
//! resolves collisions by spiralling outward to the nearest free
//! site — the separate planning step the Macro-3D flow makes
//! unnecessary (its router places bumps implicitly).

use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::NetId;
use macro3d_tech::F2fSpec;
use std::collections::HashSet;

/// A planned bump assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct ViaPlan {
    /// One (net, site) pair per inter-die crossing.
    pub bumps: Vec<(NetId, Point)>,
    /// Crossings that could not be placed on the grid (die full).
    pub failed: usize,
    /// The nets whose crossings could not be placed, in request
    /// order — surfaced in the flow's degradation report so a full
    /// bump grid is a named, diagnosable condition rather than a bare
    /// count in obs metrics.
    pub failed_nets: Vec<NetId>,
    /// Mean displacement from the requested location, µm.
    pub mean_displacement_um: f64,
}

impl ViaPlan {
    /// Number of placed bumps.
    pub fn count(&self) -> u64 {
        self.bumps.len() as u64
    }

    /// A short human-readable summary of the planning failures,
    /// naming the offending nets (truncated past 8).
    pub fn failure_detail(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{} inter-die crossings without a bump site: nets",
            self.failed
        );
        for (k, n) in self.failed_nets.iter().enumerate() {
            if k == 8 {
                let _ = write!(s, " … (+{})", self.failed_nets.len() - 8);
                break;
            }
            let _ = write!(s, " {}", n.0);
        }
        s
    }
}

/// Plans bump sites for the requested crossings (net, desired
/// location).
///
/// Each bump lands on the pitch grid inside the die; occupied sites
/// deflect the bump outward ring by ring.
pub fn plan_bumps(die: Rect, f2f: &F2fSpec, requests: &[(NetId, Point)]) -> ViaPlan {
    let pitch = f2f.pitch;
    let mut occupied: HashSet<(i64, i64)> = HashSet::new();
    let mut bumps = Vec::with_capacity(requests.len());
    let mut failed_nets: Vec<NetId> = Vec::new();
    let mut total_disp = 0.0f64;

    let nx = (die.width() / pitch).max(1);
    let ny = (die.height() / pitch).max(1);

    for &(net, want) in requests {
        let gx = ((want.x - die.lo.x) / pitch).clamp(0, nx - 1);
        let gy = ((want.y - die.lo.y) / pitch).clamp(0, ny - 1);
        let mut placed = None;
        'search: for ring in 0..64i64 {
            for dy in -ring..=ring {
                for dx in -ring..=ring {
                    if dx.abs() != ring && dy.abs() != ring {
                        continue;
                    }
                    let (x, y) = (gx + dx, gy + dy);
                    if x < 0 || y < 0 || x >= nx || y >= ny {
                        continue;
                    }
                    if occupied.insert((x, y)) {
                        placed = Some((x, y));
                        break 'search;
                    }
                }
            }
        }
        match placed {
            Some((x, y)) => {
                let at = Point::new(
                    die.lo.x + pitch * x + pitch / 2,
                    die.lo.y + pitch * y + pitch / 2,
                );
                total_disp += want.manhattan(at).to_um();
                bumps.push((net, at));
            }
            None => failed_nets.push(net),
        }
    }

    let mean = if bumps.is_empty() {
        0.0
    } else {
        total_disp / bumps.len() as f64
    };
    ViaPlan {
        bumps,
        failed: failed_nets.len(),
        failed_nets,
        mean_displacement_um: mean,
    }
}

/// Convenience: the minimum spacing check used by tests.
pub fn min_spacing(plan: &ViaPlan) -> Dbu {
    let mut min = Dbu::MAX;
    for (i, (_, a)) in plan.bumps.iter().enumerate() {
        for (_, b) in &plan.bumps[i + 1..] {
            min = min.min(a.manhattan(*b));
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumps_respect_pitch() {
        let die = Rect::from_um(0.0, 0.0, 20.0, 20.0);
        let f2f = F2fSpec::hybrid_bond_n28();
        // 16 crossings all wanting the same spot
        let reqs: Vec<(NetId, Point)> = (0..16)
            .map(|i| (NetId(i), Point::from_um(10.0, 10.0)))
            .collect();
        let plan = plan_bumps(die, &f2f, &reqs);
        assert_eq!(plan.count(), 16);
        assert_eq!(plan.failed, 0);
        assert!(min_spacing(&plan) >= f2f.pitch);
        assert!(plan.mean_displacement_um > 0.0, "collisions displaced");
    }

    #[test]
    fn overfull_die_reports_failures() {
        let die = Rect::from_um(0.0, 0.0, 3.0, 1.0); // 3 sites
        let f2f = F2fSpec::hybrid_bond_n28();
        let reqs: Vec<(NetId, Point)> = (0..10)
            .map(|i| (NetId(i), Point::from_um(1.0, 0.5)))
            .collect();
        let plan = plan_bumps(die, &f2f, &reqs);
        assert_eq!(plan.count() as usize + plan.failed, 10);
        assert!(plan.failed > 0);
        // failures are named, not just counted
        assert_eq!(plan.failed_nets.len(), plan.failed);
        let detail = plan.failure_detail();
        let first = plan.failed_nets[0].0;
        assert!(detail.contains(&format!(" {first}")), "{detail}");
    }

    #[test]
    fn failure_detail_truncates_long_lists() {
        let die = Rect::from_um(0.0, 0.0, 3.0, 1.0);
        let f2f = F2fSpec::hybrid_bond_n28();
        let reqs: Vec<(NetId, Point)> = (0..40)
            .map(|i| (NetId(i), Point::from_um(1.0, 0.5)))
            .collect();
        let plan = plan_bumps(die, &f2f, &reqs);
        assert!(plan.failed > 8, "{}", plan.failed);
        let detail = plan.failure_detail();
        assert!(detail.contains('…'), "{detail}");
        assert!(
            detail.contains(&format!("+{}", plan.failed - 8)),
            "{detail}"
        );
    }

    #[test]
    fn isolated_requests_land_exactly() {
        let die = Rect::from_um(0.0, 0.0, 100.0, 100.0);
        let f2f = F2fSpec::hybrid_bond_n28();
        let reqs = vec![(NetId(0), Point::from_um(50.2, 50.2))];
        let plan = plan_bumps(die, &f2f, &reqs);
        assert_eq!(plan.count(), 1);
        assert!(
            plan.mean_displacement_um < 1.5,
            "{}",
            plan.mean_displacement_um
        );
    }
}
