//! Shared flow infrastructure: configuration, floorplan sizing, the
//! common place/route/extract/sign-off engine every flow drives.

use macro3d_extract::{extract_net, NetParasitics};
use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::{Design, InstId, Master, NetId, PinRef};
use macro3d_par::{
    checkpoint, note_degradation, parallel_map, Checkpoint, FaultPlan, FlowBudget, Parallelism,
};
use macro3d_place::{global_place, legalize, Floorplan, GlobalPlaceConfig, Placement, PortPlan};
use macro3d_route::{RouteConfig, RouteRequest, RoutedDesign, Router};
use macro3d_soc::TileNetlist;
use macro3d_sta::{
    analyze_power, analyze_with, check_hold, clock_arrivals, insert_repeaters,
    synthesize_clock_tree, upsize_critical_path, ClockArrivals, ClockTree, CtsConfig, HoldReport,
    PowerInput, PowerReport, StaConstraints, StaInput, StaMode, StaSession, TimingReport,
};
use macro3d_tech::stack::{DieRole, MetalStack};
use macro3d_tech::Corner;
use std::collections::HashSet;
use std::time::Instant;

/// Configuration shared by all flows.
///
/// Build one with [`FlowConfig::builder`] to get range validation, or
/// use [`FlowConfig::default`] and mutate fields directly.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Metal layers on the logic die.
    pub logic_metals: usize,
    /// Metal layers on the macro die (Table III trims this to 4).
    pub macro_metals: usize,
    /// Standard-cell region utilization target.
    pub util_logic: f64,
    /// Macro packing utilization target.
    pub util_macro: f64,
    /// Macro keep-out halo, µm.
    pub halo_um: f64,
    /// Repeater insertion threshold, µm of HPWL, for an
    /// uncompressed (`area_scale = 1`) library. Flows scale it by
    /// `sqrt(area_scale)`: compressed cells are proportionally
    /// stronger, so each repeater drives a longer segment at the same
    /// relative delay cost (keeps buffer area calibrated; see
    /// DESIGN.md §5).
    pub repeater_max_len_um: f64,
    /// Router settings (including the router's own parallelism knob).
    pub route: RouteConfig,
    /// CTS settings.
    pub cts: CtsConfig,
    /// Post-route sizing iterations.
    pub sizing_rounds: usize,
    /// Minimum-period engine for every sign-off analysis.
    /// [`StaMode::Parametric`] (the default) runs one affine
    /// propagation plus a confirmation and lets the sizing loops
    /// re-time only the fan-out cones of resized gates;
    /// [`StaMode::Probe`] keeps the legacy 32-probe binary search
    /// with a full re-analysis per sizing round.
    pub sta_mode: StaMode,
    /// Quantization period for partial blockages in the S2D/C2D
    /// pseudo-2D stages, µm (the commercial tools' coarse spatial
    /// resolution the paper observes).
    pub partial_blockage_period_um: f64,
    /// Global placement settings.
    pub place: GlobalPlaceConfig,
    /// Worker threads for the per-net extraction fan-out and the STA
    /// endpoint checks. The router reads `route.parallelism` instead
    /// (so routing batch granularity can be tuned independently);
    /// [`crate::config::FlowConfigBuilder::parallelism`] sets both.
    /// Results are identical for any thread count.
    pub parallelism: Parallelism,
    /// Observability level for the flow run (off / summary / full
    /// trace). When on, [`crate::FlowOutcome::obs`] carries the
    /// recorded trace.
    pub obs: macro3d_obs::ObsConfig,
    /// Stage budget (wall-clock deadline + per-site iteration caps).
    /// On exhaustion the engine loops return best-so-far state and
    /// [`crate::FlowOutcome::degradation`] records what was cut
    /// short. Unlimited by default.
    pub budget: FlowBudget,
    /// Deterministic fault-injection plan for robustness testing:
    /// forces errors or budget exhaustion at chosen checkpoint sites.
    /// `None` (the default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            logic_metals: 6,
            macro_metals: 6,
            util_logic: 0.60,
            util_macro: 0.85,
            halo_um: 2.0,
            repeater_max_len_um: 150.0,
            route: RouteConfig::default(),
            cts: CtsConfig::default(),
            sizing_rounds: 8,
            sta_mode: StaMode::default(),
            partial_blockage_period_um: 8.0,
            place: GlobalPlaceConfig::default(),
            parallelism: Parallelism::default(),
            obs: macro3d_obs::ObsConfig::default(),
            budget: FlowBudget::default(),
            fault_plan: None,
        }
    }
}

impl FlowConfig {
    /// Starts a validated builder seeded with the defaults.
    pub fn builder() -> crate::config::FlowConfigBuilder {
        crate::config::FlowConfigBuilder::new()
    }
}

/// Area summary used for floorplan sizing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaBudget {
    /// Total standard-cell area, µm².
    pub cell_um2: f64,
    /// Total macro area (with halos), µm².
    pub macro_um2: f64,
    /// Single-die footprint of the F2F stack, µm².
    pub a3d_um2: f64,
}

/// Computes the fair footprints: the 3D footprint solves the
/// two-die balance `A = cell/u_l + overflow_macros/u_m =
/// macro_die_macros/u_m`, and the 2D footprint is exactly `2 × A`
/// (the paper's equal-silicon-area rule).
pub fn area_budget(design: &Design, cfg: &FlowConfig) -> AreaBudget {
    let mut cell = 0.0;
    let mut macros = 0.0;
    for i in design.inst_ids() {
        let halo_pad = if design.is_macro(i) {
            let r = macro_rect_at_origin(design, i).inflate(Dbu::from_um(cfg.halo_um));
            r.area_um2() - design.inst_area_um2(i)
        } else {
            0.0
        };
        if design.is_macro(i) {
            macros += design.inst_area_um2(i) + halo_pad;
        } else {
            cell += design.inst_area_um2(i);
        }
    }
    let a3d = 0.5 * (cell / cfg.util_logic + macros / cfg.util_macro);
    AreaBudget {
        cell_um2: cell,
        macro_um2: macros,
        a3d_um2: a3d,
    }
}

fn macro_rect_at_origin(design: &Design, inst: InstId) -> Rect {
    let Master::Macro(m) = design.inst(inst).master else {
        panic!("not a macro");
    };
    Rect::from_origin_size(Point::ORIGIN, design.macro_master(m).size)
}

/// Splits the macros of a design into (macro-die, logic-die) sets for
/// an MoL stack: largest first onto the macro die until its
/// utilization target is reached.
pub fn assign_macros_mol(
    design: &Design,
    die_area_um2: f64,
    cfg: &FlowConfig,
) -> (Vec<InstId>, Vec<InstId>) {
    let mut macros: Vec<InstId> = design.inst_ids().filter(|&i| design.is_macro(i)).collect();
    macros.sort_by(|&a, &b| {
        design
            .inst_area_um2(b)
            .total_cmp(&design.inst_area_um2(a))
            .then(a.cmp(&b))
    });
    let budget = die_area_um2 * cfg.util_macro;
    let mut used = 0.0;
    let mut top = Vec::new();
    let mut bottom = Vec::new();
    for m in macros {
        let r = macro_rect_at_origin(design, m).inflate(Dbu::from_um(cfg.halo_um));
        if used + r.area_um2() <= budget {
            used += r.area_um2();
            top.push(m);
        } else {
            bottom.push(m);
        }
    }
    (top, bottom)
}

/// Packs the MoL dual floorplans, retrying with fewer top-die macros
/// until both dies pack geometrically (shelf packing wastes some area
/// versus the pure area budget).
///
/// # Errors
///
/// Returns [`crate::FlowError::Floorplan`] when even an empty macro die
/// cannot host the logic-die macros (die far too small — not
/// reachable from [`area_budget`] with validated configs).
pub fn try_pack_mol_floorplans(
    design: &Design,
    die: Rect,
    halo: Dbu,
    mut top: Vec<InstId>,
    mut bottom: Vec<InstId>,
) -> Result<
    (
        Vec<macro3d_place::MacroPlacement>,
        Vec<macro3d_place::MacroPlacement>,
    ),
    crate::error::FlowError,
> {
    use macro3d_place::macro_anneal::{refine_macros_sa, AnnealConfig};
    use macro3d_place::macro_place::{pack_ring, pack_shelves};
    loop {
        let top_packed = pack_shelves(design, &top, die, halo, DieRole::Macro);
        if let Some(mut tp) = top_packed {
            let bottom_packed = pack_ring(design, &bottom, die, halo)
                .or_else(|| pack_shelves(design, &bottom, die, halo, DieRole::Logic));
            if let Some(mut bp) = bottom_packed {
                // the paper's floorplan optimization step: anneal each
                // die's packing (seeded and serial, so deterministic;
                // never worsens macro-net HPWL, preserves legality)
                refine_macros_sa(design, &mut tp, die, halo, &AnnealConfig::default());
                refine_macros_sa(design, &mut bp, die, halo, &AnnealConfig::default());
                return Ok((tp, bp));
            }
        }
        // demote the smallest top-die macro and retry
        match top.pop() {
            Some(m) => bottom.push(m),
            None => {
                return Err(crate::error::FlowError::Floorplan {
                    stage: "mol/dual_pack",
                    detail: format!(
                        "{} logic-die macros do not fit the {:.0}x{:.0}um die",
                        bottom.len(),
                        die.width().to_um(),
                        die.height().to_um()
                    ),
                });
            }
        }
    }
}

/// Infallible wrapper over [`try_pack_mol_floorplans`] for callers
/// that know their configuration packs (benches, tests).
///
/// # Panics
///
/// Panics with the underlying [`FlowError`](crate::error::FlowError)
/// message if packing fails.
pub fn pack_mol_floorplans(
    design: &Design,
    die: Rect,
    halo: Dbu,
    top: Vec<InstId>,
    bottom: Vec<InstId>,
) -> (
    Vec<macro3d_place::MacroPlacement>,
    Vec<macro3d_place::MacroPlacement>,
) {
    match try_pack_mol_floorplans(design, die, halo, top, bottom) {
        Ok(packed) => packed,
        Err(e) => panic!("{e}"),
    }
}

/// A fully implemented design: everything needed for PPA reporting
/// and layout export.
pub struct ImplementedDesign {
    /// The (flow-mutated: CTS, repeaters, sizing) netlist.
    pub design: Design,
    /// Final placement.
    pub placement: Placement,
    /// Port locations.
    pub ports: PortPlan,
    /// The floorplan used for the final placement.
    pub fp: Floorplan,
    /// The stack routing ran on (single-die or combined).
    pub stack: MetalStack,
    /// Routing result.
    pub routed: RoutedDesign,
    /// Extracted parasitics per net.
    pub parasitics: Vec<NetParasitics>,
    /// The synthesized clock tree.
    pub clock_tree: ClockTree,
    /// Clock arrivals.
    pub clock: ClockArrivals,
    /// Constraints.
    pub constraints: StaConstraints,
    /// Sign-off timing (SS).
    pub timing: TimingReport,
    /// Hold check (FF corner).
    pub hold: HoldReport,
    /// Power at max frequency (TT).
    pub power: PowerReport,
    /// Number of logic-die metal layers in `stack` (layers at or
    /// above this index belong to the macro die).
    pub logic_metals: usize,
    /// Wall-clock per flow stage, in execution order.
    pub stage_times: StageTimes,
}

impl ImplementedDesign {
    /// Re-runs power analysis at an arbitrary frequency (the paper's
    /// iso-performance comparison re-implements at 328 MHz).
    pub fn power_at(&self, freq_mhz: f64, toggle: f64) -> PowerReport {
        let clock_nets: HashSet<NetId> = self.clock_tree.nets.iter().copied().collect();
        analyze_power(&PowerInput {
            design: &self.design,
            parasitics: &self.parasitics,
            clock_nets: &clock_nets,
            freq_mhz,
            toggle,
            corner: Corner::power_report(),
        })
    }
}

/// Converts the SoC constraints into the analyzer's view.
pub fn sta_constraints(tile: &TileNetlist) -> StaConstraints {
    let mut c = StaConstraints::new(tile.constraints.clock_net);
    c.half_cycle_ports = tile.constraints.half_cycle_ports.iter().copied().collect();
    c.input_slew_ps = tile.constraints.input_slew_ps;
    c.port_load_ff = tile.constraints.port_load_ff;
    c.toggle_rate = tile.constraints.toggle_rate;
    c
}

/// Maps a pin to its routing-stack layer.
///
/// `logic_metals` is the logic die's layer count within `stack`;
/// `macro_pins_projected` selects whether macro-die macro pins appear
/// at their true combined-stack `_MD` layer (Macro-3D, and all final
/// routes) or at their die-local layer (the S2D/C2D pseudo-2D stages'
/// misassumption).
pub fn pin_layer(
    design: &Design,
    placement: &Placement,
    pin: PinRef,
    logic_metals: usize,
    stack_layers: usize,
    macro_pins_projected: bool,
) -> u16 {
    let top_logic = (logic_metals - 1) as u16;
    match pin {
        PinRef::Port(_) => top_logic,
        PinRef::Inst { inst, pin } => match design.inst(inst).master {
            Master::Cell(_) => {
                if placement.die_of[inst.index()] == DieRole::Macro && stack_layers > logic_metals {
                    // standard cell partitioned onto the top die
                    logic_metals as u16
                } else {
                    0
                }
            }
            Master::Macro(m) => {
                let local = design.macro_master(m).pins[pin as usize].layer.0 as u16;
                if macro_pins_projected
                    && placement.die_of[inst.index()] == DieRole::Macro
                    && stack_layers > logic_metals
                {
                    logic_metals as u16 + local
                } else {
                    local.min(top_logic)
                }
            }
        },
    }
}

/// Collects routing obstacles from placed macros' internal blockages.
///
/// Macro-die macros contribute obstacles on combined `_MD` layers when
/// `project` is set (and the stack has them); logic-die macros always
/// block their local layers.
pub fn macro_obstacles(
    design: &Design,
    fp: &Floorplan,
    logic_metals: usize,
    stack_layers: usize,
    project: bool,
) -> Vec<(usize, Rect)> {
    let mut out = Vec::new();
    for mp in &fp.macros {
        let Master::Macro(m) = design.inst(mp.inst).master else {
            continue;
        };
        let def = design.macro_master(m).clone();
        for (layer, rect) in &def.blockages {
            let local = layer.0 as usize;
            let placed = rect.translated(mp.rect.lo.x, mp.rect.lo.y);
            let layer_ix = if mp.die == DieRole::Macro && project && stack_layers > logic_metals {
                logic_metals + local
            } else {
                local.min(logic_metals - 1)
            };
            out.push((layer_ix, placed));
        }
    }
    out
}

/// Builds the per-net pin list for routing.
pub fn route_pins(
    design: &Design,
    placement: &Placement,
    ports: &PortPlan,
    logic_metals: usize,
    stack_layers: usize,
    macro_pins_projected: bool,
) -> Vec<(NetId, Vec<(Point, u16)>)> {
    design
        .net_ids()
        .map(|n| {
            let pins = design
                .net(n)
                .pins
                .iter()
                .map(|&p| {
                    (
                        macro3d_place::pin_position(design, placement, ports, p),
                        pin_layer(
                            design,
                            placement,
                            p,
                            logic_metals,
                            stack_layers,
                            macro_pins_projected,
                        ),
                    )
                })
                .collect();
            (n, pins)
        })
        .collect()
}

/// Extracts every net of a routed design. Sink order matches
/// `design.sinks(net)`; output ports contribute the constraint load.
///
/// Nets are independent, so the per-net work fans out over `par`
/// worker threads; results land in `NetId` order regardless of the
/// thread count.
#[allow(clippy::too_many_arguments)]
pub fn extract_all(
    design: &Design,
    placement: &Placement,
    ports: &PortPlan,
    stack: &MetalStack,
    routed: &RoutedDesign,
    constraints: &StaConstraints,
    corner: Corner,
    par: &Parallelism,
) -> Vec<NetParasitics> {
    let nets: Vec<NetId> = design.net_ids().collect();
    parallel_map(&nets, par, |_, &n| {
        let Some(driver) = design.driver(n) else {
            return NetParasitics::default();
        };
        let drv_pos = macro3d_place::pin_position(design, placement, ports, driver);
        let sinks: Vec<(Point, f64)> = design
            .sinks(n)
            .map(|s| {
                let pos = macro3d_place::pin_position(design, placement, ports, s);
                let cap = match s {
                    PinRef::Port(_) => constraints.port_load_ff,
                    _ => design.pin_cap(s),
                };
                (pos, cap)
            })
            .collect();
        match routed.net(n) {
            Some(r) => extract_net(stack, r, drv_pos, &sinks, corner),
            None => macro3d_extract::estimate_net(stack, drv_pos, &sinks, 1.0, corner),
        }
    })
}

/// Wall-clock per flow stage, in the order the stages ran.
///
/// Recorded by [`StageTimer`] as each flow executes and carried into
/// [`ImplementedDesign`] / [`crate::PpaResult`], so runtime is a
/// first-class reported metric next to PPA.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageTimes {
    /// `(stage name, seconds)` in execution order.
    pub stages: Vec<(String, f64)>,
}

impl StageTimes {
    /// Records a stage duration.
    pub fn push(&mut self, stage: impl Into<String>, seconds: f64) {
        self.stages.push((stage.into(), seconds));
    }

    /// Duration of a named stage (first occurrence), seconds.
    pub fn seconds(&self, stage: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|(s, _)| s == stage)
            .map(|&(_, t)| t)
    }

    /// Sum of all recorded stages, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|&(_, t)| t).sum()
    }
}

impl std::fmt::Display for StageTimes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (stage, secs) in &self.stages {
            writeln!(f, "  {stage:<20} {:9.1} ms", secs * 1e3)?;
        }
        write!(f, "  {:<20} {:9.1} ms", "total", self.total_seconds() * 1e3)
    }
}

/// Records wall-clock per flow stage. [`StageTimer::mark`] closes the
/// stage that ran since the previous mark (or construction); under
/// `MACRO3D_VERBOSE` each mark also prints a progress line.
///
/// Internally each stage is a `macro3d-obs` span: `new` opens an
/// unnamed span, `mark` closes it under the stage name and opens the
/// next, so when an obs session is active every engine span recorded
/// during the stage nests under it in the exported trace. The public
/// [`StageTimes`] shape is unchanged.
#[derive(Debug)]
pub struct StageTimer {
    last: Instant,
    times: StageTimes,
    span: Option<SpanGuardDebug>,
}

/// [`macro3d_obs::SpanGuard`] has no `Debug`; this thin wrapper keeps
/// `StageTimer: Debug` without printing guard internals.
struct SpanGuardDebug(macro3d_obs::SpanGuard);

impl std::fmt::Debug for SpanGuardDebug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SpanGuard")
    }
}

impl StageTimer {
    /// Starts timing; the first [`mark`](Self::mark) closes the first
    /// stage.
    pub fn new() -> Self {
        StageTimer {
            last: Instant::now(),
            times: StageTimes::default(),
            span: macro3d_obs::stage_begin().map(SpanGuardDebug),
        }
    }

    /// Ends the current stage under `stage` and starts the next one.
    pub fn mark(&mut self, stage: &str) {
        let dt = self.last.elapsed();
        self.last = Instant::now();
        if std::env::var_os("MACRO3D_VERBOSE").is_some() {
            eprintln!("  [stage] {stage}: {dt:?}");
        }
        if let Some(span) = self.span.take() {
            span.0.finish_named(stage);
        }
        self.span = macro3d_obs::stage_begin().map(SpanGuardDebug);
        self.times.push(stage, dt.as_secs_f64());
    }

    /// Finishes and returns the recorded stage times. The span opened
    /// after the last mark is discarded (it never became a stage).
    pub fn into_times(self) -> StageTimes {
        self.times
    }
}

impl Default for StageTimer {
    fn default() -> Self {
        Self::new()
    }
}

/// The placement pipeline shared by the direct flows: global place →
/// repeater insertion → CTS → legalization. Returns the clock tree.
/// Stage wall-clock lands in `timer`.
pub fn place_pipeline(
    design: &mut Design,
    fp: &Floorplan,
    ports: &PortPlan,
    constraints: &StaConstraints,
    cfg: &FlowConfig,
    timer: &mut StageTimer,
) -> (Placement, ClockTree) {
    let mut placement = global_place(design, fp, ports, &cfg.place);
    timer.mark("global_place");

    // legalize the base cells first so buffering sees real locations;
    // the analytical backend's smooth overlapping spread goes through
    // Abacus cluster collapse, bisection's sparse output through
    // Tetris first-fit
    let base_cells: Vec<InstId> = design.inst_ids().filter(|&i| !design.is_macro(i)).collect();
    let base_rep = match cfg.place.backend {
        macro3d_place::PlacerBackend::Bisection => {
            legalize(design, fp, &mut placement, &base_cells)
        }
        macro3d_place::PlacerBackend::Analytical => {
            macro3d_place::legalize_abacus(design, fp, &mut placement, &base_cells)
        }
    };
    if std::env::var_os("MACRO3D_VERBOSE").is_some() {
        eprintln!(
            "  [legalize base] failed={} mean_disp={:.1}um",
            base_rep.failed, base_rep.mean_disp_um
        );
    }

    let mut skip: HashSet<NetId> = HashSet::new();
    skip.insert(constraints.clock_net);
    // compression-aware thresholds (see field docs)
    let scale_len = design.library().area_scale().sqrt();
    let threshold = cfg.repeater_max_len_um * scale_len;
    // split until every net is below the repeater threshold
    let mut new_cells: Vec<InstId> = Vec::new();
    for _ in 0..8 {
        let inserted = insert_repeaters(design, &mut placement, ports, threshold, &skip);
        if inserted.is_empty() {
            break;
        }
        new_cells.extend(inserted);
    }
    let mut cts_cfg = cfg.cts;
    cts_cfg.repeater_spacing_um *= scale_len;
    let tree = synthesize_clock_tree(design, &mut placement, constraints.clock_net, &cts_cfg);
    new_cells.extend(tree.buffers.iter().copied());

    timer.mark("repeaters+cts");
    // ECO legalization: only the inserted buffers move
    let eco_rep = macro3d_place::legalize::legalize_incremental(
        design,
        fp,
        &mut placement,
        &new_cells,
        &base_cells,
    );
    if std::env::var_os("MACRO3D_VERBOSE").is_some() {
        eprintln!(
            "  [legalize eco] failed={} of {}",
            eco_rep.failed,
            new_cells.len()
        );
    }

    // one greedy detailed-placement pass (same-row swaps) over every
    // placed cell — buffers included, so repacking can't stomp them
    let all_cells: Vec<InstId> = design.inst_ids().filter(|&i| !design.is_macro(i)).collect();
    macro3d_place::detailed::swap_pass(design, &mut placement, ports, &all_cells);
    timer.mark("eco+detailed");
    (placement, tree)
}

/// Routes, extracts and signs a placed design off, including the
/// Sign-off [`StaInput`] at the SS corner — the sizing loop below
/// rebuilds this every round because `design` and `parasitics` are
/// mutated between analyses.
fn signoff_input<'a>(
    design: &'a Design,
    parasitics: &'a [NetParasitics],
    routed: &'a RoutedDesign,
    constraints: &'a StaConstraints,
    clock: &'a ClockArrivals,
) -> StaInput<'a> {
    StaInput {
        design,
        parasitics,
        routed: Some(routed),
        constraints,
        clock,
        corner: Corner::signoff(),
    }
}

/// post-route sizing loop. This is flow step 3 ("standard 2D P&R
/// engine") plus sign-off. `timer` continues the flow's stage clock
/// and ends up in the returned design's `stage_times`.
///
/// `reuse` is the per-worker stage-artifact view (see
/// [`crate::stage`]): when the matched key prefix covers the route
/// and/or extract boundaries, those stages restore a deep clone of
/// the previous run's snapshot instead of recomputing, and a cold
/// stage stores its boundary snapshot for the next run. Restored
/// artifacts were snapshotted at the exact same program point of a
/// cold run, so warm results are bit-identical.
///
/// # Errors
///
/// Returns [`FlowError::Injected`](crate::error::FlowError::Injected)
/// when the active fault plan injects an error at one of the
/// `flow/route`, `flow/extract` or `flow/sta` gates. Budget
/// exhaustion does not error: the sizing loop stops at its checkpoint
/// and the run completes degraded. (Stage reuse is disabled whenever
/// a budget or fault plan is active — `reuse` arrives as `None`.)
#[allow(clippy::too_many_arguments)]
pub fn finish_design(
    mut design: Design,
    mut placement: Placement,
    ports: PortPlan,
    fp: Floorplan,
    stack: MetalStack,
    logic_metals: usize,
    clock_tree: ClockTree,
    constraints: StaConstraints,
    cfg: &FlowConfig,
    macro_pins_projected: bool,
    sizing_rounds: usize,
    mut timer: StageTimer,
    mut reuse: Option<&mut crate::stage::StageReuse<'_>>,
) -> Result<ImplementedDesign, crate::error::FlowError> {
    let par = cfg.parallelism;
    let die = fp.die();
    crate::error::flow_gate("flow/route")?;
    let routed = match reuse
        .as_deref()
        .and_then(crate::stage::StageReuse::route_snap)
    {
        Some(snap) => snap.routed.clone(),
        None => {
            let obstacles = macro_obstacles(
                &design,
                &fp,
                logic_metals,
                stack.num_layers(),
                macro_pins_projected,
            );
            let nets = route_pins(
                &design,
                &placement,
                &ports,
                logic_metals,
                stack.num_layers(),
                macro_pins_projected,
            );
            let mut router = Router::new(
                &RouteRequest {
                    die,
                    stack: &stack,
                    obstacles: &obstacles,
                    nets: &nets,
                    num_nets: design.num_nets(),
                },
                &cfg.route,
            );
            let routed = router.route();
            if let Some(r) = reuse.as_deref_mut() {
                r.store_route(router, &routed);
            }
            routed
        }
    };
    timer.mark("route");
    crate::error::flow_gate("flow/extract")?;
    let (mut parasitics, clock, cached_session) = match reuse
        .as_deref()
        .and_then(crate::stage::StageReuse::extract_snap)
    {
        Some(snap) => (
            snap.parasitics.clone(),
            snap.clock.clone(),
            snap.session.clone(),
        ),
        None => {
            let parasitics = extract_all(
                &design,
                &placement,
                &ports,
                &stack,
                &routed,
                &constraints,
                Corner::signoff(),
                &par,
            );
            let clock = clock_arrivals(&design, &clock_tree, &parasitics, Corner::signoff());
            if let Some(r) = reuse.as_deref_mut() {
                r.store_extract(&parasitics, &clock);
            }
            (parasitics, clock, None)
        }
    };
    timer.mark("extract");
    crate::error::flow_gate("flow/sta")?;

    // Parametric mode keeps one StaSession alive across the sizing
    // loop: the timing graph is built once and each round re-times
    // only the fan-out cones of the nets `apply_sizing_to_parasitics`
    // reports as touched. Probe mode re-runs the legacy binary-search
    // analysis from scratch every round. A reused session is a copy
    // taken right after graph build (no converged state), so it is
    // indistinguishable from the freshly-built one it replaces.
    let mut session = match cfg.sta_mode {
        StaMode::Parametric => {
            let s = match cached_session {
                Some(s) => s,
                None => StaSession::new(&signoff_input(
                    &design,
                    &parasitics,
                    &routed,
                    &constraints,
                    &clock,
                )),
            };
            if let Some(r) = reuse {
                r.attach_session(&s);
            }
            Some(s)
        }
        StaMode::Probe => None,
    };
    let mut timing = match &mut session {
        Some(s) => s.analyze(
            &signoff_input(&design, &parasitics, &routed, &constraints, &clock),
            &par,
        ),
        None => analyze_with(
            &signoff_input(&design, &parasitics, &routed, &constraints, &clock),
            &par,
            StaMode::Probe,
        ),
    };
    let mut resized: HashSet<InstId> = HashSet::new();
    for round in 0..sizing_rounds {
        // cooperative budget checkpoint: on exhaustion keep the
        // current (valid, already-analyzed) timing and stop sizing
        if let Checkpoint::Stop(reason) = checkpoint("sta/sizing_rounds") {
            note_degradation(
                "sta/sizing_rounds",
                reason,
                format!("stopped after {round} of {sizing_rounds} sizing rounds"),
            );
            break;
        }
        let changes = upsize_critical_path(&mut design, &timing);
        if changes.is_empty() {
            break;
        }
        resized.extend(changes.iter().map(|(i, _)| *i));
        let touched =
            macro3d_sta::opt::apply_sizing_to_parasitics(&design, &changes, &mut parasitics);
        let t2 = match &mut session {
            Some(s) => s.update(
                &signoff_input(&design, &parasitics, &routed, &constraints, &clock),
                &touched,
                &par,
            ),
            None => analyze_with(
                &signoff_input(&design, &parasitics, &routed, &constraints, &clock),
                &par,
                StaMode::Probe,
            ),
        };
        if t2.min_period_ps >= timing.min_period_ps {
            break;
        }
        timing = t2;
    }
    // sizing grew some footprints in place: ECO-legalize the resized
    // cells so the final layout is overlap-free (their extracted
    // parasitics keep the pre-ECO geometry — the usual engineering
    // approximation for post-route sizing)
    if !resized.is_empty() {
        let resized_v: Vec<InstId> = resized.iter().copied().collect();
        let others: Vec<InstId> = design
            .inst_ids()
            .filter(|i| !design.is_macro(*i) && !resized.contains(i))
            .collect();
        macro3d_place::legalize::legalize_incremental(
            &design,
            &fp,
            &mut placement,
            &resized_v,
            &others,
        );
    }
    timer.mark("sta+sizing");

    let mut hold = check_hold(&StaInput {
        design: &design,
        parasitics: &parasitics,
        routed: Some(&routed),
        constraints: &constraints,
        clock: &clock,
        corner: macro3d_tech::Corner::Ff,
    });
    let mut clock = clock;
    if hold.violations > 0 {
        // standard post-CTS hold fixing: delay chains at violating
        // register inputs, then re-check both hold and setup
        let inserted = macro3d_sta::opt::fix_hold(&mut design, &mut placement, &hold, 10_000);
        if !inserted.is_empty() {
            clock.arrival_ps.resize(design.num_insts(), 0.0);
            parasitics.resize(design.num_nets(), NetParasitics::default());
            // ECO-place the delay chains around their registers
            let inserted_set: HashSet<InstId> = inserted.iter().copied().collect();
            let others: Vec<InstId> = design
                .inst_ids()
                .filter(|i| !design.is_macro(*i) && !inserted_set.contains(i))
                .collect();
            macro3d_place::legalize::legalize_incremental(
                &design,
                &fp,
                &mut placement,
                &inserted,
                &others,
            );
            hold = check_hold(&StaInput {
                design: &design,
                parasitics: &parasitics,
                routed: Some(&routed),
                constraints: &constraints,
                clock: &clock,
                corner: macro3d_tech::Corner::Ff,
            });
            // hold fixing added instances and nets: the parametric
            // session notices the structural change and rebuilds its
            // timing graph before re-solving
            timing = match &mut session {
                Some(s) => s.analyze(
                    &signoff_input(&design, &parasitics, &routed, &constraints, &clock),
                    &par,
                ),
                None => analyze_with(
                    &signoff_input(&design, &parasitics, &routed, &constraints, &clock),
                    &par,
                    StaMode::Probe,
                ),
            };
        }
    }

    // power at max frequency, TT corner
    let tt_parasitics = extract_all(
        &design,
        &placement,
        &ports,
        &stack,
        &routed,
        &constraints,
        Corner::power_report(),
        &par,
    );
    let clock_nets: HashSet<NetId> = clock_tree.nets.iter().copied().collect();
    let power = analyze_power(&PowerInput {
        design: &design,
        parasitics: &tt_parasitics,
        clock_nets: &clock_nets,
        freq_mhz: timing.fclk_mhz,
        toggle: constraints.toggle_rate,
        corner: Corner::power_report(),
    });

    timer.mark("hold+power");
    Ok(ImplementedDesign {
        design,
        placement,
        ports,
        fp,
        stack,
        routed,
        parasitics: tt_parasitics,
        clock_tree,
        clock,
        constraints,
        timing,
        hold,
        power,
        logic_metals,
        stage_times: timer.into_times(),
    })
}

/// Total standard-cell area of a design, mm².
pub fn logic_cell_area_mm2(design: &Design) -> f64 {
    design
        .inst_ids()
        .filter(|&i| !design.is_macro(i))
        .map(|i| design.inst_area_um2(i))
        .sum::<f64>()
        / 1e6
}

/// Instances that are standard cells.
pub fn std_cells(design: &Design) -> Vec<InstId> {
    design.inst_ids().filter(|&i| !design.is_macro(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_soc::{generate_tile, TileConfig};
    use macro3d_tech::libgen::n28_library;
    use std::sync::Arc;

    #[test]
    fn pin_layer_projection() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib.clone());
        let inv = lib.smallest(macro3d_tech::CellClass::Inv).expect("inv");
        let cell = d.add_cell("c", inv);
        let mm = d.add_macro_master(macro3d_sram::MemoryCompiler::n28().sram("s", 256, 32));
        let mac = d.add_macro_in("m", mm, 0);
        let port = d.add_port("p", macro3d_tech::PinDir::Input, None);
        let mut pl = Placement::new(&d);

        // cell pins on M1; ports on the top logic metal
        assert_eq!(pin_layer(&d, &pl, PinRef::inst(cell, 0), 6, 10, true), 0);
        assert_eq!(pin_layer(&d, &pl, PinRef::Port(port), 6, 10, true), 5);

        // macro pin on its local M4 when on the logic die
        let m4_pin = d
            .macro_master(macro3d_netlist::MacroMasterId(0))
            .pins
            .iter()
            .position(|p| p.layer.0 == 3)
            .expect("sram pins on M4") as u16;
        assert_eq!(
            pin_layer(&d, &pl, PinRef::inst(mac, m4_pin), 6, 10, true),
            3
        );

        // ... and projected to M4_MD (combined layer 9) on the macro die
        pl.die_of[mac.index()] = DieRole::Macro;
        assert_eq!(
            pin_layer(&d, &pl, PinRef::inst(mac, m4_pin), 6, 10, true),
            9
        );
        // without projection (the S2D pseudo-2D misassumption): local
        assert_eq!(
            pin_layer(&d, &pl, PinRef::inst(mac, m4_pin), 6, 10, false),
            3
        );

        // a cell partitioned to the top die sits on M1_MD (layer 6)
        pl.die_of[cell.index()] = DieRole::Macro;
        assert_eq!(pin_layer(&d, &pl, PinRef::inst(cell, 0), 6, 10, true), 6);
    }

    #[test]
    fn macro_obstacles_follow_die_and_projection() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib.clone());
        let mm = d.add_macro_master(macro3d_sram::MemoryCompiler::n28().sram("s", 256, 32));
        let mac = d.add_macro_in("m", mm, 0);
        let die = Rect::from_um(0.0, 0.0, 500.0, 500.0);
        let mut fp = Floorplan::new(die, lib.row_height(), lib.site_width());
        let size = d.macro_master(macro3d_netlist::MacroMasterId(0)).size;
        fp.add_macro(
            macro3d_place::MacroPlacement {
                inst: mac,
                rect: Rect::from_origin_size(Point::from_um(10.0, 10.0), size),
                die: DieRole::Macro,
            },
            DieRole::Logic,
            Dbu::from_um(2.0),
        );
        // projected: all four SRAM blockage layers land on _MD layers
        let obs = macro_obstacles(&d, &fp, 6, 10, true);
        assert_eq!(obs.len(), 4);
        assert!(obs.iter().all(|(l, _)| (6..10).contains(l)));
        // unprojected: local layers 0..4
        let obs2 = macro_obstacles(&d, &fp, 6, 6, false);
        assert!(obs2.iter().all(|(l, _)| *l < 4));
        // geometry is translated to the placed location
        assert!(obs[0].1.lo.x >= Dbu::from_um(10.0));
    }

    #[test]
    fn area_budget_matches_paper_regime() {
        let tile = generate_tile(&TileConfig::small_cache().with_scale(16.0));
        let cfg = FlowConfig::default();
        let b = area_budget(&tile.design, &cfg);
        // small-cache: ~0.3 mm2 cells, ~0.6 mm2 macros, A3d ~0.55-0.65
        assert!(
            b.cell_um2 / 1e6 > 0.2 && b.cell_um2 / 1e6 < 0.45,
            "{}",
            b.cell_um2 / 1e6
        );
        assert!(
            b.macro_um2 / 1e6 > 0.45 && b.macro_um2 / 1e6 < 0.8,
            "{}",
            b.macro_um2 / 1e6
        );
        assert!(
            b.a3d_um2 / 1e6 > 0.4 && b.a3d_um2 / 1e6 < 0.8,
            "{}",
            b.a3d_um2 / 1e6
        );
    }

    #[test]
    fn mol_assignment_fills_macro_die_first() {
        let tile = generate_tile(&TileConfig::small_cache().with_scale(32.0));
        let cfg = FlowConfig::default();
        let b = area_budget(&tile.design, &cfg);
        let (top, bottom) = assign_macros_mol(&tile.design, b.a3d_um2, &cfg);
        assert!(!top.is_empty());
        // top-die macros fit the utilization budget
        let top_area: f64 = top.iter().map(|&m| tile.design.inst_area_um2(m)).sum();
        assert!(top_area <= b.a3d_um2 * cfg.util_macro);
        // every macro is somewhere
        let total = tile
            .design
            .inst_ids()
            .filter(|&i| tile.design.is_macro(i))
            .count();
        assert_eq!(top.len() + bottom.len(), total);
        // largest macros go on top
        if let (Some(&t), Some(&b0)) = (top.first(), bottom.first()) {
            assert!(tile.design.inst_area_um2(t) >= tile.design.inst_area_um2(b0));
        }
    }
}
