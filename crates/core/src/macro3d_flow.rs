//! The Macro-3D flow — the paper's contribution (Sec. IV).
//!
//! Four steps, exactly as Fig. 2:
//!
//! 1. **Dual floorplans.** Two floorplans with the final F2F
//!    footprint: the macro die is shelf-packed with the largest
//!    macros (up to its utilization target); the remaining macros go
//!    on the logic die's periphery.
//! 2. **Memory-on-logic projection.** The combined BEOL of the whole
//!    stack is built (`M1…M6 → F2F_VIA → M1_MD…`); macro-die macros
//!    are projected into the logic-die floorplan with their substrate
//!    shrunk away (no placement blockage — the paper shrinks them to
//!    filler-cell size) while their pins and internal routing
//!    blockages live on the `_MD` layers at their true positions.
//! 3. **Standard 2D P&R.** The unmodified engine places cells in the
//!    blockage-free area, synthesizes the clock tree, and routes over
//!    the *full* combined stack — crossings of the F2F cut become
//!    bumps, macro pins are reached at their real layers, and routes
//!    may traverse the macro die to dodge congestion. The resulting
//!    parasitics (and therefore PPA) are directly valid for the 3D
//!    stack; no tier partitioning or via planning follows.
//! 4. **Die separation.** The layout splits back into per-die GDS
//!    (see [`crate::layout`]); the F2F via layer appears in both.

use crate::build_cache::{cached_combined_beol, try_cached_mol_floorplan};
use crate::error::{flow_gate, FlowError};
use crate::flow::{
    area_budget, finish_design, place_pipeline, sta_constraints, FlowConfig, ImplementedDesign,
    StageTimer,
};
use crate::stage::{FloorplanSnap, PlaceSnap, StageReuse};
use macro3d_geom::Dbu;
use macro3d_place::floorplan::die_for_area;
use macro3d_place::{Floorplan, PortPlan};
use macro3d_soc::TileNetlist;
use macro3d_tech::stack::DieRole;

/// Runs the Macro-3D flow and returns the implemented design.
///
/// `cfg.macro_metals` selects the macro-die BEOL depth (6 for the
/// main results, 4 for Table III's heterogeneous-stack experiment).
///
/// `reuse` carries the worker's stage-artifact cache (see
/// [`crate::stage`]): when its matched key prefix covers the
/// floorplan or place boundary, the flow re-enters downstream of it
/// on a deep clone of the previous run's snapshot.
///
/// # Errors
///
/// Returns [`FlowError::Floorplan`] if macro packing fails (cannot
/// happen for the paper's configurations with default utilization
/// targets) and [`FlowError::Injected`] when the active fault plan
/// injects an error at a flow gate.
pub(crate) fn implement(
    tile: &TileNetlist,
    cfg: &FlowConfig,
    mut reuse: Option<&mut StageReuse<'_>>,
) -> Result<ImplementedDesign, FlowError> {
    let mut timer = StageTimer::new();
    let constraints = sta_constraints(tile);

    let (design, fp, ports, stack, placement, tree);
    if let Some(snap) = reuse.as_deref().and_then(StageReuse::place_snap) {
        // floorplan + placement reused: restore the post-place state
        // (design already carries repeaters and clock buffers)
        design = snap.design.clone();
        fp = snap.fp.clone();
        ports = snap.ports.clone();
        stack = snap.stack.clone();
        placement = snap.placement.clone();
        tree = snap.tree.clone();
        timer.mark("floorplan");
        timer.mark("place_reused");
    } else {
        let mut d = tile.design.clone();
        let budget = area_budget(&d, cfg);
        let lib = d.library().clone();
        let die = die_for_area(budget.a3d_um2, 1.0, lib.row_height(), lib.site_width());
        let halo = Dbu::from_um(cfg.halo_um);

        let (fp_c, ports_c, stack_c) = match reuse.as_deref().and_then(StageReuse::floorplan_snap) {
            Some(snap) => (snap.fp.clone(), snap.ports.clone(), snap.stack.clone()),
            None => {
                // Step 1: dual floorplans (the MoL seed is shared with
                // the S2D and C2D flows through the build cache).
                flow_gate("flow/floorplan")?;
                let mol = try_cached_mol_floorplan(&d, die, halo, cfg.util_macro, cfg.halo_um)?;
                let (top_placements, bottom_placements) = (&mol.0, &mol.1);

                // Step 2: projection — macro-die macros add
                // pins/obstacles but no placement blockage; logic-die
                // macros block placement as usual.
                let mut fp = Floorplan::new(die, lib.row_height(), lib.site_width());
                for &mp in top_placements {
                    fp.add_macro(mp, DieRole::Logic, halo);
                }
                for &mp in bottom_placements {
                    fp.add_macro(mp, DieRole::Logic, halo);
                }

                let combined = cached_combined_beol(cfg.logic_metals, cfg.macro_metals);
                let ports = PortPlan::assign(&d, die);
                let stack = combined.stack().clone();
                if let Some(r) = reuse.as_deref_mut() {
                    r.store_floorplan(FloorplanSnap {
                        fp: fp.clone(),
                        ports: ports.clone(),
                        stack: stack.clone(),
                    });
                }
                (fp, ports, stack)
            }
        };
        timer.mark("floorplan");

        // Step 3: unmodified 2D P&R over the combined stack.
        flow_gate("flow/place")?;
        let (placement_c, tree_c) =
            place_pipeline(&mut d, &fp_c, &ports_c, &constraints, cfg, &mut timer);
        if let Some(r) = reuse.as_deref_mut() {
            r.store_place(PlaceSnap {
                design: d.clone(),
                fp: fp_c.clone(),
                ports: ports_c.clone(),
                stack: stack_c.clone(),
                placement: placement_c.clone(),
                tree: tree_c.clone(),
            });
        }
        design = d;
        fp = fp_c;
        ports = ports_c;
        stack = stack_c;
        placement = placement_c;
        tree = tree_c;
    }

    finish_design(
        design,
        placement,
        ports,
        fp,
        stack,
        cfg.logic_metals,
        tree,
        constraints,
        cfg,
        true, // macro pins at their true _MD layers
        cfg.sizing_rounds,
        timer,
        reuse,
    )
    // Step 4 (die separation) is available via crate::layout on the
    // returned ImplementedDesign.
}
