//! The unified [`Flow`] API.
//!
//! Every physical-design methodology the paper compares — the 2D
//! baseline, both Shrunk-2D styles, Compact-2D, and Macro-3D itself —
//! implements the same trait, so experiment drivers and benches can
//! iterate a `&[&dyn Flow]` instead of hard-coding one free function
//! per flow:
//!
//! ```no_run
//! use macro3d::flows::{standard_flows, Flow};
//! use macro3d::FlowConfig;
//! use macro3d_soc::{generate_tile, TileConfig};
//!
//! let tile = generate_tile(&TileConfig::small_cache().with_scale(32.0));
//! let cfg = FlowConfig::builder().sizing_rounds(0).build().unwrap();
//! for flow in standard_flows() {
//!     let outcome = flow.run(&tile, &cfg);
//!     println!("{}: {:.0} MHz", flow.name(), outcome.ppa.fclk_mhz);
//! }
//! ```
//!
//! [`Flow::run`] returns a [`FlowOutcome`] carrying the PPA row, the
//! full implemented design (for layout export and figure extraction),
//! and — for the S2D/C2D baselines — the partitioning diagnostics the
//! paper blames for their quality loss.

use crate::error::FlowError;
use crate::flow::{FlowConfig, ImplementedDesign};
use crate::report::PpaResult;
use crate::s2d::{S2dDiagnostics, S2dStyle};
use crate::stage::StageReuse;
use macro3d_obs::{FlowTrace, Session};
use macro3d_par::{BudgetScope, DegradationReport};
use macro3d_soc::TileNetlist;

/// Everything a flow produces in one run.
pub struct FlowOutcome {
    /// The PPA table row (flow label included).
    pub ppa: PpaResult,
    /// The full implemented design (placement, routes, reports).
    pub implemented: ImplementedDesign,
    /// Partitioning diagnostics — `Some` only for the S2D/C2D
    /// baselines, which split cells across dies after the fact.
    pub diagnostics: Option<S2dDiagnostics>,
    /// Observability trace — `Some` when `cfg.obs` was not off.
    pub obs: Option<FlowTrace>,
    /// What the stage budget (or fault plan) cut short, plus residual
    /// violations (non-convergent routing, unplaceable F2F bumps).
    /// Empty for a clean run; see [`DegradationReport::is_degraded`].
    pub degradation: DegradationReport,
    /// How many leading flow stages were restored from the worker's
    /// stage cache instead of recomputed (`0` = fully cold, `4` =
    /// only STA+sizing ran; see [`crate::stage`]). Always `0` when
    /// the run was given no [`StageReuse`].
    pub reuse_depth: usize,
}

/// Runs `body` inside an obs session named after the flow, with the
/// config's budget (and fault plan) installed for the flow thread.
/// The obs level and metrics registry are process-global, so flows
/// must run one at a time (they always have: every driver iterates
/// [`standard_flows`] serially). The obs session and budget scope are
/// torn down on the error path too, so a failed flow never leaks
/// global state into the next run.
fn run_observed<T>(
    name: &str,
    cfg: &FlowConfig,
    body: impl FnOnce() -> Result<T, FlowError>,
) -> Result<(T, DegradationReport, Option<FlowTrace>), FlowError> {
    let session = Session::start(cfg.obs, name);
    let scope = BudgetScope::begin(&cfg.budget, cfg.fault_plan.as_ref());
    let result = body();
    let degradation = scope.finish();
    let obs = session.finish();
    Ok((result?, degradation, obs))
}

/// A complete physical-design methodology, from tile netlist to
/// signed-off PPA.
pub trait Flow {
    /// Stable flow label (used as the PPA column header).
    fn name(&self) -> &str;

    /// Like [`Flow::try_run`], threading a stage-reuse view through
    /// the flow: with `Some(reuse)`, stages whose chained content
    /// keys match the worker's [`crate::stage::StageCache`] restore
    /// deep clones of the previous run's boundary artifacts, and
    /// cold stages store theirs for the next run.
    /// [`FlowOutcome::reuse_depth`] reports the matched prefix.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] naming the failed stage and context.
    fn try_run_reusing(
        &self,
        tile: &TileNetlist,
        cfg: &FlowConfig,
        reuse: Option<&mut StageReuse<'_>>,
    ) -> Result<FlowOutcome, FlowError>;

    /// Implements the tile under `cfg` and signs it off — the primary
    /// entry point. A budget-exhausted run *succeeds* with a
    /// populated [`FlowOutcome::degradation`]; only unrecoverable
    /// failures (unpackable floorplans, injected errors) return
    /// `Err`.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] naming the failed stage and context.
    fn try_run(&self, tile: &TileNetlist, cfg: &FlowConfig) -> Result<FlowOutcome, FlowError> {
        self.try_run_reusing(tile, cfg, None)
    }

    /// Infallible wrapper over [`Self::try_run`] for drivers that
    /// treat any flow failure as fatal (the experiment binaries,
    /// benches, and tests).
    ///
    /// # Panics
    ///
    /// Panics with the flow name and the underlying [`FlowError`].
    fn run(&self, tile: &TileNetlist, cfg: &FlowConfig) -> FlowOutcome {
        match self.try_run(tile, cfg) {
            Ok(outcome) => outcome,
            Err(e) => panic!("flow '{}' failed: {e}", self.name()),
        }
    }
}

/// The conventional 2D flow (see [`crate::flow2d`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Flow2d;

impl Flow for Flow2d {
    fn name(&self) -> &str {
        "2D"
    }

    fn try_run_reusing(
        &self,
        tile: &TileNetlist,
        cfg: &FlowConfig,
        reuse: Option<&mut StageReuse<'_>>,
    ) -> Result<FlowOutcome, FlowError> {
        let reuse_depth = reuse.as_deref().map_or(0, StageReuse::start_stage);
        let (implemented, degradation, obs) = run_observed(self.name(), cfg, || {
            crate::flow2d::implement(tile, cfg, reuse)
        })?;
        Ok(FlowOutcome {
            ppa: PpaResult::from_impl(self.name(), &implemented),
            implemented,
            diagnostics: None,
            obs,
            degradation,
            reuse_depth,
        })
    }
}

/// The Shrunk-2D baseline in either floorplan style (see
/// [`crate::s2d`]).
#[derive(Clone, Copy, Debug)]
pub struct S2d {
    /// Macro floorplan style (memory-on-logic or balanced).
    pub style: S2dStyle,
}

impl Flow for S2d {
    fn name(&self) -> &str {
        match self.style {
            S2dStyle::MemoryOnLogic => "MoL S2D",
            S2dStyle::Balanced => "BF S2D",
        }
    }

    fn try_run_reusing(
        &self,
        tile: &TileNetlist,
        cfg: &FlowConfig,
        reuse: Option<&mut StageReuse<'_>>,
    ) -> Result<FlowOutcome, FlowError> {
        let reuse_depth = reuse.as_deref().map_or(0, StageReuse::start_stage);
        let ((implemented, diag), degradation, obs) = run_observed(self.name(), cfg, || {
            crate::s2d::implement(tile, cfg, self.style, reuse)
        })?;
        let mut ppa = PpaResult::from_impl(self.name(), &implemented);
        ppa.metal_area_mm2 = ppa.footprint_mm2 * (cfg.logic_metals + cfg.macro_metals) as f64;
        Ok(FlowOutcome {
            ppa,
            implemented,
            diagnostics: Some(diag),
            obs,
            degradation,
            reuse_depth,
        })
    }
}

/// The Compact-2D baseline (see [`crate::c2d`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct C2d;

impl Flow for C2d {
    fn name(&self) -> &str {
        "C2D"
    }

    fn try_run_reusing(
        &self,
        tile: &TileNetlist,
        cfg: &FlowConfig,
        reuse: Option<&mut StageReuse<'_>>,
    ) -> Result<FlowOutcome, FlowError> {
        let reuse_depth = reuse.as_deref().map_or(0, StageReuse::start_stage);
        let ((implemented, diag), degradation, obs) =
            run_observed(self.name(), cfg, || crate::c2d::implement(tile, cfg, reuse))?;
        let mut ppa = PpaResult::from_impl(self.name(), &implemented);
        ppa.metal_area_mm2 = ppa.footprint_mm2 * (cfg.logic_metals + cfg.macro_metals) as f64;
        Ok(FlowOutcome {
            ppa,
            implemented,
            diagnostics: Some(diag),
            obs,
            degradation,
            reuse_depth,
        })
    }
}

/// The Macro-3D flow — the paper's contribution (see
/// [`crate::macro3d_flow`]). The PPA label records the per-die metal
/// depths (e.g. `"Macro-3D M6-M4"`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Macro3d;

impl Flow for Macro3d {
    fn name(&self) -> &str {
        "Macro-3D"
    }

    fn try_run_reusing(
        &self,
        tile: &TileNetlist,
        cfg: &FlowConfig,
        reuse: Option<&mut StageReuse<'_>>,
    ) -> Result<FlowOutcome, FlowError> {
        let reuse_depth = reuse.as_deref().map_or(0, StageReuse::start_stage);
        let (implemented, degradation, obs) = run_observed(self.name(), cfg, || {
            crate::macro3d_flow::implement(tile, cfg, reuse)
        })?;
        let mut ppa = PpaResult::from_impl(
            format!("Macro-3D M{}-M{}", cfg.logic_metals, cfg.macro_metals),
            &implemented,
        );
        // per-die footprint x per-die layer counts
        ppa.metal_area_mm2 = ppa.footprint_mm2 * (cfg.logic_metals + cfg.macro_metals) as f64;
        Ok(FlowOutcome {
            ppa,
            implemented,
            diagnostics: None,
            obs,
            degradation,
            reuse_depth,
        })
    }
}

/// The four flows of the paper's Table I, in column order: 2D,
/// MoL S2D, BF S2D, Macro-3D.
pub fn standard_flows() -> [&'static dyn Flow; 4] {
    [
        &Flow2d,
        &S2d {
            style: S2dStyle::MemoryOnLogic,
        },
        &S2d {
            style: S2dStyle::Balanced,
        },
        &Macro3d,
    ]
}

/// Every flow in the repo (Table I's four plus C2D).
pub fn all_flows() -> [&'static dyn Flow; 5] {
    [
        &Flow2d,
        &S2d {
            style: S2dStyle::MemoryOnLogic,
        },
        &S2d {
            style: S2dStyle::Balanced,
        },
        &C2d,
        &Macro3d,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = all_flows().iter().map(|f| f.name()).collect();
        assert_eq!(names, ["2D", "MoL S2D", "BF S2D", "C2D", "Macro-3D"]);
    }

    #[test]
    fn table1_order() {
        let names: Vec<&str> = standard_flows().iter().map(|f| f.name()).collect();
        assert_eq!(names, ["2D", "MoL S2D", "BF S2D", "Macro-3D"]);
    }
}
