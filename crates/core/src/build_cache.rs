//! Content-keyed cache of flow build artifacts.
//!
//! `run_experiments` drives four flows over the same tile, and every
//! flow used to regenerate identical inputs from scratch: the tile
//! netlist, the n28 metal stacks and combined BEOL, the SRAM macro
//! models, and the memory-on-logic floorplan seed (the Macro-3D, MoL
//! S2D and Compact-2D flows all split and pack macros on the *same*
//! 3D die). [`BuildCache`] memoizes those artifacts behind content
//! keys so each is built once per process.
//!
//! Entries are immutable `Arc`s: a hit is a clone of the pointer, so
//! cached artifacts are shared, never rebuilt, and safe to use from
//! concurrent flows. Keys embed the full generating configuration
//! (plus the stored type's name), so two different configurations can
//! never collide — the cache changes wall-clock time, not results.

use macro3d_geom::{Dbu, Rect};
use macro3d_netlist::Design;
use macro3d_place::MacroPlacement;
use macro3d_soc::{generate_tile, TileConfig, TileNetlist};
use macro3d_sram::{MacroDef, MemoryCompiler};
use macro3d_tech::stack::{n28_stack, DieRole, MetalStack};
use macro3d_tech::{CombinedBeol, F2fSpec};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A memory-on-logic macro floorplan pair: `(logic-die placements,
/// macro-die placements)` — the cached artifact shared by the
/// Macro-3D, MoL S2D and Compact-2D flows.
pub type MolFloorplans = (Vec<MacroPlacement>, Vec<MacroPlacement>);

/// Hit/miss counters and entry count of a [`BuildCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the artifact.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A content-keyed, type-erased artifact cache (see the module docs).
#[derive(Default)]
pub struct BuildCache {
    entries: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BuildCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the artifact for `key`, building (and storing) it on
    /// the first request. The stored type's name is part of the
    /// effective key, so the same string key may safely cache
    /// different types.
    ///
    /// The builder runs *outside* the cache lock; if two threads race
    /// on the same cold key both build, the first insert wins, and
    /// both receive the winning value.
    // INVARIANT: the stored type's name is embedded in the key, so
    // every downcast below retrieves the type that was inserted.
    #[allow(clippy::expect_used)]
    pub fn get_or_build<T, F>(&self, key: &str, build: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> T,
    {
        let full_key = format!("{}\u{1f}{key}", std::any::type_name::<T>());
        if let Some(hit) = self.lock().get(&full_key) {
            let hit = Arc::clone(hit);
            self.hits.fetch_add(1, Ordering::Relaxed);
            record_obs(key, true);
            return hit.downcast::<T>().expect("type name is part of the key");
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        record_obs(key, false);
        // Cached artifacts are shared by later runs in the process, so
        // they must not depend on any single run's budget or fault
        // plan: budget checkpoints are inert while a builder runs.
        let _budget_inert = macro3d_par::RegionGuard::enter();
        let built: Arc<dyn Any + Send + Sync> = Arc::new(build());
        let stored = Arc::clone(
            self.lock()
                .entry(full_key)
                .or_insert_with(|| Arc::clone(&built)),
        );
        stored
            .downcast::<T>()
            .expect("type name is part of the key")
    }

    /// Fallible [`Self::get_or_build`]: the builder may fail, and
    /// failures are returned to the caller instead of cached (a
    /// deterministic failure simply recomputes — it is rare and
    /// cheap relative to poisoning the cache with error values).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error on a cache miss.
    // INVARIANT: same type-in-key downcast guarantee as `get_or_build`
    #[allow(clippy::expect_used)]
    pub fn try_get_or_build<T, E, F>(&self, key: &str, build: F) -> Result<Arc<T>, E>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> Result<T, E>,
    {
        let full_key = format!("{}\u{1f}{key}", std::any::type_name::<T>());
        if let Some(hit) = self.lock().get(&full_key) {
            let hit = Arc::clone(hit);
            self.hits.fetch_add(1, Ordering::Relaxed);
            record_obs(key, true);
            return Ok(hit.downcast::<T>().expect("type name is part of the key"));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        record_obs(key, false);
        // same budget-inert region as `get_or_build`
        let _budget_inert = macro3d_par::RegionGuard::enter();
        let built: Arc<dyn Any + Send + Sync> = Arc::new(build()?);
        let stored = Arc::clone(
            self.lock()
                .entry(full_key)
                .or_insert_with(|| Arc::clone(&built)),
        );
        Ok(stored
            .downcast::<T>()
            .expect("type name is part of the key"))
    }

    /// Drops every entry (counters keep running).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock().len(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<dyn Any + Send + Sync>>> {
        // builders run outside the lock, so the critical sections
        // cannot panic; tolerate poisoning anyway rather than abort
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Feeds an obs counter per artifact kind (the key prefix before the
/// first `/`: `tile`, `stack`, `beol`, `sram`, `fp-mol`, `fp-2d`).
/// One branch when observability is off; lookups already take the
/// cache mutex, so the registry lookup on the slow path is in budget.
fn record_obs(key: &str, hit: bool) {
    if !macro3d_obs::enabled(macro3d_obs::ObsLevel::Summary) {
        return;
    }
    let kind = key.split('/').next().unwrap_or(key);
    let outcome = if hit { "hits" } else { "misses" };
    macro3d_obs::registry()
        .counter(&format!("cache/{kind}/{outcome}"))
        .inc();
}

/// The process-wide cache every flow helper below goes through.
pub fn global() -> &'static BuildCache {
    static GLOBAL: OnceLock<BuildCache> = OnceLock::new();
    GLOBAL.get_or_init(BuildCache::new)
}

/// Cached [`generate_tile`]: one netlist per [`TileConfig`] per
/// process. `TileConfig`'s `Debug` form covers every generation input
/// (sizes, scale, seed), so it is the content key.
pub fn cached_tile(cfg: &TileConfig) -> Arc<TileNetlist> {
    global().get_or_build(&format!("tile/{cfg:?}"), || generate_tile(cfg))
}

/// Cached [`n28_stack`].
pub fn cached_stack(metals: usize, die: DieRole) -> Arc<MetalStack> {
    global().get_or_build(&format!("stack/n28/{metals}/{die:?}"), || {
        n28_stack(metals, die)
    })
}

/// Cached combined MoL BEOL (`M1…Mn → F2F_VIA → M1_MD…`) for the
/// standard n28 hybrid-bond spec, shared by the Macro-3D, S2D and C2D
/// final stacks.
pub fn cached_combined_beol(logic_metals: usize, macro_metals: usize) -> Arc<CombinedBeol> {
    global().get_or_build(&format!("beol/n28/{logic_metals}/{macro_metals}"), || {
        CombinedBeol::build(
            &cached_stack(logic_metals, DieRole::Logic),
            &cached_stack(macro_metals, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        )
    })
}

/// Cached SRAM macro model from the given compiler process.
///
/// `process` must name the compiler configuration (e.g. `"n28"`) —
/// it, not the compiler instance, is the cache key.
pub fn cached_sram(
    process: &str,
    compiler: &MemoryCompiler,
    words: u32,
    bits: u32,
) -> Arc<MacroDef> {
    global().get_or_build(&format!("sram/{process}/{words}x{bits}"), || {
        compiler.sram(&format!("sram_{words}x{bits}"), words, bits)
    })
}

/// Cached memory-on-logic floorplan seed: the
/// [`crate::flow::assign_macros_mol`] split followed by
/// [`crate::flow::pack_mol_floorplans`], keyed by the design content,
/// die and packing knobs. Macro-3D, MoL S2D and Compact-2D all pack
/// the same macros on the same 3D-footprint die, so one build serves
/// all three flows.
///
/// The pair is `(logic-die placements, macro-die placements)`.
pub fn cached_mol_floorplan(
    design: &Design,
    die: Rect,
    halo: Dbu,
    util_macro: f64,
    halo_um: f64,
) -> Arc<MolFloorplans> {
    match try_cached_mol_floorplan(design, die, halo, util_macro, halo_um) {
        Ok(fp) => fp,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`cached_mol_floorplan`]: packing failures surface as a
/// typed [`FlowError`](crate::error::FlowError) instead of a panic
/// (and are not cached — see [`BuildCache::try_get_or_build`]).
///
/// # Errors
///
/// Returns [`crate::error::FlowError::Floorplan`] when the macros
/// cannot be packed on `die`.
pub fn try_cached_mol_floorplan(
    design: &Design,
    die: Rect,
    halo: Dbu,
    util_macro: f64,
    halo_um: f64,
) -> Result<Arc<MolFloorplans>, crate::error::FlowError> {
    let key = format!(
        "fp-mol/{:016x}/{die:?}/{halo:?}/{util_macro}/{halo_um}",
        design_fingerprint(design)
    );
    global().try_get_or_build(&key, || {
        let cfg = crate::flow::FlowConfig {
            util_macro,
            halo_um,
            ..crate::flow::FlowConfig::default()
        };
        let (top, bottom) = crate::flow::assign_macros_mol(design, die.area_um2(), &cfg);
        crate::flow::try_pack_mol_floorplans(design, die, halo, top, bottom)
    })
}

/// Order-sensitive structural fingerprint of a design: name, entity
/// counts, per-net pin counts and per-instance master kinds. Two
/// designs from the same deterministic generator configuration hash
/// equal; any structural edit (added cell, moved pin) changes it.
pub fn design_fingerprint(design: &Design) -> u64 {
    // FNV-1a, dependency-free
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let eat_u64 = |h: &mut u64, v: u64| {
        for byte in v.to_le_bytes() {
            *h ^= byte as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for b in design.name().bytes() {
        eat(b);
    }
    eat_u64(&mut h, design.num_insts() as u64);
    eat_u64(&mut h, design.num_nets() as u64);
    eat_u64(&mut h, design.num_ports() as u64);
    for n in design.net_ids() {
        eat_u64(&mut h, design.net(n).pins.len() as u64);
    }
    for i in design.inst_ids() {
        let kind = match design.inst(i).master {
            macro3d_netlist::Master::Cell(c) => c.0 as u64,
            macro3d_netlist::Master::Macro(m) => (1 << 32) | m.0 as u64,
        };
        eat_u64(&mut h, kind);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = BuildCache::new();
        let a = cache.get_or_build("k", || vec![1u32, 2, 3]);
        let b = cache.get_or_build("k", || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn same_key_different_types_do_not_collide() {
        let cache = BuildCache::new();
        let v: Arc<u32> = cache.get_or_build("k", || 7u32);
        let s: Arc<String> = cache.get_or_build("k", || "seven".to_string());
        assert_eq!(*v, 7);
        assert_eq!(*s, "seven");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn clear_forces_rebuild() {
        let cache = BuildCache::new();
        let _ = cache.get_or_build("k", || 1u8);
        cache.clear();
        let again = cache.get_or_build("k", || 2u8);
        assert_eq!(*again, 2);
    }

    #[test]
    fn tile_is_built_once_per_config() {
        // pointer equality, not counters: other tests share the
        // global cache concurrently
        let cfg = TileConfig::small_cache().with_scale(512.0);
        let t1 = cached_tile(&cfg);
        let t2 = cached_tile(&cfg);
        assert!(Arc::ptr_eq(&t1, &t2));
        // a different scale is a different artifact
        let t3 = cached_tile(&cfg.clone().with_scale(256.0));
        assert!(!Arc::ptr_eq(&t1, &t3));
    }

    #[test]
    fn fingerprint_separates_structures() {
        let t1 = cached_tile(&TileConfig::small_cache().with_scale(512.0));
        let t2 = cached_tile(&TileConfig::small_cache().with_scale(256.0));
        assert_eq!(
            design_fingerprint(&t1.design),
            design_fingerprint(&t1.design)
        );
        assert_ne!(
            design_fingerprint(&t1.design),
            design_fingerprint(&t2.design)
        );
    }

    #[test]
    fn mol_floorplan_is_shared_across_flows() {
        let tile = cached_tile(&TileConfig::small_cache().with_scale(512.0));
        let die = Rect::from_um(0.0, 0.0, 2000.0, 2000.0);
        let halo = Dbu::from_um(2.0);
        let a = cached_mol_floorplan(&tile.design, die, halo, 0.85, 2.0);
        let b = cached_mol_floorplan(&tile.design, die, halo, 0.85, 2.0);
        assert!(Arc::ptr_eq(&a, &b));
        // a different utilization is a different seed
        let c = cached_mol_floorplan(&tile.design, die, halo, 0.5, 2.0);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn beol_and_stack_cache_roundtrip() {
        let s1 = cached_stack(6, DieRole::Logic);
        let s2 = cached_stack(6, DieRole::Logic);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(*s1, n28_stack(6, DieRole::Logic));
        let b1 = cached_combined_beol(6, 4);
        let b2 = cached_combined_beol(6, 4);
        assert!(Arc::ptr_eq(&b1, &b2));

        let compiler = MemoryCompiler::n28();
        let d1 = cached_sram("n28", &compiler, 256, 32);
        let d2 = cached_sram("n28", &compiler, 256, 32);
        assert!(Arc::ptr_eq(&d1, &d2));
    }
}
