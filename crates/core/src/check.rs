//! Post-flow sign-off checks.
//!
//! A lightweight physical-verification pass over an
//! [`ImplementedDesign`]: placement legality, die containment, route
//! coverage, and 3D-specific invariants (cells on the logic die for
//! MoL designs, F2F parity for inter-die nets). The integration tests
//! run it after every flow; downstream users can call it after custom
//! flows.

use crate::flow::ImplementedDesign;
use macro3d_geom::Rect;
use macro3d_netlist::{Master, PinRef};
use macro3d_place::density::count_overlaps;
use macro3d_route::RoutedDesign;
use macro3d_tech::stack::DieRole;
use std::fmt;

/// Violations found by [`verify`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckReport {
    /// Pairs of overlapping standard cells on the same die.
    pub cell_overlaps: usize,
    /// Instances whose footprint leaves the die.
    pub out_of_die: usize,
    /// Multi-pin signal nets without a route.
    pub unrouted_nets: usize,
    /// Inter-die nets whose route never crosses the F2F cut (only
    /// meaningful for combined-stack designs).
    pub missing_crossings: usize,
    /// Routed wire segments with an endpoint outside the die bounding
    /// box.
    pub route_out_of_die: usize,
    /// Netlist consistency error, if any.
    pub netlist_error: Option<String>,
}

impl CheckReport {
    /// True when nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Total violation count across every check (a netlist error
    /// counts as one).
    pub fn total(&self) -> usize {
        self.cell_overlaps
            + self.out_of_die
            + self.unrouted_nets
            + self.missing_crossings
            + self.route_out_of_die
            + usize::from(self.netlist_error.is_some())
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overlaps: {}, out-of-die: {}, unrouted: {}, missing F2F crossings: {}, \
             route-out-of-die: {}, netlist: {} ({} total)",
            self.cell_overlaps,
            self.out_of_die,
            self.unrouted_nets,
            self.missing_crossings,
            self.route_out_of_die,
            self.netlist_error.as_deref().unwrap_or("ok"),
            self.total()
        )
    }
}

/// Counts routed wire segments with an endpoint outside `die`. Unlike
/// [`Rect::contains`], the die boundary itself counts as inside — a
/// wire hugging the edge is legal.
pub fn route_segments_outside(die: Rect, routed: &RoutedDesign) -> usize {
    let inside = |p: macro3d_geom::Point| {
        p.x >= die.lo.x && p.x <= die.hi.x && p.y >= die.lo.y && p.y <= die.hi.y
    };
    routed
        .nets
        .iter()
        .flatten()
        .flat_map(|net| &net.segments)
        .filter(|seg| !inside(seg.from) || !inside(seg.to))
        .count()
}

/// Runs all checks over an implemented design.
pub fn verify(imp: &ImplementedDesign) -> CheckReport {
    let design = &imp.design;
    let die = imp.fp.die();
    let mut report = CheckReport::default();

    if let Err(e) = design.validate() {
        report.netlist_error = Some(e.to_string());
    }

    // per-die overlap check among standard cells
    for die_role in [DieRole::Logic, DieRole::Macro] {
        let cells: Vec<_> = design
            .inst_ids()
            .filter(|&i| !design.is_macro(i) && imp.placement.die_of[i.index()] == die_role)
            .collect();
        report.cell_overlaps += count_overlaps(design, &imp.placement, &cells);
    }

    for i in design.inst_ids() {
        if !die.contains_rect(imp.placement.rect(design, i)) {
            report.out_of_die += 1;
        }
    }

    report.route_out_of_die = route_segments_outside(die, &imp.routed);

    let has_f2f = imp.stack.f2f_cut().is_some();
    for n in design.net_ids() {
        let pins = &design.net(n).pins;
        if pins.len() < 2 {
            continue;
        }
        let Some(routed) = imp.routed.net(n) else {
            // oversized nets are legitimately skipped by the router
            if pins.len() <= 64 {
                report.unrouted_nets += 1;
            }
            continue;
        };
        if has_f2f {
            // a net touching both dies must cross the bond
            let mut dies = [false, false];
            for &p in pins {
                let d = match p {
                    PinRef::Inst { inst, .. } => match design.inst(inst).master {
                        Master::Cell(_) => imp.placement.die_of[inst.index()],
                        Master::Macro(_) => imp.placement.die_of[inst.index()],
                    },
                    PinRef::Port(_) => DieRole::Logic,
                };
                dies[matches!(d, DieRole::Macro) as usize] = true;
            }
            if dies[0] && dies[1] && routed.f2f_crossings == 0 {
                report.missing_crossings += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean() {
        let r = CheckReport::default();
        assert!(r.is_clean());
        assert_eq!(r.total(), 0);
        assert!(r.to_string().contains("netlist: ok"));
    }

    #[test]
    fn any_flag_marks_dirty() {
        let r = CheckReport {
            unrouted_nets: 1,
            ..CheckReport::default()
        };
        assert!(!r.is_clean());
        let r = CheckReport {
            netlist_error: Some("boom".into()),
            ..CheckReport::default()
        };
        assert!(!r.is_clean());
        let r = CheckReport {
            route_out_of_die: 2,
            ..CheckReport::default()
        };
        assert!(!r.is_clean());
    }

    #[test]
    fn total_sums_every_category() {
        let r = CheckReport {
            cell_overlaps: 1,
            out_of_die: 2,
            unrouted_nets: 3,
            missing_crossings: 4,
            route_out_of_die: 5,
            netlist_error: Some("boom".into()),
        };
        assert_eq!(r.total(), 16);
    }

    #[test]
    fn display_renders_every_count() {
        let r = CheckReport {
            cell_overlaps: 1,
            out_of_die: 2,
            unrouted_nets: 3,
            missing_crossings: 4,
            route_out_of_die: 5,
            netlist_error: None,
        };
        let s = r.to_string();
        assert_eq!(
            s,
            "overlaps: 1, out-of-die: 2, unrouted: 3, missing F2F crossings: 4, \
             route-out-of-die: 5, netlist: ok (15 total)"
        );
    }

    #[test]
    fn route_segments_outside_flags_escapes() {
        use macro3d_geom::Point;
        use macro3d_route::{RouteSeg, RoutedNet};

        let die = macro3d_geom::Rect::from_um(0.0, 0.0, 100.0, 100.0);
        let seg = |x0: f64, y0: f64, x1: f64, y1: f64| RouteSeg {
            layer: 0,
            from: Point::from_um(x0, y0),
            to: Point::from_um(x1, y1),
        };
        let routed = RoutedDesign {
            nets: vec![
                Some(RoutedNet {
                    // inside; on the boundary counts as inside
                    segments: vec![seg(0.0, 0.0, 100.0, 0.0), seg(10.0, 10.0, 10.0, 90.0)],
                    ..RoutedNet::default()
                }),
                None,
                Some(RoutedNet {
                    // one endpoint out, then both out: two violations
                    segments: vec![seg(90.0, 90.0, 110.0, 90.0), seg(110.0, 90.0, 110.0, 120.0)],
                    ..RoutedNet::default()
                }),
            ],
            ..RoutedDesign::default()
        };
        assert_eq!(route_segments_outside(die, &routed), 2);
    }
}
