//! Post-flow sign-off checks.
//!
//! A lightweight physical-verification pass over an
//! [`ImplementedDesign`]: placement legality, die containment, route
//! coverage, and 3D-specific invariants (cells on the logic die for
//! MoL designs, F2F parity for inter-die nets). The integration tests
//! run it after every flow; downstream users can call it after custom
//! flows.

use crate::flow::ImplementedDesign;
use macro3d_netlist::{Master, PinRef};
use macro3d_place::density::count_overlaps;
use macro3d_tech::stack::DieRole;
use std::fmt;

/// Violations found by [`verify`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckReport {
    /// Pairs of overlapping standard cells on the same die.
    pub cell_overlaps: usize,
    /// Instances whose footprint leaves the die.
    pub out_of_die: usize,
    /// Multi-pin signal nets without a route.
    pub unrouted_nets: usize,
    /// Inter-die nets whose route never crosses the F2F cut (only
    /// meaningful for combined-stack designs).
    pub missing_crossings: usize,
    /// Netlist consistency error, if any.
    pub netlist_error: Option<String>,
}

impl CheckReport {
    /// True when nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.cell_overlaps == 0
            && self.out_of_die == 0
            && self.unrouted_nets == 0
            && self.missing_crossings == 0
            && self.netlist_error.is_none()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overlaps: {}, out-of-die: {}, unrouted: {}, missing F2F crossings: {}, netlist: {}",
            self.cell_overlaps,
            self.out_of_die,
            self.unrouted_nets,
            self.missing_crossings,
            self.netlist_error.as_deref().unwrap_or("ok")
        )
    }
}

/// Runs all checks over an implemented design.
pub fn verify(imp: &ImplementedDesign) -> CheckReport {
    let design = &imp.design;
    let die = imp.fp.die();
    let mut report = CheckReport::default();

    if let Err(e) = design.validate() {
        report.netlist_error = Some(e.to_string());
    }

    // per-die overlap check among standard cells
    for die_role in [DieRole::Logic, DieRole::Macro] {
        let cells: Vec<_> = design
            .inst_ids()
            .filter(|&i| !design.is_macro(i) && imp.placement.die_of[i.index()] == die_role)
            .collect();
        report.cell_overlaps += count_overlaps(design, &imp.placement, &cells);
    }

    for i in design.inst_ids() {
        if !die.contains_rect(imp.placement.rect(design, i)) {
            report.out_of_die += 1;
        }
    }

    let has_f2f = imp.stack.f2f_cut().is_some();
    for n in design.net_ids() {
        let pins = &design.net(n).pins;
        if pins.len() < 2 {
            continue;
        }
        let Some(routed) = imp.routed.net(n) else {
            // oversized nets are legitimately skipped by the router
            if pins.len() <= 64 {
                report.unrouted_nets += 1;
            }
            continue;
        };
        if has_f2f {
            // a net touching both dies must cross the bond
            let mut dies = [false, false];
            for &p in pins {
                let d = match p {
                    PinRef::Inst { inst, .. } => match design.inst(inst).master {
                        Master::Cell(_) => imp.placement.die_of[inst.index()],
                        Master::Macro(_) => imp.placement.die_of[inst.index()],
                    },
                    PinRef::Port(_) => DieRole::Logic,
                };
                dies[matches!(d, DieRole::Macro) as usize] = true;
            }
            if dies[0] && dies[1] && routed.f2f_crossings == 0 {
                report.missing_crossings += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean() {
        let r = CheckReport::default();
        assert!(r.is_clean());
        assert!(r.to_string().contains("netlist: ok"));
    }

    #[test]
    fn any_flag_marks_dirty() {
        let r = CheckReport {
            unrouted_nets: 1,
            ..CheckReport::default()
        };
        assert!(!r.is_clean());
        let r = CheckReport {
            netlist_error: Some("boom".into()),
            ..CheckReport::default()
        };
        assert!(!r.is_clean());
    }
}
