//! The conventional 2D flow (baseline of every table).
//!
//! Macros are packed around the die periphery (Fig. 4's 2D
//! floorplans), standard cells fill the centre, everything is placed
//! and routed with the six-metal single-die stack, and PPA is signed
//! off at SS / reported at TT. The footprint is exactly twice the 3D
//! footprint (equal total silicon, per the paper's fairness rule).

use crate::build_cache::{cached_stack, design_fingerprint};
use crate::error::{flow_gate, FlowError};
use crate::flow::{
    area_budget, finish_design, place_pipeline, sta_constraints, FlowConfig, ImplementedDesign,
    StageTimer,
};
use crate::stage::{FloorplanSnap, PlaceSnap, StageReuse};
use macro3d_geom::Dbu;
use macro3d_place::floorplan::die_for_area;
use macro3d_place::macro_place::{pack_bands, pack_ring, pack_shelves};
use macro3d_place::{Floorplan, PortPlan};
use macro3d_soc::TileNetlist;
use macro3d_tech::stack::DieRole;

/// Runs the 2D baseline flow and returns the implemented design.
///
/// `reuse` carries the worker's stage-artifact cache (see
/// [`crate::stage`]); matched floorplan/place prefixes re-enter the
/// flow downstream on deep clones of the previous run's snapshots.
///
/// # Errors
///
/// Returns [`FlowError::Floorplan`] if the macros cannot be packed on
/// the computed die (cannot happen for the paper's configurations
/// with default utilization targets) and [`FlowError::Injected`] when
/// the active fault plan injects an error at a flow gate.
pub(crate) fn implement(
    tile: &TileNetlist,
    cfg: &FlowConfig,
    mut reuse: Option<&mut StageReuse<'_>>,
) -> Result<ImplementedDesign, FlowError> {
    let mut timer = StageTimer::new();
    let constraints = sta_constraints(tile);

    let (design, fp, ports, stack, placement, tree);
    if let Some(snap) = reuse.as_deref().and_then(StageReuse::place_snap) {
        design = snap.design.clone();
        fp = snap.fp.clone();
        ports = snap.ports.clone();
        stack = snap.stack.clone();
        placement = snap.placement.clone();
        tree = snap.tree.clone();
        timer.mark("floorplan");
        timer.mark("place_reused");
    } else {
        let mut d = tile.design.clone();
        let budget = area_budget(&d, cfg);
        let lib = d.library().clone();

        // 2x the 3D footprint: same silicon area in both styles.
        let die = die_for_area(
            2.0 * budget.a3d_um2,
            1.0,
            lib.row_height(),
            lib.site_width(),
        );
        let halo = Dbu::from_um(cfg.halo_um);

        let (fp_c, ports_c, stack_c) = match reuse.as_deref().and_then(StageReuse::floorplan_snap) {
            Some(snap) => (snap.fp.clone(), snap.ports.clone(), snap.stack.clone()),
            None => {
                let mut fp = Floorplan::new(die, lib.row_height(), lib.site_width());
                let macros: Vec<_> = d.inst_ids().filter(|&i| d.is_macro(i)).collect();
                // macro-light dies use the periphery ring (small-cache
                // Fig. 4); macro-heavy dies interleave macro bands with
                // cell strips (large-cache Fig. 5), which keeps wire
                // detours short
                let macro_fraction = budget.macro_um2 / (budget.macro_um2 + budget.cell_um2);
                let cell_fraction = (budget.cell_um2 / cfg.util_logic)
                    / (budget.cell_um2 / cfg.util_logic + budget.macro_um2 / cfg.util_macro);
                let fp_key = format!(
                    "fp-2d/{:016x}/{die:?}/{halo:?}/{:.6}/{:.6}",
                    design_fingerprint(&d),
                    macro_fraction,
                    cell_fraction
                );
                flow_gate("flow/floorplan")?;
                let placements = crate::build_cache::global().try_get_or_build(&fp_key, || {
                    let mut packed = if macro_fraction > 0.7 {
                        pack_bands(&d, &macros, die, halo, cell_fraction.min(0.9))
                            .or_else(|| pack_ring(&d, &macros, die, halo))
                    } else {
                        pack_ring(&d, &macros, die, halo)
                    }
                    .or_else(|| pack_shelves(&d, &macros, die, halo, DieRole::Logic))
                    .ok_or_else(|| FlowError::Floorplan {
                        stage: "2d/macro_pack",
                        detail: format!(
                            "{} macros do not fit the {:.0}x{:.0}um 2D die",
                            macros.len(),
                            die.width().to_um(),
                            die.height().to_um()
                        ),
                    })?;
                    // same floorplan-optimization step as the 3D flows
                    use macro3d_place::macro_anneal::{refine_macros_sa, AnnealConfig};
                    refine_macros_sa(&d, &mut packed, die, halo, &AnnealConfig::default());
                    Ok::<_, FlowError>(packed)
                })?;
                for &mp in placements.iter() {
                    fp.add_macro(mp, DieRole::Logic, halo);
                }

                let ports = PortPlan::assign(&d, die);
                let stack = (*cached_stack(cfg.logic_metals, DieRole::Logic)).clone();
                if let Some(r) = reuse.as_deref_mut() {
                    r.store_floorplan(FloorplanSnap {
                        fp: fp.clone(),
                        ports: ports.clone(),
                        stack: stack.clone(),
                    });
                }
                (fp, ports, stack)
            }
        };
        timer.mark("floorplan");
        flow_gate("flow/place")?;
        let (placement_c, tree_c) =
            place_pipeline(&mut d, &fp_c, &ports_c, &constraints, cfg, &mut timer);
        if let Some(r) = reuse.as_deref_mut() {
            r.store_place(PlaceSnap {
                design: d.clone(),
                fp: fp_c.clone(),
                ports: ports_c.clone(),
                stack: stack_c.clone(),
                placement: placement_c.clone(),
                tree: tree_c.clone(),
            });
        }
        design = d;
        fp = fp_c;
        ports = ports_c;
        stack = stack_c;
        placement = placement_c;
        tree = tree_c;
    }

    let logic_metals = cfg.logic_metals;
    finish_design(
        design,
        placement,
        ports,
        fp,
        stack,
        logic_metals,
        tree,
        constraints,
        cfg,
        false,
        cfg.sizing_rounds,
        timer,
        reuse,
    )
}
