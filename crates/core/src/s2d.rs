//! The Shrunk-2D (S2D) baseline flow \[Panth et al., TCAD'17\] as
//! characterised in the paper's Sec. III, including its failure
//! mechanisms for macro-heavy designs:
//!
//! 1. **Shrunk pseudo-2D stage.** Cells (and interconnect) are shrunk
//!    to 50 % area and placed in a floorplan with the final F2F
//!    footprint. Macros appear as *partial* (50 %) blockages where one
//!    die holds a macro and full blockages where both do — and the
//!    engine honours partial blockages only at a coarse spatial
//!    quantization. Routing and extraction run on a single-die BEOL
//!    with macro pins assumed in that same BEOL; the sizing
//!    optimization therefore targets *mispredicted* parasitics.
//! 2. **Tier partitioning.** Cells are FM-partitioned across the two
//!    dies (capacity-weighted, macro/port connections anchored).
//! 3. **Overlap fixing.** Unshrinking doubles cell areas; per-die
//!    legalization resolves the resulting overlaps with the large
//!    displacements the paper observed.
//! 4. **F2F-via planning** on the bump pitch grid.
//! 5. **Re-route** on the true combined BEOL (macro pins now at their
//!    `_MD` layers) *without* placement co-optimization or re-sizing.
//!
//! Two floorplan styles: [`S2dStyle::MemoryOnLogic`] (macros fill the
//! top die, like Macro-3D's assignment) and [`S2dStyle::Balanced`]
//! (macros paired across dies so partial blockages become full ones —
//! Table I's "BF S2D", which trades away the manufacturing advantages
//! of MoL stacking).

use crate::build_cache::{cached_combined_beol, cached_stack, try_cached_mol_floorplan};
use crate::error::{flow_gate, FlowError};
use crate::flow::{
    area_budget, finish_design, macro_obstacles, route_pins, sta_constraints, FlowConfig,
    ImplementedDesign, StageTimer,
};
use crate::via_plan::plan_bumps;
use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::{Design, InstId, Master, NetId, PinRef};
use macro3d_place::floorplan::die_for_area;
use macro3d_place::macro_place::pack_balanced;
use macro3d_place::partition::{bipartition, FmConfig, Hypergraph};
use macro3d_place::{legalize, BlockageKind, Floorplan, Placement, PortPlan};
use macro3d_route::{RouteRequest, Router};
use macro3d_soc::TileNetlist;
use macro3d_sta::{
    analyze_with, clock_arrivals, upsize_critical_path, ClockTree, StaInput, StaMode, StaSession,
};
use macro3d_tech::libgen::n28_library;
use macro3d_tech::stack::{n28_stack, DieRole, MetalStack};
use macro3d_tech::{CellClass, Corner, F2fSpec};
use std::collections::HashSet;
use std::sync::Arc;

/// S2D floorplan style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum S2dStyle {
    /// Macros fill the macro die (heterogeneous MoL assignment).
    MemoryOnLogic,
    /// Macros paired/overlapped across both dies ("BF S2D").
    Balanced,
}

/// Diagnostics of an S2D run (the quantities the paper blames).
#[derive(Clone, Debug, Default)]
pub struct S2dDiagnostics {
    /// Mean legalization displacement when fixing post-unshrink
    /// overlaps, µm.
    pub overlap_fix_mean_disp_um: f64,
    /// Cells that changed die in partitioning.
    pub cells_on_macro_die: usize,
    /// Planned F2F bumps.
    pub planned_bumps: u64,
}

/// Runs the S2D flow.
///
/// `reuse` is forwarded to the shared [`finish_design`] tail. S2D's
/// stage graph is deliberately coarse (see `crate::stage`): its
/// pseudo-2D stage consumes the route and STA knobs, so the stage
/// keys fold them into the place super-stage and prefix reuse only
/// triggers for fully-identical upstream state — honest, if rarely
/// profitable, for this baseline.
///
/// # Errors
///
/// Returns [`FlowError::Floorplan`] if macro packing fails for the
/// chosen style and [`FlowError::Injected`] when the active fault
/// plan injects an error at a flow gate.
pub(crate) fn implement(
    tile: &TileNetlist,
    cfg: &FlowConfig,
    style: S2dStyle,
    reuse: Option<&mut crate::stage::StageReuse<'_>>,
) -> Result<(ImplementedDesign, S2dDiagnostics), FlowError> {
    let mut timer = StageTimer::new();
    let mut design = tile.design.clone();
    let constraints = sta_constraints(tile);
    let budget = area_budget(&design, cfg);
    let orig_lib = design.library().clone();

    let die = die_for_area(
        budget.a3d_um2,
        1.0,
        orig_lib.row_height(),
        orig_lib.site_width(),
    );
    let halo = Dbu::from_um(cfg.halo_um);

    // --- macro floorplans on both dies --------------------------------
    flow_gate("flow/floorplan")?;
    let macro_placements = match style {
        S2dStyle::MemoryOnLogic => {
            // same MoL seed as Macro-3D and C2D, via the build cache
            let mol = try_cached_mol_floorplan(&design, die, halo, cfg.util_macro, cfg.halo_um)?;
            let mut v = mol.0.clone();
            v.extend_from_slice(&mol.1);
            v
        }
        S2dStyle::Balanced => {
            let macros: Vec<InstId> = design.inst_ids().filter(|&i| design.is_macro(i)).collect();
            pack_balanced(&design, &macros, die, halo).ok_or_else(|| FlowError::Floorplan {
                stage: "s2d/balanced_pack",
                detail: format!(
                    "balanced packing does not fit the {:.0}x{:.0}um die",
                    die.width().to_um(),
                    die.height().to_um()
                ),
            })?
        }
    };

    // --- stage 1: shrunk pseudo-2D design -----------------------------
    // 50% cell area via a structurally identical half-size library
    let shrunk_lib = Arc::new(n28_library(orig_lib.area_scale() * 0.5));
    design.set_library(shrunk_lib);

    let mut fp_s2d = Floorplan::new(die, orig_lib.row_height(), orig_lib.site_width());
    for mp in &macro_placements {
        // each die's macro discounts half the stacked capacity
        fp_s2d.add_blockage(mp.rect.inflate(halo), BlockageKind::Partial(0.5));
        fp_s2d.macros.push(*mp);
    }
    fp_s2d.quantize_partial_blockages(Dbu::from_um(cfg.partial_blockage_period_um));

    let ports = PortPlan::assign(&design, die);
    timer.mark("floorplan");
    flow_gate("flow/place")?;
    let (mut placement, tree) =
        crate::flow::place_pipeline(&mut design, &fp_s2d, &ports, &constraints, cfg, &mut timer);

    // pseudo-2D routing on a single-die stack, macro pins assumed local
    let stack_2d = cached_stack(cfg.logic_metals, DieRole::Logic);
    let obstacles = macro_obstacles(
        &design,
        &fp_s2d,
        cfg.logic_metals,
        stack_2d.num_layers(),
        false,
    );
    let nets = route_pins(
        &design,
        &placement,
        &ports,
        cfg.logic_metals,
        stack_2d.num_layers(),
        false,
    );
    let routed_stage1 = Router::new(
        &RouteRequest {
            die,
            stack: &stack_2d,
            obstacles: &obstacles,
            nets: &nets,
            num_nets: design.num_nets(),
        },
        &cfg.route,
    )
    .route();
    timer.mark("s2d_stage1_route");
    let mut parasitics = crate::flow::extract_all(
        &design,
        &placement,
        &ports,
        &stack_2d,
        &routed_stage1,
        &constraints,
        Corner::signoff(),
        &cfg.parallelism,
    );
    let clock_stage1 = clock_arrivals(&design, &tree, &parasitics, Corner::signoff());
    timer.mark("s2d_stage1_extract");

    // sizing against the stage-1 (mispredicted) parasitics; in
    // parametric mode one StaSession carries the timing graph across
    // rounds and re-times only the touched cones
    let mut session = match cfg.sta_mode {
        StaMode::Parametric => Some(StaSession::new(&StaInput {
            design: &design,
            parasitics: &parasitics,
            routed: Some(&routed_stage1),
            constraints: &constraints,
            clock: &clock_stage1,
            corner: Corner::signoff(),
        })),
        StaMode::Probe => None,
    };
    let mut touched: Vec<macro3d_netlist::NetId> = Vec::new();
    for round in 0..cfg.sizing_rounds {
        // budget checkpoint: the stage-1 sizing already holds a valid
        // (mispredicted-parasitics) design, so stopping early is safe
        if let macro3d_par::Checkpoint::Stop(reason) = macro3d_par::checkpoint("sta/sizing_rounds")
        {
            macro3d_par::note_degradation(
                "sta/sizing_rounds",
                reason,
                format!(
                    "stopped after {round} of {} sizing rounds",
                    cfg.sizing_rounds
                ),
            );
            break;
        }
        let input = StaInput {
            design: &design,
            parasitics: &parasitics,
            routed: Some(&routed_stage1),
            constraints: &constraints,
            clock: &clock_stage1,
            corner: Corner::signoff(),
        };
        let t = match &mut session {
            Some(s) if round > 0 => s.update(&input, &touched, &cfg.parallelism),
            Some(s) => s.analyze(&input, &cfg.parallelism),
            None => analyze_with(&input, &cfg.parallelism, StaMode::Probe),
        };
        let changes = upsize_critical_path(&mut design, &t);
        if changes.is_empty() {
            break;
        }
        touched = macro3d_sta::opt::apply_sizing_to_parasitics(&design, &changes, &mut parasitics);
    }

    timer.mark("s2d_stage1_sizing");

    // --- stage 2: unshrink + tier partitioning -------------------------
    design.set_library(orig_lib.clone());
    let diag = partition_and_finalize(
        &mut design,
        &mut placement,
        &macro_placements,
        die,
        halo,
        &tree,
        cfg,
    );

    timer.mark("s2d_partition_fix");

    // --- stage 3: F2F via planning + re-route on the true stack --------
    let combined = cached_combined_beol(cfg.logic_metals, cfg.macro_metals);
    let fp_final = final_floorplan(&design, die, &macro_placements, halo, &orig_lib);

    // S2D has no post-partition optimization: sizing_rounds = 0.
    let imp = finish_design(
        design,
        placement,
        ports,
        fp_final,
        combined.stack().clone(),
        cfg.logic_metals,
        tree,
        constraints,
        cfg,
        true,
        0,
        timer,
        reuse,
    )?;
    Ok((imp, diag))
}

/// The final per-die floorplan: macros block placement on their own
/// die only (used for the post-partition legalization and reporting).
fn final_floorplan(
    design: &Design,
    die: Rect,
    macro_placements: &[macro3d_place::MacroPlacement],
    halo: Dbu,
    lib: &macro3d_tech::CellLibrary,
) -> Floorplan {
    let _ = design;
    let mut fp = Floorplan::new(die, lib.row_height(), lib.site_width());
    for mp in macro_placements {
        fp.add_macro(*mp, DieRole::Logic, halo);
        // logic-die macros block the logic die; macro-die macros add
        // no blockage here (handled per-die during legalization)
    }
    fp
}

/// Tier partitioning + per-die overlap fixing + bump planning, shared
/// with the C2D flow.
pub(crate) fn partition_and_finalize(
    design: &mut Design,
    placement: &mut Placement,
    macro_placements: &[macro3d_place::MacroPlacement],
    die: Rect,
    halo: Dbu,
    tree: &ClockTree,
    cfg: &FlowConfig,
) -> S2dDiagnostics {
    let lib = design.library().clone();

    // per-die floorplans with full blockages from that die's macros
    let mut fp_logic = Floorplan::new(die, lib.row_height(), lib.site_width());
    let mut fp_macro = Floorplan::new(die, lib.row_height(), lib.site_width());
    for mp in macro_placements {
        match mp.die {
            DieRole::Logic => fp_logic.add_macro(*mp, DieRole::Logic, halo),
            DieRole::Macro => {
                // re-tag so the blockage lands on the macro-die fp
                let mut m = *mp;
                m.die = DieRole::Logic;
                fp_macro.add_macro(m, DieRole::Logic, halo)
            }
        }
    }

    // FM tier partitioning of all standard cells
    let cells: Vec<InstId> = design.inst_ids().filter(|&i| !design.is_macro(i)).collect();
    let mut local_of = std::collections::HashMap::new();
    let mut areas = Vec::with_capacity(cells.len());
    for (k, &c) in cells.iter().enumerate() {
        local_of.insert(c, k as u32);
        areas.push(design.inst_area_um2(c).max(1e-6));
    }
    let mut builder = Hypergraph::builder(areas);
    let macro_die_of: std::collections::HashMap<InstId, DieRole> = macro_placements
        .iter()
        .map(|mp| (mp.inst, mp.die))
        .collect();
    for n in design.net_ids() {
        let pins = &design.net(n).pins;
        if pins.len() < 2 || pins.len() > 64 {
            continue;
        }
        let mut local = Vec::new();
        let mut anchor: Option<u8> = None;
        for &p in pins {
            match p {
                PinRef::Inst { inst, .. } => match local_of.get(&inst) {
                    Some(&l) => local.push(l),
                    None => {
                        // a macro: anchor toward its die
                        let side = match macro_die_of.get(&inst) {
                            Some(DieRole::Macro) => 1,
                            _ => 0,
                        };
                        anchor = Some(side);
                    }
                },
                PinRef::Port(_) => anchor = Some(0), // IO on the logic die
            }
        }
        if !local.is_empty() {
            builder.add_net(&local, anchor);
        }
    }
    let hg = builder.build();

    // capacity split: free area per die
    let free_logic = fp_logic.usable_area_um2(die) * cfg.util_logic;
    let free_macro = fp_macro.usable_area_um2(die) * cfg.util_logic;
    let frac_logic = (free_logic / (free_logic + free_macro)).clamp(0.02, 0.98);
    let side = bipartition(
        &hg,
        frac_logic,
        None,
        &FmConfig {
            passes: 2,
            balance_tol: 0.03,
        },
    );

    let clock_buffers: HashSet<InstId> = tree.buffers.iter().copied().collect();
    let mut on_macro = 0usize;
    for (k, &c) in cells.iter().enumerate() {
        // the clock tree always stays on the logic die
        let die_of = if clock_buffers.contains(&c) || side[k] == 0 {
            DieRole::Logic
        } else {
            DieRole::Macro
        };
        if die_of == DieRole::Macro {
            on_macro += 1;
        }
        placement.die_of[c.index()] = die_of;
    }

    // overlap fixing: per-die legalization of full-size cells
    let logic_cells: Vec<InstId> = cells
        .iter()
        .copied()
        .filter(|&c| placement.die_of[c.index()] == DieRole::Logic)
        .collect();
    let macro_cells: Vec<InstId> = cells
        .iter()
        .copied()
        .filter(|&c| placement.die_of[c.index()] == DieRole::Macro)
        .collect();
    let rep_l = legalize(design, &fp_logic, placement, &logic_cells);
    let rep_m = legalize(design, &fp_macro, placement, &macro_cells);
    let total_cells = (logic_cells.len() + macro_cells.len()).max(1);
    let mean_disp = (rep_l.total_disp + rep_m.total_disp).to_um() / total_cells as f64;

    // F2F via planning for every net spanning the dies
    let mut requests: Vec<(NetId, Point)> = Vec::new();
    for n in design.net_ids() {
        let pins = &design.net(n).pins;
        if pins.len() < 2 {
            continue;
        }
        let mut dies = [false, false];
        let mut lo: Option<Point> = None;
        let mut hi: Option<Point> = None;
        for &p in pins {
            let (die_of, pos) = match p {
                PinRef::Inst { inst, .. } => {
                    let d = match design.inst(inst).master {
                        Master::Cell(_) => placement.die_of[inst.index()],
                        Master::Macro(_) => *macro_die_of.get(&inst).unwrap_or(&DieRole::Logic),
                    };
                    (d, placement.pos[inst.index()])
                }
                PinRef::Port(_) => (DieRole::Logic, die.lo),
            };
            dies[match die_of {
                DieRole::Logic => 0,
                DieRole::Macro => 1,
            }] = true;
            lo = Some(lo.map_or(pos, |l| l.min(pos)));
            hi = Some(hi.map_or(pos, |h| h.max(pos)));
        }
        if dies[0] && dies[1] {
            if let (Some(l), Some(h)) = (lo, hi) {
                requests.push((n, Point::new((l.x + h.x) / 2, (l.y + h.y) / 2)));
            }
        }
    }
    let plan = plan_bumps(die, &F2fSpec::hybrid_bond_n28(), &requests);
    if plan.failed > 0 {
        // a full bump grid is a residual violation: the re-route still
        // runs, but the outcome names the nets left without a bump
        // (the planner's outward spiral gave up — its ring cap)
        macro3d_par::note_degradation(
            "flow/via_plan",
            macro3d_par::StopReason::IterationCap,
            plan.failure_detail(),
        );
    }

    S2dDiagnostics {
        overlap_fix_mean_disp_um: mean_disp,
        cells_on_macro_die: on_macro,
        planned_bumps: plan.count(),
    }
}

/// Exposes the shrunk-stage blockage construction for tests.
pub fn shrunk_stage_floorplan(
    design: &Design,
    die: Rect,
    macro_placements: &[macro3d_place::MacroPlacement],
    halo: Dbu,
    period: Dbu,
) -> Floorplan {
    let lib = design.library().clone();
    let mut fp = Floorplan::new(die, lib.row_height(), lib.site_width());
    for mp in macro_placements {
        fp.add_blockage(mp.rect.inflate(halo), BlockageKind::Partial(0.5));
    }
    fp.quantize_partial_blockages(period);
    fp
}

/// Returns true when a cell class is a clock buffer (helper for
/// diagnostics and tests).
pub fn is_clock_buffer(design: &Design, inst: InstId) -> bool {
    match design.inst(inst).master {
        Master::Cell(c) => design.library().cell(c).class == CellClass::ClkBuf,
        Master::Macro(_) => false,
    }
}

/// The 2D stack used by the pseudo-2D stage (exposed for benches).
pub fn stage1_stack(cfg: &FlowConfig) -> MetalStack {
    n28_stack(cfg.logic_metals, DieRole::Logic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_place::BlockageKind;
    use macro3d_tech::libgen::n28_library;
    use std::sync::Arc;

    #[test]
    fn shrunk_floorplan_discounts_half_per_macro_die() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let mm = d.add_macro_master(macro3d_sram::MemoryCompiler::n28().sram("s", 512, 64));
        let a = d.add_macro_in("a", mm, 0);
        let b = d.add_macro_in("b", mm, 0);
        let size = d.macro_master(macro3d_netlist::MacroMasterId(0)).size;
        let die = Rect::from_um(0.0, 0.0, 800.0, 800.0);
        // a on the logic die, b on the macro die, overlapping exactly
        let at = Point::from_um(100.0, 100.0);
        let placements = vec![
            macro3d_place::MacroPlacement {
                inst: a,
                rect: Rect::from_origin_size(at, size),
                die: DieRole::Logic,
            },
            macro3d_place::MacroPlacement {
                inst: b,
                rect: Rect::from_origin_size(at, size),
                die: DieRole::Macro,
            },
        ];
        let fp = shrunk_stage_floorplan(&d, die, &placements, Dbu(0), Dbu::from_um(8.0));
        // overlapping 50% blockages sum to a full blockage
        let over_macro = fp.usable_area_um2(Rect::from_origin_size(at, size));
        assert!(
            over_macro < 0.05 * size.area_um2(),
            "stacked partials nearly fully block: {over_macro}"
        );
        // all partials were quantized into full stripes
        assert!(fp
            .blockages
            .iter()
            .all(|bk| matches!(bk.kind, BlockageKind::Full)));
        // away from the macros the die is free
        let free = fp.usable_area_um2(Rect::from_um(600.0, 600.0, 700.0, 700.0));
        assert!((free - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn stage1_stack_matches_logic_metals() {
        let cfg = FlowConfig {
            logic_metals: 5,
            ..FlowConfig::default()
        };
        let s = stage1_stack(&cfg);
        assert_eq!(s.num_layers(), 5);
        assert!(s.f2f_cut().is_none());
    }

    #[test]
    fn clock_buffer_predicate() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib.clone());
        let cb = d.add_cell("cb", lib.clock_buffers()[0]);
        let inv = d.add_cell(
            "i",
            lib.smallest(macro3d_tech::CellClass::Inv).expect("inv"),
        );
        assert!(is_clock_buffer(&d, cb));
        assert!(!is_clock_buffer(&d, inv));
    }
}
