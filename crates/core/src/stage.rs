//! Stage-graph reuse: prefix-keyed incremental flow execution.
//!
//! Every flow decomposes into the same five-stage graph:
//!
//! ```text
//! floorplan → place → route → extract → sta
//! ```
//!
//! Each stage **declares** which `TileConfig` / [`FlowConfig`] fields
//! feed its content key (the tables in [`stage_keys`]; the FNV-1a
//! discipline is shared with `BuildCache` and the DSE `ResultCache`).
//! Keys are *chained*: stage *i*'s key hashes stage *i−1*'s key
//! together with stage *i*'s own payload, so a key match at stage *i*
//! proves the whole prefix `0..=i` ran under identical inputs.
//!
//! A worker holds one [`StageCache`] — the artifacts the previous
//! flow run left at each stage boundary, tagged with that run's
//! chained keys. The next run compares its own keys against the
//! cache ([`StageReuse::start_stage`]), deep-clones the artifacts of
//! the longest matching prefix, and re-enters the flow at the first
//! stage whose key changed. Because reuse restores a *clone* of a
//! boundary snapshot that was itself taken at the same point of a
//! cold run, a warm run is bit-identical to a cold one by
//! construction — the determinism contract the DSE sweep tests and
//! the `sweep-reuse` CI gate hold.
//!
//! ## Reuse / invalidation tables
//!
//! For the fine-grained flows (`2D`, `Macro-3D`), the per-stage key
//! payloads are:
//!
//! | stage     | key fields |
//! |-----------|------------|
//! | floorplan | flow name, full `TileConfig`, crate version, budget, fault plan, `logic_metals`, `macro_metals`¹, `util_logic`, `util_macro`, `halo_um` |
//! | place     | `place` (all fields + chunk size), `cts`, `repeater_max_len_um` |
//! | route     | `route` (all fields + chunk size) |
//! | extract   | — (inputs fully determined by the prefix) |
//! | sta       | `sizing_rounds`, `sta_mode` |
//!
//! ¹ `macro_metals` keys the 2D floorplan stage too only through the
//! base payload ordering below — the 2D flow never reads it, but the
//! S2D/C2D/Macro-3D flows that share a worker do.
//!
//! The pseudo-2D baselines (`MoL S2D`, `BF S2D`, `C2D`) consume the
//! route/STA knobs *inside* their stage-1 pseudo-2D implementation,
//! so their "place" super-stage keys additionally include `route`,
//! `sizing_rounds`, `sta_mode` and `partial_blockage_period_um` —
//! honest but coarse: for those flows, any late-stage knob change
//! re-enters at placement, and stage reuse degenerates to what the
//! spec-level `ResultCache` already provides.
//!
//! **Excluded everywhere:** `parallelism.threads` (all three copies)
//! and `obs`. Results are thread-count-invariant per the `macro3d-par`
//! contract, so a sweep over `threads` reuses the full prefix;
//! `chunk_size` *is* keyed because the router's batched negotiation
//! commits per chunk ("chunk size changes routing results; the thread
//! count never does").
//!
//! **Safety guard:** stage caching is disabled outright
//! ([`StageReuse::begin`] returns `None`) when the config carries a
//! stage budget or a fault plan — wall-clock deadlines fire
//! nondeterministically and degradation notes would not replay on a
//! warm run. Both still feed every stage key (via the base payload),
//! so a budget/fault sweep point can never hit a clean run's
//! artifacts by accident.

use crate::flow::FlowConfig;
use macro3d_extract::NetParasitics;
use macro3d_netlist::Design;
use macro3d_place::{Floorplan, GlobalPlaceConfig, Placement, PortPlan};
use macro3d_route::{RouteConfig, RoutedDesign, Router};
use macro3d_soc::TileConfig;
use macro3d_sta::{ClockArrivals, ClockTree, StaMode, StaSession};
use macro3d_tech::stack::MetalStack;
use std::sync::Arc;

/// Number of stages in the flow graph.
pub const NUM_STAGES: usize = 5;

/// One stage of the flow graph, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Floorplan + macro packing + port assignment + stack build.
    Floorplan = 0,
    /// Global place, repeaters, CTS, legalization, detailed place.
    /// For the pseudo-2D baselines this is the whole stage-1 +
    /// partition super-stage.
    Place = 1,
    /// Global routing over the final stack.
    Route = 2,
    /// Parasitic extraction + clock arrivals at the sign-off corner.
    Extract = 3,
    /// STA + sizing + hold fixing + power. Never cached (it is the
    /// terminal stage; identical specs are the `ResultCache`'s job).
    Sta = 4,
}

impl Stage {
    /// Stable stage label (obs counters, telemetry, docs).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Floorplan => "floorplan",
            Stage::Place => "place",
            Stage::Route => "route",
            Stage::Extract => "extract",
            Stage::Sta => "sta",
        }
    }

    /// All stages in execution order.
    pub fn all() -> [Stage; NUM_STAGES] {
        [
            Stage::Floorplan,
            Stage::Place,
            Stage::Route,
            Stage::Extract,
            Stage::Sta,
        ]
    }
}

/// The chained per-stage content keys of one `(flow, tile, config)`
/// triple. `prefix[i]` covers stages `0..=i`: equal `prefix[i]` ⇒
/// identical inputs for the whole prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageKeys {
    /// Chained FNV-1a keys, one per [`Stage`].
    pub prefix: [u64; NUM_STAGES],
}

impl StageKeys {
    /// The key covering stages `0..=stage`.
    pub fn key(&self, stage: Stage) -> u64 {
        self.prefix[stage as usize]
    }
}

fn chain(prev: u64, payload: &str) -> u64 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&prev.to_le_bytes());
    buf.extend_from_slice(payload.as_bytes());
    crate::jsonio::fnv1a_64(&buf)
}

/// `chunk_size` only — `threads` is deliberately excluded from every
/// stage key (see the module docs).
fn par_payload(chunk_size: usize) -> String {
    format!("chunk={chunk_size}")
}

fn route_payload(r: &RouteConfig) -> String {
    format!(
        "gcell={};util={};iters={};via={};deg={};f2f={:?};{}",
        r.gcell_um,
        r.utilization,
        r.iterations,
        r.via_cost,
        r.max_net_degree,
        r.f2f_pitch_um,
        par_payload(r.parallelism.chunk_size)
    )
}

fn place_payload(p: &GlobalPlaceConfig) -> String {
    format!(
        "min={};fm={};deg={};backend={:?};ana={},{},{};{}",
        p.min_cells,
        p.fm_passes,
        p.max_net_degree,
        p.backend,
        p.analytical.max_iters,
        p.analytical.target_overflow,
        p.analytical.lambda_growth,
        par_payload(p.parallelism.chunk_size)
    )
}

/// Computes the chained stage keys for one job. The per-stage field
/// tables live here — this is the single place a stage declares what
/// invalidates it.
pub fn stage_keys(flow: &str, tile: &TileConfig, cfg: &FlowConfig) -> StageKeys {
    // Base payload (seeds the floorplan key): anything that
    // invalidates *every* stage — the flow identity, the tile, the
    // crate version, and the budget/fault plan (kept in the key even
    // though caching is disabled when they are active, so their sweep
    // points can never alias a clean prefix).
    let base = format!(
        "{}\u{1f}{}\u{1f}{}\u{1f}budget={}\u{1f}faults={}",
        env!("CARGO_PKG_VERSION"),
        flow,
        crate::jsonio::tile_config_to_json(tile).emit(),
        crate::jsonio::flow_config_to_json(cfg)
            .get("budget")
            .map_or_else(String::new, macro3d_json::Json::emit),
        crate::jsonio::flow_config_to_json(cfg)
            .get("fault_plan")
            .map_or_else(String::new, macro3d_json::Json::emit),
    );
    let pseudo2d = matches!(flow, "MoL S2D" | "BF S2D" | "C2D");

    let floorplan_payload = format!(
        "lm={};mm={};ul={};um={};halo={}",
        cfg.logic_metals, cfg.macro_metals, cfg.util_logic, cfg.util_macro, cfg.halo_um
    );
    let mut place_stage = format!(
        "{};cts={},{};rep={}",
        place_payload(&cfg.place),
        cfg.cts.max_fanout,
        cfg.cts.repeater_spacing_um,
        cfg.repeater_max_len_um
    );
    if pseudo2d {
        // the pseudo-2D stage consumes these before the final P&R
        place_stage.push_str(&format!(
            ";s1route={};s1sr={};s1mode={:?};pbp={}",
            route_payload(&cfg.route),
            cfg.sizing_rounds,
            cfg.sta_mode,
            cfg.partial_blockage_period_um
        ));
    }
    let sta_mode = match cfg.sta_mode {
        StaMode::Probe => "probe",
        StaMode::Parametric => "parametric",
    };

    let k0 = chain(crate::jsonio::fnv1a_64(base.as_bytes()), &floorplan_payload);
    let k1 = chain(k0, &place_stage);
    let k2 = chain(k1, &route_payload(&cfg.route));
    let k3 = chain(k2, "extract");
    let k4 = chain(k3, &format!("sr={};mode={sta_mode}", cfg.sizing_rounds));
    StageKeys {
        prefix: [k0, k1, k2, k3, k4],
    }
}

/// Floorplan-boundary artifacts: everything `place_pipeline` needs
/// that is not re-derived from the tile. The design itself is *not*
/// stored — placement mutates it, so a warm run re-clones the
/// pristine `tile.design` exactly as a cold run does.
#[derive(Clone)]
pub struct FloorplanSnap {
    /// The floorplan (die, macro placements, blockages).
    pub fp: Floorplan,
    /// Port assignment.
    pub ports: PortPlan,
    /// The metal stack the flow routes over.
    pub stack: MetalStack,
}

/// Place-boundary artifacts: the design *after* repeater/CTS/buffer
/// insertion together with the legalized placement and clock tree,
/// plus the floorplan-boundary state (self-contained, so a place hit
/// never needs the floorplan slot).
#[derive(Clone)]
pub struct PlaceSnap {
    /// Design with repeaters and clock buffers inserted.
    pub design: Design,
    /// See [`FloorplanSnap::fp`].
    pub fp: Floorplan,
    /// See [`FloorplanSnap::ports`].
    pub ports: PortPlan,
    /// See [`FloorplanSnap::stack`].
    pub stack: MetalStack,
    /// Legalized placement.
    pub placement: Placement,
    /// Synthesized clock tree.
    pub tree: ClockTree,
}

/// Route-boundary artifacts. The [`Router`] session (committed paths,
/// congestion history, Steiner topologies) is kept alive so future
/// incremental re-entry points can drive `Router::update`; the
/// routed design is what the downstream stages consume today.
pub struct RouteSnap {
    /// The full negotiation session, resumable via `Router::update`.
    pub router: Router,
    /// The assembled routing result.
    pub routed: RoutedDesign,
}

/// Extract-boundary artifacts. `session` is the parametric STA
/// session snapshotted right after graph build (before any analysis),
/// so restoring it is indistinguishable from building it fresh —
/// `None` when the cold run used [`StaMode::Probe`].
pub struct ExtractSnap {
    /// Sign-off-corner parasitics for every net.
    pub parasitics: Vec<NetParasitics>,
    /// Clock arrival times under the extracted tree.
    pub clock: ClockArrivals,
    /// Freshly-built timing session (graph only, no converged state).
    pub session: Option<StaSession>,
}

enum Artifact {
    Floorplan(Arc<FloorplanSnap>),
    Place(Arc<PlaceSnap>),
    Route(Arc<RouteSnap>),
    Extract(Arc<ExtractSnap>),
}

/// One worker's stage-boundary artifact store: the last run's
/// snapshot per stage, tagged with the chained key it was produced
/// under. Purely in-memory and single-owner (each DSE worker owns
/// one); nothing here is ever persisted.
#[derive(Default)]
pub struct StageCache {
    slots: [Option<(u64, Artifact)>; NUM_STAGES],
}

impl StageCache {
    /// An empty cache.
    pub fn new() -> Self {
        StageCache::default()
    }

    /// Drops every stored artifact.
    pub fn clear(&mut self) {
        self.slots = Default::default();
    }
}

// obs counters: reuse accounting per worker-run
static REUSE_RUNS: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("stage/reuse_runs");
static REUSE_DEPTH: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("stage/reuse_depth");
static STAGE_HITS: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("stage/hits");
static STAGE_MISSES: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("stage/misses");

/// One run's view of a [`StageCache`]: the expected chained keys plus
/// the matched prefix depth. Created per job by [`StageReuse::begin`]
/// and threaded through the flow as `Option<&mut StageReuse>`.
pub struct StageReuse<'a> {
    cache: &'a mut StageCache,
    keys: StageKeys,
    start: usize,
}

impl<'a> StageReuse<'a> {
    /// Prepares reuse for one run, or `None` when stage caching is
    /// unsafe for this config (active budget or fault plan — see the
    /// module docs). Computes the matched prefix depth up front and
    /// bumps the obs counters.
    pub fn begin(
        cache: &'a mut StageCache,
        flow: &str,
        tile: &TileConfig,
        cfg: &FlowConfig,
    ) -> Option<StageReuse<'a>> {
        if !cfg.budget.is_unlimited() || cfg.fault_plan.is_some() {
            return None;
        }
        let keys = stage_keys(flow, tile, cfg);
        // the longest prefix of slots whose stored chained keys match
        // this run's expected keys (the Sta slot is never stored)
        let mut start = 0;
        for (i, slot) in cache.slots.iter().enumerate().take(NUM_STAGES - 1) {
            match slot {
                Some((key, _)) if *key == keys.prefix[i] => start = i + 1,
                _ => break,
            }
        }
        REUSE_RUNS.inc();
        REUSE_DEPTH.add(start as u64);
        STAGE_HITS.add(start as u64);
        STAGE_MISSES.add((NUM_STAGES - start) as u64);
        Some(StageReuse { cache, keys, start })
    }

    /// The first stage this run must execute — equivalently the
    /// number of stages whose artifacts can be reused (the run's
    /// *reuse depth*, `0..=4`).
    pub fn start_stage(&self) -> usize {
        self.start
    }

    /// This run's chained keys.
    pub fn keys(&self) -> &StageKeys {
        &self.keys
    }

    fn snap<T, F: Fn(&Artifact) -> Option<&Arc<T>>>(
        &self,
        stage: Stage,
        pick: F,
    ) -> Option<Arc<T>> {
        if self.start <= stage as usize {
            return None;
        }
        self.cache.slots[stage as usize]
            .as_ref()
            .and_then(|(_, a)| pick(a))
            .map(Arc::clone)
    }

    /// Floorplan-boundary snapshot, when the matched prefix covers it.
    pub fn floorplan_snap(&self) -> Option<Arc<FloorplanSnap>> {
        self.snap(Stage::Floorplan, |a| match a {
            Artifact::Floorplan(s) => Some(s),
            _ => None,
        })
    }

    /// Place-boundary snapshot, when the matched prefix covers it.
    pub fn place_snap(&self) -> Option<Arc<PlaceSnap>> {
        self.snap(Stage::Place, |a| match a {
            Artifact::Place(s) => Some(s),
            _ => None,
        })
    }

    /// Route-boundary snapshot, when the matched prefix covers it.
    pub fn route_snap(&self) -> Option<Arc<RouteSnap>> {
        self.snap(Stage::Route, |a| match a {
            Artifact::Route(s) => Some(s),
            _ => None,
        })
    }

    /// Extract-boundary snapshot, when the matched prefix covers it.
    pub fn extract_snap(&self) -> Option<Arc<ExtractSnap>> {
        self.snap(Stage::Extract, |a| match a {
            Artifact::Extract(s) => Some(s),
            _ => None,
        })
    }

    fn store(&mut self, stage: Stage, artifact: Artifact) {
        self.cache.slots[stage as usize] = Some((self.keys.prefix[stage as usize], artifact));
    }

    /// Stores the floorplan-boundary snapshot (call at stage exit).
    pub fn store_floorplan(&mut self, snap: FloorplanSnap) {
        self.store(Stage::Floorplan, Artifact::Floorplan(Arc::new(snap)));
    }

    /// Stores the place-boundary snapshot.
    pub fn store_place(&mut self, snap: PlaceSnap) {
        self.store(Stage::Place, Artifact::Place(Arc::new(snap)));
    }

    /// Stores the route-boundary snapshot (takes the live router).
    pub fn store_route(&mut self, router: Router, routed: &RoutedDesign) {
        self.store(
            Stage::Route,
            Artifact::Route(Arc::new(RouteSnap {
                router,
                routed: routed.clone(),
            })),
        );
    }

    /// Stores the extract-boundary snapshot (without a session; see
    /// [`StageReuse::attach_session`]).
    pub fn store_extract(&mut self, parasitics: &[NetParasitics], clock: &ClockArrivals) {
        self.store(
            Stage::Extract,
            Artifact::Extract(Arc::new(ExtractSnap {
                parasitics: parasitics.to_vec(),
                clock: clock.clone(),
                session: None,
            })),
        );
    }

    /// Backfills the freshly-built STA session into the extract slot
    /// (the session only exists once the STA stage begins). No-op if
    /// the slot was not stored by this run.
    pub fn attach_session(&mut self, session: &StaSession) {
        let slot = &mut self.cache.slots[Stage::Extract as usize];
        if let Some((key, Artifact::Extract(snap))) = slot {
            if *key == self.keys.prefix[Stage::Extract as usize] {
                *slot = Some((
                    *key,
                    Artifact::Extract(Arc::new(ExtractSnap {
                        parasitics: snap.parasitics.clone(),
                        clock: snap.clock.clone(),
                        session: Some(session.clone()),
                    })),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(f: impl FnOnce(&mut FlowConfig)) -> StageKeys {
        let mut cfg = FlowConfig::default();
        f(&mut cfg);
        stage_keys("Macro-3D", &TileConfig::mini(), &cfg)
    }

    #[test]
    fn keys_chain_downstream() {
        let base = keys(|_| {});
        // a route-only knob: floorplan/place keys unchanged, route and
        // everything after invalidated
        let routed = keys(|c| c.route.iterations += 1);
        assert_eq!(base.key(Stage::Floorplan), routed.key(Stage::Floorplan));
        assert_eq!(base.key(Stage::Place), routed.key(Stage::Place));
        assert_ne!(base.key(Stage::Route), routed.key(Stage::Route));
        assert_ne!(base.key(Stage::Extract), routed.key(Stage::Extract));
        assert_ne!(base.key(Stage::Sta), routed.key(Stage::Sta));

        // an STA-only knob: only the terminal key moves
        let sized = keys(|c| c.sizing_rounds += 1);
        assert_eq!(base.key(Stage::Extract), sized.key(Stage::Extract));
        assert_ne!(base.key(Stage::Sta), sized.key(Stage::Sta));

        // a floorplan knob: everything moves
        let fp = keys(|c| c.util_logic += 0.01);
        for s in Stage::all() {
            assert_ne!(base.key(s), fp.key(s), "{}", s.name());
        }
    }

    #[test]
    fn threads_and_obs_never_key_stages() {
        let base = keys(|_| {});
        let threaded = keys(|c| {
            c.parallelism.threads = 8;
            c.route.parallelism.threads = 8;
            c.place.parallelism.threads = 8;
            c.obs = macro3d_obs::ObsConfig::summary();
        });
        assert_eq!(base, threaded, "thread/obs knobs must not invalidate");
        // …but chunk size does (router batching changes results)
        let chunked = keys(|c| c.route.parallelism.chunk_size += 1);
        assert_eq!(base.key(Stage::Place), chunked.key(Stage::Place));
        assert_ne!(base.key(Stage::Route), chunked.key(Stage::Route));
    }

    #[test]
    fn budget_and_fault_key_every_stage_and_disable_caching() {
        let base = keys(|_| {});
        let budgeted = keys(|c| {
            c.budget = macro3d_par::FlowBudget::unlimited()
                .with_wall_clock(std::time::Duration::from_secs(3600));
        });
        let faulted = keys(|c| {
            c.fault_plan = Some(macro3d_par::FaultPlan::new().with_fault(
                "sta/sizing_rounds",
                3,
                macro3d_par::FaultAction::Exhaust,
            ));
        });
        for s in Stage::all() {
            assert_ne!(base.key(s), budgeted.key(s), "budget keys {}", s.name());
            assert_ne!(base.key(s), faulted.key(s), "fault keys {}", s.name());
        }
        let mut cache = StageCache::new();
        let cfg = FlowConfig {
            budget: macro3d_par::FlowBudget::unlimited().with_cap("route/iterations", 1),
            ..FlowConfig::default()
        };
        assert!(
            StageReuse::begin(&mut cache, "Macro-3D", &TileConfig::mini(), &cfg).is_none(),
            "caching must be off under a budget"
        );
    }

    #[test]
    fn flows_and_tiles_never_share_prefixes() {
        let cfg = FlowConfig::default();
        let tile = TileConfig::mini();
        let a = stage_keys("Macro-3D", &tile, &cfg);
        let b = stage_keys("2D", &tile, &cfg);
        assert_ne!(a.key(Stage::Floorplan), b.key(Stage::Floorplan));
        let big = stage_keys("Macro-3D", &TileConfig::small_cache(), &cfg);
        assert_ne!(a.key(Stage::Floorplan), big.key(Stage::Floorplan));
    }

    #[test]
    fn pseudo2d_place_super_stage_keys_late_knobs() {
        let cfg = FlowConfig::default();
        let mut sized = cfg.clone();
        sized.sizing_rounds += 1;
        let tile = TileConfig::mini();
        // S2D: sizing_rounds feeds the stage-1 pseudo-2D run
        let a = stage_keys("MoL S2D", &tile, &cfg);
        let b = stage_keys("MoL S2D", &tile, &sized);
        assert_eq!(a.key(Stage::Floorplan), b.key(Stage::Floorplan));
        assert_ne!(a.key(Stage::Place), b.key(Stage::Place));
        // Macro-3D: it only feeds the terminal stage
        let c = stage_keys("Macro-3D", &tile, &cfg);
        let d = stage_keys("Macro-3D", &tile, &sized);
        assert_eq!(c.key(Stage::Extract), d.key(Stage::Extract));
    }

    #[test]
    fn matched_depth_follows_stored_slots() {
        let mut cache = StageCache::new();
        let cfg = FlowConfig::default();
        let tile = TileConfig::mini();
        {
            let r = StageReuse::begin(&mut cache, "Macro-3D", &tile, &cfg).unwrap();
            assert_eq!(r.start_stage(), 0, "cold cache");
        }
        {
            let mut r = StageReuse::begin(&mut cache, "Macro-3D", &tile, &cfg).unwrap();
            let lib = std::sync::Arc::new(macro3d_tech::libgen::n28_library(1.0));
            let die = macro3d_geom::Rect::from_um(0.0, 0.0, 10.0, 10.0);
            let design = Design::new("t", lib.clone());
            let fp = Floorplan::new(die, lib.row_height(), lib.site_width());
            let ports = PortPlan::assign(&design, die);
            let stack = macro3d_tech::stack::n28_stack(2, macro3d_tech::stack::DieRole::Logic);
            r.store_floorplan(FloorplanSnap { fp, ports, stack });
        }
        {
            let r = StageReuse::begin(&mut cache, "Macro-3D", &tile, &cfg).unwrap();
            assert_eq!(r.start_stage(), 1, "floorplan slot matches");
            assert!(r.floorplan_snap().is_some());
            assert!(r.place_snap().is_none());
        }
        // a floorplan knob invalidates the stored slot
        let mut moved = cfg.clone();
        moved.halo_um += 1.0;
        let r = StageReuse::begin(&mut cache, "Macro-3D", &tile, &moved).unwrap();
        assert_eq!(r.start_stage(), 0);
        assert!(r.floorplan_snap().is_none());
    }
}
