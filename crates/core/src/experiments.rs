//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation (Sec. V).
//!
//! Absolute numbers differ from the paper (this substrate is a
//! simulator, not Innovus on a proprietary 28 nm PDK); the quantities
//! that must reproduce are the *relative* results — who wins, by
//! roughly what factor, and where crossovers sit. Each experiment
//! carries the paper's reference rows for side-by-side printing.

use crate::build_cache::cached_tile;
use crate::flow::FlowConfig;
use crate::flows::{standard_flows, C2d, Flow, Flow2d, Macro3d};
use crate::layout;
use crate::report::{comparison_table, PpaResult};
use macro3d_soc::TileConfig;
use std::fmt::Write as _;

/// Paper reference values for one flow/config (the rows of
/// Tables I–III).
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Flow label.
    pub flow: &'static str,
    /// fclk, MHz.
    pub fclk_mhz: f64,
    /// Emean, fJ/cycle.
    pub emean_fj: f64,
    /// Footprint, mm².
    pub footprint_mm2: f64,
    /// F2F bump count.
    pub f2f_bumps: u64,
}

/// Table I reference (small-cache system, max performance).
pub const TABLE1_PAPER: [PaperRow; 4] = [
    PaperRow {
        flow: "2D",
        fclk_mhz: 390.0,
        emean_fj: 116.7,
        footprint_mm2: 1.20,
        f2f_bumps: 0,
    },
    PaperRow {
        flow: "MoL S2D",
        fclk_mhz: 227.0,
        emean_fj: 123.1,
        footprint_mm2: 0.60,
        f2f_bumps: 5_405,
    },
    PaperRow {
        flow: "BF S2D",
        fclk_mhz: 260.0,
        emean_fj: 112.9,
        footprint_mm2: 0.60,
        f2f_bumps: 8_703,
    },
    PaperRow {
        flow: "Macro-3D",
        fclk_mhz: 470.0,
        emean_fj: 117.6,
        footprint_mm2: 0.60,
        f2f_bumps: 4_740,
    },
];

/// Experiment-wide configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Netlist compression scale (see `TileConfig::scale`).
    pub scale: f64,
    /// Flow configuration (metal counts etc.).
    pub flow: FlowConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 8.0,
            flow: FlowConfig::default(),
        }
    }
}

/// Result of the Table I experiment.
pub struct Table1 {
    /// Measured rows: 2D, MoL S2D, BF S2D, Macro-3D.
    pub rows: Vec<PpaResult>,
    /// One observability trace per flow, in row order (empty when
    /// `cfg.flow.obs` is off).
    pub traces: Vec<macro3d_obs::FlowTrace>,
}

/// Runs Table I: max-performance PPA and cost comparison of all four
/// flows on the small-cache system.
pub fn table1(cfg: &ExperimentConfig) -> Table1 {
    let tile = cached_tile(&TileConfig::small_cache().with_scale(cfg.scale));
    let mut rows = Vec::new();
    let mut traces = Vec::new();
    for flow in standard_flows() {
        let out = flow.run(&tile, &cfg.flow);
        let mut ppa = out.ppa;
        // Table I labels Macro-3D without the metal-depth suffix.
        ppa.flow = flow.name().to_string();
        rows.push(ppa);
        traces.extend(out.obs);
    }
    Table1 { rows, traces }
}

impl Table1 {
    /// Formats measured-vs-paper rows.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "=== Table I: max-performance PPA & cost (small-cache) ==="
        );
        let refs: Vec<&PpaResult> = self.rows.iter().collect();
        s.push_str(&comparison_table(&refs));
        let _ = writeln!(s, "--- paper reference ---");
        for p in TABLE1_PAPER {
            let _ = writeln!(
                s,
                "{:<10} fclk {:>6.0} MHz  Emean {:>6.1} fJ  A {:>5.2} mm2  bumps {:>6}",
                p.flow, p.fclk_mhz, p.emean_fj, p.footprint_mm2, p.f2f_bumps
            );
        }
        s
    }
}

/// Result of the Table II experiment for one cache configuration.
pub struct Table2Config {
    /// The 2D baseline.
    pub r2d: PpaResult,
    /// The Macro-3D result.
    pub r3d: PpaResult,
    /// Iso-performance power of the 2D design (at the 2D fclk), mW.
    pub iso_power_2d_mw: f64,
    /// Iso-performance power of the Macro-3D design at the same
    /// frequency, mW.
    pub iso_power_3d_mw: f64,
}

/// Result of the full Table II experiment.
pub struct Table2 {
    /// Small-cache configuration.
    pub small: Table2Config,
    /// Large-cache configuration.
    pub large: Table2Config,
}

/// Runs Table II: in-depth 2D vs Macro-3D for both cache setups,
/// including the iso-performance power comparison.
pub fn table2(cfg: &ExperimentConfig) -> Table2 {
    let run_one = |tc: TileConfig| -> Table2Config {
        let tile = cached_tile(&tc.with_scale(cfg.scale));
        let out2d = Flow2d.run(&tile, &cfg.flow);
        let out3d = Macro3d.run(&tile, &cfg.flow);
        let r2d = out2d.ppa;
        let mut r3d = out3d.ppa;
        r3d.flow = "Macro-3D".to_string();
        // iso-performance: both at the 2D max frequency
        let f_iso = r2d.fclk_mhz;
        let toggle = out2d.implemented.constraints.toggle_rate;
        let iso2d = out2d.implemented.power_at(f_iso, toggle).total_mw;
        let iso3d = out3d.implemented.power_at(f_iso, toggle).total_mw;
        Table2Config {
            r2d,
            r3d,
            iso_power_2d_mw: iso2d,
            iso_power_3d_mw: iso3d,
        }
    };
    Table2 {
        small: run_one(TileConfig::small_cache()),
        large: run_one(TileConfig::large_cache()),
    }
}

impl Table2 {
    /// Formats the in-depth comparison with paper deltas.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "=== Table II: in-depth 2D vs Macro-3D ===");
        for (name, c, paper) in [
            ("small-cache", &self.small, PAPER_T2_SMALL),
            ("large-cache", &self.large, PAPER_T2_LARGE),
        ] {
            let _ = writeln!(s, "--- {name} ---");
            s.push_str(&comparison_table(&[&c.r2d, &c.r3d]));
            let d = |ours: f64, base: f64| PpaResult::delta_pct(ours, base);
            let _ = writeln!(
                s,
                "measured deltas: fclk {:+.1}% (paper {:+.1}%), Emean {:+.1}% (paper {:+.1}%), \
                 WL {:+.1}% (paper {:+.1}%), crit-WL {:+.1}% (paper {:+.1}%)",
                d(c.r3d.fclk_mhz, c.r2d.fclk_mhz),
                paper.0,
                d(c.r3d.emean_fj, c.r2d.emean_fj),
                paper.1,
                d(c.r3d.total_wirelength_m, c.r2d.total_wirelength_m),
                paper.2,
                d(c.r3d.crit_path_wl_mm, c.r2d.crit_path_wl_mm),
                paper.3,
            );
            let iso = 100.0 * (c.iso_power_3d_mw - c.iso_power_2d_mw) / c.iso_power_2d_mw;
            let _ = writeln!(
                s,
                "iso-performance power delta: {:+.1}% (paper {:+.1}%)",
                iso, paper.4
            );
        }
        s
    }
}

/// Paper Table II deltas: (fclk %, Emean %, wirelength %, crit-path
/// WL %, iso-perf power %).
pub const PAPER_T2_SMALL: (f64, f64, f64, f64, f64) = (20.5, 0.8, -11.8, -63.0, -3.2);
/// See [`PAPER_T2_SMALL`].
pub const PAPER_T2_LARGE: (f64, f64, f64, f64, f64) = (28.2, -0.9, -14.8, -32.0, -3.8);

/// Result of the Table III experiment for one cache configuration.
pub struct Table3Config {
    /// Macro-3D with symmetric M6–M6 stacks.
    pub m6m6: PpaResult,
    /// Macro-3D with the macro die trimmed to four metals (M6–M4).
    pub m6m4: PpaResult,
}

/// Result of the full Table III experiment.
pub struct Table3 {
    /// Small-cache configuration.
    pub small: Table3Config,
    /// Large-cache configuration.
    pub large: Table3Config,
}

/// Runs Table III: the heterogeneous-BEOL experiment (removing two
/// macro-die metal layers).
pub fn table3(cfg: &ExperimentConfig) -> Table3 {
    let run_one = |tc: TileConfig| -> Table3Config {
        let tile = cached_tile(&tc.with_scale(cfg.scale));
        let mut f66 = cfg.flow.clone();
        f66.macro_metals = 6;
        let mut f64_ = cfg.flow.clone();
        f64_.macro_metals = 4;
        Table3Config {
            m6m6: Macro3d.run(&tile, &f66).ppa,
            m6m4: Macro3d.run(&tile, &f64_).ppa,
        }
    };
    Table3 {
        small: run_one(TileConfig::small_cache()),
        large: run_one(TileConfig::large_cache()),
    }
}

impl Table3 {
    /// Formats the heterogeneous-stack comparison.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "=== Table III: heterogeneous BEOL (M6-M6 vs M6-M4) ===");
        for (name, c, paper) in [
            ("small-cache", &self.small, (-1.8, 1.3, -16.7, -18.4)),
            ("large-cache", &self.large, (0.5, -1.0, -16.7, -24.1)),
        ] {
            let _ = writeln!(s, "--- {name} ---");
            s.push_str(&comparison_table(&[&c.m6m6, &c.m6m4]));
            let d = |ours: f64, base: f64| PpaResult::delta_pct(ours, base);
            let _ = writeln!(
                s,
                "measured deltas: fclk {:+.1}% (paper {:+.1}%), Emean {:+.1}% (paper {:+.1}%), \
                 Ametal {:+.1}% (paper {:+.1}%), bumps {:+.1}% (paper {:+.1}%)",
                d(c.m6m4.fclk_mhz, c.m6m6.fclk_mhz),
                paper.0,
                d(c.m6m4.emean_fj, c.m6m6.emean_fj),
                paper.1,
                d(c.m6m4.metal_area_mm2, c.m6m6.metal_area_mm2),
                paper.2,
                d(c.m6m4.f2f_bumps as f64, c.m6m6.f2f_bumps as f64),
                paper.3,
            );
        }
        s
    }
}

/// Figure outputs: SVG strings for Figs. 4–6.
pub struct Figures {
    /// Fig. 4: macro floorplans (2D and MoL, per config).
    pub fig4: Vec<(String, String)>,
    /// Fig. 5: final 2D layouts.
    pub fig5: Vec<(String, String)>,
    /// Fig. 6: final MoL layouts (macro die, logic die with red F2F
    /// bumps).
    pub fig6: Vec<(String, String)>,
}

/// Regenerates Figs. 4–6 for one cache configuration.
pub fn figures(cfg: &ExperimentConfig, tc: TileConfig) -> Figures {
    let name = tc.name.clone();
    let tile = cached_tile(&tc.with_scale(cfg.scale));
    let imp2d = Flow2d.run(&tile, &cfg.flow).implemented;
    let imp3d = Macro3d.run(&tile, &cfg.flow).implemented;

    let macro_list = |imp: &crate::flow::ImplementedDesign| {
        imp.fp
            .macros
            .iter()
            .map(|mp| (mp.inst, mp.rect, mp.die))
            .collect::<Vec<_>>()
    };

    let fig4 = vec![
        (
            format!("fig4_{name}_2d.svg"),
            layout::svg_floorplan(&imp2d.design, imp2d.fp.die(), &macro_list(&imp2d)),
        ),
        (
            format!("fig4_{name}_mol.svg"),
            layout::svg_floorplan(&imp3d.design, imp3d.fp.die(), &macro_list(&imp3d)),
        ),
    ];
    let fig5 = vec![(
        format!("fig5_{name}_2d.svg"),
        layout::svg_implemented(&imp2d),
    )];
    let (logic, upper) = layout::separate(&imp3d);
    let fig6 = vec![
        (
            format!("fig6_{name}_logic_die.svg"),
            layout::svg_layout(&logic),
        ),
        (
            format!("fig6_{name}_macro_die.svg"),
            layout::svg_layout(&upper),
        ),
    ];
    Figures { fig4, fig5, fig6 }
}

/// Runs the C2D flow for the extension comparison (the paper measured
/// it but dropped the numbers as strictly worse than S2D for
/// macro-heavy designs).
pub fn c2d_comparison(cfg: &ExperimentConfig) -> PpaResult {
    let tile = cached_tile(&TileConfig::small_cache().with_scale(cfg.scale));
    C2d.run(&tile, &cfg.flow).ppa
}
