//! Layout export: SVG rendering (Figs. 4–6) and Macro-3D die
//! separation (flow step 4).

use crate::flow::ImplementedDesign;
use macro3d_geom::{Point, Rect};
use macro3d_netlist::{Design, InstId, Master};
use macro3d_route::RouteSeg;
use macro3d_tech::stack::DieRole;
use std::fmt::Write as _;

/// Everything that ends up on one die's GDS.
#[derive(Clone, Debug, Default)]
pub struct DieLayout {
    /// Die outline.
    pub die: Rect,
    /// Standard cells (instance, footprint).
    pub cells: Vec<(InstId, Rect)>,
    /// Macros (instance, footprint) — rescaled to their original size
    /// on the macro die.
    pub macros: Vec<(InstId, Rect)>,
    /// Wire segments with die-local layer indices.
    pub segments: Vec<RouteSeg>,
    /// F2F bump locations (present in both dies' layouts, as the
    /// paper notes the F2F_VIA layer is included in both parts).
    pub f2f_bumps: Vec<Point>,
}

/// Splits an implemented Macro-3D design back into per-die layouts.
///
/// Layers `0..logic_metals` (and the cells) stay on the logic die;
/// higher layers map to the macro die with local indices; F2F-cut
/// vias become bump markers in both layouts.
pub fn separate(imp: &ImplementedDesign) -> (DieLayout, DieLayout) {
    let design = &imp.design;
    let die = imp.fp.die();
    let logic_metals = imp.logic_metals as u16;

    let mut logic = DieLayout {
        die,
        ..Default::default()
    };
    let mut upper = DieLayout {
        die,
        ..Default::default()
    };

    for i in design.inst_ids() {
        let rect = imp.placement.rect(design, i);
        match design.inst(i).master {
            Master::Cell(_) => match imp.placement.die_of[i.index()] {
                DieRole::Logic => logic.cells.push((i, rect)),
                DieRole::Macro => upper.cells.push((i, rect)),
            },
            Master::Macro(_) => match imp.placement.die_of[i.index()] {
                DieRole::Logic => logic.macros.push((i, rect)),
                DieRole::Macro => upper.macros.push((i, rect)),
            },
        }
    }

    let f2f_cut = imp.stack.f2f_cut();
    for routed in imp.routed.nets.iter().flatten() {
        for s in &routed.segments {
            if (s.layer as usize) < logic_metals as usize {
                logic.segments.push(*s);
            } else {
                let mut local = *s;
                local.layer = s.layer - logic_metals;
                upper.segments.push(local);
            }
        }
        for v in &routed.vias {
            if Some(v.layer as usize) == f2f_cut {
                logic.f2f_bumps.push(v.at);
                upper.f2f_bumps.push(v.at);
            }
        }
    }
    (logic, upper)
}

/// Layer fill colours for SVG rendering (cycled).
const LAYER_COLORS: [&str; 10] = [
    "#4575b4", "#74add1", "#abd9e9", "#e0f3f8", "#fee090", "#fdae61", "#f46d43", "#d73027",
    "#a50026", "#762a83",
];

/// Renders a floorplan (die, macros, optional cells) as SVG —
/// regenerates the Fig. 4 macro floorplans.
pub fn svg_floorplan(design: &Design, imp_die: Rect, macros: &[(InstId, Rect, DieRole)]) -> String {
    let mut s = svg_header(imp_die);
    for (inst, rect, die) in macros {
        let color = match die {
            DieRole::Logic => "#9ecae1",
            DieRole::Macro => "#fdae6b",
        };
        svg_rect(&mut s, *rect, color, "#333", 0.9);
        let c = rect.center();
        let _ = write!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-size="8" text-anchor="middle">{}</text>"#,
            c.x.to_um(),
            c.y.to_um(),
            design.inst(*inst).name
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Renders a placed-and-routed die layout as SVG (Figs. 5–6): cells
/// in grey, macros tinted, wires per-layer coloured, F2F bumps as red
/// dots.
pub fn svg_layout(layout: &DieLayout) -> String {
    let mut s = svg_header(layout.die);
    for (_, r) in &layout.cells {
        svg_rect(&mut s, *r, "#bbbbbb", "none", 0.7);
    }
    for (_, r) in &layout.macros {
        svg_rect(&mut s, *r, "#fdae6b", "#333", 0.9);
    }
    for seg in &layout.segments {
        let color = LAYER_COLORS[seg.layer as usize % LAYER_COLORS.len()];
        let _ = write!(
            s,
            r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{}" stroke-width="0.3" opacity="0.5"/>"#,
            seg.from.x.to_um(),
            seg.from.y.to_um(),
            seg.to.x.to_um(),
            seg.to.y.to_um(),
            color
        );
    }
    for b in &layout.f2f_bumps {
        let _ = write!(
            s,
            r#"<circle cx="{:.1}" cy="{:.1}" r="0.8" fill="red"/>"#,
            b.x.to_um(),
            b.y.to_um()
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Renders the floorplan + cells of a full implemented design (one
/// die for 2D designs).
pub fn svg_implemented(imp: &ImplementedDesign) -> String {
    let (logic, _) = separate(imp);
    svg_layout(&logic)
}

fn svg_header(die: Rect) -> String {
    format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="{:.1} {:.1} {:.1} {:.1}">"#,
        die.lo.x.to_um(),
        die.lo.y.to_um(),
        die.width().to_um(),
        die.height().to_um()
    ) + &format!(
        r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="white" stroke="black" stroke-width="1"/>"#,
        die.lo.x.to_um(),
        die.lo.y.to_um(),
        die.width().to_um(),
        die.height().to_um()
    )
}

fn svg_rect(s: &mut String, r: Rect, fill: &str, stroke: &str, opacity: f64) {
    let _ = write!(
        s,
        r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{}" stroke="{}" opacity="{}"/>"#,
        r.lo.x.to_um(),
        r.lo.y.to_um(),
        r.width().to_um(),
        r.height().to_um(),
        fill,
        stroke,
        opacity
    );
}

/// Writes a DEF-like placement dump (component section only) — a
/// text interchange format for downstream tooling.
pub fn write_def(design: &Design, imp: &ImplementedDesign) -> String {
    let mut s = String::new();
    let die = imp.fp.die();
    let _ = writeln!(s, "VERSION 5.8 ;");
    let _ = writeln!(s, "DESIGN {} ;", design.name());
    let _ = writeln!(s, "UNITS DISTANCE MICRONS 1000 ;");
    let _ = writeln!(
        s,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        die.lo.x.nm(),
        die.lo.y.nm(),
        die.hi.x.nm(),
        die.hi.y.nm()
    );
    let _ = writeln!(s, "COMPONENTS {} ;", design.num_insts());
    for i in design.inst_ids() {
        let master = match design.inst(i).master {
            Master::Cell(c) => design.library().cell(c).name.clone(),
            Master::Macro(m) => design.macro_master(m).name.clone(),
        };
        let p = imp.placement.pos[i.index()];
        let die_tag = match imp.placement.die_of[i.index()] {
            DieRole::Logic => "",
            DieRole::Macro => " + PROPERTY TIER MACRO_DIE",
        };
        let _ = writeln!(
            s,
            "- {} {} + PLACED ( {} {} ) {}{} ;",
            design.inst(i).name,
            master,
            p.x.nm(),
            p.y.nm(),
            imp.placement.orient[i.index()],
            die_tag
        );
    }
    let _ = writeln!(s, "END COMPONENTS");
    let _ = writeln!(s, "END DESIGN");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_geom::Dbu;

    #[test]
    fn svg_header_is_well_formed() {
        let die = Rect::from_um(0.0, 0.0, 100.0, 80.0);
        let s = svg_header(die) + "</svg>";
        assert!(s.starts_with("<svg"));
        assert!(s.contains("viewBox=\"0.0 0.0 100.0 80.0\""));
        assert!(s.ends_with("</svg>"));
    }

    #[test]
    fn floorplan_svg_lists_macros() {
        use macro3d_tech::libgen::n28_library;
        use std::sync::Arc;
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let mm = d.add_macro_master(macro3d_sram::MemoryCompiler::n28().sram("s", 512, 64));
        let m = d.add_macro_in("mem0", mm, 0);
        let die = Rect::from_um(0.0, 0.0, 500.0, 500.0);
        let svg = svg_floorplan(
            &d,
            die,
            &[(m, Rect::from_um(10.0, 10.0, 150.0, 200.0), DieRole::Macro)],
        );
        assert!(svg.contains("mem0"));
        assert!(svg.contains("#fdae6b"));
        let _ = Dbu(0);
    }
}
