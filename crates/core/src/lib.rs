#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Macro-3D: physical design flows for face-to-face-stacked
//! heterogeneous 3D ICs (DATE 2020 reproduction).
//!
//! This crate implements the paper's primary contribution — the
//! **Macro-3D** flow ([`macro3d_flow`]) — together with the baselines
//! it is evaluated against:
//!
//! * [`flow2d`] — the conventional single-die flow (the comparison
//!   baseline of every table);
//! * [`s2d`] — Shrunk-2D \[Panth et al.\]: a pseudo-2D stage with
//!   shrunk cells and quantized partial blockages, followed by tier
//!   partitioning, overlap fixing, F2F-via planning and a re-route,
//!   in both memory-on-logic and balanced-floorplan (BF) variants;
//! * [`c2d`] — Compact-2D \[Ku et al.\]: an enlarged-floorplan stage
//!   with √2-scaled parasitics, linear position mapping and
//!   post-partition optimization.
//!
//! All flows drive the *same* placement/routing/timing engines (the
//! `macro3d-place`, `macro3d-route`, `macro3d-extract` and
//! `macro3d-sta` crates) — mirroring the paper's setup where every
//! flow drives the same commercial 2D tools — and return a uniform
//! [`report::PpaResult`].
//!
//! The [`experiments`] module regenerates every table and figure of
//! the paper's evaluation; [`layout`] renders floorplans and routed
//! layouts (Figs. 4–6) as SVG and performs the Macro-3D die
//! separation.
//!
//! # Examples
//!
//! Every flow implements the [`flows::Flow`] trait; configs are
//! validated by [`config::FlowConfigBuilder`]:
//!
//! ```no_run
//! use macro3d::flows::{Flow, Flow2d, Macro3d};
//! use macro3d::FlowConfig;
//! use macro3d_soc::{generate_tile, TileConfig};
//!
//! let cfg = FlowConfig::builder().build().expect("valid config");
//! let tile = generate_tile(&TileConfig::small_cache().with_scale(32.0));
//! let r2d = Flow2d.run(&tile, &cfg).ppa;
//! let r3d = Macro3d.run(&tile, &cfg).ppa;
//! assert!(r3d.footprint_mm2 < r2d.footprint_mm2);
//! ```

pub mod build_cache;
pub mod c2d;
pub mod check;
pub mod config;
pub mod error;
pub mod experiments;
pub mod flow;
pub mod flow2d;
pub mod flows;
pub mod jsonio;
pub mod layout;
pub mod macro3d_flow;
pub mod report;
pub mod s2d;
pub mod stage;
pub mod via_plan;

pub use build_cache::{BuildCache, CacheStats};
pub use config::{ConfigError, FlowConfigBuilder};
pub use error::FlowError;
pub use flow::{FlowConfig, ImplementedDesign, StageTimer, StageTimes};
pub use flows::{Flow, FlowOutcome};
pub use jsonio::{
    degradation_from_json, degradation_to_json, flow_config_from_json, flow_config_to_json,
    fnv1a_64, ppa_fingerprint, ppa_from_json, ppa_to_json, tile_config_from_json,
    tile_config_to_json, CodecError,
};
pub use macro3d_obs::{FlowTrace, ObsConfig, ObsLevel};
pub use macro3d_par::{
    DegradationReport, FaultAction, FaultPlan, FlowBudget, Parallelism, StopReason, STANDARD_SITES,
};
pub use macro3d_place::{AnalyticalConfig, GlobalPlaceConfig, PlacerBackend};
pub use macro3d_route::{RouteConfig, RouteConfigBuilder, RouteConfigError, RouteRequest, Router};
pub use macro3d_sta::StaMode;
pub use report::PpaResult;
pub use stage::{stage_keys, Stage, StageCache, StageKeys, StageReuse};
