//! The typed [`FlowError`] taxonomy for fallible flow execution.
//!
//! [`crate::flows::Flow::try_run`] returns one of these instead of
//! panicking: each variant names the stage that failed and carries
//! enough context to diagnose the run (the offending flow, die, or
//! fault-injection site). Hand-rolled like [`crate::ConfigError`] —
//! no external error crates.
//!
//! The taxonomy deliberately distinguishes *failure* (this type) from
//! *degradation* ([`macro3d_par::DegradationReport`] on a successful
//! [`crate::FlowOutcome`]): a stage that can return best-so-far state
//! degrades; a stage with nothing usable to return errors.

use crate::config::ConfigError;
use std::fmt;

use macro3d_par::{checkpoint, note_degradation, site_visits, Checkpoint, StopReason};

/// A failed flow run (see [`crate::flows::Flow::try_run`]).
#[derive(Clone, Debug, PartialEq)]
pub enum FlowError {
    /// The flow configuration failed validation.
    Config(ConfigError),
    /// Floorplanning could not fit the design: macro packing failed
    /// on the computed die.
    Floorplan {
        /// The stage that failed (e.g. `"2d/macro_pack"`).
        stage: &'static str,
        /// What did not fit, and where.
        detail: String,
    },
    /// Placement failed to produce a usable layout.
    Place {
        /// The stage that failed.
        stage: &'static str,
        /// Context for the failure.
        detail: String,
    },
    /// Routing failed outright (distinct from *degraded* routing,
    /// which returns best-so-far paths plus a degradation record).
    Route {
        /// The stage that failed.
        stage: &'static str,
        /// Context for the failure.
        detail: String,
    },
    /// Extraction failed to produce parasitics.
    Extract {
        /// The stage that failed.
        stage: &'static str,
        /// Context for the failure.
        detail: String,
    },
    /// Timing analysis or optimization failed.
    Sta {
        /// The stage that failed.
        stage: &'static str,
        /// Context for the failure.
        detail: String,
    },
    /// A fault plan injected an error at a flow gate (see
    /// [`macro3d_par::FaultPlan`] and [`macro3d_par::FaultAction::Error`]).
    Injected {
        /// The checkpoint site the fault fired at.
        site: String,
        /// The site's visit count when it fired.
        visit: u64,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Config(e) => write!(f, "invalid flow config: {e}"),
            FlowError::Floorplan { stage, detail } => {
                write!(f, "floorplan failed at {stage}: {detail}")
            }
            FlowError::Place { stage, detail } => {
                write!(f, "placement failed at {stage}: {detail}")
            }
            FlowError::Route { stage, detail } => write!(f, "routing failed at {stage}: {detail}"),
            FlowError::Extract { stage, detail } => {
                write!(f, "extraction failed at {stage}: {detail}")
            }
            FlowError::Sta { stage, detail } => write!(f, "STA failed at {stage}: {detail}"),
            FlowError::Injected { site, visit } => {
                write!(f, "injected error at site {site} (visit {visit})")
            }
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for FlowError {
    fn from(e: ConfigError) -> Self {
        FlowError::Config(e)
    }
}

/// A fallible flow gate: visits the budget checkpoint `site` between
/// stages. An injected error becomes a typed [`FlowError::Injected`];
/// any other stop (deadline, cap, injected exhaustion) records a
/// degradation and lets the flow proceed — the downstream engine
/// loops will themselves wind down at their own checkpoints.
pub(crate) fn flow_gate(site: &'static str) -> Result<(), FlowError> {
    match checkpoint(site) {
        Checkpoint::Continue => Ok(()),
        Checkpoint::Stop(StopReason::InjectedError) => Err(FlowError::Injected {
            site: site.to_string(),
            visit: site_visits(site),
        }),
        Checkpoint::Stop(reason) => {
            note_degradation(site, reason, "stage entered with exhausted budget");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_par::{BudgetScope, FaultAction, FaultPlan, FlowBudget};

    #[test]
    fn display_names_the_stage_and_context() {
        let e = FlowError::Floorplan {
            stage: "2d/macro_pack",
            detail: "17 macros, die 800x800um".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("2d/macro_pack") && msg.contains("800x800"),
            "{msg}"
        );

        let e = FlowError::Injected {
            site: "flow/route".into(),
            visit: 1,
        };
        assert!(e.to_string().contains("flow/route"), "{e}");
    }

    #[test]
    fn config_error_wraps_with_source() {
        use std::error::Error as _;
        let cfg_err = crate::FlowConfig::builder()
            .util_logic(65.0)
            .build()
            .unwrap_err();
        let e = FlowError::from(cfg_err.clone());
        assert_eq!(e, FlowError::Config(cfg_err));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("util_logic"));
    }

    #[test]
    fn gate_maps_injected_error_and_degrades_on_exhaust() {
        let plan = FaultPlan::new()
            .with_fault("flow/route", 1, FaultAction::Error)
            .with_fault("flow/extract", 1, FaultAction::Exhaust);
        let scope = BudgetScope::begin(&FlowBudget::unlimited(), Some(&plan));
        assert!(flow_gate("flow/place").is_ok());
        assert_eq!(
            flow_gate("flow/route"),
            Err(FlowError::Injected {
                site: "flow/route".into(),
                visit: 1
            })
        );
        assert!(flow_gate("flow/extract").is_ok(), "exhaust degrades");
        let report = scope.finish();
        assert!(report.stage("flow/extract").is_some());
        assert!(report.stage("flow/place").is_none());
    }
}
