//! Large-cache config smoke: 2D vs Macro-3D.
use macro3d::report::PpaResult;
use macro3d::{flow2d, macro3d_flow, FlowConfig};
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16.0);
    let cfg = FlowConfig::default();
    let tile = generate_tile(&TileConfig::large_cache().with_scale(scale));
    println!("large tile: {} insts", tile.design.num_insts());
    let t = std::time::Instant::now();
    let i2 = flow2d::run_impl(&tile, &cfg);
    println!("2D in {:?}", t.elapsed());
    let t = std::time::Instant::now();
    let i3 = macro3d_flow::run_impl(&tile, &cfg);
    println!("M3D in {:?}", t.elapsed());
    let r2 = PpaResult::from_impl("2D", &i2);
    let r3 = PpaResult::from_impl("Macro-3D", &i3);
    println!("{}", macro3d::report::comparison_table(&[&r2, &r3]));
}
