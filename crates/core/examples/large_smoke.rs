//! Large-cache config smoke: 2D vs Macro-3D.
use macro3d::flows::{Flow, Flow2d, Macro3d};
use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16.0);
    let cfg = FlowConfig::default();
    let tile = generate_tile(&TileConfig::large_cache().with_scale(scale));
    println!("large tile: {} insts", tile.design.num_insts());
    let t = std::time::Instant::now();
    let r2 = Flow2d.run(&tile, &cfg).ppa;
    println!("2D in {:?}", t.elapsed());
    let t = std::time::Instant::now();
    let r3 = Macro3d.run(&tile, &cfg).ppa;
    println!("M3D in {:?}", t.elapsed());
    println!("{}", macro3d::report::comparison_table(&[&r2, &r3]));
}
