//! Profiles one MoL S2D run with stage timing (MACRO3D_VERBOSE).
use macro3d::s2d::{run_impl, S2dStyle};
use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16.0);
    let tile = generate_tile(&TileConfig::small_cache().with_scale(scale));
    let t = std::time::Instant::now();
    let (imp, diag) = run_impl(&tile, &FlowConfig::default(), S2dStyle::MemoryOnLogic);
    eprintln!("total {:?}; fclk {:.1} MHz; disp {:.1}um; bumps {}",
        t.elapsed(), imp.timing.fclk_mhz, diag.overlap_fix_mean_disp_um, diag.planned_bumps);
}
