//! Profiles one MoL S2D run with per-stage wall-clock.
use macro3d::flows::{Flow, S2d};
use macro3d::s2d::S2dStyle;
use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16.0);
    let tile = generate_tile(&TileConfig::small_cache().with_scale(scale));
    let t = std::time::Instant::now();
    let out = S2d {
        style: S2dStyle::MemoryOnLogic,
    }
    .run(&tile, &FlowConfig::default());
    let diag = out.diagnostics.expect("S2D diagnostics");
    eprintln!(
        "total {:?}; fclk {:.1} MHz; disp {:.1}um; bumps {}",
        t.elapsed(),
        out.implemented.timing.fclk_mhz,
        diag.overlap_fix_mean_disp_um,
        diag.planned_bumps
    );
    eprintln!("{}", out.implemented.stage_times);
}
