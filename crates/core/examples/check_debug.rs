//! Debugs checker findings on the tiny integration tile.
use macro3d::flows::{Flow, Flow2d, Macro3d};
use macro3d::FlowConfig;

use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let mut cfg = TileConfig::small_cache().with_scale(32.0);
    cfg.l3_kb = 64;
    cfg.l2_kb = 8;
    cfg.l1i_kb = 8;
    cfg.l1d_kb = 8;
    cfg.noc_width = 4;
    cfg.core_kgates = 26.0;
    cfg.l3_ctrl_kgates = 5.0;
    cfg.l2_ctrl_kgates = 4.0;
    cfg.l1i_ctrl_kgates = 3.0;
    cfg.l1d_ctrl_kgates = 3.0;
    cfg.noc_kgates = 2.0;
    let tile = generate_tile(&cfg);
    let mut fc = FlowConfig::builder()
        .sizing_rounds(2)
        .build()
        .expect("valid config");
    fc.route.iterations = 2;
    let imp = if std::env::args().nth(1).as_deref() == Some("3d") {
        Macro3d.run(&tile, &fc).implemented
    } else {
        Flow2d.run(&tile, &fc).implemented
    };
    let die = imp.fp.die();
    println!("die {:?}", die);
    println!(
        "blockages {} usable {:.0}um2 of {:.0}um2; macros on logic die: {}",
        imp.fp.blockages.len(),
        imp.fp.usable_area_um2(die),
        die.area_um2(),
        imp.fp
            .macros
            .iter()
            .filter(|m| m.die == macro3d_tech::stack::DieRole::Logic)
            .count()
    );
    let cell_area: f64 = imp
        .design
        .inst_ids()
        .filter(|&i| !imp.design.is_macro(i))
        .map(|i| imp.design.inst_area_um2(i))
        .sum();
    println!("cell area {:.0}um2", cell_area);
    let mut shown = 0;
    for i in imp.design.inst_ids() {
        let r = imp.placement.rect(&imp.design, i);
        if !die.contains_rect(r) && shown < 12 {
            println!(
                "OUT {} {:?} master {:?}",
                imp.design.inst(i).name,
                r,
                imp.design.inst(i).master
            );
            shown += 1;
        }
    }
    // find overlapping pairs and name them
    use macro3d_geom::{Dbu, Rect, RectIndex};
    let cells: Vec<_> = imp
        .design
        .inst_ids()
        .filter(|&i| !imp.design.is_macro(i))
        .collect();
    let mut idx: RectIndex<macro3d_netlist::InstId> =
        RectIndex::new(die.inflate(Dbu::from_um(50.0)), Dbu::from_um(20.0));
    let mut pairs = 0;
    for &i in &cells {
        let r = imp.placement.rect(&imp.design, i);
        for (_, &j) in idx.query(r) {
            pairs += 1;
            if pairs <= 12 {
                println!(
                    "OVERLAP {} <-> {} at {:?}",
                    imp.design.inst(i).name,
                    imp.design.inst(j).name,
                    r
                );
            }
        }
        idx.insert(r, i);
    }
    println!("total overlapping pairs {pairs}");
    let _ = Rect::empty();
}
