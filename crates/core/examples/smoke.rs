//! Quick end-to-end smoke run of the 2D and Macro-3D flows with
//! diagnostics.
use macro3d::report::PpaResult;
use macro3d::{flow2d, macro3d_flow, FlowConfig};
use macro3d_netlist::DesignStats;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16.0);
    let cfg = FlowConfig::default();
    let tile = generate_tile(&TileConfig::small_cache().with_scale(scale));
    println!("tile: {} insts, {} nets", tile.design.num_insts(), tile.design.num_nets());

    for (name, imp) in [
        ("2D", {
            let t0 = std::time::Instant::now();
            let i = flow2d::run_impl(&tile, &cfg);
            println!("2D done in {:?}", t0.elapsed());
            i
        }),
        ("Macro-3D", {
            let t0 = std::time::Instant::now();
            let i = macro3d_flow::run_impl(&tile, &cfg);
            println!("Macro-3D done in {:?}", t0.elapsed());
            i
        }),
    ] {
        let ppa = PpaResult::from_impl(name, &imp);
        println!("{ppa}");
        let s = DesignStats::compute(&imp.design);
        println!(
            "  insts {} | crit stages {} | skew {:.0}ps | route overflow {:.0} ({} edges, max util {:.2}) | min period {:.0}ps",
            s.num_cells,
            imp.timing.crit_path_stages,
            imp.timing.clock_skew_ps,
            imp.routed.overflow,
            imp.routed.overflowed_edges,
            imp.routed.max_utilization,
            imp.timing.min_period_ps,
        );
    }
}
// (appended) — not used; path debug lives in smoke2
