//! Quick end-to-end smoke run of the 2D and Macro-3D flows with
//! diagnostics.
use macro3d::flows::{Flow, Flow2d, Macro3d};
use macro3d::FlowConfig;
use macro3d_netlist::DesignStats;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16.0);
    let cfg = FlowConfig::default();
    let tile = generate_tile(&TileConfig::small_cache().with_scale(scale));
    println!(
        "tile: {} insts, {} nets",
        tile.design.num_insts(),
        tile.design.num_nets()
    );

    let flows: [&dyn Flow; 2] = [&Flow2d, &Macro3d];
    for flow in flows {
        let t0 = std::time::Instant::now();
        let out = flow.run(&tile, &cfg);
        println!("{} done in {:?}", flow.name(), t0.elapsed());
        let imp = out.implemented;
        println!("{}", out.ppa);
        println!("{}", imp.stage_times);
        let s = DesignStats::compute(&imp.design);
        println!(
            "  insts {} | crit stages {} | skew {:.0}ps | route overflow {:.0} ({} edges, max util {:.2}) | min period {:.0}ps",
            s.num_cells,
            imp.timing.crit_path_stages,
            imp.timing.clock_skew_ps,
            imp.routed.overflow,
            imp.routed.overflowed_edges,
            imp.routed.max_utilization,
            imp.timing.min_period_ps,
        );
    }
}
// (appended) — not used; path debug lives in smoke2
