//! Dumps the critical path of the 2D flow for debugging.
use macro3d::flows::{Flow, Flow2d};
use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let cfg = FlowConfig::default();
    let large = std::env::args().nth(1).as_deref() == Some("large");
    let tc = if large {
        TileConfig::large_cache()
    } else {
        TileConfig::small_cache()
    };
    let tile = generate_tile(&tc.with_scale(16.0));
    let imp = Flow2d.run(&tile, &cfg).implemented;
    println!(
        "min period {:.0}ps, {} crit nets, overflow {:.0} ({} edges), insertion {:.0}ps skew {:.0}ps",
        imp.timing.min_period_ps,
        imp.timing.crit_path_nets.len(),
        imp.routed.overflow,
        imp.routed.overflowed_edges,
        imp.clock.insertion_ps,
        imp.clock.skew_ps,
    );
    println!(
        "{}",
        macro3d_sta::format_critical_path(
            &imp.design,
            &imp.parasitics,
            Some(&imp.routed),
            &imp.timing
        )
    );
    for &n in &imp.timing.crit_path_nets {
        let net = imp.design.net(n);
        let par = &imp.parasitics[n.index()];
        let wl = imp.routed.net(n).map(|r| r.wirelength_um()).unwrap_or(0.0);
        let emax = par.elmore_ps.iter().cloned().fold(0.0, f64::max);
        let drv = imp.design.driver(n);
        let drv_name = match drv {
            Some(macro3d_netlist::PinRef::Inst { inst, .. }) => {
                let i = imp.design.inst(inst);
                let m = match i.master {
                    macro3d_netlist::Master::Cell(c) => imp.design.library().cell(c).name.clone(),
                    macro3d_netlist::Master::Macro(m) => imp.design.macro_master(m).name.clone(),
                };
                format!("{} ({})", i.name, m)
            }
            Some(macro3d_netlist::PinRef::Port(p)) => format!("port {}", imp.design.port(p).name),
            None => "??".into(),
        };
        println!(
            "  net {:<28} deg {:>3} wl {:>8.1}um elmore_max {:>8.1}ps load {:>8.1}fF drv {}",
            net.name,
            net.pins.len(),
            wl,
            emax,
            par.driver_load_ff,
            drv_name
        );
    }
}
