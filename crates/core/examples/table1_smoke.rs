//! Smoke run of all Table I flows.
use macro3d::s2d::S2dStyle;
use macro3d::{c2d, flow2d, macro3d_flow, s2d, FlowConfig};
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16.0);
    let cfg = FlowConfig::default();
    let tile = generate_tile(&TileConfig::small_cache().with_scale(scale));
    let t = std::time::Instant::now();
    let r2d = flow2d::run(&tile, &cfg);
    eprintln!("2D: {:?}", t.elapsed());
    let t = std::time::Instant::now();
    let (smol, d1) = s2d::run_impl(&tile, &cfg, S2dStyle::MemoryOnLogic);
    eprintln!("MoL S2D: {:?} (disp {:.1}um, {} cells on top, {} planned bumps)", t.elapsed(), d1.overlap_fix_mean_disp_um, d1.cells_on_macro_die, d1.planned_bumps);
    let rmol = macro3d::PpaResult::from_impl("MoL S2D", &smol);
    let t = std::time::Instant::now();
    let (sbf, d2) = s2d::run_impl(&tile, &cfg, S2dStyle::Balanced);
    eprintln!("BF S2D: {:?} (disp {:.1}um, {} cells on top, {} planned bumps)", t.elapsed(), d2.overlap_fix_mean_disp_um, d2.cells_on_macro_die, d2.planned_bumps);
    let rbf = macro3d::PpaResult::from_impl("BF S2D", &sbf);
    let t = std::time::Instant::now();
    let r3d = macro3d_flow::run(&tile, &cfg);
    eprintln!("Macro-3D: {:?}", t.elapsed());
    let t = std::time::Instant::now();
    let rc2d = c2d::run(&tile, &cfg);
    eprintln!("C2D: {:?}", t.elapsed());
    println!("{}", macro3d::report::comparison_table(&[&r2d, &rmol, &rbf, &rc2d, &r3d]));
}
