//! Smoke run of all Table I flows (plus C2D) through the `Flow` trait.
use macro3d::flows::all_flows;

use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16.0);
    let cfg = FlowConfig::default();
    let tile = generate_tile(&TileConfig::small_cache().with_scale(scale));
    let mut rows = Vec::new();
    for flow in all_flows() {
        let t = std::time::Instant::now();
        let out = flow.run(&tile, &cfg);
        match out.diagnostics {
            Some(d) => eprintln!(
                "{}: {:?} (disp {:.1}um, {} cells on top, {} planned bumps)",
                flow.name(),
                t.elapsed(),
                d.overlap_fix_mean_disp_um,
                d.cells_on_macro_die,
                d.planned_bumps
            ),
            None => eprintln!("{}: {:?}", flow.name(), t.elapsed()),
        }
        let mut ppa = out.ppa;
        ppa.flow = flow.name().to_string();
        rows.push(ppa);
    }
    let refs: Vec<&macro3d::PpaResult> = rows.iter().collect();
    println!("{}", macro3d::report::comparison_table(&refs));
}
