//! Database-unit coordinate type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// A length or coordinate in database units (1 DBU = 1 nm).
///
/// `Dbu` is a transparent newtype over `i64` so all geometric
/// computations stay exact. Conversions to physical units are provided
/// by [`Dbu::to_um`] / [`Dbu::from_um`] and the nanometre accessors.
///
/// # Examples
///
/// ```
/// use macro3d_geom::Dbu;
///
/// let a = Dbu::from_um(1.5);
/// let b = Dbu::from_nm(500);
/// assert_eq!((a + b).to_um(), 2.0);
/// assert_eq!((a - b).nm(), 1_000);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dbu(pub i64);

impl Dbu {
    /// Zero length.
    pub const ZERO: Dbu = Dbu(0);
    /// Largest representable coordinate.
    pub const MAX: Dbu = Dbu(i64::MAX);
    /// Smallest representable coordinate.
    pub const MIN: Dbu = Dbu(i64::MIN);

    /// Creates a coordinate from nanometres.
    #[inline]
    pub const fn from_nm(nm: i64) -> Self {
        Dbu(nm)
    }

    /// Creates a coordinate from micrometres (rounded to the nearest
    /// nanometre).
    #[inline]
    pub fn from_um(um: f64) -> Self {
        Dbu((um * 1_000.0).round() as i64)
    }

    /// Returns the raw value in nanometres.
    #[inline]
    pub const fn nm(self) -> i64 {
        self.0
    }

    /// Returns the value in micrometres.
    #[inline]
    pub fn to_um(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the value in millimetres.
    #[inline]
    pub fn to_mm(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Self {
        Dbu(self.0.abs())
    }

    /// The smaller of two coordinates.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Dbu(self.0.min(other.0))
    }

    /// The larger of two coordinates.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Dbu(self.0.max(other.0))
    }

    /// Clamps `self` into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Dbu(self.0.clamp(lo.0, hi.0))
    }

    /// Rounds down to the nearest multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or negative.
    #[inline]
    pub fn floor_to(self, step: Self) -> Self {
        assert!(step.0 > 0, "step must be positive");
        Dbu(self.0.div_euclid(step.0) * step.0)
    }

    /// Rounds up to the nearest multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or negative.
    #[inline]
    pub fn ceil_to(self, step: Self) -> Self {
        assert!(step.0 > 0, "step must be positive");
        Dbu((self.0 + step.0 - 1).div_euclid(step.0) * step.0)
    }

    /// Rounds to the nearest multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or negative.
    #[inline]
    pub fn round_to(self, step: Self) -> Self {
        assert!(step.0 > 0, "step must be positive");
        let half = step.0 / 2;
        Dbu((self.0 + half).div_euclid(step.0) * step.0)
    }

    /// Multiplies by a floating-point factor, rounding to the nearest
    /// DBU. Used for flow-level geometric scaling (e.g. the Shrunk-2D
    /// 50 % cell shrink).
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        Dbu((self.0 as f64 * factor).round() as i64)
    }
}

impl fmt::Debug for Dbu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.0)
    }
}

impl fmt::Display for Dbu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}um", self.to_um())
    }
}

impl Add for Dbu {
    type Output = Dbu;
    #[inline]
    fn add(self, rhs: Dbu) -> Dbu {
        Dbu(self.0 + rhs.0)
    }
}

impl AddAssign for Dbu {
    #[inline]
    fn add_assign(&mut self, rhs: Dbu) {
        self.0 += rhs.0;
    }
}

impl Sub for Dbu {
    type Output = Dbu;
    #[inline]
    fn sub(self, rhs: Dbu) -> Dbu {
        Dbu(self.0 - rhs.0)
    }
}

impl SubAssign for Dbu {
    #[inline]
    fn sub_assign(&mut self, rhs: Dbu) {
        self.0 -= rhs.0;
    }
}

impl Neg for Dbu {
    type Output = Dbu;
    #[inline]
    fn neg(self) -> Dbu {
        Dbu(-self.0)
    }
}

impl Mul<i64> for Dbu {
    type Output = Dbu;
    #[inline]
    fn mul(self, rhs: i64) -> Dbu {
        Dbu(self.0 * rhs)
    }
}

impl Div<i64> for Dbu {
    type Output = Dbu;
    #[inline]
    fn div(self, rhs: i64) -> Dbu {
        Dbu(self.0 / rhs)
    }
}

impl Div for Dbu {
    type Output = i64;
    #[inline]
    fn div(self, rhs: Dbu) -> i64 {
        self.0 / rhs.0
    }
}

impl Rem for Dbu {
    type Output = Dbu;
    #[inline]
    fn rem(self, rhs: Dbu) -> Dbu {
        Dbu(self.0 % rhs.0)
    }
}

impl Sum for Dbu {
    fn sum<I: Iterator<Item = Dbu>>(iter: I) -> Dbu {
        Dbu(iter.map(|d| d.0).sum())
    }
}

impl From<i64> for Dbu {
    fn from(nm: i64) -> Self {
        Dbu(nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(Dbu::from_um(1.0).nm(), 1_000);
        assert_eq!(Dbu::from_nm(2_500).to_um(), 2.5);
        assert_eq!(Dbu::from_um(0.0005).nm(), 1); // rounds
        assert_eq!(Dbu::from_nm(1_000_000).to_mm(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = Dbu(100);
        let b = Dbu(30);
        assert_eq!(a + b, Dbu(130));
        assert_eq!(a - b, Dbu(70));
        assert_eq!(-a, Dbu(-100));
        assert_eq!(a * 3, Dbu(300));
        assert_eq!(a / 2, Dbu(50));
        assert_eq!(a / b, 3);
        assert_eq!(a % b, Dbu(10));
        let s: Dbu = [a, b, Dbu(1)].into_iter().sum();
        assert_eq!(s, Dbu(131));
    }

    #[test]
    fn rounding_to_step() {
        let step = Dbu(200);
        assert_eq!(Dbu(450).floor_to(step), Dbu(400));
        assert_eq!(Dbu(450).ceil_to(step), Dbu(600));
        assert_eq!(Dbu(450).round_to(step), Dbu(400));
        assert_eq!(Dbu(510).round_to(step), Dbu(600));
        // negative coordinates floor/ceil consistently
        assert_eq!(Dbu(-450).floor_to(step), Dbu(-600));
        assert_eq!(Dbu(-450).ceil_to(step), Dbu(-400));
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(Dbu(100).scale(0.5), Dbu(50));
        assert_eq!(Dbu(101).scale(0.5), Dbu(51)); // 50.5 rounds to 51
        assert_eq!(Dbu(1_000).scale(1.0 / 2.0_f64.sqrt()), Dbu(707));
    }

    #[test]
    fn min_max_clamp() {
        assert_eq!(Dbu(3).min(Dbu(5)), Dbu(3));
        assert_eq!(Dbu(3).max(Dbu(5)), Dbu(5));
        assert_eq!(Dbu(10).clamp(Dbu(0), Dbu(5)), Dbu(5));
        assert_eq!(Dbu(-10).clamp(Dbu(0), Dbu(5)), Dbu(0));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn floor_to_zero_step_panics() {
        let _ = Dbu(1).floor_to(Dbu(0));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Dbu(1_500)), "1.500um");
        assert_eq!(format!("{:?}", Dbu(1_500)), "1500nm");
    }
}
