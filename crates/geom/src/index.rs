//! Grid-bucketed spatial index over rectangles.

use crate::{BinGrid, Rect};

/// A spatial index mapping rectangles to user payloads, backed by a
/// uniform bin grid.
///
/// Suited for the query patterns in placement and routing: many
/// similarly sized obstacles (macros, blockages) queried by region.
/// Insertion is `O(bins covered)`; queries return candidates from the
/// covered bins and filter exactly.
///
/// # Examples
///
/// ```
/// use macro3d_geom::{Dbu, Rect, RectIndex};
///
/// let mut idx = RectIndex::new(Rect::from_um(0.0, 0.0, 100.0, 100.0), Dbu::from_um(10.0));
/// idx.insert(Rect::from_um(5.0, 5.0, 15.0, 15.0), 42u32);
/// let hits: Vec<_> = idx.query(Rect::from_um(0.0, 0.0, 10.0, 10.0)).collect();
/// assert_eq!(hits, vec![(Rect::from_um(5.0, 5.0, 15.0, 15.0), &42)]);
/// ```
#[derive(Clone, Debug)]
pub struct RectIndex<T> {
    grid: BinGrid,
    entries: Vec<(Rect, T)>,
    buckets: Vec<Vec<u32>>,
}

impl<T> RectIndex<T> {
    /// Creates an empty index over `region` with roughly square bins
    /// of side `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is non-positive or `region` is empty.
    pub fn new(region: Rect, bin: crate::Dbu) -> Self {
        let grid = BinGrid::with_bin_size(region, bin);
        let buckets = vec![Vec::new(); grid.len()];
        RectIndex {
            grid,
            entries: Vec::new(),
            buckets,
        }
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a rectangle with its payload. Rectangles outside the
    /// index region are stored but only found by [`Self::iter`].
    pub fn insert(&mut self, rect: Rect, value: T) {
        let id = self.entries.len() as u32;
        self.entries.push((rect, value));
        if let Some((lo, hi)) = self.grid.bins_overlapping(rect) {
            for y in lo.y..=hi.y {
                for x in lo.x..=hi.x {
                    let flat = self.grid.flat(crate::BinIx::new(x, y));
                    self.buckets[flat].push(id);
                }
            }
        }
    }

    /// All rectangles whose interiors overlap `area`.
    pub fn query(&self, area: Rect) -> impl Iterator<Item = (Rect, &T)> + '_ {
        let mut ids: Vec<u32> = Vec::new();
        if let Some((lo, hi)) = self.grid.bins_overlapping(area) {
            for y in lo.y..=hi.y {
                for x in lo.x..=hi.x {
                    let flat = self.grid.flat(crate::BinIx::new(x, y));
                    ids.extend_from_slice(&self.buckets[flat]);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().filter_map(move |id| {
            let (r, v) = &self.entries[id as usize];
            if r.overlaps(area) {
                Some((*r, v))
            } else {
                None
            }
        })
    }

    /// True if any stored rectangle overlaps `area`.
    pub fn any_overlap(&self, area: Rect) -> bool {
        self.query(area).next().is_some()
    }

    /// Iterates over every stored `(rect, payload)` in insertion
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Rect, &T)> + '_ {
        self.entries.iter().map(|(r, v)| (*r, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dbu;

    fn idx() -> RectIndex<u32> {
        let mut i = RectIndex::new(Rect::from_um(0.0, 0.0, 100.0, 100.0), Dbu::from_um(10.0));
        i.insert(Rect::from_um(0.0, 0.0, 20.0, 20.0), 1);
        i.insert(Rect::from_um(50.0, 50.0, 60.0, 60.0), 2);
        i.insert(Rect::from_um(0.0, 0.0, 100.0, 100.0), 3);
        i
    }

    #[test]
    fn query_filters_exactly() {
        let i = idx();
        let mut hits: Vec<u32> = i
            .query(Rect::from_um(55.0, 55.0, 58.0, 58.0))
            .map(|(_, v)| *v)
            .collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![2, 3]);
    }

    #[test]
    fn query_deduplicates_multi_bin_rects() {
        let i = idx();
        // entry 3 covers every bin; it must appear exactly once.
        let hits: Vec<u32> = i
            .query(Rect::from_um(0.0, 0.0, 100.0, 100.0))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(hits.iter().filter(|&&v| v == 3).count(), 1);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn touching_is_not_overlap() {
        let i = idx();
        let hits: Vec<u32> = i
            .query(Rect::from_um(20.0, 0.0, 30.0, 10.0))
            .map(|(_, v)| *v)
            .filter(|&v| v == 1)
            .collect();
        assert!(hits.is_empty());
    }

    #[test]
    fn any_overlap_and_len() {
        let i = idx();
        assert_eq!(i.len(), 3);
        assert!(!i.is_empty());
        assert!(i.any_overlap(Rect::from_um(1.0, 1.0, 2.0, 2.0)));
    }
}
