//! Placement orientations.

use std::fmt;

/// Orientation of a placed instance, following the DEF convention.
///
/// Standard-cell rows alternate between `N` and `FS` so that power
/// rails are shared; macros may additionally be rotated.
///
/// # Examples
///
/// ```
/// use macro3d_geom::Orientation;
///
/// assert!(Orientation::R90.swaps_extent());
/// assert!(!Orientation::FS.swaps_extent());
/// assert_eq!(Orientation::N.flipped_y(), Orientation::FS);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// North: no rotation.
    #[default]
    N,
    /// South: 180° rotation.
    S,
    /// Rotated 90° counter-clockwise.
    R90,
    /// Rotated 270° counter-clockwise.
    R270,
    /// Flipped about the y axis.
    FN,
    /// Flipped about the x axis (mirrored rows).
    FS,
    /// Flipped and rotated 90°.
    FW,
    /// Flipped and rotated 270°.
    FE,
}

impl Orientation {
    /// All eight orientations.
    pub const ALL: [Orientation; 8] = [
        Orientation::N,
        Orientation::S,
        Orientation::R90,
        Orientation::R270,
        Orientation::FN,
        Orientation::FS,
        Orientation::FW,
        Orientation::FE,
    ];

    /// True if this orientation exchanges width and height.
    #[inline]
    pub fn swaps_extent(self) -> bool {
        matches!(
            self,
            Orientation::R90 | Orientation::R270 | Orientation::FW | Orientation::FE
        )
    }

    /// The orientation after an additional flip about the x axis.
    #[inline]
    pub fn flipped_y(self) -> Orientation {
        match self {
            Orientation::N => Orientation::FS,
            Orientation::FS => Orientation::N,
            Orientation::S => Orientation::FN,
            Orientation::FN => Orientation::S,
            Orientation::R90 => Orientation::FE,
            Orientation::FE => Orientation::R90,
            Orientation::R270 => Orientation::FW,
            Orientation::FW => Orientation::R270,
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::N => "N",
            Orientation::S => "S",
            Orientation::R90 => "R90",
            Orientation::R270 => "R270",
            Orientation::FN => "FN",
            Orientation::FS => "FS",
            Orientation::FW => "FW",
            Orientation::FE => "FE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_swap() {
        assert!(Orientation::R90.swaps_extent());
        assert!(Orientation::R270.swaps_extent());
        assert!(Orientation::FW.swaps_extent());
        assert!(Orientation::FE.swaps_extent());
        assert!(!Orientation::N.swaps_extent());
        assert!(!Orientation::S.swaps_extent());
        assert!(!Orientation::FN.swaps_extent());
        assert!(!Orientation::FS.swaps_extent());
    }

    #[test]
    fn flip_is_involution() {
        for o in Orientation::ALL {
            assert_eq!(o.flipped_y().flipped_y(), o);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Orientation::FS.to_string(), "FS");
        assert_eq!(Orientation::R90.to_string(), "R90");
    }
}
