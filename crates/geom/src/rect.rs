//! Axis-aligned rectangles.

use crate::{Dbu, Point, Size};
use std::fmt;

/// An axis-aligned rectangle, stored as inclusive-low / exclusive-high
/// corners (`lo.x <= hi.x`, `lo.y <= hi.y`).
///
/// Degenerate (zero-width or zero-height) rectangles are allowed; they
/// have zero area and intersect nothing.
///
/// # Examples
///
/// ```
/// use macro3d_geom::{Dbu, Point, Rect};
///
/// let a = Rect::from_um(0.0, 0.0, 10.0, 10.0);
/// let b = Rect::from_um(5.0, 5.0, 20.0, 20.0);
/// let i = a.intersection(b).expect("rects overlap");
/// assert_eq!(i, Rect::from_um(5.0, 5.0, 10.0, 10.0));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Lower-left corner (inclusive).
    pub lo: Point,
    /// Upper-right corner (exclusive).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from two corners, normalising so that
    /// `lo <= hi` component-wise.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a rectangle from micrometre corner coordinates.
    #[inline]
    pub fn from_um(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(Point::from_um(x0, y0), Point::from_um(x1, y1))
    }

    /// Creates a rectangle from a lower-left origin and a size.
    #[inline]
    pub fn from_origin_size(origin: Point, size: Size) -> Self {
        Rect::new(origin, origin + size)
    }

    /// The empty rectangle at the origin.
    #[inline]
    pub fn empty() -> Self {
        Rect::default()
    }

    /// Width (x extent).
    #[inline]
    pub fn width(self) -> Dbu {
        self.hi.x - self.lo.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(self) -> Dbu {
        self.hi.y - self.lo.y
    }

    /// Extent as a [`Size`].
    #[inline]
    pub fn size(self) -> Size {
        self.hi - self.lo
    }

    /// Area in square micrometres.
    #[inline]
    pub fn area_um2(self) -> f64 {
        self.size().area_um2()
    }

    /// Centre point (rounded down on odd extents).
    #[inline]
    pub fn center(self) -> Point {
        Point::new(
            Dbu((self.lo.x.0 + self.hi.x.0) / 2),
            Dbu((self.lo.y.0 + self.hi.y.0) / 2),
        )
    }

    /// True if the rectangle has zero (or negative) area.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.size().is_degenerate()
    }

    /// True if `p` lies inside (lo-inclusive, hi-exclusive).
    #[inline]
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.lo.x && p.x < self.hi.x && p.y >= self.lo.y && p.y < self.hi.y
    }

    /// True if `other` lies fully within `self` (boundaries may touch).
    #[inline]
    pub fn contains_rect(self, other: Rect) -> bool {
        other.lo.x >= self.lo.x
            && other.lo.y >= self.lo.y
            && other.hi.x <= self.hi.x
            && other.hi.y <= self.hi.y
    }

    /// True if the interiors of the rectangles overlap (touching
    /// edges do not count).
    #[inline]
    pub fn overlaps(self, other: Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// The overlapping region, or `None` if the interiors are disjoint.
    #[inline]
    pub fn intersection(self, other: Rect) -> Option<Rect> {
        if self.overlaps(other) {
            Some(Rect {
                lo: self.lo.max(other.lo),
                hi: self.hi.min(other.hi),
            })
        } else {
            None
        }
    }

    /// Smallest rectangle covering both inputs.
    #[inline]
    pub fn union(self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Grows (or shrinks, for negative `margin`) the rectangle on all
    /// sides.
    #[inline]
    pub fn inflate(self, margin: Dbu) -> Rect {
        Rect::new(
            Point::new(self.lo.x - margin, self.lo.y - margin),
            Point::new(self.hi.x + margin, self.hi.y + margin),
        )
    }

    /// Translates the rectangle so its lower-left corner is `origin`.
    #[inline]
    pub fn moved_to(self, origin: Point) -> Rect {
        Rect::from_origin_size(origin, self.size())
    }

    /// Translates the rectangle by the given offset.
    #[inline]
    pub fn translated(self, dx: Dbu, dy: Dbu) -> Rect {
        Rect {
            lo: Point::new(self.lo.x + dx, self.lo.y + dy),
            hi: Point::new(self.hi.x + dx, self.hi.y + dy),
        }
    }

    /// Scales both corners about the origin by a factor.
    #[inline]
    pub fn scale(self, factor: f64) -> Rect {
        Rect::new(self.lo.scale(factor), self.hi.scale(factor))
    }

    /// Scales x and y about the origin by independent factors.
    #[inline]
    pub fn scale_xy(self, fx: f64, fy: f64) -> Rect {
        Rect::new(self.lo.scale_xy(fx, fy), self.hi.scale_xy(fx, fy))
    }

    /// Manhattan distance from `p` to the closest point of the
    /// rectangle (zero when `p` is inside).
    #[inline]
    pub fn manhattan_to_point(self, p: Point) -> Dbu {
        let dx = if p.x < self.lo.x {
            self.lo.x - p.x
        } else if p.x >= self.hi.x {
            p.x - self.hi.x
        } else {
            Dbu(0)
        };
        let dy = if p.y < self.lo.y {
            self.lo.y - p.y
        } else if p.y >= self.hi.y {
            p.y - self.hi.y
        } else {
            Dbu(0)
        };
        dx + dy
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?} .. {:?}]", self.lo, self.hi)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(Dbu(x0), Dbu(y0)), Point::new(Dbu(x1), Dbu(y1)))
    }

    #[test]
    fn construction_normalises() {
        let a = Rect::new(Point::new(Dbu(10), Dbu(0)), Point::new(Dbu(0), Dbu(10)));
        assert_eq!(a, r(0, 0, 10, 10));
    }

    #[test]
    fn containment() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains(Point::new(Dbu(0), Dbu(0))));
        assert!(!a.contains(Point::new(Dbu(10), Dbu(10)))); // hi exclusive
        assert!(a.contains_rect(r(2, 2, 8, 8)));
        assert!(a.contains_rect(a));
        assert!(!a.contains_rect(r(2, 2, 11, 8)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = r(0, 0, 10, 10);
        assert!(a.overlaps(r(5, 5, 15, 15)));
        assert_eq!(a.intersection(r(5, 5, 15, 15)), Some(r(5, 5, 10, 10)));
        // touching edges do not overlap
        assert!(!a.overlaps(r(10, 0, 20, 10)));
        assert_eq!(a.intersection(r(10, 0, 20, 10)), None);
        // disjoint
        assert!(!a.overlaps(r(20, 20, 30, 30)));
    }

    #[test]
    fn union_handles_empty() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.union(Rect::empty()), a);
        assert_eq!(Rect::empty().union(a), a);
        assert_eq!(a.union(r(20, 20, 30, 30)), r(0, 0, 30, 30));
    }

    #[test]
    fn transforms() {
        let a = r(2, 2, 6, 8);
        assert_eq!(a.translated(Dbu(1), Dbu(-2)), r(3, 0, 7, 6));
        assert_eq!(a.moved_to(Point::ORIGIN), r(0, 0, 4, 6));
        assert_eq!(a.inflate(Dbu(1)), r(1, 1, 7, 9));
        assert_eq!(a.scale(0.5), r(1, 1, 3, 4));
        assert_eq!(a.scale_xy(2.0, 1.0), r(4, 2, 12, 8));
        assert_eq!(a.center(), Point::new(Dbu(4), Dbu(5)));
    }

    #[test]
    fn point_distance() {
        let a = r(10, 10, 20, 20);
        assert_eq!(a.manhattan_to_point(Point::new(Dbu(15), Dbu(15))), Dbu(0));
        assert_eq!(a.manhattan_to_point(Point::new(Dbu(0), Dbu(15))), Dbu(10));
        assert_eq!(a.manhattan_to_point(Point::new(Dbu(0), Dbu(0))), Dbu(20));
        assert_eq!(a.manhattan_to_point(Point::new(Dbu(25), Dbu(25))), Dbu(10));
    }
}
