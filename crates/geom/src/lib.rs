#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Geometry substrate for the Macro-3D physical-design reproduction.
//!
//! All physical-design engines in this workspace (floorplanning,
//! placement, routing, extraction) operate on the primitives defined
//! here: integer database-unit coordinates ([`Dbu`]), points, sizes,
//! axis-aligned rectangles, orientations, half-open intervals, uniform
//! bin grids and a simple spatial index.
//!
//! Coordinates are stored as `i64` database units with 1 DBU = 1 nm,
//! which comfortably covers multi-millimetre dies without overflow and
//! keeps all geometry exact (no floating-point drift in legality
//! checks).
//!
//! # Examples
//!
//! ```
//! use macro3d_geom::{Dbu, Point, Rect};
//!
//! let die = Rect::new(
//!     Point::new(Dbu(0), Dbu(0)),
//!     Point::new(Dbu::from_um(1_000.0), Dbu::from_um(600.0)),
//! );
//! assert_eq!(die.width().to_um(), 1_000.0);
//! assert!(die.contains(Point::new(Dbu::from_um(10.0), Dbu::from_um(10.0))));
//! ```

pub mod coord;
pub mod grid;
pub mod index;
pub mod interval;
pub mod orient;
pub mod point;
pub mod rect;
pub mod size;

pub use coord::Dbu;
pub use grid::{BinGrid, BinIx};
pub use index::RectIndex;
pub use interval::Interval;
pub use orient::Orientation;
pub use point::Point;
pub use rect::Rect;
pub use size::Size;
