//! 2-D extents.

use crate::Dbu;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A width/height pair in database units.
///
/// # Examples
///
/// ```
/// use macro3d_geom::{Dbu, Size};
///
/// let s = Size::from_um(2.0, 1.5);
/// assert_eq!(s.area_um2(), 3.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Size {
    /// Width (x extent).
    pub w: Dbu,
    /// Height (y extent).
    pub h: Dbu,
}

impl Size {
    /// Zero-area size.
    pub const ZERO: Size = Size {
        w: Dbu(0),
        h: Dbu(0),
    };

    /// Creates a size from extents.
    #[inline]
    pub const fn new(w: Dbu, h: Dbu) -> Self {
        Size { w, h }
    }

    /// Creates a size from micrometre extents.
    #[inline]
    pub fn from_um(w: f64, h: f64) -> Self {
        Size {
            w: Dbu::from_um(w),
            h: Dbu::from_um(h),
        }
    }

    /// Area in square micrometres.
    #[inline]
    pub fn area_um2(self) -> f64 {
        self.w.to_um() * self.h.to_um()
    }

    /// Area in square millimetres.
    #[inline]
    pub fn area_mm2(self) -> f64 {
        self.w.to_mm() * self.h.to_mm()
    }

    /// Half-perimeter (w + h), the HPWL contribution of a bounding box.
    #[inline]
    pub fn half_perimeter(self) -> Dbu {
        self.w + self.h
    }

    /// Swaps width and height (a 90° rotation of the extent).
    #[inline]
    pub fn transposed(self) -> Size {
        Size::new(self.h, self.w)
    }

    /// Scales both extents by a factor, rounding to the nearest DBU.
    #[inline]
    pub fn scale(self, factor: f64) -> Size {
        Size::new(self.w.scale(factor), self.h.scale(factor))
    }

    /// True if either extent is zero or negative.
    #[inline]
    pub fn is_degenerate(self) -> bool {
        self.w.0 <= 0 || self.h.0 <= 0
    }
}

impl fmt::Debug for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}x{:?}", self.w, self.h)
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x {}", self.w, self.h)
    }
}

impl Add for Size {
    type Output = Size;
    #[inline]
    fn add(self, rhs: Size) -> Size {
        Size::new(self.w + rhs.w, self.h + rhs.h)
    }
}

impl Sub for Size {
    type Output = Size;
    #[inline]
    fn sub(self, rhs: Size) -> Size {
        Size::new(self.w - rhs.w, self.h - rhs.h)
    }
}

impl Mul<i64> for Size {
    type Output = Size;
    #[inline]
    fn mul(self, rhs: i64) -> Size {
        Size::new(self.w * rhs, self.h * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas() {
        let s = Size::from_um(1_000.0, 600.0);
        assert!((s.area_mm2() - 0.6).abs() < 1e-12);
        assert_eq!(s.half_perimeter(), Dbu::from_um(1_600.0));
    }

    #[test]
    fn transforms() {
        let s = Size::new(Dbu(10), Dbu(20));
        assert_eq!(s.transposed(), Size::new(Dbu(20), Dbu(10)));
        assert_eq!(s.scale(0.5), Size::new(Dbu(5), Dbu(10)));
        assert!(!s.is_degenerate());
        assert!(Size::new(Dbu(0), Dbu(5)).is_degenerate());
    }

    #[test]
    fn arithmetic() {
        let a = Size::new(Dbu(3), Dbu(4));
        let b = Size::new(Dbu(1), Dbu(1));
        assert_eq!(a + b, Size::new(Dbu(4), Dbu(5)));
        assert_eq!(a - b, Size::new(Dbu(2), Dbu(3)));
        assert_eq!(a * 2, Size::new(Dbu(6), Dbu(8)));
    }
}
