//! 2-D points.

use crate::{Dbu, Size};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in the die plane, in database units.
///
/// # Examples
///
/// ```
/// use macro3d_geom::{Dbu, Point};
///
/// let a = Point::new(Dbu(0), Dbu(0));
/// let b = Point::new(Dbu(300), Dbu(400));
/// assert_eq!(a.manhattan(b), Dbu(700));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Dbu,
    /// Vertical coordinate.
    pub y: Dbu,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point {
        x: Dbu(0),
        y: Dbu(0),
    };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: Dbu, y: Dbu) -> Self {
        Point { x, y }
    }

    /// Creates a point from micrometre coordinates.
    #[inline]
    pub fn from_um(x: f64, y: f64) -> Self {
        Point {
            x: Dbu::from_um(x),
            y: Dbu::from_um(y),
        }
    }

    /// Manhattan (L1) distance to `other`.
    #[inline]
    pub fn manhattan(self, other: Point) -> Dbu {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`, in DBU as `f64`.
    #[inline]
    pub fn euclidean(self, other: Point) -> f64 {
        let dx = (self.x - other.x).0 as f64;
        let dy = (self.y - other.y).0 as f64;
        dx.hypot(dy)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Scales both coordinates by a floating-point factor (rounding to
    /// the nearest DBU).
    #[inline]
    pub fn scale(self, factor: f64) -> Point {
        Point::new(self.x.scale(factor), self.y.scale(factor))
    }

    /// Scales x and y by independent factors.
    #[inline]
    pub fn scale_xy(self, fx: f64, fy: f64) -> Point {
        Point::new(self.x.scale(fx), self.y.scale(fy))
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add<Size> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Size) -> Point {
        Point::new(self.x + rhs.w, self.y + rhs.h)
    }
}

impl AddAssign<Size> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Size) {
        self.x += rhs.w;
        self.y += rhs.h;
    }
}

impl Sub<Size> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Size) -> Point {
        Point::new(self.x - rhs.w, self.y - rhs.h)
    }
}

impl SubAssign<Size> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Size) {
        self.x -= rhs.w;
        self.y -= rhs.h;
    }
}

impl Sub for Point {
    type Output = Size;
    #[inline]
    fn sub(self, rhs: Point) -> Size {
        Size::new(self.x - rhs.x, self.y - rhs.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(Dbu(0), Dbu(0));
        let b = Point::new(Dbu(3), Dbu(4));
        assert_eq!(a.manhattan(b), Dbu(7));
        assert_eq!(b.manhattan(a), Dbu(7));
        assert!((a.euclidean(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let p = Point::new(Dbu(10), Dbu(20));
        let s = Size::new(Dbu(1), Dbu(2));
        assert_eq!(p + s, Point::new(Dbu(11), Dbu(22)));
        assert_eq!(p - s, Point::new(Dbu(9), Dbu(18)));
        assert_eq!(p - Point::new(Dbu(4), Dbu(5)), Size::new(Dbu(6), Dbu(15)));
    }

    #[test]
    fn min_max_scale() {
        let a = Point::new(Dbu(1), Dbu(9));
        let b = Point::new(Dbu(5), Dbu(3));
        assert_eq!(a.min(b), Point::new(Dbu(1), Dbu(3)));
        assert_eq!(a.max(b), Point::new(Dbu(5), Dbu(9)));
        assert_eq!(
            Point::new(Dbu(100), Dbu(200)).scale(0.5),
            Point::new(Dbu(50), Dbu(100))
        );
        assert_eq!(
            Point::new(Dbu(100), Dbu(200)).scale_xy(2.0, 0.5),
            Point::new(Dbu(200), Dbu(100))
        );
    }
}
