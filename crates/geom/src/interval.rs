//! Half-open 1-D intervals.

use crate::Dbu;
use std::fmt;

/// A half-open interval `[lo, hi)` on one axis, in database units.
///
/// Used for row occupancy tracking during legalization and for layer
/// track spans during routing.
///
/// # Examples
///
/// ```
/// use macro3d_geom::{Dbu, Interval};
///
/// let a = Interval::new(Dbu(0), Dbu(10));
/// let b = Interval::new(Dbu(5), Dbu(20));
/// assert_eq!(a.intersection(b), Some(Interval::new(Dbu(5), Dbu(10))));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: Dbu,
    /// Exclusive upper bound.
    pub hi: Dbu,
}

impl Interval {
    /// Creates an interval, normalising so `lo <= hi`.
    #[inline]
    pub fn new(a: Dbu, b: Dbu) -> Self {
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Length of the interval.
    #[inline]
    pub fn len(self) -> Dbu {
        self.hi - self.lo
    }

    /// True if the interval is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.hi <= self.lo
    }

    /// True if `x` lies inside.
    #[inline]
    pub fn contains(self, x: Dbu) -> bool {
        x >= self.lo && x < self.hi
    }

    /// True if the interiors overlap.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Overlapping region, if any.
    #[inline]
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        if self.overlaps(other) {
            Some(Interval {
                lo: self.lo.max(other.lo),
                hi: self.hi.min(other.hi),
            })
        } else {
            None
        }
    }

    /// Smallest interval covering both.
    #[inline]
    pub fn union(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Clamps `x` into the interval (treating `hi` as inclusive for
    /// clamping purposes so the result is always representable).
    #[inline]
    pub fn clamp(self, x: Dbu) -> Dbu {
        x.clamp(self.lo, self.hi)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}, {:?})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let a = Interval::new(Dbu(10), Dbu(0));
        assert_eq!(a.lo, Dbu(0));
        assert_eq!(a.len(), Dbu(10));
        assert!(a.contains(Dbu(0)));
        assert!(!a.contains(Dbu(10)));
        assert!(!Interval::new(Dbu(5), Dbu(5)).contains(Dbu(5)));
        assert!(Interval::new(Dbu(5), Dbu(5)).is_empty());
    }

    #[test]
    fn set_ops() {
        let a = Interval::new(Dbu(0), Dbu(10));
        let b = Interval::new(Dbu(5), Dbu(20));
        let c = Interval::new(Dbu(10), Dbu(20));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c)); // touching is not overlapping
        assert_eq!(a.intersection(b), Some(Interval::new(Dbu(5), Dbu(10))));
        assert_eq!(a.intersection(c), None);
        assert_eq!(a.union(c), Interval::new(Dbu(0), Dbu(20)));
    }

    #[test]
    fn clamping() {
        let a = Interval::new(Dbu(0), Dbu(10));
        assert_eq!(a.clamp(Dbu(-5)), Dbu(0));
        assert_eq!(a.clamp(Dbu(15)), Dbu(10));
        assert_eq!(a.clamp(Dbu(5)), Dbu(5));
    }
}
