//! Uniform bin grids over a die region.

use crate::{Dbu, Point, Rect};

/// Index of a bin in a [`BinGrid`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BinIx {
    /// Column (x) index.
    pub x: u32,
    /// Row (y) index.
    pub y: u32,
}

impl BinIx {
    /// Creates a bin index.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        BinIx { x, y }
    }
}

/// A uniform grid of rectangular bins covering a region.
///
/// The last row/column of bins absorbs any remainder so the grid
/// always covers the full region exactly. Used for placement density
/// maps, routing GCells and spatial hashing.
///
/// # Examples
///
/// ```
/// use macro3d_geom::{BinGrid, Dbu, Point, Rect};
///
/// let region = Rect::from_um(0.0, 0.0, 100.0, 50.0);
/// let grid = BinGrid::with_bin_size(region, Dbu::from_um(10.0));
/// assert_eq!(grid.nx(), 10);
/// assert_eq!(grid.ny(), 5);
/// let ix = grid.bin_of(Point::from_um(25.0, 5.0));
/// assert_eq!((ix.x, ix.y), (2, 0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinGrid {
    region: Rect,
    bin_w: Dbu,
    bin_h: Dbu,
    nx: u32,
    ny: u32,
}

impl BinGrid {
    /// Creates a grid with the given bin counts.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero, or the region is empty.
    pub fn with_counts(region: Rect, nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "bin counts must be positive");
        assert!(!region.is_empty(), "grid region must be non-empty");
        BinGrid {
            region,
            bin_w: Dbu(region.width().0 / nx as i64),
            bin_h: Dbu(region.height().0 / ny as i64),
            nx,
            ny,
        }
    }

    /// Creates a grid whose bins are approximately `bin` on each side.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is not positive or the region is empty.
    pub fn with_bin_size(region: Rect, bin: Dbu) -> Self {
        assert!(bin.0 > 0, "bin size must be positive");
        assert!(!region.is_empty(), "grid region must be non-empty");
        let nx = ((region.width().0 + bin.0 - 1) / bin.0).max(1) as u32;
        let ny = ((region.height().0 + bin.0 - 1) / bin.0).max(1) as u32;
        BinGrid::with_counts(region, nx, ny)
    }

    /// Grid region.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of columns.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of bins.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// True if the grid contains no bins (never holds for a
    /// successfully constructed grid).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nominal bin width (the rightmost column may be wider).
    #[inline]
    pub fn bin_w(&self) -> Dbu {
        self.bin_w
    }

    /// Nominal bin height (the topmost row may be taller).
    #[inline]
    pub fn bin_h(&self) -> Dbu {
        self.bin_h
    }

    /// Bin containing `p`, clamping out-of-region points to the edge
    /// bins.
    #[inline]
    pub fn bin_of(&self, p: Point) -> BinIx {
        let x = if self.bin_w.0 == 0 {
            0
        } else {
            ((p.x - self.region.lo.x).0 / self.bin_w.0).clamp(0, self.nx as i64 - 1) as u32
        };
        let y = if self.bin_h.0 == 0 {
            0
        } else {
            ((p.y - self.region.lo.y).0 / self.bin_h.0).clamp(0, self.ny as i64 - 1) as u32
        };
        BinIx { x, y }
    }

    /// Flat index of a bin (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn flat(&self, ix: BinIx) -> usize {
        assert!(ix.x < self.nx && ix.y < self.ny, "bin index out of range");
        ix.y as usize * self.nx as usize + ix.x as usize
    }

    /// Geometric extent of the bin at `ix`. The last row/column extend
    /// to the region boundary.
    pub fn bin_rect(&self, ix: BinIx) -> Rect {
        let x0 = self.region.lo.x + self.bin_w * ix.x as i64;
        let y0 = self.region.lo.y + self.bin_h * ix.y as i64;
        let x1 = if ix.x + 1 == self.nx {
            self.region.hi.x
        } else {
            x0 + self.bin_w
        };
        let y1 = if ix.y + 1 == self.ny {
            self.region.hi.y
        } else {
            y0 + self.bin_h
        };
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// Inclusive range of bins overlapped by `r` (clamped to the
    /// grid). Returns `None` if `r` does not overlap the region.
    pub fn bins_overlapping(&self, r: Rect) -> Option<(BinIx, BinIx)> {
        let clipped = r.intersection(self.region)?;
        let lo = self.bin_of(clipped.lo);
        // hi is exclusive, so step one DBU back in.
        let hi = self.bin_of(Point::new(clipped.hi.x - Dbu(1), clipped.hi.y - Dbu(1)));
        Some((lo, hi))
    }

    /// Iterates over all bin indices row-major.
    pub fn iter(&self) -> impl Iterator<Item = BinIx> + '_ {
        let nx = self.nx;
        (0..self.ny).flat_map(move |y| (0..nx).map(move |x| BinIx { x, y }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> BinGrid {
        BinGrid::with_counts(Rect::from_um(0.0, 0.0, 100.0, 50.0), 10, 5)
    }

    #[test]
    fn construction() {
        let g = grid();
        assert_eq!(g.len(), 50);
        assert_eq!(g.bin_w(), Dbu::from_um(10.0));
        assert_eq!(g.bin_h(), Dbu::from_um(10.0));
    }

    #[test]
    fn bin_lookup_clamps() {
        let g = grid();
        assert_eq!(g.bin_of(Point::from_um(-5.0, -5.0)), BinIx::new(0, 0));
        assert_eq!(g.bin_of(Point::from_um(500.0, 500.0)), BinIx::new(9, 4));
        assert_eq!(g.bin_of(Point::from_um(10.0, 0.0)), BinIx::new(1, 0));
    }

    #[test]
    fn bin_rects_tile_region() {
        let g = grid();
        let mut area = 0.0;
        for ix in g.iter() {
            area += g.bin_rect(ix).area_um2();
        }
        assert!((area - g.region().area_um2()).abs() < 1e-9);
    }

    #[test]
    fn overlap_range() {
        let g = grid();
        let (lo, hi) = g
            .bins_overlapping(Rect::from_um(15.0, 5.0, 35.0, 25.0))
            .expect("overlaps");
        assert_eq!(lo, BinIx::new(1, 0));
        assert_eq!(hi, BinIx::new(3, 2));
        assert!(g
            .bins_overlapping(Rect::from_um(200.0, 0.0, 300.0, 10.0))
            .is_none());
    }

    #[test]
    fn flat_indexing_is_row_major() {
        let g = grid();
        assert_eq!(g.flat(BinIx::new(0, 0)), 0);
        assert_eq!(g.flat(BinIx::new(9, 0)), 9);
        assert_eq!(g.flat(BinIx::new(0, 1)), 10);
    }

    #[test]
    #[should_panic(expected = "bin counts must be positive")]
    fn zero_bins_panics() {
        let _ = BinGrid::with_counts(Rect::from_um(0.0, 0.0, 1.0, 1.0), 0, 1);
    }
}
