//! Property-based tests for the geometry substrate.

use macro3d_geom::{Dbu, Interval, Point, Rect};
use proptest::prelude::*;

fn arb_dbu() -> impl Strategy<Value = Dbu> {
    (-1_000_000i64..1_000_000).prop_map(Dbu)
}

fn arb_point() -> impl Strategy<Value = Point> {
    (arb_dbu(), arb_dbu()).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

proptest! {
    #[test]
    fn manhattan_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), Dbu(0));
        // triangle inequality
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn rect_intersection_is_contained(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(b) {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
            prop_assert!(a.overlaps(b));
        } else {
            prop_assert!(!a.overlaps(b));
        }
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(b);
        if !a.is_empty() {
            prop_assert!(u.contains_rect(a));
        }
        if !b.is_empty() {
            prop_assert!(u.contains_rect(b));
        }
    }

    #[test]
    fn overlap_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
    }

    #[test]
    fn intersection_area_bounded(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(b) {
            prop_assert!(i.area_um2() <= a.area_um2() + 1e-9);
            prop_assert!(i.area_um2() <= b.area_um2() + 1e-9);
        }
    }

    #[test]
    fn interval_ops_consistent(a in (arb_dbu(), arb_dbu()), b in (arb_dbu(), arb_dbu())) {
        let ia = Interval::new(a.0, a.1);
        let ib = Interval::new(b.0, b.1);
        prop_assert_eq!(ia.overlaps(ib), ib.overlaps(ia));
        if let Some(i) = ia.intersection(ib) {
            prop_assert!(i.len() <= ia.len());
            prop_assert!(i.len() <= ib.len());
        }
        let u = ia.union(ib);
        prop_assert!(u.len() >= ia.len().max(ib.len()) || ia.is_empty() || ib.is_empty());
    }

    #[test]
    fn floor_ceil_bracket(x in -1_000_000i64..1_000_000, step in 1i64..10_000) {
        let v = Dbu(x);
        let s = Dbu(step);
        let f = v.floor_to(s);
        let c = v.ceil_to(s);
        prop_assert!(f <= v);
        prop_assert!(c >= v);
        prop_assert!(c - f == Dbu(0) || c - f == s);
        prop_assert_eq!(f.nm() % step, 0);
        prop_assert_eq!(c.nm() % step, 0);
    }

    #[test]
    fn rect_manhattan_zero_iff_inside(r in arb_rect(), p in arb_point()) {
        prop_assume!(!r.is_empty());
        let d = r.manhattan_to_point(p);
        if r.contains(p) {
            prop_assert_eq!(d, Dbu(0));
        } else {
            prop_assert!(d > Dbu(0));
        }
    }
}
