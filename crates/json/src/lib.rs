#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Dependency-free JSON for the Macro-3D reproduction.
//!
//! This build environment cannot fetch serde, so every crate that
//! needs JSON hand-rolls emission (`macro3d-obs`, the bench writers).
//! The DSE service additionally needs *parsing* — client requests,
//! persisted result-cache records — so this crate provides the one
//! shared [`Json`] value type with:
//!
//! * a recursive-descent parser ([`Json::parse`]) covering the full
//!   JSON grammar (escapes, `\uXXXX` with surrogate pairs, nesting
//!   depth capped at [`MAX_DEPTH`]);
//! * a deterministic compact writer ([`Json::emit`]): object members
//!   in insertion order, numbers emitted as their stored token — so
//!   `parse(emit(v)) == v` byte-for-byte, which is what the
//!   content-keyed result cache hashes;
//! * typed accessors (`as_f64`, `as_u64`, `get`, …) that make decoder
//!   code short without panicking.
//!
//! # Numbers
//!
//! [`Json::Num`] stores the *raw token*, not an `f64`: `u64` values
//! round-trip exactly (no 2^53 precision cliff), and `f64` values are
//! formatted once via Rust's shortest-round-trip `format!("{v}")` and
//! never reformatted. Non-finite floats encode as `null`, matching
//! the existing `macro3d-obs` exporters.
//!
//! # Examples
//!
//! ```
//! use macro3d_json::Json;
//!
//! let v = Json::obj()
//!     .field("flow", Json::str("Macro-3D"))
//!     .field("fclk_mhz", Json::from_f64(812.5))
//!     .field("bumps", Json::from_u64(1312));
//! let text = v.emit();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("bumps").and_then(Json::as_u64), Some(1312));
//! assert_eq!(back.emit(), text);
//! ```

use std::fmt;

/// Maximum container nesting depth [`Json::parse`] accepts.
pub const MAX_DEPTH: usize = 128;

/// A parsed or constructed JSON value (see the crate docs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw grammar-valid token (e.g. `"42"`,
    /// `"-1.5e-3"`). Construct via [`Json::from_f64`] /
    /// [`Json::from_u64`] / [`Json::from_i64`] so the token is always
    /// valid; [`Json::emit`] writes it verbatim.
    Num(String),
    /// A string (unescaped content; escaping happens at emit time).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: members in insertion order, preserved by the writer
    /// (deterministic emission is part of the cache-key contract).
    Obj(Vec<(String, Json)>),
}

/// A rejected input with the byte offset the parser gave up at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What was expected or violated.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    // ---- constructors ----

    /// An empty object (extend with [`Json::field`]).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from an `f64` (shortest round-trip token; `null` for
    /// non-finite values).
    pub fn from_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// A number from a `u64` (exact).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from an `i64` (exact).
    pub fn from_i64(v: i64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from a `usize` (exact).
    pub fn from_usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// Appends a member to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object — field chains start from
    /// [`Json::obj`], so this is a programming error, not a data one.
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: Json) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.into(), value)),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    // ---- accessors ----

    /// Member `key` of an object (`None` for other kinds or a missing
    /// key; first match wins on duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True for [`Json::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `usize`, if this is a non-negative integer token.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    // ---- writer ----

    /// Compact deterministic emission (see the crate docs).
    pub fn emit(&self) -> String {
        let mut out = String::with_capacity(64);
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(tok) => out.push_str(tok),
            Json::Str(s) => emit_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_str(out, k);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    // ---- parser ----

    /// Parses one JSON document (surrounding whitespace allowed,
    /// trailing non-whitespace rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first grammar violation.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.emit())
    }
}

fn emit_str(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // advance one full UTF-8 scalar (input is &str, so
                    // boundaries are valid)
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    // INVARIANT: [start, pos) is a char boundary slice
                    // of the original &str
                    #[allow(clippy::expect_used)]
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input came from &str"),
                    );
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // surrogate pair: require the low half
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.err("expected low surrogate"))?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xdc00..0xe000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?
            }
            other => {
                return Err(self.err(format!("invalid escape '\\{}'", other as char)));
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // integer part: "0" or [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // INVARIANT: the token is ASCII digits/sign/dot/exponent only
        #[allow(clippy::expect_used)]
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(Json::Num(tok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1", "3.25", "1e-3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.emit(), text, "token preserved verbatim");
        }
        assert_eq!(Json::parse("1e-3").unwrap().as_f64(), Some(0.001));
    }

    #[test]
    fn numbers_preserve_precision() {
        // above 2^53: an f64 path would corrupt this
        let big = u64::MAX - 1;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v.emit(), big.to_string());
        // shortest round-trip f64
        let f = 0.1 + 0.2;
        let v = Json::from_f64(f);
        assert_eq!(v.as_f64(), Some(f), "exact f64 round trip");
        assert!(Json::from_f64(f64::NAN).is_null());
        assert!(Json::from_f64(f64::INFINITY).is_null());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{8}\u{1f}écrit 🚀";
        let v = Json::Str(s.to_string());
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
        // explicit \u escapes, including a surrogate pair
        let v = Json::parse("\"\\u00e9\\ud83d\\ude80\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("é🚀A"));
    }

    #[test]
    fn containers_round_trip_in_order() {
        let text = "{\"b\":[1,2,{\"x\":null}],\"a\":true,\"c\":\"s\"}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.emit(), text, "member order preserved");
        assert_eq!(v.get("a").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn whitespace_is_tolerated_and_normalized() {
        let v = Json::parse(" {\n \"k\" :\t[ 1 , 2 ] } ").unwrap();
        assert_eq!(v.emit(), "{\"k\":[1,2]}");
    }

    #[test]
    fn builder_matches_parser() {
        let v = Json::obj()
            .field("flow", Json::str("2D"))
            .field("n", Json::from_usize(3))
            .field("x", Json::from_f64(1.5))
            .field("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            text,
            "{\"flow\":\"2D\",\"n\":3,\"x\":1.5,\"flags\":[true,null]}"
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "+1",
            "nul",
            "\"\\q\"",
            "\"unterminated",
            "[1] trailing",
            "\"\\ud800\"",
            "{a:1}",
            "\"ctrl \u{1}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.msg.contains("deep"), "{err}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn error_reports_offset() {
        let err = Json::parse("{\"a\": nope}").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"), "{err}");
    }
}
