//! Abstract (LEF-like) macro definitions.

use macro3d_geom::{Dbu, Point, Rect, Size};
use macro3d_tech::stack::LayerId;
use macro3d_tech::PinDir;

/// Functional class of a macro pin, used by the netlist generator to
/// hook macros up and by timing analysis to pick constraint types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PinClass {
    /// Clock input.
    Clock,
    /// Address input.
    Address,
    /// Data input.
    DataIn,
    /// Data output.
    DataOut,
    /// Control input (write/chip enable).
    Control,
    /// Analog/sensor channel output.
    Sensor,
}

/// A pin of a macro, with geometry local to the macro's origin.
#[derive(Clone, Debug, PartialEq)]
pub struct MacroPin {
    /// Pin name, e.g. `dout[17]`.
    pub name: String,
    /// Direction.
    pub dir: PinDir,
    /// Functional class.
    pub class: PinClass,
    /// Position relative to the macro's lower-left corner.
    pub offset: Point,
    /// Metal layer *local to the macro's die* — `LayerId(3)` means the
    /// macro's own M4. The Macro-3D projection maps this to the
    /// combined stack (`M4_MD`).
    pub layer: LayerId,
    /// Pin capacitance, fF (inputs) — zero for outputs.
    pub cap_ff: f64,
}

/// An abstract macro: the black box the P&R flows see.
///
/// # Examples
///
/// ```
/// use macro3d_sram::MemoryCompiler;
///
/// let m = MemoryCompiler::n28().sram("tag", 256, 32);
/// assert!(m.pins.iter().any(|p| p.name == "clk"));
/// // every pin is inside the footprint
/// for p in &m.pins {
///     assert!(p.offset.x <= m.size.w && p.offset.y <= m.size.h);
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MacroDef {
    /// Macro name, e.g. `sram_2048x128`.
    pub name: String,
    /// Footprint.
    pub size: Size,
    /// Pins, positioned locally.
    pub pins: Vec<MacroPin>,
    /// Internal routing blockages: (local layer, rect local to
    /// origin). For SRAMs these cover the footprint on M1–M4.
    pub blockages: Vec<(LayerId, Rect)>,
    /// Clock-to-output access time, ps at TT (zero for combinational
    /// macros).
    pub access_ps: f64,
    /// Input setup requirement, ps at TT.
    pub setup_ps: f64,
    /// Energy per access, fJ at TT (averaged read/write).
    pub access_energy_fj: f64,
    /// Leakage, nW at TT.
    pub leakage_nw: f64,
    /// Total capacity in bits (zero for non-memory macros).
    pub capacity_bits: u64,
}

impl MacroDef {
    /// Footprint area in µm².
    pub fn area_um2(&self) -> f64 {
        self.size.area_um2()
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Index of the clock pin, if any.
    pub fn clock_pin(&self) -> Option<usize> {
        self.pins.iter().position(|p| p.class == PinClass::Clock)
    }

    /// Pins of a given class.
    pub fn pins_of(&self, class: PinClass) -> impl Iterator<Item = (usize, &MacroPin)> + '_ {
        self.pins
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.class == class)
    }

    /// The highest internal metal layer used by pins or blockages
    /// (local numbering).
    pub fn top_layer(&self) -> LayerId {
        let pin_top = self
            .pins
            .iter()
            .map(|p| p.layer)
            .max()
            .unwrap_or(LayerId(0));
        let blk_top = self
            .blockages
            .iter()
            .map(|(l, _)| *l)
            .max()
            .unwrap_or(LayerId(0));
        pin_top.max(blk_top)
    }

    /// Returns a copy whose footprint (and pin positions) are scaled
    /// about the origin — used by the Shrunk-2D flow.
    pub fn scaled(&self, factor: f64) -> MacroDef {
        let mut m = self.clone();
        m.size = m.size.scale(factor);
        for p in &mut m.pins {
            p.offset = p.offset.scale(factor);
        }
        for (_, r) in &mut m.blockages {
            *r = r.scale(factor);
        }
        m
    }

    /// Validates internal consistency (pins and blockages inside the
    /// footprint). Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.size.is_degenerate() {
            return Err(format!("macro {} has degenerate size", self.name));
        }
        let bounds = Rect::from_origin_size(Point::ORIGIN, self.size);
        for p in &self.pins {
            if p.offset.x < Dbu(0)
                || p.offset.y < Dbu(0)
                || p.offset.x > self.size.w
                || p.offset.y > self.size.h
            {
                return Err(format!("pin {} of {} outside footprint", p.name, self.name));
            }
        }
        for (l, r) in &self.blockages {
            if !bounds.contains_rect(*r) {
                return Err(format!(
                    "blockage on layer {l} of {} outside footprint",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryCompiler;

    #[test]
    fn validate_catches_out_of_bounds_pin() {
        let mut m = MemoryCompiler::n28().sram("t", 256, 32);
        assert!(m.validate().is_ok());
        m.pins[0].offset = Point::new(m.size.w + Dbu(1), Dbu(0));
        assert!(m.validate().is_err());
    }

    #[test]
    fn scaled_halves_geometry() {
        let m = MemoryCompiler::n28().sram("t", 1024, 64);
        let s = m.scaled(0.5);
        assert_eq!(s.size, m.size.scale(0.5));
        assert!(s.validate().is_ok());
        assert_eq!(s.pins.len(), m.pins.len());
    }

    #[test]
    fn top_layer_is_m4() {
        let m = MemoryCompiler::n28().sram("t", 512, 64);
        assert_eq!(m.top_layer(), LayerId(3));
    }

    #[test]
    fn pin_classes_complete() {
        let m = MemoryCompiler::n28().sram("t", 512, 64);
        assert!(m.clock_pin().is_some());
        assert!(m.pins_of(PinClass::Address).count() >= 9);
        assert_eq!(m.pins_of(PinClass::DataIn).count(), 64);
        assert_eq!(m.pins_of(PinClass::DataOut).count(), 64);
        assert!(m.pins_of(PinClass::Control).count() >= 2);
    }
}
