//! CACTI-style analytic SRAM model.

/// Analytic area/timing/energy model of a single-port synchronous
/// SRAM macro in the synthetic N28 technology.
///
/// The constants are chosen to give 28 nm-class figures: ~0.127 µm²
/// per 6T bitcell, ~55 % array efficiency, a 32 KiB macro of roughly
/// 0.06 mm² with ~330 ps access time.
///
/// # Examples
///
/// ```
/// use macro3d_sram::SramModel;
///
/// let m = SramModel::new(2048, 128); // 32 KiB
/// assert!(m.area_um2() > 40_000.0 && m.area_um2() < 90_000.0);
/// assert!(m.access_time_ps() > 200.0 && m.access_time_ps() < 500.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SramModel {
    words: u32,
    bits: u32,
    node: MemoryNode,
}

/// Process node the memory die is fabricated in. Heterogeneous
/// integration (the paper's motivation, and its stated future work)
/// lets the macro die use an older, cheaper node than the logic die —
/// only the interface must stay compatible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryNode {
    /// Node label.
    pub name: &'static str,
    /// 6T bitcell area, µm².
    pub bitcell_area_um2: f64,
    /// Fraction of macro area used by the bitcell array.
    pub array_efficiency: f64,
    /// Access-time multiplier relative to the N28 baseline.
    pub access_scale: f64,
    /// Per-access energy multiplier relative to the N28 baseline.
    pub energy_scale: f64,
    /// Leakage multiplier relative to the N28 baseline (older nodes
    /// leak less).
    pub leakage_scale: f64,
    /// Relative wafer cost per mm² (1.0 = N28).
    pub cost_scale: f64,
}

impl MemoryNode {
    /// The logic-compatible 28 nm-class node (baseline).
    pub const N28: MemoryNode = MemoryNode {
        name: "N28",
        bitcell_area_um2: 0.127,
        array_efficiency: 0.55,
        access_scale: 1.0,
        energy_scale: 1.0,
        leakage_scale: 1.0,
        cost_scale: 1.0,
    };

    /// A 40 nm-class memory-optimised node: larger but cheaper and
    /// lower-leakage — attractive for the macro die of an MoL stack.
    pub const N40: MemoryNode = MemoryNode {
        name: "N40",
        bitcell_area_um2: 0.242,
        array_efficiency: 0.62,
        access_scale: 1.25,
        energy_scale: 1.15,
        leakage_scale: 0.4,
        cost_scale: 0.55,
    };
}

/// 6T bitcell area in the N28-class node, µm².
pub const BITCELL_AREA_UM2: f64 = MemoryNode::N28.bitcell_area_um2;
/// Fraction of the macro area occupied by the bitcell array (the rest
/// is decoders, sense amps, IO).
pub const ARRAY_EFFICIENCY: f64 = MemoryNode::N28.array_efficiency;

impl SramModel {
    /// Creates a model for a `words × bits` macro in the N28 node.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(words: u32, bits: u32) -> Self {
        SramModel::with_node(words, bits, MemoryNode::N28)
    }

    /// Creates a model in an explicit memory node.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_node(words: u32, bits: u32, node: MemoryNode) -> Self {
        assert!(words > 0 && bits > 0, "SRAM dimensions must be positive");
        SramModel { words, bits, node }
    }

    /// The node this model is evaluated in.
    pub fn node(&self) -> MemoryNode {
        self.node
    }

    /// Number of words.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Word width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.words as u64 * self.bits as u64
    }

    /// Address bus width.
    pub fn addr_bits(&self) -> u32 {
        (32 - (self.words - 1).leading_zeros()).max(1)
    }

    /// Macro area, µm² (array + periphery).
    pub fn area_um2(&self) -> f64 {
        self.capacity_bits() as f64 * self.node.bitcell_area_um2 / self.node.array_efficiency
    }

    /// Aspect ratio (width / height) of the macro. Wide words give
    /// wide macros; tall word counts are folded into banks to keep the
    /// aspect ratio civilised.
    pub fn aspect(&self) -> f64 {
        let raw = (self.bits as f64 * 2.0) / (self.words as f64 * 0.5);
        raw.clamp(0.5, 2.0)
    }

    /// Access time (clock edge to data-out valid), ps at TT.
    ///
    /// Grows logarithmically with depth (decoder) and with word line
    /// length (word width).
    pub fn access_time_ps(&self) -> f64 {
        let depth_term = 32.0 * (self.words as f64).log2();
        let width_term = 0.12 * self.bits as f64;
        (120.0 + depth_term + width_term) * self.node.access_scale
    }

    /// Input setup requirement (address/data before clock), ps at TT.
    pub fn setup_ps(&self) -> f64 {
        60.0 + 6.0 * (self.words as f64).log2()
    }

    /// Energy of one read access, fJ at TT.
    pub fn read_energy_fj(&self) -> f64 {
        let bitline = 0.9 * self.bits as f64 * (self.words as f64).sqrt() * 0.12;
        let decode = 14.0 * (self.words as f64).log2();
        (200.0 + bitline + decode) * self.node.energy_scale
    }

    /// Energy of one write access, fJ at TT.
    pub fn write_energy_fj(&self) -> f64 {
        self.read_energy_fj() * 1.15
    }

    /// Leakage power, nW at TT.
    pub fn leakage_nw(&self) -> f64 {
        0.015 * self.capacity_bits() as f64 * self.node.leakage_scale
    }

    /// Input pin capacitance (address/data/control), fF.
    pub fn input_cap_ff(&self) -> f64 {
        2.5
    }

    /// Clock pin capacitance, fF (clock spine is heavier).
    pub fn clock_cap_ff(&self) -> f64 {
        8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_linearly_with_bits() {
        let small = SramModel::new(1024, 64);
        let large = SramModel::new(4096, 64);
        let ratio = large.area_um2() / small.area_um2();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn access_time_grows_with_depth() {
        let shallow = SramModel::new(512, 64);
        let deep = SramModel::new(8192, 64);
        assert!(deep.access_time_ps() > shallow.access_time_ps());
        // sub-linear: 16x depth should cost much less than 16x time
        assert!(deep.access_time_ps() < 2.0 * shallow.access_time_ps());
    }

    #[test]
    fn addr_bits() {
        assert_eq!(SramModel::new(1024, 8).addr_bits(), 10);
        assert_eq!(SramModel::new(1025, 8).addr_bits(), 11);
        assert_eq!(SramModel::new(2, 8).addr_bits(), 1);
        assert_eq!(SramModel::new(1, 8).addr_bits(), 1);
    }

    #[test]
    fn energy_ordering() {
        let m = SramModel::new(2048, 128);
        assert!(m.write_energy_fj() > m.read_energy_fj());
        assert!(m.read_energy_fj() > 0.0);
        assert!(m.leakage_nw() > 0.0);
    }

    #[test]
    fn aspect_is_bounded() {
        for (w, b) in [(64u32, 256u32), (65536, 8), (2048, 128)] {
            let a = SramModel::new(w, b).aspect();
            assert!((0.5..=2.0).contains(&a), "aspect {a} for {w}x{b}");
        }
    }

    #[test]
    fn kib_32_macro_is_28nm_class() {
        let m = SramModel::new(2048, 128);
        // ~0.06 mm^2 and ~450ps in a 28nm-class node
        assert!(m.area_um2() > 40_000.0 && m.area_um2() < 90_000.0);
        assert!(m.access_time_ps() > 250.0 && m.access_time_ps() < 600.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_panic() {
        let _ = SramModel::new(0, 8);
    }

    #[test]
    fn n40_node_trades_area_for_cost_and_leakage() {
        let n28 = SramModel::new(2048, 128);
        let n40 = SramModel::with_node(2048, 128, MemoryNode::N40);
        assert!(
            n40.area_um2() > 1.5 * n28.area_um2(),
            "older node is bigger"
        );
        assert!(n40.access_time_ps() > n28.access_time_ps());
        assert!(n40.leakage_nw() < n28.leakage_nw(), "older node leaks less");
        let cost28 = n28.area_um2() * n28.node().cost_scale;
        let cost40 = n40.area_um2() * n40.node().cost_scale;
        // bigger but cheaper silicon: costs end up comparable (within ~20%)
        assert!((cost40 / cost28) < 1.25, "cost ratio {}", cost40 / cost28);
    }
}
