#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Analytic SRAM/sensor macro compiler for the Macro-3D reproduction.
//!
//! The original flow consumes memory-compiler macros (LEF abstract +
//! Liberty timing). This crate replaces the proprietary compiler with
//! an analytic, CACTI-style model: given a capacity and word width it
//! produces a [`MacroDef`] with
//!
//! * footprint and aspect ratio (6T bitcell array + periphery
//!   overhead),
//! * a pin list (clock, address, data in/out, control) with positions
//!   on the macro's top internal routing layer,
//! * full-footprint routing blockages on the macro's internal metal
//!   layers M1–M4 (the paper: "the internal routing of a memory block
//!   fully occupies the first four layers"),
//! * timing (clock-to-dout access time, input setup) and energy
//!   (per-access read/write, leakage).
//!
//! A small sensor-array generator supports the sensor-on-logic example
//! from the paper's abstract.
//!
//! # Examples
//!
//! ```
//! use macro3d_sram::MemoryCompiler;
//!
//! let compiler = MemoryCompiler::n28();
//! let m = compiler.sram("l2_data", 2048, 128); // 2048 x 128 = 32 KiB
//! assert_eq!(m.capacity_bits(), 2048 * 128);
//! assert!(m.size.area_um2() > 10_000.0);
//! assert_eq!(m.blockages.len(), 4); // M1..M4 fully blocked
//! ```

pub mod compiler;
pub mod macrodef;
pub mod model;

pub use compiler::MemoryCompiler;
pub use macrodef::{MacroDef, MacroPin, PinClass};
pub use model::{MemoryNode, SramModel};
