//! The macro compiler: turns analytic models into abstract macros.

use crate::macrodef::{MacroDef, MacroPin, PinClass};
use crate::model::SramModel;
use macro3d_geom::{Dbu, Point, Rect, Size};
use macro3d_tech::stack::LayerId;
use macro3d_tech::PinDir;

/// Number of internal metal layers an SRAM macro occupies (M1–M4, per
/// the paper's Sec. V-A-1).
pub const SRAM_INTERNAL_LAYERS: u32 = 4;

/// Generates abstract macros for the synthetic N28 technology.
///
/// # Examples
///
/// ```
/// use macro3d_sram::MemoryCompiler;
///
/// let c = MemoryCompiler::n28();
/// let sram = c.sram("l1d_data", 512, 256);
/// assert!(sram.validate().is_ok());
/// let sensor = c.sensor_array("imager", 16);
/// assert!(sensor.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct MemoryCompiler {
    pin_pitch: Dbu,
    pin_layer: LayerId,
    node: crate::model::MemoryNode,
}

impl MemoryCompiler {
    /// Compiler configured for the synthetic N28 technology: pins on
    /// the macro's M4, 0.4 µm minimum pin pitch.
    pub fn n28() -> Self {
        MemoryCompiler {
            pin_pitch: Dbu::from_um(0.4),
            pin_layer: LayerId(SRAM_INTERNAL_LAYERS - 1),
            node: crate::model::MemoryNode::N28,
        }
    }

    /// Compiler targeting an older 40 nm-class memory node — the
    /// heterogeneous-integration option the paper leaves as future
    /// work (interfaces stay compatible; only macro geometry/timing/
    /// energy change).
    pub fn n40() -> Self {
        MemoryCompiler {
            pin_pitch: Dbu::from_um(0.4),
            pin_layer: LayerId(SRAM_INTERNAL_LAYERS - 1),
            node: crate::model::MemoryNode::N40,
        }
    }

    /// Compiles a `words × bits` single-port synchronous SRAM.
    ///
    /// Pins are distributed along the bottom edge (clock, control,
    /// address) and top edge (data in/out), mimicking compiler macros
    /// whose IO ring sits on two edges.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `bits` is zero (see [`SramModel::new`]).
    pub fn sram(&self, name: &str, words: u32, bits: u32) -> MacroDef {
        let model = SramModel::with_node(words, bits, self.node);
        let area = model.area_um2();
        let aspect = model.aspect();
        let w_um = (area * aspect).sqrt();
        let h_um = area / w_um;
        let size = Size::from_um(w_um, h_um);

        let mut pins = Vec::new();
        // Bottom edge: clk, ce, we, addr
        let mut bottom: Vec<(String, PinClass)> = vec![
            ("clk".to_string(), PinClass::Clock),
            ("ce".to_string(), PinClass::Control),
            ("we".to_string(), PinClass::Control),
        ];
        for a in 0..model.addr_bits() {
            bottom.push((format!("addr[{a}]"), PinClass::Address));
        }
        // Top edge: din, dout interleaved
        let mut top: Vec<(String, PinClass)> = Vec::new();
        for b in 0..bits {
            top.push((format!("din[{b}]"), PinClass::DataIn));
            top.push((format!("dout[{b}]"), PinClass::DataOut));
        }

        self.place_edge_pins(&mut pins, &bottom, size, Dbu(0), &model);
        self.place_edge_pins(&mut pins, &top, size, size.h, &model);

        let footprint = Rect::from_origin_size(Point::ORIGIN, size);
        let blockages = (0..SRAM_INTERNAL_LAYERS)
            .map(|l| (LayerId(l), footprint))
            .collect();

        MacroDef {
            name: name.to_string(),
            size,
            pins,
            blockages,
            access_ps: model.access_time_ps(),
            setup_ps: model.setup_ps(),
            access_energy_fj: 0.5 * (model.read_energy_fj() + model.write_energy_fj()),
            leakage_nw: model.leakage_nw(),
            capacity_bits: model.capacity_bits(),
        }
    }

    fn place_edge_pins(
        &self,
        pins: &mut Vec<MacroPin>,
        names: &[(String, PinClass)],
        size: Size,
        y: Dbu,
        model: &SramModel,
    ) {
        let n = names.len() as i64;
        if n == 0 {
            return;
        }
        // Spread pins across the edge, but never tighter than pin_pitch.
        let spread = (size.w.0 / (n + 1)).max(self.pin_pitch.0);
        for (i, (name, class)) in names.iter().enumerate() {
            let x = Dbu(((i as i64 + 1) * spread).min(size.w.0));
            let (dir, cap) = match class {
                PinClass::DataOut | PinClass::Sensor => (PinDir::Output, 0.0),
                PinClass::Clock => (PinDir::Input, model.clock_cap_ff()),
                _ => (PinDir::Input, model.input_cap_ff()),
            };
            pins.push(MacroPin {
                name: name.clone(),
                dir,
                class: *class,
                offset: Point::new(x, y),
                layer: self.pin_layer,
                cap_ff: cap,
            });
        }
    }

    /// Compiles a sensor-array macro (`channels` analog channels with
    /// digital readout), for the sensor-on-logic design style.
    ///
    /// Sensor arrays are pad-limited, not bitcell-limited: area scales
    /// with channel count at ~900 µm² per channel, internal routing
    /// uses only M1–M2 (the paper's observation that full-custom
    /// blocks need fewer metals).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn sensor_array(&self, name: &str, channels: u32) -> MacroDef {
        assert!(channels > 0, "sensor array needs at least one channel");
        let area = 900.0 * channels as f64;
        let w_um = (area * 1.6).sqrt();
        let h_um = area / w_um;
        let size = Size::from_um(w_um, h_um);
        let model = SramModel::new(64.max(channels), 8);

        let mut pins = Vec::new();
        let mut names: Vec<(String, PinClass)> = vec![
            ("clk".to_string(), PinClass::Clock),
            ("en".to_string(), PinClass::Control),
        ];
        for c in 0..channels {
            for b in 0..10 {
                names.push((format!("ch{c}_d[{b}]"), PinClass::Sensor));
            }
        }
        self.place_edge_pins(&mut pins, &names, size, Dbu(0), &model);

        let footprint = Rect::from_origin_size(Point::ORIGIN, size);
        MacroDef {
            name: name.to_string(),
            size,
            pins,
            blockages: (0..2).map(|l| (LayerId(l), footprint)).collect(),
            access_ps: 800.0,
            setup_ps: 50.0,
            access_energy_fj: 1_500.0,
            leakage_nw: 40.0 * channels as f64,
            capacity_bits: 0,
        }
    }
}

impl Default for MemoryCompiler {
    fn default() -> Self {
        MemoryCompiler::n28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_pins_on_two_edges() {
        let m = MemoryCompiler::n28().sram("t", 1024, 64);
        let bottom = m.pins.iter().filter(|p| p.offset.y == Dbu(0)).count();
        let top = m.pins.iter().filter(|p| p.offset.y == m.size.h).count();
        assert_eq!(bottom + top, m.pins.len());
        assert!(bottom >= 13); // clk + ce + we + 10 addr
        assert_eq!(top, 128); // 64 din + 64 dout
    }

    #[test]
    fn sram_blocks_m1_to_m4_fully() {
        let m = MemoryCompiler::n28().sram("t", 1024, 64);
        assert_eq!(m.blockages.len(), 4);
        let footprint = Rect::from_origin_size(Point::ORIGIN, m.size);
        for (l, r) in &m.blockages {
            assert!(l.0 < 4);
            assert_eq!(*r, footprint);
        }
    }

    #[test]
    fn area_matches_model() {
        let m = MemoryCompiler::n28().sram("t", 2048, 128);
        let model = SramModel::new(2048, 128);
        let rel = (m.area_um2() - model.area_um2()).abs() / model.area_um2();
        assert!(rel < 0.01, "compiled area deviates {rel}");
    }

    #[test]
    fn sensor_array_uses_fewer_layers() {
        let s = MemoryCompiler::n28().sensor_array("img", 8);
        assert_eq!(s.blockages.len(), 2);
        assert!(s.validate().is_ok());
        assert_eq!(s.pins_of(PinClass::Sensor).count(), 80);
        assert_eq!(s.capacity_bits(), 0);
    }

    #[test]
    fn all_compiled_macros_validate() {
        let c = MemoryCompiler::n28();
        for (w, b) in [
            (256u32, 32u32),
            (512, 64),
            (2048, 128),
            (8192, 64),
            (16384, 128),
        ] {
            let m = c.sram(&format!("s{w}x{b}"), w, b);
            assert!(m.validate().is_ok(), "{w}x{b} fails validation");
        }
    }
}
