//! Deterministic, seeded fault injection for flow robustness tests.
//!
//! A [`FaultPlan`] maps checkpoint site names (the same keys the
//! budget module and the `macro3d-obs` site counters use) to an
//! [`InjectedFault`]: after a chosen number of visits the site's
//! [`checkpoint`](crate::budget::checkpoint) reports an injected stop.
//! Because checkpoints fire at thread-count-invariant points (see the
//! budget module docs), an injected fault triggers at a bit-identical
//! place in the computation for any thread count — which is what lets
//! property tests drive whole flows under randomized plans and still
//! assert determinism.
//!
//! Plans are either built explicitly ([`FaultPlan::with_fault`]) or
//! derived from a seed over a site list ([`FaultPlan::random`]) using
//! a hand-rolled splitmix64 — no external RNG dependency, stable
//! across platforms and releases of this crate.

use crate::budget::StopReason;

/// What an injected fault forces the checkpoint to report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Report [`StopReason::InjectedExhaust`]: the loop winds down as
    /// if its budget ran out, exercising the graceful-degradation
    /// path.
    Exhaust,
    /// Report [`StopReason::InjectedError`]: loop checkpoints degrade;
    /// the fallible flow gates in `macro3d-core` convert this into a
    /// typed `FlowError`, exercising the error path.
    Error,
}

impl FaultAction {
    /// The stop reason this action makes a checkpoint report.
    pub fn stop_reason(self) -> StopReason {
        match self {
            FaultAction::Exhaust => StopReason::InjectedExhaust,
            FaultAction::Error => StopReason::InjectedError,
        }
    }
}

/// One planted fault: fires the first time its site's visit count
/// reaches `at_visit`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// The 1-based visit count at which the fault triggers.
    pub at_visit: u64,
    /// What the checkpoint reports when it triggers.
    pub action: FaultAction,
}

/// A deterministic set of planted faults, keyed by checkpoint site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(String, InjectedFault)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns self with a fault planted at `site`, triggering once
    /// the site's visit count reaches `at_visit` (1-based; clamped to
    /// at least 1). Re-planting a site replaces its fault.
    #[must_use]
    pub fn with_fault(mut self, site: &str, at_visit: u64, action: FaultAction) -> Self {
        let fault = InjectedFault {
            at_visit: at_visit.max(1),
            action,
        };
        if let Some(entry) = self.faults.iter_mut().find(|(s, _)| s == site) {
            entry.1 = fault;
        } else {
            self.faults.push((site.to_string(), fault));
        }
        self
    }

    /// Derives a plan from `seed` over `sites`: each site
    /// independently receives a fault with probability ~1/2, with a
    /// trigger visit in `1..=4` and an action drawn from both
    /// variants. The same seed and site list always produce the same
    /// plan, on every platform.
    pub fn random(seed: u64, sites: &[&str]) -> Self {
        let mut state = seed;
        let mut plan = FaultPlan::new();
        for &site in sites {
            let r = splitmix64(&mut state);
            if r & 1 == 0 {
                continue; // this site stays healthy
            }
            let at_visit = 1 + ((r >> 1) & 0x3);
            let action = if (r >> 3) & 1 == 0 {
                FaultAction::Exhaust
            } else {
                FaultAction::Error
            };
            plan = plan.with_fault(site, at_visit, action);
        }
        plan
    }

    /// The fault to report when `site` is at `visits` total visits, if
    /// the plan plants one there and it is due. (Stickiness — keeping
    /// the site stopped after the trigger — is the budget scope's job.)
    pub fn fault_at(&self, site: &str, visits: u64) -> Option<FaultAction> {
        self.faults
            .iter()
            .find(|(s, _)| s == site)
            .filter(|&&(_, f)| visits >= f.at_visit)
            .map(|&(_, f)| f.action)
    }

    /// The planted faults as `(site, fault)` pairs, in plan order.
    pub fn faults(&self) -> &[(String, InjectedFault)] {
        &self.faults
    }

    /// True when the plan plants no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// splitmix64 step: the canonical 64-bit mixing sequence (public
/// domain constants), used here so fault plans need no external RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The checkpoint sites instrumented across the engines and flow
/// gates, for driving [`FaultPlan::random`] over everything at once.
/// Kept in sync with the engines by the fault-injection integration
/// tests (a plan over all of these must exercise every stage).
pub const STANDARD_SITES: &[&str] = &[
    "flow/floorplan",
    "flow/place",
    "flow/route",
    "flow/extract",
    "flow/sta",
    "route/iterations",
    "place/anneal_proposals",
    "place/fm_passes",
    "place/nesterov_iters",
    "sta/sizing_rounds",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(42, STANDARD_SITES);
        let b = FaultPlan::random(42, STANDARD_SITES);
        assert_eq!(a, b);
        // different seeds eventually differ
        let distinct = (0..16).any(|s| FaultPlan::random(s, STANDARD_SITES) != a);
        assert!(distinct);
    }

    #[test]
    fn random_plans_cover_both_actions_and_spare_some_sites() {
        let mut saw_exhaust = false;
        let mut saw_error = false;
        let mut saw_empty_site = false;
        for seed in 0..32 {
            let plan = FaultPlan::random(seed, STANDARD_SITES);
            saw_empty_site |= plan.faults().len() < STANDARD_SITES.len();
            for (_, f) in plan.faults() {
                match f.action {
                    FaultAction::Exhaust => saw_exhaust = true,
                    FaultAction::Error => saw_error = true,
                }
                assert!((1..=4).contains(&f.at_visit));
            }
        }
        assert!(saw_exhaust && saw_error && saw_empty_site);
    }

    #[test]
    fn fault_at_respects_trigger_visit() {
        let plan = FaultPlan::new().with_fault("x", 3, FaultAction::Error);
        assert_eq!(plan.fault_at("x", 1), None);
        assert_eq!(plan.fault_at("x", 2), None);
        assert_eq!(plan.fault_at("x", 3), Some(FaultAction::Error));
        assert_eq!(plan.fault_at("x", 9), Some(FaultAction::Error));
        assert_eq!(plan.fault_at("y", 9), None);
    }

    #[test]
    fn with_fault_replaces_and_clamps() {
        let plan = FaultPlan::new()
            .with_fault("x", 0, FaultAction::Error)
            .with_fault("x", 2, FaultAction::Exhaust);
        assert_eq!(plan.faults().len(), 1);
        assert_eq!(plan.fault_at("x", 2), Some(FaultAction::Exhaust));
        let clamped = FaultPlan::new().with_fault("y", 0, FaultAction::Error);
        assert_eq!(
            clamped.fault_at("y", 1),
            Some(FaultAction::Error),
            "clamped to 1"
        );
    }
}
