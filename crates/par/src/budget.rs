//! Cooperative stage budgets with graceful degradation.
//!
//! A [`FlowBudget`] bounds a flow run with a wall-clock deadline and
//! per-site iteration caps. Engines cooperate by calling
//! [`checkpoint`] at the top of their refinement loops (the rip-up
//! iteration, the anneal proposal, the FM pass, the sizing round) and,
//! on [`Checkpoint::Stop`], returning their best-so-far state instead
//! of iterating further. The stage then records *why* it stopped early
//! via [`note_degradation`], and the flow surfaces the collected
//! [`DegradationReport`] to the caller — so a budget-exhausted run is
//! a diagnosable partial result, never a hang or a panic.
//!
//! # Scoping and determinism
//!
//! Budget state is **thread-local to the flow-owning thread**: a
//! [`BudgetScope`] guard installs the budget (and an optional
//! [`FaultPlan`]) for the current thread, and
//! `checkpoint` is inert on every other thread. In addition, the
//! parallel primitives in this crate mark a *parallel region* on every
//! execution path — including the serial fallbacks that run worker
//! closures on the calling thread — and `checkpoint` is inert inside
//! any region. The two rules together make checkpoint firing a pure
//! function of the work decomposition: a site is visited the same
//! number of times, in the same order, for 1 thread or 64, so caps and
//! injected faults trigger at bit-identical points regardless of the
//! thread count.
//!
//! Wall-clock deadlines are the one deliberate exception: they depend
//! on real time, so runs under a deadline are *prompt* but not
//! reproducible. Deterministic tests use caps and fault plans only.
//!
//! Site keys reuse the `macro3d-obs` site-counter names already
//! instrumented in every engine (`"route/iterations"`,
//! `"place/anneal_proposals"`, `"place/fm_passes"`,
//! `"sta/sizing_rounds"`), plus `"flow/<stage>"` gates checked between
//! stages; see `DESIGN.md` §14 for the full scheme.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::time::{Duration, Instant};

use crate::fault::{FaultAction, FaultPlan};

/// Wall-clock and per-site iteration limits for one flow run.
///
/// The default budget is unlimited. Caps are keyed by checkpoint site
/// name and bound the number of times that site may be *visited*
/// before it reports [`StopReason::IterationCap`]; they compose with
/// (and never raise) the engines' own configured iteration counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowBudget {
    /// Deadline for the whole flow, measured from [`BudgetScope::begin`].
    /// Once exceeded, every checkpoint site reports
    /// [`StopReason::DeadlineExceeded`] so all refinement loops wind
    /// down promptly with their best-so-far state.
    pub wall_clock: Option<Duration>,
    caps: Vec<(String, u64)>,
}

impl FlowBudget {
    /// An unlimited budget (no deadline, no caps).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Returns self with a wall-clock deadline (builder-style).
    #[must_use]
    pub fn with_wall_clock(mut self, limit: Duration) -> Self {
        self.wall_clock = Some(limit);
        self
    }

    /// Returns self with `site` capped at `max_visits` checkpoint
    /// visits (builder-style). Re-capping a site replaces the cap.
    #[must_use]
    pub fn with_cap(mut self, site: &str, max_visits: u64) -> Self {
        if let Some(entry) = self.caps.iter_mut().find(|(s, _)| s == site) {
            entry.1 = max_visits;
        } else {
            self.caps.push((site.to_string(), max_visits));
        }
        self
    }

    /// The configured cap for `site`, if any.
    pub fn cap(&self, site: &str) -> Option<u64> {
        self.caps.iter().find(|(s, _)| s == site).map(|&(_, c)| c)
    }

    /// True when no deadline and no caps are set.
    pub fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none() && self.caps.is_empty()
    }

    /// The capped sites as `(site, max_visits)` pairs.
    pub fn caps(&self) -> &[(String, u64)] {
        &self.caps
    }
}

/// Why a checkpoint told its loop to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The flow's wall-clock deadline passed.
    DeadlineExceeded,
    /// The site reached its configured visit cap.
    IterationCap,
    /// A fault plan forced budget exhaustion at this site.
    InjectedExhaust,
    /// A fault plan forced an error at this site. Loop checkpoints
    /// degrade on this like any other stop; the fallible flow gates in
    /// `macro3d-core` convert it into a typed `FlowError` instead.
    InjectedError,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::DeadlineExceeded => "wall-clock deadline exceeded",
            StopReason::IterationCap => "iteration cap reached",
            StopReason::InjectedExhaust => "injected budget exhaustion",
            StopReason::InjectedError => "injected error",
        })
    }
}

/// The verdict of a [`checkpoint`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Checkpoint {
    /// Keep iterating.
    Continue,
    /// Stop now and return best-so-far state.
    Stop(StopReason),
}

impl Checkpoint {
    /// True for [`Checkpoint::Stop`].
    pub fn should_stop(&self) -> bool {
        matches!(self, Checkpoint::Stop(_))
    }
}

/// One stage's record of early termination or residual violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageDegradation {
    /// The checkpoint site (or stage name) that degraded.
    pub site: String,
    /// Why the stage stopped early.
    pub reason: StopReason,
    /// Human-readable residue: what was left undone, and how much
    /// (e.g. `"3 nets unrouted, 7 overflowed edges"`).
    pub detail: String,
}

impl fmt::Display for StageDegradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} — {}", self.site, self.reason, self.detail)
    }
}

/// Everything that degraded during one flow run, in the order the
/// stages reported it. An empty report means the run was clean.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Per-stage degradation records, in report order.
    pub stages: Vec<StageDegradation>,
}

impl DegradationReport {
    /// True when at least one stage degraded.
    pub fn is_degraded(&self) -> bool {
        !self.stages.is_empty()
    }

    /// The record for `site`, if that site degraded.
    pub fn stage(&self, site: &str) -> Option<&StageDegradation> {
        self.stages.iter().find(|s| s.site == site)
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stages.is_empty() {
            return f.write_str("clean");
        }
        for (k, s) in self.stages.iter().enumerate() {
            if k > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Per-site bookkeeping inside the active scope.
struct SiteState {
    site: String,
    visits: u64,
    /// Sticky stop verdict: once a site stops, it stops forever (the
    /// loop it guards must not resume within this flow run).
    stopped: Option<StopReason>,
}

/// The thread-local budget state installed by [`BudgetScope`].
struct ScopeState {
    started: Instant,
    deadline: Option<Duration>,
    /// Set once the deadline is first observed exceeded; from then on
    /// every site stops (prompt flow-wide wind-down).
    deadline_hit: bool,
    caps: Vec<(String, u64)>,
    faults: FaultPlan,
    sites: Vec<SiteState>,
    report: DegradationReport,
}

thread_local! {
    static SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
    /// Depth of nested parallel regions on this thread. Checkpoints
    /// are inert at depth > 0 (see the module docs).
    static REGION_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Guard installing a [`FlowBudget`] (and optional fault plan) as the
/// current thread's active budget. Create one around a flow body with
/// [`BudgetScope::begin`]; [`BudgetScope::finish`] removes it and
/// returns the collected [`DegradationReport`].
///
/// Scopes do not nest: beginning a new scope replaces any active one
/// (the replaced scope's report is discarded). Dropping the guard
/// without calling `finish` also clears the state, so an unwinding
/// flow cannot leak budget state into the next run on the thread.
#[must_use = "dropping the scope discards the degradation report"]
pub struct BudgetScope {
    finished: bool,
}

impl BudgetScope {
    /// Installs `budget` (+ `faults`) for the current thread and
    /// starts the wall clock.
    pub fn begin(budget: &FlowBudget, faults: Option<&FaultPlan>) -> Self {
        SCOPE.with(|s| {
            *s.borrow_mut() = Some(ScopeState {
                started: Instant::now(),
                deadline: budget.wall_clock,
                deadline_hit: false,
                caps: budget.caps.clone(),
                faults: faults.cloned().unwrap_or_default(),
                sites: Vec::new(),
                report: DegradationReport::default(),
            });
        });
        BudgetScope { finished: false }
    }

    /// Uninstalls the scope and returns everything the stages reported.
    pub fn finish(mut self) -> DegradationReport {
        self.finished = true;
        SCOPE
            .with(|s| s.borrow_mut().take())
            .map(|state| state.report)
            .unwrap_or_default()
    }
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        if !self.finished {
            SCOPE.with(|s| s.borrow_mut().take());
        }
    }
}

/// RAII marker for a parallel region: while alive, checkpoints on this
/// thread are inert. The parallel primitives in this crate create one
/// on **every** execution path — threaded or serial-fallback — so that
/// checkpoint firing does not depend on the thread count.
pub struct RegionGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl RegionGuard {
    /// Enters a parallel region on the current thread.
    pub fn enter() -> Self {
        REGION_DEPTH.with(|d| d.set(d.get() + 1));
        RegionGuard {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        REGION_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// Visits a budget checkpoint site and returns whether the guarded
/// loop should keep going.
///
/// Inert (always [`Checkpoint::Continue`], no visit counted) on
/// threads without an active [`BudgetScope`] and inside parallel
/// regions. Otherwise the visit is counted and the site stops —
/// stickily — on the first of: the flow deadline passing (which stops
/// *every* site), an injected fault reaching its trigger visit, or the
/// site's visit cap.
pub fn checkpoint(site: &str) -> Checkpoint {
    if REGION_DEPTH.with(Cell::get) > 0 {
        return Checkpoint::Continue;
    }
    SCOPE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(state) = borrow.as_mut() else {
            return Checkpoint::Continue;
        };
        // deadline first: it overrides per-site state and is sticky
        // across all sites so the whole flow winds down promptly
        if !state.deadline_hit {
            if let Some(limit) = state.deadline {
                if state.started.elapsed() >= limit {
                    state.deadline_hit = true;
                }
            }
        }
        if state.deadline_hit {
            return Checkpoint::Stop(StopReason::DeadlineExceeded);
        }
        let ix = match state.sites.iter().position(|s| s.site == site) {
            Some(ix) => ix,
            None => {
                state.sites.push(SiteState {
                    site: site.to_string(),
                    visits: 0,
                    stopped: None,
                });
                state.sites.len() - 1
            }
        };
        if let Some(reason) = state.sites[ix].stopped {
            return Checkpoint::Stop(reason);
        }
        state.sites[ix].visits += 1;
        let visits = state.sites[ix].visits;
        let injected = state.faults.fault_at(site, visits).map(|a| match a {
            FaultAction::Exhaust => StopReason::InjectedExhaust,
            FaultAction::Error => StopReason::InjectedError,
        });
        let capped = state
            .caps
            .iter()
            .find(|(s, _)| s == site)
            .filter(|&&(_, cap)| visits > cap)
            .map(|_| StopReason::IterationCap);
        if let Some(reason) = injected.or(capped) {
            state.sites[ix].stopped = Some(reason);
            return Checkpoint::Stop(reason);
        }
        Checkpoint::Continue
    })
}

/// Records that a stage degraded (stopped early / left residual
/// violations) in the active scope's report. A no-op without a scope
/// or inside a parallel region; duplicate reports for the same site
/// are merged (first reason kept, detail replaced) so a loop may
/// re-report as its residue shrinks.
pub fn note_degradation(site: &str, reason: StopReason, detail: impl Into<String>) {
    if REGION_DEPTH.with(Cell::get) > 0 {
        return;
    }
    SCOPE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(state) = borrow.as_mut() else {
            return;
        };
        let detail = detail.into();
        if let Some(existing) = state.report.stages.iter_mut().find(|d| d.site == site) {
            existing.detail = detail;
        } else {
            state.report.stages.push(StageDegradation {
                site: site.to_string(),
                reason,
                detail,
            });
        }
    });
}

/// The number of times `site` has been visited in the active scope
/// (0 without a scope). Exposed for fault-plan diagnostics and tests.
pub fn site_visits(site: &str) -> u64 {
    SCOPE.with(|s| {
        s.borrow()
            .as_ref()
            .and_then(|state| state.sites.iter().find(|x| x.site == site))
            .map_or(0, |x| x.visits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultAction, FaultPlan};

    #[test]
    fn checkpoint_without_scope_is_inert() {
        assert_eq!(checkpoint("route/iterations"), Checkpoint::Continue);
        assert_eq!(site_visits("route/iterations"), 0);
    }

    #[test]
    fn iteration_cap_is_sticky() {
        let budget = FlowBudget::unlimited().with_cap("x", 2);
        let scope = BudgetScope::begin(&budget, None);
        assert_eq!(checkpoint("x"), Checkpoint::Continue);
        assert_eq!(checkpoint("x"), Checkpoint::Continue);
        assert_eq!(checkpoint("x"), Checkpoint::Stop(StopReason::IterationCap));
        assert_eq!(checkpoint("x"), Checkpoint::Stop(StopReason::IterationCap));
        // other sites are unaffected
        assert_eq!(checkpoint("y"), Checkpoint::Continue);
        note_degradation("x", StopReason::IterationCap, "1 thing left");
        let report = scope.finish();
        assert!(report.is_degraded());
        assert_eq!(report.stages.len(), 1);
        assert_eq!(report.stage("x").unwrap().detail, "1 thing left");
    }

    #[test]
    fn deadline_stops_every_site() {
        let budget = FlowBudget::unlimited().with_wall_clock(Duration::ZERO);
        let scope = BudgetScope::begin(&budget, None);
        assert_eq!(
            checkpoint("a"),
            Checkpoint::Stop(StopReason::DeadlineExceeded)
        );
        assert_eq!(
            checkpoint("b"),
            Checkpoint::Stop(StopReason::DeadlineExceeded)
        );
        drop(scope);
    }

    #[test]
    fn injected_fault_fires_at_trigger_visit() {
        let plan = FaultPlan::new().with_fault("x", 2, FaultAction::Exhaust);
        let scope = BudgetScope::begin(&FlowBudget::unlimited(), Some(&plan));
        assert_eq!(checkpoint("x"), Checkpoint::Continue);
        assert_eq!(
            checkpoint("x"),
            Checkpoint::Stop(StopReason::InjectedExhaust)
        );
        assert_eq!(
            checkpoint("x"),
            Checkpoint::Stop(StopReason::InjectedExhaust),
            "sticky"
        );
        drop(scope);
    }

    #[test]
    fn checkpoints_are_inert_inside_parallel_regions() {
        let budget = FlowBudget::unlimited().with_cap("x", 1);
        let scope = BudgetScope::begin(&budget, None);
        {
            let _region = RegionGuard::enter();
            for _ in 0..10 {
                assert_eq!(checkpoint("x"), Checkpoint::Continue);
            }
        }
        assert_eq!(site_visits("x"), 0, "region visits are not counted");
        assert_eq!(checkpoint("x"), Checkpoint::Continue);
        assert_eq!(checkpoint("x"), Checkpoint::Stop(StopReason::IterationCap));
        drop(scope);
    }

    #[test]
    fn dropping_scope_clears_state() {
        let budget = FlowBudget::unlimited().with_cap("x", 1);
        let scope = BudgetScope::begin(&budget, None);
        assert_eq!(checkpoint("x"), Checkpoint::Continue);
        drop(scope);
        assert_eq!(checkpoint("x"), Checkpoint::Continue, "no scope, inert");
        assert_eq!(site_visits("x"), 0);
    }

    #[test]
    fn budget_builder_and_report_display() {
        let b = FlowBudget::unlimited()
            .with_cap("a", 3)
            .with_cap("a", 5)
            .with_cap("b", 1);
        assert_eq!(b.cap("a"), Some(5), "re-capping replaces");
        assert_eq!(b.cap("b"), Some(1));
        assert_eq!(b.cap("c"), None);
        assert!(!b.is_unlimited());
        assert!(FlowBudget::default().is_unlimited());

        let report = DegradationReport {
            stages: vec![StageDegradation {
                site: "route/iterations".into(),
                reason: StopReason::IterationCap,
                detail: "2 nets overflowed".into(),
            }],
        };
        let text = report.to_string();
        assert!(text.contains("route/iterations"), "{text}");
        assert!(text.contains("iteration cap"), "{text}");
        assert_eq!(DegradationReport::default().to_string(), "clean");
    }
}
