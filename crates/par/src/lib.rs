#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Deterministic data-parallel kernels for the Macro-3D engines.
//!
//! The hot engine loops (batched global routing, per-net extraction,
//! STA endpoint checks) are embarrassingly parallel over independent
//! items. This crate provides the rayon-style primitives they share —
//! an order-preserving parallel map with per-worker scratch state and
//! a parallel fold — built directly on [`std::thread::scope`] because
//! this build environment cannot fetch rayon itself. The API mirrors
//! rayon's `par_iter().map_with(..)` idiom so a future swap to rayon
//! is mechanical.
//!
//! **Determinism contract:** every function here returns results
//! identical to its serial equivalent, bit for bit, regardless of the
//! thread count. Work is handed out as contiguous index chunks from a
//! shared cursor and results are stitched back in input order, so the
//! only thing threads change is wall-clock time.
//!
//! The same contract extends to observability: each primitive brackets
//! its units of work in `macro3d-obs` fork/branch scopes keyed by the
//! work decomposition (chunk start index, join arm), so spans recorded
//! inside worker closures are stitched into a thread-count-invariant
//! tree. This costs one atomic load per chunk when tracing is off.
//!
//! It also extends to fault tolerance: the [`budget`] module provides
//! cooperative stage budgets (wall-clock deadline + per-site iteration
//! caps) with a [`DegradationReport`] for best-effort early exits, and
//! the [`fault`] module a seeded deterministic fault-injection harness
//! over the same checkpoint sites. Every primitive here marks a
//! *parallel region* on all execution paths so budget checkpoints fire
//! at thread-count-invariant points only.
//!
//! # Examples
//!
//! ```
//! use macro3d_par::{parallel_map_with, Parallelism};
//!
//! let par = Parallelism::default();
//! let squares = parallel_map_with(
//!     &[1u64, 2, 3, 4],
//!     &par,
//!     Vec::<u64>::new,             // per-worker scratch
//!     |scratch, _ix, &x| {
//!         scratch.push(x);         // scratch survives across items
//!         x * x
//!     },
//! );
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod budget;
pub mod fault;

pub use budget::{
    checkpoint, note_degradation, site_visits, BudgetScope, Checkpoint, DegradationReport,
    FlowBudget, RegionGuard, StageDegradation, StopReason,
};
pub use fault::{FaultAction, FaultPlan, InjectedFault, STANDARD_SITES};

/// Degree-of-parallelism knob threaded through the engine configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads. `1` = serial (no threads spawned). `0` is
    /// normalized to the machine's available parallelism.
    pub threads: usize,
    /// Items handed to a worker per grab (and, for the batched
    /// router, nets routed against one congestion snapshot before a
    /// serial commit).
    pub chunk_size: usize,
}

impl Parallelism {
    /// Serial execution (the deterministic reference configuration).
    pub fn serial() -> Self {
        Parallelism {
            threads: 1,
            chunk_size: 32,
        }
    }

    /// Uses up to `threads` workers.
    pub fn threads(threads: usize) -> Self {
        Parallelism {
            threads,
            ..Self::default()
        }
    }

    /// Returns self with a different chunk size (builder-style).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// The worker count after normalizing `0` to the hardware and
    /// clamping explicit requests to it. Oversubscribing a host never
    /// helps these CPU-bound kernels — on a single-core machine an
    /// explicit `threads(8)` used to pay scoped-thread spawn and
    /// scratch setup for every primitive call while still running one
    /// chunk at a time; clamping makes every primitive take its true
    /// serial fall-through instead. Results are unaffected either way
    /// (the crate determinism contract).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            available_threads()
        } else {
            self.threads.min(available_threads())
        }
    }
}

impl Default for Parallelism {
    /// All hardware threads, moderate chunks.
    fn default() -> Self {
        Parallelism {
            threads: 0,
            chunk_size: 32,
        }
    }
}

/// The machine's available parallelism (1 if unknown).
///
/// Cached after the first call: every primitive resolves
/// [`Parallelism::effective_threads`] on entry, and on single-core
/// hosts the serial fall-through must not pay a syscall per kernel
/// invocation.
pub fn available_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs two closures as a fork-join pair and returns both results.
///
/// `budget` is the worker-thread budget for the task subtree rooted at
/// this join. With `budget >= 2` the second closure runs on a freshly
/// scoped thread while the first runs on the current one, and the
/// budget is split between them (the first keeps the odd thread) so
/// nested joins form a task tree that never exceeds the budget. With
/// `budget <= 1` both closures run serially on the current thread.
///
/// Each closure receives its own sub-budget to pass to nested joins.
/// Per the crate determinism contract, the results are identical for
/// any budget — scheduling only changes wall-clock time. This is the
/// primitive behind fork-join recursive-bisection placement, where
/// the two halves of a cut are placed concurrently.
///
/// # Examples
///
/// ```
/// use macro3d_par::parallel_join;
///
/// let (a, b) = parallel_join(8, |_| 2 + 2, |sub| sub);
/// assert_eq!(a, 4);
/// assert_eq!(b, 4); // the second task got half the budget
/// ```
///
/// # Panics
///
/// Propagates a panic from either closure.
pub fn parallel_join<RA, RB, FA, FB>(budget: usize, a: FA, b: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce(usize) -> RA + Send,
    FB: FnOnce(usize) -> RB + Send,
{
    // every path marks a parallel region so budget checkpoints inside
    // the closures stay inert regardless of where they execute (see
    // the `budget` module's determinism rules)
    let _region = budget::RegionGuard::enter();
    if budget < 2 {
        return (a(1), b(1));
    }
    let budget_b = budget / 2;
    let budget_a = budget - budget_b;
    let fork = macro3d_obs::fork();
    let result = std::thread::scope(|scope| {
        let fork_b = fork.clone();
        let handle_b = scope.spawn(move || {
            let _branch = fork_b.branch(1);
            b(budget_b)
        });
        let ra = {
            let _branch = fork.branch(0);
            a(budget_a)
        };
        let rb = match handle_b.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    });
    fork.join();
    result
}

/// Maps `f` over `items`, in parallel, preserving input order, with a
/// per-worker scratch value built by `init` (rayon's `map_with`).
///
/// `f` receives the scratch, the item's index, and the item. Results
/// are returned in input order and are identical to a serial run for
/// any thread count (see the crate-level determinism contract).
pub fn parallel_map_with<T, S, R, I, F>(items: &[T], par: &Parallelism, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    // serial fallback and threaded path both count as a parallel
    // region: checkpoint firing must not depend on the thread count
    let _region = budget::RegionGuard::enter();
    let threads = par.effective_threads().min(items.len().max(1));
    if threads <= 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(ix, item)| f(&mut scratch, ix, item))
            .collect();
    }

    let grab = par.chunk_size.max(1);
    let cursor = AtomicUsize::new(0);
    // (start index, results) per grabbed chunk; stitched afterwards
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());

    let fork = macro3d_obs::fork();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let start = cursor.fetch_add(grab, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + grab).min(items.len());
                    let branch = fork.branch(start as u64);
                    let chunk: Vec<R> = (start..end)
                        .map(|ix| f(&mut scratch, ix, &items[ix]))
                        .collect();
                    drop(branch);
                    parts
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((start, chunk));
                }
            });
        }
    });
    fork.join();

    let mut parts = parts
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(items.len());
    for (_, chunk) in parts {
        out.extend(chunk);
    }
    out
}

/// Maps `f` over `items` in parallel, preserving input order
/// (stateless convenience wrapper over [`parallel_map_with`]).
pub fn parallel_map<T, R, F>(items: &[T], par: &Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, par, || (), |(), ix, item| f(ix, item))
}

/// Folds `map` over all items and reduces the per-worker partials
/// with `reduce`. `reduce` must be associative and commutative (the
/// partial order is unspecified); use [`parallel_map`] when exact
/// serial reduction order matters.
pub fn parallel_fold<T, A, M, RD>(
    items: &[T],
    par: &Parallelism,
    identity: A,
    map: M,
    reduce: RD,
) -> A
where
    T: Sync,
    A: Send + Sync + Clone,
    M: Fn(A, usize, &T) -> A + Sync,
    RD: Fn(A, A) -> A,
{
    let partials = {
        let _region = budget::RegionGuard::enter();
        let threads = par.effective_threads().min(items.len().max(1));
        if threads <= 1 {
            vec![items
                .iter()
                .enumerate()
                .fold(identity.clone(), |acc, (ix, item)| map(acc, ix, item))]
        } else {
            let grab = par.chunk_size.max(1);
            let cursor = AtomicUsize::new(0);
            let parts: Mutex<Vec<A>> = Mutex::new(Vec::new());
            let fork = macro3d_obs::fork();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut acc = identity.clone();
                        loop {
                            let start = cursor.fetch_add(grab, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + grab).min(items.len());
                            let branch = fork.branch(start as u64);
                            for (off, item) in items[start..end].iter().enumerate() {
                                acc = map(acc, start + off, item);
                            }
                            drop(branch);
                        }
                        parts
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(acc);
                    });
                }
            });
            fork.join();
            parts
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    };
    partials.into_iter().fold(identity, reduce)
}

/// Deterministic parallel argmin over a keyed slice: returns the
/// `(index, key)` of the smallest key, breaking ties toward the
/// lowest index — the element a serial first-strictly-smaller scan
/// would keep — so the result is bit-identical for any thread count.
/// Items for which `key` returns `None` are skipped; returns `None`
/// when every item is skipped. `key` must not return NaN.
///
/// This is the reduction shape the parametric STA endpoint folds use
/// (worst slack, binding period); it is generally useful whenever a
/// "first worst element" must be selected reproducibly in parallel.
pub fn parallel_argmin<T, K>(items: &[T], par: &Parallelism, key: K) -> Option<(usize, f64)>
where
    T: Sync,
    K: Fn(usize, &T) -> Option<f64> + Sync,
{
    #[derive(Clone, Copy)]
    struct Acc {
        key: f64,
        ix: usize,
    }
    let better =
        |key: f64, ix: usize, than: &Acc| key < than.key || (key == than.key && ix < than.ix);
    let acc = parallel_fold(
        items,
        par,
        Acc {
            key: f64::INFINITY,
            ix: usize::MAX,
        },
        |mut acc, ix, item| {
            if let Some(k) = key(ix, item) {
                debug_assert!(!k.is_nan(), "parallel_argmin keys must not be NaN");
                if better(k, ix, &acc) {
                    acc.key = k;
                    acc.ix = ix;
                }
            }
            acc
        },
        |a, b| {
            if better(b.key, b.ix, &a) {
                b
            } else {
                a
            }
        },
    );
    (acc.ix != usize::MAX).then_some((acc.ix, acc.key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = parallel_map(&items, &Parallelism::serial(), |ix, &x| x * 3 + ix as u64);
        for threads in [2, 4, 8] {
            let par = Parallelism::threads(threads).with_chunk_size(7);
            let got = parallel_map(&items, &par, |ix, &x| x * 3 + ix as u64);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_with_reuses_scratch() {
        let items: Vec<u32> = (0..257).collect();
        let par = Parallelism::threads(4).with_chunk_size(16);
        // scratch counts items seen by one worker; result ignores it,
        // so output is still deterministic
        let out = parallel_map_with(
            &items,
            &par,
            || 0usize,
            |seen, _ix, &x| {
                *seen += 1;
                assert!(*seen <= items.len());
                x + 1
            },
        );
        assert_eq!(out, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn fold_matches_serial_sum() {
        let items: Vec<u64> = (0..10_000).collect();
        let expect: u64 = items.iter().sum();
        for threads in [1, 3, 8] {
            let par = Parallelism::threads(threads);
            let got = parallel_fold(&items, &par, 0u64, |acc, _ix, &x| acc + x, |a, b| a + b);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn argmin_breaks_ties_toward_lowest_index_any_thread_count() {
        // duplicate minima at indices 3 and 7; index 3 must win
        let items = vec![5.0, 2.0, 9.0, 1.0, 4.0, 8.0, 6.0, 1.0];
        let expect = Some((3, 1.0));
        for threads in [1, 2, 4, 8] {
            let par = Parallelism::threads(threads).with_chunk_size(1);
            let got = parallel_argmin(&items, &par, |_, &k| Some(k));
            assert_eq!(got, expect, "threads={threads}");
        }
        // skipped items never win; all-skipped returns None
        let got = parallel_argmin(&items, &Parallelism::serial(), |ix, &k| {
            (ix != 3 && ix != 7).then_some(k)
        });
        assert_eq!(got, Some((1, 2.0)));
        let none = parallel_argmin(&items, &Parallelism::serial(), |_, _| None::<f64>);
        assert_eq!(none, None);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let par = Parallelism::default();
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, &par, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u8], &par, |_, &x| x * 2), vec![10]);
    }

    /// A task-tree sum over a range: fork while the budget allows,
    /// serial below. The result must not depend on the budget.
    fn tree_sum(lo: u64, hi: u64, budget: usize) -> u64 {
        if hi - lo <= 64 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = parallel_join(
            budget,
            |sub| tree_sum(lo, mid, sub),
            |sub| tree_sum(mid, hi, sub),
        );
        a + b
    }

    #[test]
    fn join_is_budget_invariant() {
        let expect: u64 = (0..10_000).sum();
        for budget in [0, 1, 2, 3, 4, 8, 13] {
            assert_eq!(tree_sum(0, 10_000, budget), expect, "budget={budget}");
        }
    }

    #[test]
    fn join_splits_budget() {
        let (a, b) = parallel_join(5, |sub| sub, |sub| sub);
        assert_eq!((a, b), (3, 2), "first task keeps the odd thread");
        let (a, b) = parallel_join(1, |sub| sub, |sub| sub);
        assert_eq!((a, b), (1, 1), "serial tasks still get a unit budget");
    }

    #[test]
    fn join_borrows_from_the_caller() {
        let data = [1u32, 2, 3];
        let (s, l) = parallel_join(2, |_| data.iter().sum::<u32>(), |_| data.len());
        assert_eq!((s, l), (6, 3));
    }

    #[test]
    fn zero_threads_normalizes_to_hardware() {
        let par = Parallelism::default();
        assert!(par.effective_threads() >= 1);
        assert_eq!(Parallelism::serial().effective_threads(), 1);
    }

    /// Checkpoints inside primitive closures must be inert for ANY
    /// thread count — including the serial fallbacks that run worker
    /// closures on the calling thread — so budget/fault firing stays
    /// a pure function of the work decomposition.
    #[test]
    fn checkpoints_inside_primitives_are_inert_for_any_thread_count() {
        use budget::{checkpoint, site_visits, BudgetScope, Checkpoint, FlowBudget};
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 2, 8] {
            let budget = FlowBudget::unlimited().with_cap("t", 1);
            let scope = BudgetScope::begin(&budget, None);
            let par = Parallelism::threads(threads).with_chunk_size(5);
            parallel_map(&items, &par, |_, &x| {
                assert_eq!(checkpoint("t"), Checkpoint::Continue);
                x
            });
            parallel_fold(
                &items,
                &par,
                0u32,
                |acc, _, &x| {
                    assert_eq!(checkpoint("t"), Checkpoint::Continue);
                    acc + x
                },
                |a, b| a + b,
            );
            let (_, _) = parallel_join(
                threads,
                |_| assert_eq!(checkpoint("t"), Checkpoint::Continue),
                |_| assert_eq!(checkpoint("t"), Checkpoint::Continue),
            );
            assert_eq!(site_visits("t"), 0, "threads={threads}");
            // outside the primitives the cap still applies normally
            assert_eq!(checkpoint("t"), Checkpoint::Continue);
            assert_eq!(
                checkpoint("t"),
                Checkpoint::Stop(budget::StopReason::IterationCap)
            );
            drop(scope);
        }
    }

    /// Spans opened inside worker closures stitch into the same tree
    /// for any thread count (the obs arm of the determinism
    /// contract). One test fn: the obs session level is global.
    #[test]
    fn spans_stitch_identically_across_thread_counts() {
        use macro3d_obs::{ObsConfig, Session};
        let items: Vec<u64> = (0..100).collect();
        let signature = |threads: usize| {
            let session = Session::start(ObsConfig::full(), "par-test");
            let par = Parallelism::threads(threads).with_chunk_size(9);
            parallel_map(&items, &par, |ix, &x| {
                let _span = macro3d_obs::span_owned(format!("item{ix}"));
                x + 1
            });
            let (_, _) = parallel_join(
                threads,
                |_| {
                    let _s = macro3d_obs::span("left");
                },
                |_| {
                    let _s = macro3d_obs::span("right");
                },
            );
            session.finish().expect("tracing on").tree_signature()
        };
        let serial = signature(1);
        assert!(serial.contains("item0\n") && serial.contains("item99\n"));
        assert!(serial.contains("left\n") && serial.contains("right\n"));
        for threads in [2, 8] {
            assert_eq!(signature(threads), serial, "threads={threads}");
        }
    }
}
