//! Typed metrics registry: counters, gauges, histograms, series.
//!
//! Handles are cheap `Arc`-backed clones recording through atomics,
//! so hot engine loops pay one relaxed atomic op per event — and only
//! a relaxed load + branch when observability is off. All exported
//! values are either integers or deterministic functions of them, so
//! snapshots are bit-identical across thread counts as long as
//! recording sites fire a thread-count-independent set of events
//! (counters are commutative sums; gauges and series must only be
//! written from serial sections).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonic `u64` counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`. Safe from any thread (commutative).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` gauge. Set only from serial sections to keep
/// snapshots deterministic.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// `u64` histogram tracking count/sum/min/max. Safe from any thread
/// (every component is commutative).
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.min.fetch_min(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        let count = self.0.count.load(Ordering::Relaxed);
        HistSnapshot {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.0.min.load(Ordering::Relaxed)
            },
            max: self.0.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Append-only `f64` time series (e.g. router overflow per rip-up
/// round). Push only from serial sections — appends take a mutex and
/// order would otherwise depend on scheduling.
#[derive(Clone)]
pub struct Series(Arc<Mutex<Vec<f64>>>);

impl Series {
    /// Appends one sample.
    pub fn push(&self, v: f64) {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(v);
    }

    /// Copies out the samples recorded so far.
    pub fn values(&self) -> Vec<f64> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// The process-wide metrics registry (see [`registry`]).
///
/// Instruments are created on first use and *never removed*:
/// [`Registry::reset`] zeroes values so cached handles (e.g. in
/// [`SiteCounter`] statics) stay valid across flow sessions.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    series: Mutex<BTreeMap<String, Series>>,
}

/// The process-wide registry used by all instrumentation sites.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// Returns (creating if needed) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(name.to_owned())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns (creating if needed) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(name.to_owned())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// Returns (creating if needed) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(name.to_owned())
            .or_insert_with(|| {
                Histogram(Arc::new(HistInner {
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    min: AtomicU64::new(u64::MAX),
                    max: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Returns (creating if needed) the series called `name`.
    pub fn series(&self, name: &str) -> Series {
        let mut map = self
            .series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(name.to_owned())
            .or_insert_with(|| Series(Arc::new(Mutex::new(Vec::new()))))
            .clone()
    }

    /// Zeroes every instrument without removing it (session start).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            g.0.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            h.0.count.store(0, Ordering::Relaxed);
            h.0.sum.store(0, Ordering::Relaxed);
            h.0.min.store(u64::MAX, Ordering::Relaxed);
            h.0.max.store(0, Ordering::Relaxed);
        }
        for s in self
            .series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            s.0.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clear();
        }
    }

    /// Copies out every instrument's current value (session finish).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            series: self
                .series
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.values()))
                .collect(),
        }
    }
}

/// Point-in-time view of the whole [`Registry`], with deterministic
/// (`BTreeMap`) iteration order for exporters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Series samples by name.
    pub series: BTreeMap<String, Vec<f64>>,
}

/// A counter site suitable for a file-level `static`: resolves its
/// registry handle once, and every [`SiteCounter::add`] is a relaxed
/// level check (plus one atomic add when observability is on).
///
/// ```
/// static NETS: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("extract/nets");
/// NETS.add(1);
/// ```
pub struct SiteCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl SiteCounter {
    /// Declares a counter site named `name`.
    pub const fn new(name: &'static str) -> Self {
        SiteCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` if observability is at least [`crate::ObsLevel::Summary`].
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled(crate::ObsLevel::Summary) {
            self.cell
                .get_or_init(|| registry().counter(self.name))
                .add(n);
        }
    }

    /// Adds one (level-gated like [`SiteCounter::add`]).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A histogram site suitable for a file-level `static`; the histogram
/// analogue of [`SiteCounter`].
pub struct SiteHistogram {
    name: &'static str,
    cell: OnceLock<Histogram>,
}

impl SiteHistogram {
    /// Declares a histogram site named `name`.
    pub const fn new(name: &'static str) -> Self {
        SiteHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Records `v` if observability is at least [`crate::ObsLevel::Summary`].
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled(crate::ObsLevel::Summary) {
            self.cell
                .get_or_init(|| registry().histogram(self.name))
                .record(v);
        }
    }
}
