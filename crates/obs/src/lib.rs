#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Flow-wide observability for the Macro-3D reproduction: hierarchical
//! spans, a typed metrics registry, and Chrome-trace/JSON exporters.
//!
//! # Design
//!
//! A [`Session`] brackets one flow run. While it is active, a global
//! [`ObsLevel`] gates every instrumentation site behind one relaxed
//! atomic load, so `ObsConfig::off()` costs a branch per site:
//!
//! - [`ObsLevel::Off`] — nothing is recorded.
//! - [`ObsLevel::Summary`] — stage spans and metrics.
//! - [`ObsLevel::Full`] — adds fine-grained engine spans (per-level
//!   bisection, per-rip-up-round routing).
//!
//! Spans are collected per thread and stitched deterministically at
//! fork-join boundaries (see [`span`], [`fork`], [`ForkPoint`]):
//! branches are keyed by their position in the *work decomposition*
//! (chunk start index, join arm), never by thread, so the stitched
//! tree — and every metric — is bit-identical for any thread count,
//! matching the `macro3d-par` determinism contract.
//!
//! Exactly one session may be active in a process at a time (the
//! level and registry are global); the flow drivers in `macro3d`
//! uphold this by running flows sequentially.
//!
//! # Examples
//!
//! ```
//! use macro3d_obs::{ObsConfig, Session};
//!
//! let session = Session::start(ObsConfig::full(), "demo");
//! {
//!     let _stage = macro3d_obs::span("place");
//!     macro3d_obs::registry().counter("place/fm_passes").add(3);
//! }
//! let trace = session.finish().expect("tracing was on");
//! assert_eq!(trace.stage_names(), ["place"]);
//! assert_eq!(trace.metrics.counters["place/fm_passes"], 3);
//! ```

mod export;
mod metrics;
mod span;

pub use export::FlowTrace;
pub use metrics::{
    registry, Counter, Gauge, HistSnapshot, Histogram, MetricsSnapshot, Registry, Series,
    SiteCounter, SiteHistogram,
};
pub use span::{
    fork, span, span_owned, stage_begin, BranchGuard, ForkPoint, SpanGuard, SpanRecord,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// How much a [`Session`] records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// Record nothing (the default).
    #[default]
    Off = 0,
    /// Stage spans and metrics.
    Summary = 1,
    /// Everything: adds fine-grained engine spans.
    Full = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(ObsLevel::Off as u8);

/// True when the active session records at least `min`. One relaxed
/// atomic load — cheap enough for hot engine loops.
#[inline]
pub fn enabled(min: ObsLevel) -> bool {
    LEVEL.load(Ordering::Relaxed) >= min as u8
}

/// Observability settings threaded through `FlowConfig`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Recording level for the flow's session.
    pub level: ObsLevel,
}

impl ObsConfig {
    /// Record nothing (the default; <2 % overhead budget).
    pub fn off() -> Self {
        ObsConfig {
            level: ObsLevel::Off,
        }
    }

    /// Stage spans and metrics only.
    pub fn summary() -> Self {
        ObsConfig {
            level: ObsLevel::Summary,
        }
    }

    /// Full tracing, including fine-grained engine spans.
    pub fn full() -> Self {
        ObsConfig {
            level: ObsLevel::Full,
        }
    }

    /// True when nothing will be recorded.
    pub fn is_off(&self) -> bool {
        self.level == ObsLevel::Off
    }
}

/// Opens a [`span`] whose name needs formatting, without paying for
/// the `format!` unless the session level is [`ObsLevel::Full`].
///
/// ```
/// let depth = 3;
/// let _span = macro3d_obs::span_full!("bisect d{depth}");
/// ```
#[macro_export]
macro_rules! span_full {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::ObsLevel::Full) {
            $crate::span_owned(format!($($arg)*))
        } else {
            None
        }
    };
}

/// One flow run's recording session. Start it before the flow's first
/// stage, finish it after the last; [`Session::finish`] returns the
/// stitched [`FlowTrace`] (or `None` when the config was off).
pub struct Session {
    flow: String,
    root: Option<SpanGuard>,
    active: bool,
}

impl Session {
    /// Starts a session for `flow`: sets the global level, zeroes the
    /// metrics registry, and opens the root span. Inert when
    /// `cfg.is_off()`.
    pub fn start(cfg: ObsConfig, flow: &str) -> Session {
        if cfg.is_off() {
            return Session {
                flow: flow.to_owned(),
                root: None,
                active: false,
            };
        }
        LEVEL.store(cfg.level as u8, Ordering::Relaxed);
        metrics::registry().reset();
        span::reset_thread();
        let root = span::open_unchecked(format!("flow:{flow}"));
        Session {
            flow: flow.to_owned(),
            root: Some(root),
            active: true,
        }
    }

    /// Ends the session: closes the root span, turns the level off,
    /// and returns the trace (`None` for an inert session). Must run
    /// on the thread that called [`Session::start`].
    pub fn finish(mut self) -> Option<FlowTrace> {
        if !self.active {
            return None;
        }
        drop(self.root.take());
        LEVEL.store(ObsLevel::Off as u8, Ordering::Relaxed);
        let spans = span::cleanup(span::take_thread());
        Some(FlowTrace {
            flow: std::mem::take(&mut self.flow),
            spans,
            metrics: metrics::registry().snapshot(),
        })
    }
}

/// Process-wide exclusivity token for observability sessions.
///
/// The level, metrics registry and span store behind [`Session`] are
/// global: two concurrent obs-*enabled* sessions would interleave
/// their traces. Single-flow callers never notice (one flow, one
/// session), but a multi-tenant host like the DSE executor runs many
/// flows at once — it takes a permit around each obs-enabled job so
/// enabled sessions serialize while obs-off jobs (whose sessions are
/// inert) keep running concurrently.
pub struct SessionPermit {
    _guard: std::sync::MutexGuard<'static, ()>,
}

static SESSION_PERMIT: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Blocks until this thread holds the process's one observability
/// permit; the permit releases on drop. A panic while holding the
/// permit poisons nothing user-visible — the next caller recovers the
/// lock.
pub fn session_permit() -> SessionPermit {
    SessionPermit {
        _guard: SESSION_PERMIT
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The level and registry are global, and `cargo test` runs the
    /// `#[test]` fns of one binary on parallel threads — serialize
    /// every test that opens a session.
    static SESSION_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_session_records_nothing() {
        let _l = lock();
        let session = Session::start(ObsConfig::off(), "noop");
        let _span = span("invisible");
        assert!(_span.is_none());
        assert!(session.finish().is_none());
    }

    #[test]
    fn nested_spans_form_a_tree() {
        let _l = lock();
        let session = Session::start(ObsConfig::full(), "t");
        {
            let _a = span("a");
            {
                let _b = span("b");
            }
            let _c = span_full!("c{}", 1);
        }
        let trace = session.finish().expect("on");
        assert_eq!(trace.tree_signature(), "flow:t\n  a\n    b\n    c1\n");
        assert_eq!(trace.stage_names(), ["a"]);
    }

    #[test]
    fn summary_level_skips_full_spans() {
        let _l = lock();
        let session = Session::start(ObsConfig::summary(), "t");
        assert!(span("fine").is_none());
        let stage = stage_begin().expect("summary records stages");
        stage.finish_named("route");
        let trace = session.finish().expect("on");
        assert_eq!(trace.tree_signature(), "flow:t\n  route\n");
    }

    #[test]
    fn dropped_unnamed_span_is_cancelled_and_children_reparent() {
        let _l = lock();
        let session = Session::start(ObsConfig::full(), "t");
        {
            let _pending = stage_begin();
            let _child = span("kept");
        } // _pending drops unnamed -> cancelled
        let trace = session.finish().expect("on");
        assert_eq!(trace.tree_signature(), "flow:t\n  kept\n");
    }

    /// Stitching is identical whether branches run serially or on
    /// threads, and regardless of completion order.
    #[test]
    fn fork_join_stitches_deterministically() {
        let _l = lock();
        let run = |threaded: bool| {
            let session = Session::start(ObsConfig::full(), "t");
            {
                let _stage = span("stage");
                let fp = fork();
                if threaded {
                    std::thread::scope(|scope| {
                        // reverse spawn order to shuffle completion
                        for key in [2u64, 1, 0] {
                            let fp = &fp;
                            scope.spawn(move || {
                                let _b = fp.branch(key);
                                let _s = span_full!("work{key}");
                                let _inner = span("inner");
                            });
                        }
                    });
                } else {
                    for key in [0u64, 1, 2] {
                        let _b = fp.branch(key);
                        let _s = span_full!("work{key}");
                        let _inner = span("inner");
                    }
                }
                fp.join();
            }
            session.finish().expect("on").tree_signature()
        };
        let serial = run(false);
        let threaded = run(true);
        assert_eq!(serial, threaded);
        assert_eq!(
            serial,
            "flow:t\n  stage\n    work0\n      inner\n    work1\n      inner\n    work2\n      inner\n"
        );
    }

    #[test]
    fn metrics_reset_keeps_handles_valid() {
        let _l = lock();
        let c = registry().counter("test/keeps_handle");
        c.add(7);
        assert_eq!(c.get(), 7);
        registry().reset();
        assert_eq!(c.get(), 0, "reset zeroes but does not remove");
        c.add(2);
        assert_eq!(registry().counter("test/keeps_handle").get(), 2);
    }

    #[test]
    fn histogram_tracks_bounds() {
        let h = registry().histogram("test/hist_bounds");
        h.record(5);
        h.record(1);
        h.record(9);
        let m = registry().snapshot();
        let snap = m.histograms["test/hist_bounds"];
        assert_eq!((snap.count, snap.sum, snap.min, snap.max), (3, 15, 1, 9));
        assert_eq!(snap.mean(), 5.0);
    }

    #[test]
    fn exports_are_valid_and_deterministic() {
        let _l = lock();
        let session = Session::start(ObsConfig::full(), "ex");
        {
            let _s = span("stage \"quoted\"\n");
            registry().counter("cache/tile/hits").add(3);
            registry().counter("cache/tile/misses").add(1);
            registry().counter("place/anneal_proposals").add(10);
            registry().counter("place/anneal_accepts").add(4);
            registry().gauge("sta/cts_levels").set(3.0);
            registry().series("route/overflow").push(12.0);
            registry().series("route/overflow").push(0.5);
        }
        let trace = session.finish().expect("on");
        let chrome = trace.chrome_trace_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\\\"quoted\\\"\\n"), "escaped: {chrome}");
        let metrics = trace.metrics_json();
        assert!(
            metrics.contains("\"cache/tile/hit_rate\": 0.75"),
            "{metrics}"
        );
        assert!(metrics.contains("\"place/anneal_accept_ratio\": 0.4"));
        assert!(metrics.contains("\"route/overflow\": [12, 0.5]"));
        assert!(metrics.contains("\"sta/cts_levels\": 3"));
        let display = format!("{trace}");
        assert!(display.contains("flow 'ex'"));
        assert!(display.contains("place/anneal_accepts"));
    }
}
