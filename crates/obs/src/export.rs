//! Exporters: Chrome `trace_event` JSON, flat `metrics.json`, and a
//! human `Display` summary.
//!
//! All JSON is hand-rolled (this build environment cannot fetch serde)
//! and emitted in deterministic order: spans in recording order,
//! metrics in `BTreeMap` order, floats through Rust's shortest
//! round-trip formatting. [`FlowTrace::tree_signature`] and
//! [`FlowTrace::metrics_json`] are therefore bit-identical across
//! thread counts; the Chrome trace additionally embeds wall-clock
//! times and thread ids, which are not.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Everything one flow session observed: the stitched span forest and
/// a snapshot of the metrics registry.
#[derive(Clone, Debug)]
pub struct FlowTrace {
    /// Flow name the session was started with (e.g. `Macro-3D`).
    pub flow: String,
    /// Stitched span forest; a parent always precedes its children.
    pub spans: Vec<SpanRecord>,
    /// Metrics at session finish.
    pub metrics: MetricsSnapshot,
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    json_escape(&mut out, s);
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite, shortest
/// round-trip otherwise — `3`, not `3.0`, for integral values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

impl FlowTrace {
    /// Chrome `trace_event` JSON: open the file in `chrome://tracing`
    /// or <https://ui.perfetto.dev>. Spans become complete (`"X"`)
    /// events with microsecond timestamps; thread ids are the
    /// recording threads, so parallel stages render as parallel
    /// tracks.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(self.spans.len() * 96 + 128);
        out.push_str("{\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"macro3d\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                json_str(&span.name),
                span.start_ns as f64 / 1_000.0,
                span.dur_ns as f64 / 1_000.0,
                span.tid,
            );
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"flow\":{}}}}}",
            json_str(&self.flow)
        );
        out
    }

    /// Flat metrics JSON: `counters` / `gauges` / `histograms` /
    /// `series` sections straight from the snapshot plus a `derived`
    /// section (anneal accept ratio, per-kind cache hit rates).
    /// Bit-identical across thread counts.
    pub fn metrics_json(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        out.push_str("{\n  \"flow\": ");
        out.push_str(&json_str(&self.flow));
        out.push_str(",\n  \"counters\": {");
        for (i, (k, v)) in m.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {v}",
                if i > 0 { "," } else { "" },
                json_str(k)
            );
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in m.gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {}",
                if i > 0 { "," } else { "" },
                json_str(k),
                json_f64(*v)
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in m.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}}}",
                if i > 0 { "," } else { "" },
                json_str(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                json_f64(h.mean())
            );
        }
        out.push_str("\n  },\n  \"series\": {");
        for (i, (k, vs)) in m.series.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: [",
                if i > 0 { "," } else { "" },
                json_str(k)
            );
            for (j, v) in vs.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_f64(*v));
            }
            out.push(']');
        }
        out.push_str("\n  },\n  \"derived\": {");
        let mut first = true;
        let mut derived = |out: &mut String, k: &str, v: f64| {
            let _ = write!(
                out,
                "{}\n    {}: {}",
                if first { "" } else { "," },
                json_str(k),
                json_f64(v)
            );
            first = false;
        };
        if let Some(&proposals) = m.counters.get("place/anneal_proposals") {
            if proposals > 0 {
                let accepts = m.counters.get("place/anneal_accepts").copied().unwrap_or(0);
                derived(
                    &mut out,
                    "place/anneal_accept_ratio",
                    accepts as f64 / proposals as f64,
                );
            }
        }
        // a kind with only misses recorded still gets its (zero) hit
        // rate, so cold-cache runs export the same derived keys
        let kinds: std::collections::BTreeSet<&str> = m
            .counters
            .keys()
            .filter_map(|k| {
                k.strip_suffix("/hits")
                    .or_else(|| k.strip_suffix("/misses"))
            })
            .collect();
        for kind in kinds {
            let get = |suffix: &str| {
                m.counters
                    .get(&format!("{kind}/{suffix}"))
                    .copied()
                    .unwrap_or(0)
            };
            let (hits, misses) = (get("hits"), get("misses"));
            if hits + misses > 0 {
                derived(
                    &mut out,
                    &format!("{kind}/hit_rate"),
                    hits as f64 / (hits + misses) as f64,
                );
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// The span forest as an indented name tree with no timing data —
    /// the determinism fingerprint compared across thread counts.
    pub fn tree_signature(&self) -> String {
        // children of each span, in index (= deterministic recording) order
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            match span.parent {
                Some(p) => children[p as usize].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        // iterative DFS; spans can nest deeply under recursive bisection
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&r| (r, 0)).collect();
        while let Some((idx, depth)) = stack.pop() {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&self.spans[idx].name);
            out.push('\n');
            for &c in children[idx].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }

    /// Names of the top-level stage spans (direct children of the
    /// session root), in execution order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(0))
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Writes `trace_<label>.json` (Chrome trace) and
    /// `metrics_<label>.json` into `dir`, creating it if needed.
    /// Returns the two paths.
    pub fn write_files(
        &self,
        dir: &Path,
        label: &str,
    ) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let trace = dir.join(format!("trace_{label}.json"));
        let metrics = dir.join(format!("metrics_{label}.json"));
        std::fs::write(&trace, self.chrome_trace_json())?;
        std::fs::write(&metrics, self.metrics_json())?;
        Ok((trace, metrics))
    }
}

impl fmt::Display for FlowTrace {
    /// Human summary: per-stage wall-clock, then every metric.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flow '{}': {} spans, {} counters",
            self.flow,
            self.spans.len(),
            self.metrics.counters.len()
        )?;
        writeln!(f, "stages:")?;
        for span in self.spans.iter().filter(|s| s.parent == Some(0)) {
            writeln!(
                f,
                "  {:<24} {:>10.3} ms",
                span.name,
                span.dur_ns as f64 / 1e6
            )?;
        }
        if !self.metrics.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (k, v) in &self.metrics.counters {
                writeln!(f, "  {k:<32} {v}")?;
            }
        }
        if !self.metrics.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (k, v) in &self.metrics.gauges {
                writeln!(f, "  {k:<32} {v}")?;
            }
        }
        if !self.metrics.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for (k, h) in &self.metrics.histograms {
                writeln!(
                    f,
                    "  {k:<32} count={} mean={:.2} min={} max={}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                )?;
            }
        }
        for (k, vs) in &self.metrics.series {
            writeln!(f, "series {k}: {vs:?}")?;
        }
        Ok(())
    }
}
