//! Hierarchical spans with a thread-aware, deterministic collector.
//!
//! Spans are recorded into a thread-local buffer as a flat forest
//! (`parent` index links). Parallel regions use the fork/branch/join
//! protocol: [`fork`] marks a fork point, every unit of parallel work
//! wraps itself in [`ForkPoint::branch`] with a *stable* key (chunk
//! start index, join-arm number — never a thread id), and
//! [`ForkPoint::join`] splices the collected branch forests back into
//! the caller's buffer sorted by key. Because the keys depend only on
//! the work decomposition — which `macro3d-par` guarantees is
//! thread-count-independent — the stitched span tree is bit-identical
//! for any number of worker threads.

use crate::ObsLevel;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One completed span, as exposed in a [`crate::FlowTrace`].
///
/// Spans form a forest encoded by `parent` indices into the same
/// vector; a parent always precedes its children, and sibling order
/// is the deterministic recording order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `route`, `bisect d3 n512`).
    pub name: String,
    /// Index of the parent span in the containing vector, if any.
    pub parent: Option<u32>,
    /// Id of the thread that recorded the span (first-use order; not
    /// part of the determinism contract).
    pub tid: u32,
    /// Start time in nanoseconds since the process-wide epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Internal node: a [`SpanRecord`] plus the cancellation flag used by
/// [`crate::StageTimer`]-style unnamed spans.
#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub(crate) name: String,
    pub(crate) parent: Option<u32>,
    pub(crate) tid: u32,
    pub(crate) start_ns: u64,
    pub(crate) dur_ns: u64,
    pub(crate) cancelled: bool,
}

#[derive(Default)]
pub(crate) struct LocalBuf {
    pub(crate) nodes: Vec<Node>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<u32>,
}

thread_local! {
    static TLS: RefCell<LocalBuf> = RefCell::new(LocalBuf::default());
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn tid() -> u32 {
    thread_local! {
        static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    }
    static NEXT: AtomicU32 = AtomicU32::new(1);
    TID.with(|t| {
        if t.get() == u32::MAX {
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Clears the current thread's span buffer (session start).
pub(crate) fn reset_thread() {
    TLS.with(|t| {
        let mut buf = t.borrow_mut();
        buf.nodes.clear();
        buf.stack.clear();
    });
}

/// Drains the current thread's span buffer (session finish).
pub(crate) fn take_thread() -> Vec<Node> {
    TLS.with(|t| std::mem::take(&mut *t.borrow_mut())).nodes
}

/// Opens a span unconditionally (the session root).
pub(crate) fn open_unchecked(name: String) -> SpanGuard {
    open(name)
}

fn open(name: String) -> SpanGuard {
    TLS.with(|t| {
        let mut buf = t.borrow_mut();
        let idx = buf.nodes.len() as u32;
        let parent = buf.stack.last().copied();
        buf.nodes.push(Node {
            name,
            parent,
            tid: tid(),
            start_ns: now_ns(),
            dur_ns: 0,
            cancelled: false,
        });
        buf.stack.push(idx);
    });
    SpanGuard {
        done: false,
        _not_send: PhantomData,
    }
}

/// Opens a named span at [`ObsLevel::Full`]; `None` below that level.
///
/// Bind the guard (`let _span = obs::span("...")`) — it closes the
/// span on drop. Prefer [`crate::span_full!`] when the name needs
/// formatting, so the `format!` is skipped while tracing is off.
#[inline]
pub fn span(name: &str) -> Option<SpanGuard> {
    crate::enabled(ObsLevel::Full).then(|| open(name.to_owned()))
}

/// Like [`span`] but takes an owned (typically formatted) name.
#[inline]
pub fn span_owned(name: String) -> Option<SpanGuard> {
    crate::enabled(ObsLevel::Full).then(|| open(name))
}

/// Opens an *unnamed* span at [`ObsLevel::Summary`]: the stage-timer
/// idiom where the name is only known when the stage ends. Close it
/// with [`SpanGuard::finish_named`]; if the guard is instead dropped
/// while still unnamed, the span is discarded (its children are
/// reparented to its parent).
#[inline]
pub fn stage_begin() -> Option<SpanGuard> {
    crate::enabled(ObsLevel::Summary).then(|| open(String::new()))
}

/// Closes its span on drop. `!Send` by construction: a span must be
/// closed on the thread that opened it.
pub struct SpanGuard {
    done: bool,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Closes the span, giving it its final name (stage-timer idiom).
    pub fn finish_named(mut self, name: &str) {
        self.close(Some(name));
    }

    fn close(&mut self, rename: Option<&str>) {
        if self.done {
            return;
        }
        self.done = true;
        TLS.with(|t| {
            let mut buf = t.borrow_mut();
            let Some(idx) = buf.stack.pop() else { return };
            let end = now_ns();
            let node = &mut buf.nodes[idx as usize];
            if let Some(name) = rename {
                node.name = name.to_owned();
            }
            node.dur_ns = end.saturating_sub(node.start_ns);
            if node.name.is_empty() {
                node.cancelled = true;
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close(None);
    }
}

struct ForkInner {
    /// `(branch key, recorded forest)` per completed branch.
    branches: Mutex<Vec<(u64, Vec<Node>)>>,
}

/// A fork point for a parallel region (see the module docs).
///
/// Inert (zero-cost beyond one `Option` check) unless the session
/// level is [`ObsLevel::Full`] when [`fork`] is called.
#[derive(Clone)]
pub struct ForkPoint {
    inner: Option<Arc<ForkInner>>,
}

/// Creates a fork point. Call on the forking thread, *before* the
/// parallel region; hand (a clone of) it to every worker.
pub fn fork() -> ForkPoint {
    let inner = crate::enabled(ObsLevel::Full).then(|| {
        Arc::new(ForkInner {
            branches: Mutex::new(Vec::new()),
        })
    });
    ForkPoint { inner }
}

impl ForkPoint {
    /// Enters a branch: spans recorded until the guard drops go into
    /// a private forest shipped to the fork point, keyed by `key`.
    ///
    /// `key` must be a deterministic function of the work item (chunk
    /// start index, join-arm number), unique within the fork, and
    /// must never encode the executing thread.
    pub fn branch(&self, key: u64) -> Option<BranchGuard> {
        self.inner.as_ref().map(|inner| BranchGuard {
            saved: Some(TLS.with(|t| t.replace(LocalBuf::default()))),
            inner: Arc::clone(inner),
            key,
        })
    }

    /// Splices all branch forests back into the calling thread's
    /// buffer, sorted by branch key. Call after every branch guard
    /// has dropped (i.e. after the worker scope ends); branch roots
    /// become children of the caller's innermost open span.
    pub fn join(self) {
        let Some(inner) = self.inner else { return };
        let mut branches = std::mem::take(
            &mut *inner
                .branches
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        branches.sort_by_key(|&(key, _)| key);
        TLS.with(|t| {
            let mut buf = t.borrow_mut();
            let attach = buf.stack.last().copied();
            for (_key, nodes) in branches {
                let base = buf.nodes.len() as u32;
                for mut node in nodes {
                    node.parent = match node.parent {
                        Some(p) => Some(p + base),
                        None => attach,
                    };
                    buf.nodes.push(node);
                }
            }
        });
    }
}

/// Scopes one branch of a [`ForkPoint`]; ships its forest on drop.
pub struct BranchGuard {
    saved: Option<LocalBuf>,
    inner: Arc<ForkInner>,
    key: u64,
}

impl Drop for BranchGuard {
    fn drop(&mut self) {
        let recorded = TLS.with(|t| t.replace(self.saved.take().unwrap_or_default()));
        let mut nodes = recorded.nodes;
        // Close any span left open in the branch (a panic unwound
        // past its guard) so the forest stays well-formed.
        let end = now_ns();
        for &idx in recorded.stack.iter().rev() {
            let node = &mut nodes[idx as usize];
            if node.dur_ns == 0 {
                node.dur_ns = end.saturating_sub(node.start_ns);
            }
        }
        if !nodes.is_empty() {
            self.inner
                .branches
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((self.key, nodes));
        }
    }
}

/// Resolves cancelled (dropped-unnamed) spans out of a raw forest:
/// kept spans are re-indexed and children of a cancelled span are
/// reparented to its nearest kept ancestor. Relies on the invariant
/// that a parent index is always smaller than its child's.
pub(crate) fn cleanup(nodes: Vec<Node>) -> Vec<SpanRecord> {
    let mut out: Vec<SpanRecord> = Vec::with_capacity(nodes.len());
    // nearest kept ancestor-or-self, as a new index, per old index
    let mut kept: Vec<Option<u32>> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let parent = node.parent.and_then(|p| kept[p as usize]);
        if node.cancelled {
            kept.push(parent);
        } else {
            kept.push(Some(out.len() as u32));
            out.push(SpanRecord {
                name: node.name,
                parent,
                tid: node.tid,
                start_ns: node.start_ns,
                dur_ns: node.dur_ns,
            });
        }
    }
    out
}
