//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the exact API subset it uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_range` / `gen_bool`. The generator is xorshift64* seeded
//! through SplitMix64 — deterministic for a given seed, which is all
//! the reproduction's seeded netlist/placement generators require.
//! Swapping the real `rand 0.8` back in is a one-line `Cargo.toml`
//! change; no call sites need to move.

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// The generator interface (the `gen_range` / `gen_bool` subset).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Named generators (the `SmallRng` subset).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, non-cryptographic generator (xorshift64*).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scrambles low-entropy seeds (0, 1, 2, ...)
            // into well-distributed initial states.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: z.max(1), // xorshift state must be non-zero
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(17);
        let mut b = SmallRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
            let i = rng.gen_range(2u64..=5);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
