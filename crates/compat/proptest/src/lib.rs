//! Offline stand-in for the `proptest` crate.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the API subset its property tests use: the [`proptest!`]
//! macro, range / tuple / `prop_map` strategies,
//! [`collection::vec`], [`sample::select`], [`bool::ANY`], and the
//! `prop_assert*` family. Inputs are generated from a seed derived
//! deterministically from the test's module path and name, so every
//! run of a test explores the same cases (reproducible CI). Shrinking
//! is not implemented — a failing case panics with its generated
//! values visible in the assert message.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Builds the generator for a named test (FNV-1a over the name, so
    /// every test gets a distinct but stable case sequence).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "cannot sample empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A value generator. Unlike real proptest there is no shrinking:
/// `generate` draws one concrete value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (the `vec` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.start, self.end)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(*self.start(), *self.end() + 1)
        }
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (the `select` subset).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from a fixed set of options.
    ///
    /// # Panics
    ///
    /// [`Strategy::generate`] panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select requires options");
            self.options[rng.usize_in(0, self.options.len())].clone()
        }
    }
}

/// Boolean strategies (the `ANY` subset).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-test configuration (the `cases` subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is tuned for shrinking support;
        // without shrinking, a moderate count keeps suites quick while
        // still exploring the space.
        ProptestConfig { cases: 32 }
    }
}

/// Runs one generated case (macro plumbing: keeps the `proptest!`
/// expansion free of immediately-invoked closures).
pub fn run_case<F: FnOnce()>(case: F) {
    case();
}

/// Defines property tests. Mirrors the real `proptest!` grammar for
/// the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0usize..10, p in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $crate::run_case(move || $body);
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

/// Asserts a property holds (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two values are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a
/// precondition (early-returns from the case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };

    /// Alias module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{bool, collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("t");
        for _ in 0..200 {
            let (a, b) = (1i64..5, 0.0f64..1.0).generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
            let v = crate::collection::vec(0u32..10, 2..6).generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            assert!(v.iter().all(|&x| x < 10));
            let s = crate::sample::select(vec![3, 5, 7]).generate(&mut rng);
            assert!([3, 5, 7].contains(&s));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::for_test("map");
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!((0..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_form_works(x in 0usize..100, flip in crate::bool::ANY) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            let _ = flip;
        }
    }
}
