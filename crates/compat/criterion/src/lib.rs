//! Offline stand-in for the `criterion` crate.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the API subset its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`] and [`black_box`]. Instead of
//! criterion's statistical engine it runs a fixed warm-up plus
//! `sample_size` timed iterations and prints min / mean / max
//! wall-clock per benchmark — enough to compare engine variants and
//! track regressions. Measurements are also collected on the
//! [`Criterion`] value so harness code can post-process them (the
//! route bench writes them to JSON).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Number of timed iterations.
    pub samples: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

/// Benchmark identifier: function name plus a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` with a displayed parameter, e.g. `route/nets=2000`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    result: Option<(usize, Duration, Duration, Duration)>,
}

impl Bencher {
    /// Runs `f` once warm-up plus `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        self.result = Some((self.sample_size, min, total / self.sample_size as u32, max));
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size;
        self.criterion.run_one(id, sample_size, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.name);
        let sample_size = self.sample_size;
        self.criterion.run_one(id, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; measurements are
    /// reported as they complete).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark (default sample size).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        self.run_one(name.to_string(), 10, f);
        self
    }

    /// Completed measurements, in run order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        let mut b = Bencher {
            sample_size,
            result: None,
        };
        f(&mut b);
        let Some((samples, min, mean, max)) = b.result else {
            eprintln!("bench {id:<44} (no iter() call)");
            return;
        };
        println!(
            "bench {id:<44} min {min:>12.3?}  mean {mean:>12.3?}  max {max:>12.3?}  ({samples} samples)"
        );
        self.measurements.push(Measurement {
            id,
            samples,
            min,
            mean,
            max,
        });
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 42), &42, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].id, "g/noop");
        assert_eq!(c.measurements()[0].samples, 3);
        assert_eq!(c.measurements()[1].id, "g/param/42");
    }
}
