//! Benchmark and experiment harness for the Macro-3D reproduction.
//!
//! Binaries (each regenerates one piece of the paper's evaluation):
//!
//! * `repro_table1` — Table I: max-performance PPA and cost for 2D,
//!   MoL S2D, BF S2D and Macro-3D on the small-cache tile.
//! * `repro_table2` — Table II: in-depth 2D vs Macro-3D for both
//!   cache configurations, plus the iso-performance power comparison.
//! * `repro_table3` — Table III: the heterogeneous-BEOL (M6–M6 vs
//!   M6–M4) experiment.
//! * `repro_figs` — Figures 4–6 as SVG files.
//! * `ablations` — extensions beyond the paper: F2F pitch sweep,
//!   partial-blockage resolution sweep, C2D comparison, scale sweep.
//! * `obs_smoke` — runs the Macro-3D flow on a miniature tile under
//!   full tracing and checks the emitted trace/metrics (the CI gate
//!   for the observability subsystem).
//!
//! Criterion benches (`cargo bench`) time the experiments and the
//! individual engines; the binaries print the paper-style rows.
//!
//! All experiments accept `--scale <n>` (default 8): the
//! instance-count compression documented in `DESIGN.md` §5. Lower
//! scale = more instances = slower and closer to the paper's design
//! size. They also accept `--obs off|summary|full` (default off):
//! anything above `off` makes the experiment drop one Chrome trace
//! and one metrics JSON per flow under `./traces/`.

use macro3d::experiments::ExperimentConfig;
use macro3d::{FlowTrace, ObsConfig};

/// Parses `--scale <f64>` and `--obs off|summary|full` from argv.
pub fn experiment_config_from_args() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default();
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--scale" {
            if let Ok(s) = w[1].parse::<f64>() {
                cfg.scale = s;
            }
        }
        if w[0] == "--obs" {
            cfg.flow.obs = match w[1].as_str() {
                "summary" => ObsConfig::summary(),
                "full" => ObsConfig::full(),
                _ => ObsConfig::off(),
            };
        }
    }
    cfg
}

/// Writes each trace's Chrome-trace and metrics JSON into `out_dir`
/// (created if needed), labelled by a filename-safe form of the flow
/// name. Returns every path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_traces(
    out_dir: &std::path::Path,
    traces: &[FlowTrace],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let mut written = Vec::new();
    for trace in traces {
        let label: String = trace
            .flow
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let (t, m) = trace.write_files(out_dir, &label)?;
        written.push(t);
        written.push(m);
    }
    Ok(written)
}

/// Writes figure SVGs into `out_dir`, creating it if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_figures(
    out_dir: &std::path::Path,
    figs: &macro3d::experiments::Figures,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let mut written = Vec::new();
    for (name, svg) in figs
        .fig4
        .iter()
        .chain(figs.fig5.iter())
        .chain(figs.fig6.iter())
    {
        let path = out_dir.join(name);
        std::fs::write(&path, svg)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config() {
        let cfg = experiment_config_from_args();
        assert!(cfg.scale >= 1.0);
    }
}
