//! Benchmark and experiment harness for the Macro-3D reproduction.
//!
//! Binaries (each regenerates one piece of the paper's evaluation):
//!
//! * `repro_table1` — Table I: max-performance PPA and cost for 2D,
//!   MoL S2D, BF S2D and Macro-3D on the small-cache tile.
//! * `repro_table2` — Table II: in-depth 2D vs Macro-3D for both
//!   cache configurations, plus the iso-performance power comparison.
//! * `repro_table3` — Table III: the heterogeneous-BEOL (M6–M6 vs
//!   M6–M4) experiment.
//! * `repro_figs` — Figures 4–6 as SVG files.
//! * `ablations` — extensions beyond the paper: F2F pitch sweep,
//!   partial-blockage resolution sweep, C2D comparison, scale sweep.
//!
//! Criterion benches (`cargo bench`) time the experiments and the
//! individual engines; the binaries print the paper-style rows.
//!
//! All experiments accept `--scale <n>` (default 8): the
//! instance-count compression documented in `DESIGN.md` §5. Lower
//! scale = more instances = slower and closer to the paper's design
//! size.

use macro3d::experiments::ExperimentConfig;

/// Parses `--scale <f64>` from argv, defaulting to 8.
pub fn experiment_config_from_args() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default();
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--scale" {
            if let Ok(s) = w[1].parse::<f64>() {
                cfg.scale = s;
            }
        }
    }
    cfg
}

/// Writes figure SVGs into `out_dir`, creating it if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_figures(
    out_dir: &std::path::Path,
    figs: &macro3d::experiments::Figures,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let mut written = Vec::new();
    for (name, svg) in figs
        .fig4
        .iter()
        .chain(figs.fig5.iter())
        .chain(figs.fig6.iter())
    {
        let path = out_dir.join(name);
        std::fs::write(&path, svg)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config() {
        let cfg = experiment_config_from_args();
        assert!(cfg.scale >= 1.0);
    }
}
