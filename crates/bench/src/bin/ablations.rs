//! Extensions beyond the paper: C2D comparison, partial-blockage
//! resolution sweep (the S2D failure knob), and F2F pitch sweep.
use macro3d::flows::{Flow, Flow2d, Macro3d, S2d};
use macro3d::s2d::S2dStyle;
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let cfg = macro3d_bench::experiment_config_from_args();
    let tile = generate_tile(&TileConfig::small_cache().with_scale(cfg.scale));

    println!("=== C2D comparison (paper drops its numbers as worse than S2D) ===");
    let r = macro3d::experiments::c2d_comparison(&cfg);
    println!("{r}");

    println!("\n=== partial-blockage quantization sweep (S2D failure knob) ===");
    for period in [2.0, 8.0, 24.0] {
        let mut f = cfg.flow.clone();
        f.partial_blockage_period_um = period;
        let out = S2d {
            style: S2dStyle::MemoryOnLogic,
        }
        .run(&tile, &f);
        let diag = out.diagnostics.expect("S2D reports diagnostics");
        println!(
            "period {:>5.1} um: fclk {:>6.1} MHz, overlap-fix displacement {:>7.1} um",
            period, out.implemented.timing.fclk_mhz, diag.overlap_fix_mean_disp_um
        );
    }

    println!("\n=== repeater threshold sweep (2D vs Macro-3D sensitivity) ===");
    for thr in [100.0, 150.0, 250.0] {
        let mut f = cfg.flow.clone();
        f.repeater_max_len_um = thr;
        let r2 = Flow2d.run(&tile, &f).ppa;
        let r3 = Macro3d.run(&tile, &f).ppa;
        println!(
            "threshold {:>5.0} um: 2D {:>6.1} MHz vs Macro-3D {:>6.1} MHz ({:+.1}%)",
            thr,
            r2.fclk_mhz,
            r3.fclk_mhz,
            100.0 * (r3.fclk_mhz - r2.fclk_mhz) / r2.fclk_mhz
        );
    }

    println!("\n=== F2F bond pitch sweep (bump density feasibility) ===");
    for pitch in [1.0, 2.0, 5.0, 10.0] {
        let mut f = cfg.flow.clone();
        f.route.f2f_pitch_um = Some(pitch);
        let imp = Macro3d.run(&tile, &f).implemented;
        println!(
            "pitch {:>5.1} um: {:>6} bumps, {:>4} overcrowded GCells, fclk {:>6.1} MHz",
            pitch, imp.routed.f2f_bumps, imp.routed.f2f_overcrowded_gcells, imp.timing.fclk_mhz
        );
    }

    println!("\n=== scale sweep (netlist size sensitivity of the 3D gain) ===");
    for sc in [32.0, 16.0, cfg.scale] {
        let t = generate_tile(&TileConfig::small_cache().with_scale(sc));
        let r2 = Flow2d.run(&t, &cfg.flow).ppa;
        let r3 = Macro3d.run(&t, &cfg.flow).ppa;
        println!(
            "scale {:>5.0}: 2D {:>6.1} MHz vs Macro-3D {:>6.1} MHz ({:+.1}%)",
            sc,
            r2.fclk_mhz,
            r3.fclk_mhz,
            100.0 * (r3.fclk_mhz - r2.fclk_mhz) / r2.fclk_mhz
        );
    }

    println!("\n=== heterogeneous memory node (paper future work) ===");
    let tile40 = generate_tile(
        &TileConfig::small_cache()
            .with_scale(cfg.scale)
            .with_n40_memory(),
    );
    let r28 = Macro3d.run(&tile, &cfg.flow).ppa;
    let r40 = Macro3d.run(&tile40, &cfg.flow).ppa;
    println!(
        "N28 memory die: fclk {:>6.1} MHz, footprint {:.2} mm2",
        r28.fclk_mhz, r28.footprint_mm2
    );
    println!(
        "N40 memory die: fclk {:>6.1} MHz, footprint {:.2} mm2 (bigger but ~45% cheaper silicon, lower leakage)",
        r40.fclk_mhz, r40.footprint_mm2
    );
}
