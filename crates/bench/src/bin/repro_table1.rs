//! Regenerates Table I: max-performance PPA and cost comparison of
//! the 2D, MoL S2D, BF S2D and Macro-3D flows (small-cache system).
fn main() {
    let cfg = macro3d_bench::experiment_config_from_args();
    eprintln!("running Table I at scale {} ...", cfg.scale);
    let t = std::time::Instant::now();
    let table = macro3d::experiments::table1(&cfg);
    println!("{}", table.render());
    if !table.traces.is_empty() {
        match macro3d_bench::write_traces(std::path::Path::new("traces"), &table.traces) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("failed to write traces: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("elapsed: {:?}", t.elapsed());
}
