//! Regenerates Table II: in-depth 2D vs Macro-3D comparison for both
//! cache configurations, including iso-performance power.
fn main() {
    let cfg = macro3d_bench::experiment_config_from_args();
    eprintln!("running Table II at scale {} ...", cfg.scale);
    let t = std::time::Instant::now();
    let table = macro3d::experiments::table2(&cfg);
    println!("{}", table.render());
    eprintln!("elapsed: {:?}", t.elapsed());
}
