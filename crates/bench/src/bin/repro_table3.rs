//! Regenerates Table III: the heterogeneous-BEOL experiment (macro
//! die trimmed from six to four metal layers).
fn main() {
    let cfg = macro3d_bench::experiment_config_from_args();
    eprintln!("running Table III at scale {} ...", cfg.scale);
    let t = std::time::Instant::now();
    let table = macro3d::experiments::table3(&cfg);
    println!("{}", table.render());
    eprintln!("elapsed: {:?}", t.elapsed());
}
