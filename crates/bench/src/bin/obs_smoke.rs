//! CI smoke test for the observability subsystem: runs the Macro-3D
//! flow on a miniature tile under full tracing — once per placer
//! backend — writes the Chrome trace and metrics JSON under
//! `./traces/`, and fails unless the trace covers the expected flow
//! stages and key metrics.

use macro3d::flows::{Flow, Macro3d};
use macro3d::{FlowConfig, ObsConfig, PlacerBackend};
use macro3d_soc::{generate_tile, TileConfig};

fn main() {
    let tile = generate_tile(&TileConfig::mini());

    let mut cfg = FlowConfig::builder()
        .sizing_rounds(2)
        .obs(ObsConfig::full())
        .build()
        .expect("valid config");
    cfg.route.iterations = 2;

    let out = Macro3d.run(&tile, &cfg);
    let trace = out.obs.expect("full obs produces a trace");

    let stages = trace.stage_names();
    assert!(
        stages.len() >= 6,
        "expected >=6 instrumented stages, got {stages:?}"
    );
    for metric in [
        "route/iterations",
        "place/fm_passes",
        "place/anneal_proposals",
        "sta/arcs_evaluated",
        "extract/nets",
    ] {
        assert!(
            trace.metrics.counters.contains_key(metric),
            "metric {metric} missing from {:?}",
            trace.metrics.counters.keys().collect::<Vec<_>>()
        );
    }
    assert!(
        trace.metrics.series.contains_key("route/overflow"),
        "router overflow history missing"
    );

    println!("{trace}");
    let (t, m) = trace
        .write_files(std::path::Path::new("traces"), "smoke")
        .expect("write trace files");
    println!("wrote {}", t.display());
    println!("wrote {}", m.display());

    // same flow through the analytical placer backend: the Nesterov
    // loop must surface its iteration counter and per-iteration
    // overflow/HPWL/step-size series
    let mut acfg = FlowConfig::builder()
        .sizing_rounds(2)
        .placer(PlacerBackend::Analytical)
        .obs(ObsConfig::full())
        .build()
        .expect("valid config");
    acfg.route.iterations = 2;
    let out = Macro3d.run(&tile, &acfg);
    let trace = out.obs.expect("full obs produces a trace");
    assert!(
        trace.metrics.counters.contains_key("place/nesterov_iters"),
        "analytical backend must count Nesterov iterations, got {:?}",
        trace.metrics.counters.keys().collect::<Vec<_>>()
    );
    for series in ["place/overflow", "place/hpwl_um", "place/step_size"] {
        assert!(
            trace.metrics.series.contains_key(series),
            "analytical series {series} missing from {:?}",
            trace.metrics.series.keys().collect::<Vec<_>>()
        );
    }
    println!("{trace}");
    let (t, m) = trace
        .write_files(std::path::Path::new("traces"), "smoke_analytical")
        .expect("write trace files");
    println!("wrote {}", t.display());
    println!("wrote {}", m.display());
}
