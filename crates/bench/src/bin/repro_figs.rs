//! Regenerates Figures 4-6 as SVG files under ./figures/.
use macro3d_soc::TileConfig;

fn main() {
    let cfg = macro3d_bench::experiment_config_from_args();
    let out = std::path::Path::new("figures");
    for tc in [TileConfig::small_cache(), TileConfig::large_cache()] {
        let name = tc.name.clone();
        eprintln!("rendering figures for {name} at scale {} ...", cfg.scale);
        let figs = macro3d::experiments::figures(&cfg, tc);
        match macro3d_bench::write_figures(out, &figs) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("failed to write figures: {e}");
                std::process::exit(1);
            }
        }
    }
}
