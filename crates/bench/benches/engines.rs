//! Criterion benches of the individual engines (scaling behaviour).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::NetId;
use macro3d_place::{global_place, Floorplan, GlobalPlaceConfig, PortPlan};
use macro3d_route::{route_design, RouteConfig};
use macro3d_soc::{generate_tile, TileConfig};
use macro3d_tech::stack::{n28_stack, DieRole};

fn bench_tile_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlist_generation");
    g.sample_size(10);
    for scale in [64.0, 32.0, 16.0] {
        g.bench_with_input(BenchmarkId::new("small_cache", scale as u64), &scale, |b, &s| {
            b.iter(|| generate_tile(&TileConfig::small_cache().with_scale(s)))
        });
    }
    g.finish();
}

fn bench_global_place(c: &mut Criterion) {
    let tile = generate_tile(&TileConfig::small_cache().with_scale(64.0));
    let lib = tile.design.library().clone();
    let fp = Floorplan::new(
        Rect::from_um(0.0, 0.0, 1_000.0, 1_000.0),
        lib.row_height(),
        lib.site_width(),
    );
    let ports = PortPlan::assign(&tile.design, fp.die());
    let mut g = c.benchmark_group("place");
    g.sample_size(10);
    g.bench_function("global_place_small48", |b| {
        b.iter(|| global_place(&tile.design, &fp, &ports, &GlobalPlaceConfig::default()))
    });
    g.finish();
}

fn bench_router(c: &mut Criterion) {
    let stack = n28_stack(6, DieRole::Logic);
    let die = Rect::from_um(0.0, 0.0, 500.0, 500.0);
    // a synthetic net set: 2000 random two-pin nets
    let mut nets = Vec::new();
    let mut x = 7u64;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((x >> 33) % 500) as f64
    };
    for i in 0..2_000u32 {
        nets.push((
            NetId(i),
            vec![
                (Point::from_um(next(), next()), 0u16),
                (Point::from_um(next(), next()), 0u16),
            ],
        ));
    }
    let mut g = c.benchmark_group("route");
    g.sample_size(10);
    g.bench_function("global_route_2k_nets", |b| {
        b.iter(|| route_design(die, &stack, &[], &nets, 2_000, &RouteConfig::default()))
    });
    g.finish();
    let _ = Dbu(0);
}

criterion_group!(benches, bench_tile_generation, bench_global_place, bench_router);
criterion_main!(benches);
