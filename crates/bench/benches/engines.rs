//! Criterion benches of the individual engines (scaling behaviour),
//! including the serial-vs-parallel router and placer comparisons.
//! The router comparison writes `BENCH_route.json` (measurements plus
//! the Macro-3D flow's per-stage wall-clock) and the placer
//! comparison writes `BENCH_place.json` (serial-vs-parallel seconds,
//! speedup, and cold-vs-warm build-cache setup time) for offline
//! tracking. The STA comparison writes `BENCH_sta.json` (probe vs
//! parametric sign-off analysis, cold vs incremental sizing loop).
//!
//! Set `MACRO3D_BENCH_SMOKE=1` to run a down-scaled few-sample
//! variant (the CI smoke run; it leaves the tracked JSON dumps alone
//! — the route bench writes `target/BENCH_route_smoke.json` instead
//! so CI can validate the shape), and
//! `MACRO3D_BENCH_ONLY=<name>[,<name>...]` to run a subset of the
//! bench functions (e.g. `place_parallelism`).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use macro3d::flows::{Flow, Macro3d};
use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::NetId;
use macro3d_place::{
    global_place, legalize, legalize_abacus, total_hpwl, Floorplan, GlobalPlaceConfig,
    PlacerBackend, PortPlan,
};
use macro3d_route::{Parallelism, RouteConfig, RouteRequest, Router};
use macro3d_soc::{generate_tile, TileConfig, TileNetlist};
use macro3d_tech::stack::{n28_stack, DieRole};

/// `MACRO3D_BENCH_SMOKE=1`: quick CI variant.
fn smoke() -> bool {
    std::env::var_os("MACRO3D_BENCH_SMOKE").is_some()
}

/// `MACRO3D_BENCH_ONLY=a,b`: run only the named bench functions.
fn bench_enabled(name: &str) -> bool {
    match std::env::var("MACRO3D_BENCH_ONLY") {
        Ok(only) if !only.is_empty() => only.split(',').any(|p| p.trim() == name),
        _ => true,
    }
}

fn bench_tile_generation(c: &mut Criterion) {
    if !bench_enabled("tile_generation") {
        return;
    }
    let mut g = c.benchmark_group("netlist_generation");
    g.sample_size(10);
    for scale in [64.0, 32.0, 16.0] {
        g.bench_with_input(
            BenchmarkId::new("small_cache", scale as u64),
            &scale,
            |b, &s| b.iter(|| generate_tile(&TileConfig::small_cache().with_scale(s))),
        );
    }
    g.finish();
}

fn bench_global_place(c: &mut Criterion) {
    if !bench_enabled("global_place") {
        return;
    }
    let tile = generate_tile(&TileConfig::small_cache().with_scale(64.0));
    let lib = tile.design.library().clone();
    let fp = Floorplan::new(
        Rect::from_um(0.0, 0.0, 1_000.0, 1_000.0),
        lib.row_height(),
        lib.site_width(),
    );
    let ports = PortPlan::assign(&tile.design, fp.die());
    let mut g = c.benchmark_group("place");
    g.sample_size(10);
    g.bench_function("global_place_small48", |b| {
        b.iter(|| global_place(&tile.design, &fp, &ports, &GlobalPlaceConfig::default()))
    });
    g.finish();
}

fn bench_router(c: &mut Criterion) {
    if !bench_enabled("router") {
        return;
    }
    let stack = n28_stack(6, DieRole::Logic);
    let die = Rect::from_um(0.0, 0.0, 500.0, 500.0);
    // a synthetic net set: 2000 random two-pin nets
    let mut nets = Vec::new();
    let mut x = 7u64;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((x >> 33) % 500) as f64
    };
    for i in 0..2_000u32 {
        nets.push((
            NetId(i),
            vec![
                (Point::from_um(next(), next()), 0u16),
                (Point::from_um(next(), next()), 0u16),
            ],
        ));
    }
    let mut g = c.benchmark_group("route");
    g.sample_size(10);
    g.bench_function("global_route_2k_nets", |b| {
        b.iter(|| {
            Router::new(
                &RouteRequest {
                    die,
                    stack: &stack,
                    obstacles: &[],
                    nets: &nets,
                    num_nets: 2_000,
                },
                &RouteConfig::default(),
            )
            .route()
        })
    });
    g.finish();
    let _ = Dbu(0);
}

/// Standalone MoL floorplan for the parallelism benches: die sized
/// from `area_factor * a3d`, macros packed by the cached MoL seed
/// (leaving macros unplaced piles every macro pin at the origin and
/// the router then thrashes on fictitious congestion).
fn mol_bench_floorplan(
    tile: &TileNetlist,
    cfg: &macro3d::FlowConfig,
    area_factor: f64,
) -> (Floorplan, PortPlan) {
    let lib = tile.design.library().clone();
    let budget = macro3d::flow::area_budget(&tile.design, cfg);
    let die = macro3d_place::floorplan::die_for_area(
        area_factor * budget.a3d_um2,
        1.0,
        lib.row_height(),
        lib.site_width(),
    );
    let mut fp = Floorplan::new(die, lib.row_height(), lib.site_width());
    let halo = Dbu::from_um(cfg.halo_um);
    let mol = macro3d::build_cache::cached_mol_floorplan(
        &tile.design,
        die,
        halo,
        cfg.util_macro,
        cfg.halo_um,
    );
    for &mp in mol.0.iter().chain(mol.1.iter()) {
        fp.add_macro(mp, DieRole::Logic, halo);
    }
    let ports = PortPlan::assign(&tile.design, die);
    (fp, ports)
}

/// Serial vs batched-parallel `Router` sessions on the large-cache
/// tile (the macro-heavy configuration with the most routing work),
/// plus the incremental `update()` path and a JSON dump for offline
/// comparison.
fn bench_route_parallelism(c: &mut Criterion) {
    if !bench_enabled("route_parallelism") {
        return;
    }
    let cfg = macro3d::FlowConfig::default();
    let tile = generate_tile(&TileConfig::large_cache().with_scale(64.0));

    // a quick standalone floorplan + global placement supplies
    // realistic pin locations without the full flow
    let (fp, ports) = mol_bench_floorplan(&tile, &cfg, 2.0);
    let die = fp.die();
    let placement = global_place(&tile.design, &fp, &ports, &GlobalPlaceConfig::default());
    let stack = n28_stack(cfg.logic_metals, DieRole::Logic);
    let nets = macro3d::flow::route_pins(
        &tile.design,
        &placement,
        &ports,
        cfg.logic_metals,
        stack.num_layers(),
        false,
    );
    let request = RouteRequest {
        die,
        stack: &stack,
        obstacles: &[],
        nets: &nets,
        num_nets: tile.design.num_nets(),
    };

    let mut g = c.benchmark_group("route_parallelism");
    g.sample_size(if smoke() { 1 } else { 5 });
    for (name, par) in [
        ("serial", Parallelism::serial()),
        ("parallel", Parallelism::default()),
    ] {
        let mut rc = cfg.route;
        rc.parallelism = par;
        g.bench_function(name, |b| b.iter(|| Router::new(&request, &rc).route()));
    }
    // budget-checkpoint overhead: the identical parallel route inside
    // an active BudgetScope whose caps never fire, so every rip-up
    // iteration pays the checkpoint probe. Compare `budgeted` against
    // `parallel` in BENCH_route.json — the delta is the cooperative-
    // checkpoint tax on the route stage (well under 1%).
    {
        let mut rc = cfg.route;
        rc.parallelism = Parallelism::default();
        let budget = macro3d::FlowBudget::unlimited().with_cap("route/iterations", u64::MAX);
        g.bench_function("budgeted", |b| {
            b.iter(|| {
                let scope = macro3d_par::BudgetScope::begin(&budget, None);
                let routed = Router::new(&request, &rc).route();
                let report = scope.finish();
                (routed, report)
            })
        });
    }
    // the incremental path a DSE loop would take: a live session
    // absorbing a 1%-of-nets perturbation (pins shifted one GCell)
    // without re-routing the rest of the design
    let perturbed: Vec<_> = nets
        .iter()
        .step_by(100)
        .map(|(id, pins)| {
            let shift = Point::from_um(cfg.route.gcell_um, 0.0) - Point::ORIGIN;
            let moved = pins
                .iter()
                .map(|&(p, l)| ((p + shift).min(die.hi).max(die.lo), l))
                .collect();
            (*id, moved)
        })
        .collect();
    let mut session = Router::new(&request, &cfg.route);
    session.route();
    g.bench_function("incremental", |b| b.iter(|| session.update(&perturbed)));
    g.finish();

    // per-stage wall-clock of one full Macro-3D run on the same tile
    let stage_times = Macro3d.run(&tile, &cfg).implemented.stage_times;
    if smoke() {
        // the CI smoke run validates shape, not numbers: write to
        // target/ so the tracked BENCH_route.json keeps real samples
        write_route_json(c, &stage_times, "target/BENCH_route_smoke.json");
    } else {
        write_route_json(c, &stage_times, "BENCH_route.json");
    }
}

/// The JSON dumps live at the workspace root regardless of the bench
/// binary's working directory.
fn bench_json_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

/// The host header every bench JSON dump starts with: schema stamp,
/// physical CPU budget and the thread count `Parallelism::default()`
/// resolves to.
fn push_host_header(s: &mut String) {
    use std::fmt::Write as _;
    let _ = writeln!(s, "  \"schema_version\": {},", macro3d_dse::SCHEMA_VERSION);
    let _ = writeln!(
        s,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(
        s,
        "  \"effective_threads\": {},",
        Parallelism::default().effective_threads()
    );
}

/// Writes the route JSON dump (`BENCH_route.json`, or a target/ copy
/// in smoke mode): the route_parallelism measurements and the flow's
/// per-stage seconds.
fn write_route_json(c: &Criterion, stages: &macro3d::StageTimes, name: &str) {
    use std::fmt::Write as _;
    let mut s = String::from("{\n");
    push_host_header(&mut s);
    s.push_str("  \"route\": [\n");
    let route: Vec<_> = c
        .measurements()
        .iter()
        .filter(|m| m.id.starts_with("route_parallelism/"))
        .collect();
    for (k, m) in route.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"id\": \"{}\", \"samples\": {}, \"min_s\": {:.6}, \"mean_s\": {:.6}, \"max_s\": {:.6}}}{}",
            m.id,
            m.samples,
            m.min.as_secs_f64(),
            m.mean.as_secs_f64(),
            m.max.as_secs_f64(),
            if k + 1 < route.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n  \"macro3d_stage_seconds\": [\n");
    for (k, (stage, secs)) in stages.stages.iter().enumerate() {
        let _ = writeln!(
            s,
            "    [\"{stage}\", {secs:.6}]{}",
            if k + 1 < stages.stages.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n}\n");
    let path = bench_json_path(name);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &s) {
        Ok(()) => eprintln!("wrote {name}"),
        Err(e) => eprintln!("could not write {name}: {e}"),
    }
}

/// Serial vs fork-join `global_place` on the large-cache tile — for
/// *both* backends (bisection and the analytical electrostatic
/// placer) — plus the analytical-vs-bisection HPWL comparison on the
/// Table-1 small-cache tile and the build-cache cold/warm setup
/// comparison, dumped to `BENCH_place.json`.
fn bench_place_parallelism(c: &mut Criterion) {
    if !bench_enabled("place_parallelism") {
        return;
    }
    let cfg = macro3d::FlowConfig::default();
    let tile_cfg = TileConfig::large_cache().with_scale(if smoke() { 64.0 } else { 12.0 });
    let tile = generate_tile(&tile_cfg);
    let (fp, ports) = mol_bench_floorplan(&tile, &cfg, 2.0);

    let mut g = c.benchmark_group("place_parallelism");
    g.sample_size(if smoke() { 2 } else { 5 });
    for (name, threads, backend) in [
        ("serial", 1, PlacerBackend::Bisection),
        ("parallel8", 8, PlacerBackend::Bisection),
        ("analytical_serial", 1, PlacerBackend::Analytical),
        ("analytical_parallel", 8, PlacerBackend::Analytical),
    ] {
        let pcfg = GlobalPlaceConfig {
            parallelism: Parallelism::threads(threads),
            backend,
            ..GlobalPlaceConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| global_place(&tile.design, &fp, &ports, &pcfg))
        });
    }
    g.finish();

    // QoR: legalized HPWL of both backends on the Table-1 small-cache
    // tile (each backend goes through its own legalizer, exactly like
    // the flow's place pipeline)
    let qor_tile =
        generate_tile(&TileConfig::small_cache().with_scale(if smoke() { 64.0 } else { 16.0 }));
    let (qfp, qports) = mol_bench_floorplan(&qor_tile, &cfg, 2.0);
    let hpwl_um_of = |backend: PlacerBackend| {
        let pcfg = GlobalPlaceConfig {
            backend,
            ..GlobalPlaceConfig::default()
        };
        let mut p = global_place(&qor_tile.design, &qfp, &qports, &pcfg);
        let movable: Vec<_> = qor_tile
            .design
            .inst_ids()
            .filter(|&i| !qor_tile.design.is_macro(i))
            .collect();
        match backend {
            PlacerBackend::Bisection => legalize(&qor_tile.design, &qfp, &mut p, &movable),
            PlacerBackend::Analytical => legalize_abacus(&qor_tile.design, &qfp, &mut p, &movable),
        };
        total_hpwl(&qor_tile.design, &p, &qports).to_um()
    };
    let hpwl_bisection = hpwl_um_of(PlacerBackend::Bisection);
    let hpwl_analytical = hpwl_um_of(PlacerBackend::Analytical);

    let (cold_s, warm_s) = time_flow_setup(&tile_cfg, &cfg);
    if smoke() {
        // shape-validation copy for CI; the tracked BENCH_place.json
        // keeps real samples
        write_place_json(
            c,
            cold_s,
            warm_s,
            hpwl_bisection,
            hpwl_analytical,
            "target/BENCH_place_smoke.json",
        );
    } else {
        write_place_json(
            c,
            cold_s,
            warm_s,
            hpwl_bisection,
            hpwl_analytical,
            "BENCH_place.json",
        );
    }
}

/// Times the shared `standard_flows()` setup artifacts (tile netlist,
/// stacks, combined BEOL, MoL floorplan seed) built cold (empty
/// cache) and then warm (all hits).
fn time_flow_setup(tile_cfg: &TileConfig, cfg: &macro3d::FlowConfig) -> (f64, f64) {
    use macro3d::build_cache::{
        cached_combined_beol, cached_mol_floorplan, cached_stack, cached_tile, global,
    };
    let build_all = |tile_cfg: &TileConfig| {
        let tile = cached_tile(tile_cfg);
        let _ = cached_stack(cfg.logic_metals, DieRole::Logic);
        let _ = cached_stack(cfg.macro_metals, DieRole::Macro);
        let _ = cached_combined_beol(cfg.logic_metals, cfg.macro_metals);
        let budget = macro3d::flow::area_budget(&tile.design, cfg);
        let lib = tile.design.library().clone();
        let die = macro3d_place::floorplan::die_for_area(
            budget.a3d_um2,
            1.0,
            lib.row_height(),
            lib.site_width(),
        );
        let _ = cached_mol_floorplan(
            &tile.design,
            die,
            Dbu::from_um(cfg.halo_um),
            cfg.util_macro,
            cfg.halo_um,
        );
    };
    global().clear();
    let t0 = std::time::Instant::now();
    build_all(tile_cfg);
    let cold = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    build_all(tile_cfg);
    let warm = t1.elapsed().as_secs_f64();
    (cold, warm)
}

/// Writes the place JSON dump (`BENCH_place.json`, or a target/ copy
/// in smoke mode): per-backend serial/parallel global_place seconds,
/// the measured speedups, the analytical-vs-bisection legalized HPWL
/// on the Table-1 tile, and the build-cache setup comparison.
fn write_place_json(
    c: &Criterion,
    cold_s: f64,
    warm_s: f64,
    hpwl_bisection_um: f64,
    hpwl_analytical_um: f64,
    name: &str,
) {
    use std::fmt::Write as _;
    let place: Vec<_> = c
        .measurements()
        .iter()
        .filter(|m| m.id.starts_with("place_parallelism/"))
        .collect();
    let mean_of = |suffix: &str| {
        place
            .iter()
            .find(|m| m.id.ends_with(suffix))
            .map(|m| m.mean.as_secs_f64())
    };
    let mut s = String::from("{\n");
    push_host_header(&mut s);
    s.push_str("  \"place\": [\n");
    for (k, m) in place.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"id\": \"{}\", \"samples\": {}, \"min_s\": {:.6}, \"mean_s\": {:.6}, \"max_s\": {:.6}}}{}",
            m.id,
            m.samples,
            m.min.as_secs_f64(),
            m.mean.as_secs_f64(),
            m.max.as_secs_f64(),
            if k + 1 < place.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    if let (Some(serial), Some(par)) = (mean_of("/serial"), mean_of("/parallel8")) {
        let _ = writeln!(s, "  \"speedup_8t\": {:.3},", serial / par.max(1e-12));
    }
    if let (Some(serial), Some(par)) = (
        mean_of("/analytical_serial"),
        mean_of("/analytical_parallel"),
    ) {
        let _ = writeln!(
            s,
            "  \"analytical_speedup_8t\": {:.3},",
            serial / par.max(1e-12)
        );
    }
    let _ = writeln!(s, "  \"hpwl_bisection_um\": {hpwl_bisection_um:.3},");
    let _ = writeln!(s, "  \"hpwl_analytical_um\": {hpwl_analytical_um:.3},");
    let _ = writeln!(
        s,
        "  \"hpwl_ratio\": {:.4},",
        hpwl_analytical_um / hpwl_bisection_um.max(1e-12)
    );
    let _ = writeln!(s, "  \"setup_cold_s\": {cold_s:.6},");
    let _ = writeln!(s, "  \"setup_warm_s\": {warm_s:.6},");
    let _ = writeln!(s, "  \"setup_speedup\": {:.1}", cold_s / warm_s.max(1e-12));
    s.push_str("}\n");
    let path = bench_json_path(name);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &s) {
        Ok(()) => eprintln!("wrote {name}"),
        Err(e) => eprintln!("could not write {name}: {e}"),
    }
}

/// Synthetic per-net parasitics for the STA benches: deterministic
/// pseudo-random Elmore/caps so the timing graph has realistic spread
/// without running place/route/extract.
fn synthetic_parasitics(design: &macro3d_netlist::Design) -> Vec<macro3d_extract::NetParasitics> {
    let mut x = 11u64;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        (x >> 33) as f64 / (1u64 << 31) as f64
    };
    design
        .net_ids()
        .map(|n| {
            let sinks = design.sinks(n).count();
            let base = 40.0 * next();
            macro3d_extract::NetParasitics {
                wire_cap_ff: 1.0 + 3.0 * next(),
                total_res_ohm: 30.0 + 90.0 * next(),
                elmore_ps: (0..sinks).map(|s| base + s as f64 * 5.0 * next()).collect(),
                driver_load_ff: 2.0 + 4.0 * next(),
            }
        })
        .collect()
}

/// Probe vs parametric sign-off analysis, and the cold vs incremental
/// sizing loop, on the small-cache tile. Dumps `BENCH_sta.json`.
fn bench_sta_parallelism(c: &mut Criterion) {
    use macro3d_sta::{
        analyze_with, apply_sizing_to_parasitics, upsize_critical_path, ClockArrivals, StaInput,
        StaMode, StaSession,
    };

    if !bench_enabled("sta_parallelism") {
        return;
    }
    let tile =
        generate_tile(&TileConfig::small_cache().with_scale(if smoke() { 64.0 } else { 16.0 }));
    let constraints = macro3d::flow::sta_constraints(&tile);
    let design = tile.design;
    let parasitics = synthetic_parasitics(&design);
    let clock = ClockArrivals::ideal(&design);
    let par = Parallelism::default();
    fn input<'a>(
        d: &'a macro3d_netlist::Design,
        p: &'a [macro3d_extract::NetParasitics],
        constraints: &'a macro3d_sta::StaConstraints,
        clock: &'a ClockArrivals,
    ) -> StaInput<'a> {
        StaInput {
            design: d,
            parasitics: p,
            routed: None,
            constraints,
            clock,
            corner: macro3d_tech::Corner::Ss,
        }
    }

    let mut g = c.benchmark_group("sta_parallelism");
    g.sample_size(if smoke() { 2 } else { 10 });
    g.bench_function("analyze_probe", |b| {
        b.iter(|| {
            analyze_with(
                &StaInput {
                    design: &design,
                    parasitics: &parasitics,
                    routed: None,
                    constraints: &constraints,
                    clock: &clock,
                    corner: macro3d_tech::Corner::Ss,
                },
                &par,
                StaMode::Probe,
            )
        })
    });
    g.bench_function("analyze_parametric", |b| {
        b.iter(|| {
            analyze_with(
                &StaInput {
                    design: &design,
                    parasitics: &parasitics,
                    routed: None,
                    constraints: &constraints,
                    clock: &clock,
                    corner: macro3d_tech::Corner::Ss,
                },
                &par,
                StaMode::Parametric,
            )
        })
    });
    g.finish();

    // the sizing loop mutates design + parasitics: time whole loops on
    // fresh clones instead of criterion iterations
    let rounds = 8usize;
    let run_probe = || {
        let mut d = design.clone();
        let mut p = parasitics.clone();
        let t0 = std::time::Instant::now();
        let mut timing = analyze_with(&input(&d, &p, &constraints, &clock), &par, StaMode::Probe);
        for _ in 0..rounds {
            let changes = upsize_critical_path(&mut d, &timing);
            if changes.is_empty() {
                break;
            }
            apply_sizing_to_parasitics(&d, &changes, &mut p);
            timing = analyze_with(&input(&d, &p, &constraints, &clock), &par, StaMode::Probe);
        }
        (t0.elapsed().as_secs_f64(), timing.min_period_ps)
    };
    let run_incremental = || {
        let mut d = design.clone();
        let mut p = parasitics.clone();
        let t0 = std::time::Instant::now();
        let mut session = StaSession::new(&input(&d, &p, &constraints, &clock));
        let mut timing = session.analyze(&input(&d, &p, &constraints, &clock), &par);
        for _ in 0..rounds {
            let changes = upsize_critical_path(&mut d, &timing);
            if changes.is_empty() {
                break;
            }
            let touched = apply_sizing_to_parasitics(&d, &changes, &mut p);
            timing = session.update(&input(&d, &p, &constraints, &clock), &touched, &par);
        }
        (t0.elapsed().as_secs_f64(), timing.min_period_ps)
    };
    let (probe_loop_s, probe_period) = run_probe();
    let (incr_loop_s, incr_period) = run_incremental();
    assert!(
        (probe_period - incr_period).abs() <= 2.0 * macro3d_sta::PROBE_RESOLUTION_PS,
        "sizing loops diverged: probe {probe_period} vs incremental {incr_period}"
    );

    if smoke() {
        eprintln!(
            "smoke mode: not overwriting BENCH_sta.json \
             (sizing loop probe {probe_loop_s:.3}s / incremental {incr_loop_s:.3}s)"
        );
    } else {
        write_sta_json(c, probe_loop_s, incr_loop_s, probe_period);
    }
}

/// Writes `BENCH_sta.json`: probe vs parametric single-analysis
/// measurements, the full sizing-loop comparison, and the speedups.
fn write_sta_json(c: &Criterion, probe_loop_s: f64, incr_loop_s: f64, period_ps: f64) {
    use std::fmt::Write as _;
    let sta: Vec<_> = c
        .measurements()
        .iter()
        .filter(|m| m.id.starts_with("sta_parallelism/"))
        .collect();
    let mean_of = |suffix: &str| {
        sta.iter()
            .find(|m| m.id.ends_with(suffix))
            .map(|m| m.mean.as_secs_f64())
    };
    let mut s = String::from("{\n");
    push_host_header(&mut s);
    s.push_str("  \"analyze\": [\n");
    for (k, m) in sta.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"id\": \"{}\", \"samples\": {}, \"min_s\": {:.6}, \"mean_s\": {:.6}, \"max_s\": {:.6}}}{}",
            m.id,
            m.samples,
            m.min.as_secs_f64(),
            m.mean.as_secs_f64(),
            m.max.as_secs_f64(),
            if k + 1 < sta.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    if let (Some(probe), Some(param)) = (mean_of("/analyze_probe"), mean_of("/analyze_parametric"))
    {
        let _ = writeln!(s, "  \"analyze_speedup\": {:.3},", probe / param.max(1e-12));
    }
    let _ = writeln!(s, "  \"sizing_loop_probe_s\": {probe_loop_s:.6},");
    let _ = writeln!(s, "  \"sizing_loop_incremental_s\": {incr_loop_s:.6},");
    let _ = writeln!(
        s,
        "  \"sizing_loop_speedup\": {:.3},",
        probe_loop_s / incr_loop_s.max(1e-12)
    );
    let _ = writeln!(s, "  \"min_period_ps\": {period_ps:.3}");
    s.push_str("}\n");
    match std::fs::write(bench_json_path("BENCH_sta.json"), &s) {
        Ok(()) => eprintln!("wrote BENCH_sta.json"),
        Err(e) => eprintln!("could not write BENCH_sta.json: {e}"),
    }
}

/// Cold-vs-warm throughput of the DSE job service over a small sweep.
/// Not a sampled criterion measurement: one cold pass against a fresh
/// persisted cache and one warm pass from a fresh service over the
/// same cache directory — the interesting numbers are jobs/sec at
/// each temperature and the persisted-cache speedup. Asserts the
/// determinism contract (cold and warm fingerprints bit-identical)
/// while it is at it.
fn bench_dse_service(_c: &mut Criterion) {
    if !bench_enabled("dse_service") {
        return;
    }
    use macro3d_dse::sweep::{run_sweep, SweepAxis, SweepSpec};
    use macro3d_dse::{DseConfig, DseService, DseStats, JobSpec, SweepOutcome};

    let cache_dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("bench_dse_cache");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut base = JobSpec::new("Macro-3D", TileConfig::mini());
    base.config.sizing_rounds = 1;
    base.config.route.iterations = 1;
    let sweep = SweepSpec {
        base,
        axes: vec![
            SweepAxis::new("macro_metals", &["4", "6"]),
            SweepAxis::new("util_logic", &["0.55", "0.65"]),
        ],
    };

    let pass = || -> (SweepOutcome, DseStats, usize) {
        let service = DseService::start(DseConfig {
            workers: 0,
            cache_dir: Some(cache_dir.clone()),
            ..DseConfig::default()
        })
        .expect("dse service start");
        let workers = service.workers();
        let outcome = run_sweep(&service.client(), &sweep, |_| {}).expect("dse sweep");
        let stats = service.client().stats();
        service.shutdown();
        (outcome, stats, workers)
    };
    let cold = pass();
    let warm = pass();

    let fingerprints = |o: &SweepOutcome| -> Vec<Option<u64>> {
        o.points
            .iter()
            .map(|p| p.ok().map(|r| macro3d::jsonio::ppa_fingerprint(&r.ppa)))
            .collect()
    };
    let identical = fingerprints(&cold.0) == fingerprints(&warm.0);
    assert!(identical, "cold and warm sweep fingerprints diverged");
    assert!(warm.1.cache.hits > 0, "warm pass saw no cache hits");

    // --- stage-graph prefix reuse (DESIGN.md §17) ------------------
    // A sweep varying only the STA-stage knob shares its whole
    // floorplan/place/route/extract prefix, so every point after the
    // first re-enters the flow at the STA stage on one worker. The
    // scratch pass (stage reuse off) gives the per-point cold
    // baseline; per-point speedup is warm wall vs cold wall of the
    // *same* point, and fingerprints must match bit-exactly.
    let mut reuse_base = JobSpec::new("Macro-3D", TileConfig::mini());
    reuse_base.config.sizing_rounds = 1;
    let rounds: &[&str] = if smoke() {
        &["0", "1"]
    } else {
        &["0", "1", "2", "3"]
    };
    let reuse_sweep = SweepSpec {
        base: reuse_base,
        axes: vec![SweepAxis::new("sizing_rounds", rounds)],
    };
    let reuse_pass = |stage_reuse: bool| -> (SweepOutcome, DseStats) {
        let service = DseService::start(DseConfig {
            workers: 1,
            stage_reuse,
            ..DseConfig::default()
        })
        .expect("dse service start");
        let outcome = run_sweep(&service.client(), &reuse_sweep, |_| {}).expect("reuse sweep");
        let stats = service.client().stats();
        service.shutdown();
        (outcome, stats)
    };
    let scratch = reuse_pass(false);
    let reused = reuse_pass(true);
    assert_eq!(
        fingerprints(&scratch.0),
        fingerprints(&reused.0),
        "stage-reuse fingerprints diverged from the scratch run"
    );
    let depths: Vec<usize> = reused
        .0
        .points
        .iter()
        .map(|p| p.ok().map_or(0, |r| r.reuse_depth))
        .collect();
    assert!(
        depths.contains(&4),
        "an STA-only sweep must re-enter at the STA stage, got {depths:?}"
    );
    // per-point speedup over the reused points only
    let speedups: Vec<f64> = reused
        .0
        .points
        .iter()
        .zip(&scratch.0.points)
        .filter(|(r, _)| r.ok().is_some_and(|r| r.reuse_depth > 0))
        .filter_map(|(r, s)| {
            let (r, s) = (r.ok()?, s.ok()?);
            (r.wall_s > 0.0).then(|| s.wall_s / r.wall_s)
        })
        .collect();
    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    if !smoke() {
        assert!(
            min_speedup >= 3.0,
            "prefix reuse must be >= 3x faster per reused point, got {speedups:?}"
        );
    }
    write_dse_json(
        &cold,
        &warm,
        identical,
        &ReuseReport {
            depths,
            speedups,
            scratch_s: scratch.0.wall_s,
            reused_s: reused.0.wall_s,
            stage_hits: reused.1.stage_hits,
        },
    );
}

/// The stage-reuse experiment's numbers for `BENCH_dse.json`.
struct ReuseReport {
    depths: Vec<usize>,
    speedups: Vec<f64>,
    scratch_s: f64,
    reused_s: f64,
    stage_hits: u64,
}

/// Writes `BENCH_dse.json` (or a target/ copy in smoke mode): service
/// throughput cold vs warm, same shape as `dse_sweep --bench-out`.
fn write_dse_json(
    cold: &(macro3d_dse::SweepOutcome, macro3d_dse::DseStats, usize),
    warm: &(macro3d_dse::SweepOutcome, macro3d_dse::DseStats, usize),
    identical: bool,
    reuse: &ReuseReport,
) {
    use macro3d_json::Json;
    let points = cold.0.points.len();
    let (cold_s, warm_s) = (cold.0.wall_s, warm.0.wall_s);
    let per_s = |n: usize, s: f64| if s > 0.0 { n as f64 / s } else { f64::NAN };
    let json = Json::obj()
        .field(
            "schema_version",
            Json::from_u64(macro3d_dse::SCHEMA_VERSION),
        )
        .field("bench", Json::str("dse_service"))
        .field("crate_version", Json::str(macro3d_dse::crate_version()))
        .field(
            "host_cpus",
            Json::from_usize(std::thread::available_parallelism().map_or(1, |n| n.get())),
        )
        .field("effective_threads", Json::from_usize(cold.2))
        .field("points", Json::from_usize(points))
        .field("cold_s", Json::from_f64(cold_s))
        .field("warm_s", Json::from_f64(warm_s))
        .field(
            "speedup",
            Json::from_f64(if warm_s > 0.0 {
                cold_s / warm_s
            } else {
                f64::NAN
            }),
        )
        .field("cold_jobs_per_s", Json::from_f64(per_s(points, cold_s)))
        .field("warm_jobs_per_s", Json::from_f64(per_s(points, warm_s)))
        .field("cold_flows_executed", Json::from_u64(cold.1.flows_executed))
        .field("warm_flows_executed", Json::from_u64(warm.1.flows_executed))
        .field("warm_cache_hits", Json::from_u64(warm.1.cache.hits))
        .field("warm_disk_hits", Json::from_u64(warm.1.cache.disk_hits))
        .field("fingerprints_identical", Json::Bool(identical))
        .field(
            "reuse_depths",
            Json::Arr(reuse.depths.iter().map(|&d| Json::from_usize(d)).collect()),
        )
        .field(
            "reuse_point_speedups",
            Json::Arr(reuse.speedups.iter().map(|&s| Json::from_f64(s)).collect()),
        )
        .field("reuse_min_point_speedup", {
            let min = reuse.speedups.iter().copied().fold(f64::INFINITY, f64::min);
            Json::from_f64(if min.is_finite() { min } else { 0.0 })
        })
        .field("reuse_scratch_s", Json::from_f64(reuse.scratch_s))
        .field("reuse_warm_s", Json::from_f64(reuse.reused_s))
        .field("reuse_stage_hits", Json::from_u64(reuse.stage_hits))
        .field("reuse_fingerprints_identical", Json::Bool(true));
    let name = if smoke() {
        "target/BENCH_dse_smoke.json"
    } else {
        "BENCH_dse.json"
    };
    let mut text = json.emit();
    text.push('\n');
    match std::fs::write(bench_json_path(name), text) {
        Ok(()) => eprintln!("wrote {name}"),
        Err(e) => eprintln!("could not write {name}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_tile_generation,
    bench_global_place,
    bench_router,
    bench_route_parallelism,
    bench_place_parallelism,
    bench_sta_parallelism,
    bench_dse_service
);
criterion_main!(benches);
