//! Criterion benches of the individual engines (scaling behaviour),
//! including the serial-vs-parallel router comparison. The router
//! comparison also writes `BENCH_route.json` (measurements plus the
//! Macro-3D flow's per-stage wall-clock) for offline tracking.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use macro3d::flows::{Flow, Macro3d};
use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::NetId;
use macro3d_place::{global_place, Floorplan, GlobalPlaceConfig, PortPlan};
use macro3d_route::{route_design, Parallelism, RouteConfig};
use macro3d_soc::{generate_tile, TileConfig};
use macro3d_tech::stack::{n28_stack, DieRole};

fn bench_tile_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlist_generation");
    g.sample_size(10);
    for scale in [64.0, 32.0, 16.0] {
        g.bench_with_input(
            BenchmarkId::new("small_cache", scale as u64),
            &scale,
            |b, &s| b.iter(|| generate_tile(&TileConfig::small_cache().with_scale(s))),
        );
    }
    g.finish();
}

fn bench_global_place(c: &mut Criterion) {
    let tile = generate_tile(&TileConfig::small_cache().with_scale(64.0));
    let lib = tile.design.library().clone();
    let fp = Floorplan::new(
        Rect::from_um(0.0, 0.0, 1_000.0, 1_000.0),
        lib.row_height(),
        lib.site_width(),
    );
    let ports = PortPlan::assign(&tile.design, fp.die());
    let mut g = c.benchmark_group("place");
    g.sample_size(10);
    g.bench_function("global_place_small48", |b| {
        b.iter(|| global_place(&tile.design, &fp, &ports, &GlobalPlaceConfig::default()))
    });
    g.finish();
}

fn bench_router(c: &mut Criterion) {
    let stack = n28_stack(6, DieRole::Logic);
    let die = Rect::from_um(0.0, 0.0, 500.0, 500.0);
    // a synthetic net set: 2000 random two-pin nets
    let mut nets = Vec::new();
    let mut x = 7u64;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((x >> 33) % 500) as f64
    };
    for i in 0..2_000u32 {
        nets.push((
            NetId(i),
            vec![
                (Point::from_um(next(), next()), 0u16),
                (Point::from_um(next(), next()), 0u16),
            ],
        ));
    }
    let mut g = c.benchmark_group("route");
    g.sample_size(10);
    g.bench_function("global_route_2k_nets", |b| {
        b.iter(|| route_design(die, &stack, &[], &nets, 2_000, &RouteConfig::default()))
    });
    g.finish();
    let _ = Dbu(0);
}

/// Serial vs batched-parallel `route_design` on the large-cache tile
/// (the macro-heavy configuration with the most routing work), plus a
/// JSON dump for offline comparison.
fn bench_route_parallelism(c: &mut Criterion) {
    let cfg = macro3d::FlowConfig::default();
    let tile = generate_tile(&TileConfig::large_cache().with_scale(64.0));
    let lib = tile.design.library().clone();

    // a quick standalone floorplan + global placement supplies
    // realistic pin locations without the full flow
    let budget = macro3d::flow::area_budget(&tile.design, &cfg);
    let die = macro3d_place::floorplan::die_for_area(
        2.0 * budget.a3d_um2,
        1.0,
        lib.row_height(),
        lib.site_width(),
    );
    let fp = Floorplan::new(die, lib.row_height(), lib.site_width());
    let ports = PortPlan::assign(&tile.design, die);
    let placement = global_place(&tile.design, &fp, &ports, &GlobalPlaceConfig::default());
    let stack = n28_stack(cfg.logic_metals, DieRole::Logic);
    let nets = macro3d::flow::route_pins(
        &tile.design,
        &placement,
        &ports,
        cfg.logic_metals,
        stack.num_layers(),
        false,
    );

    let mut g = c.benchmark_group("route_parallelism");
    g.sample_size(5);
    for (name, par) in [
        ("serial", Parallelism::serial()),
        ("parallel", Parallelism::default()),
    ] {
        let mut rc = cfg.route;
        rc.parallelism = par;
        g.bench_function(name, |b| {
            b.iter(|| route_design(die, &stack, &[], &nets, tile.design.num_nets(), &rc))
        });
    }
    g.finish();

    // per-stage wall-clock of one full Macro-3D run on the same tile
    let stage_times = Macro3d.run(&tile, &cfg).implemented.stage_times;
    write_route_json(c, &stage_times);
}

/// Writes `BENCH_route.json`: the route_parallelism measurements and
/// the flow's per-stage seconds.
fn write_route_json(c: &Criterion, stages: &macro3d::StageTimes) {
    use std::fmt::Write as _;
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"effective_threads\": {},",
        Parallelism::default().effective_threads()
    );
    s.push_str("  \"route\": [\n");
    let route: Vec<_> = c
        .measurements()
        .iter()
        .filter(|m| m.id.starts_with("route_parallelism/"))
        .collect();
    for (k, m) in route.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"id\": \"{}\", \"samples\": {}, \"min_s\": {:.6}, \"mean_s\": {:.6}, \"max_s\": {:.6}}}{}",
            m.id,
            m.samples,
            m.min.as_secs_f64(),
            m.mean.as_secs_f64(),
            m.max.as_secs_f64(),
            if k + 1 < route.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n  \"macro3d_stage_seconds\": [\n");
    for (k, (stage, secs)) in stages.stages.iter().enumerate() {
        let _ = writeln!(
            s,
            "    [\"{stage}\", {secs:.6}]{}",
            if k + 1 < stages.stages.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n}\n");
    match std::fs::write("BENCH_route.json", &s) {
        Ok(()) => eprintln!("wrote BENCH_route.json"),
        Err(e) => eprintln!("could not write BENCH_route.json: {e}"),
    }
}

criterion_group!(
    benches,
    bench_tile_generation,
    bench_global_place,
    bench_router,
    bench_route_parallelism
);
criterion_main!(benches);
