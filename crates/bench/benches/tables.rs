//! Criterion benches of the table experiments (scaled down so a bench
//! run finishes in minutes).
use criterion::{criterion_group, criterion_main, Criterion};
use macro3d::experiments::ExperimentConfig;
use macro3d::flows::{standard_flows, Flow, Macro3d};
use macro3d::FlowConfig;
use macro3d_soc::{generate_tile, TileConfig};

fn bench_cfg() -> ExperimentConfig {
    ExperimentConfig {
        scale: 64.0,
        flow: FlowConfig::default(),
    }
}

fn bench_table1_flows(c: &mut Criterion) {
    let cfg = bench_cfg();
    let tile = generate_tile(&TileConfig::small_cache().with_scale(cfg.scale));
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    // 2D, MoL S2D and Macro-3D columns through the unified Flow trait
    for flow in standard_flows() {
        if flow.name() == "BF S2D" {
            continue; // near-identical cost to MoL S2D
        }
        g.bench_function(flow.name(), |b| b.iter(|| flow.run(&tile, &cfg.flow)));
    }
    g.finish();
}

fn bench_figure_rendering(c: &mut Criterion) {
    // Figs. 4-6 artefacts: time the layout export on an implemented
    // design (the flow run happens once in setup).
    let cfg = bench_cfg();
    let tile = generate_tile(&TileConfig::small_cache().with_scale(cfg.scale));
    let imp = Macro3d.run(&tile, &cfg.flow).implemented;
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig4_floorplan_svg", |b| {
        b.iter(|| {
            let macros: Vec<_> = imp
                .fp
                .macros
                .iter()
                .map(|mp| (mp.inst, mp.rect, mp.die))
                .collect();
            macro3d::layout::svg_floorplan(&imp.design, imp.fp.die(), &macros)
        })
    });
    g.bench_function("fig6_die_separation_svg", |b| {
        b.iter(|| {
            let (logic, upper) = macro3d::layout::separate(&imp);
            (
                macro3d::layout::svg_layout(&logic),
                macro3d::layout::svg_layout(&upper),
            )
        })
    });
    g.finish();
}

fn bench_table3_variant(c: &mut Criterion) {
    let cfg = bench_cfg();
    let tile = generate_tile(&TileConfig::small_cache().with_scale(cfg.scale));
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    let mut f64_ = cfg.flow.clone();
    f64_.macro_metals = 4;
    g.bench_function("macro3d_m6m4", |b| b.iter(|| Macro3d.run(&tile, &f64_)));
    g.finish();
}

criterion_group!(
    benches,
    bench_table1_flows,
    bench_table3_variant,
    bench_figure_rendering
);
criterion_main!(benches);
