//! Property-based tests for the netlist substrate.

use macro3d_netlist::rent::{generate_logic, LogicIo, LogicSpec};
use macro3d_netlist::traverse::topo_order;
use macro3d_netlist::{Design, NetId, PinRef};
use macro3d_tech::{libgen::n28_library, PinDir};
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::Arc;

fn module(gates: usize, seed: u64, ff: f64, max_depth: u32) -> Design {
    let lib = Arc::new(n28_library(1.0));
    let mut d = Design::new("m", lib);
    let clk_p = d.add_port("clk", PinDir::Input, None);
    let clk = d.add_net("clk");
    d.connect(clk, PinRef::Port(clk_p));
    let ext: Vec<NetId> = (0..8)
        .map(|i| {
            let p = d.add_port(format!("in{i}"), PinDir::Input, None);
            let n = d.add_net(format!("ext{i}"));
            d.connect(n, PinRef::Port(p));
            n
        })
        .collect();
    let drive: Vec<NetId> = (0..8).map(|i| d.add_net(format!("out{i}"))).collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut spec = LogicSpec::new("m", gates, 0);
    spec.ff_fraction = ff;
    spec.max_depth = max_depth;
    generate_logic(
        &mut d,
        &mut rng,
        &spec,
        clk,
        LogicIo {
            ext_in: &ext,
            drive: &drive,
        },
    );
    d
}

/// Longest combinational path length (in cells) over the design.
fn comb_depth(d: &Design) -> usize {
    let order = topo_order(d).expect("acyclic");
    let mut depth: std::collections::HashMap<NetId, usize> = std::collections::HashMap::new();
    let mut max_depth = 0;
    for inst in order {
        let mut input_depth = 0;
        for (p, conn) in d.inst(inst).conns.iter().enumerate() {
            let Some(net) = conn else { continue };
            if d.pin_dir(inst, p as u16) == macro3d_tech::PinDir::Input {
                input_depth = input_depth.max(*depth.get(net).unwrap_or(&0));
            }
        }
        for (p, conn) in d.inst(inst).conns.iter().enumerate() {
            let Some(net) = conn else { continue };
            if d.pin_dir(inst, p as u16) == macro3d_tech::PinDir::Output {
                depth.insert(*net, input_depth + 1);
                max_depth = max_depth.max(input_depth + 1);
            }
        }
    }
    max_depth
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generated modules always validate, stay acyclic, and respect
    /// the combinational depth bound.
    #[test]
    fn generated_modules_well_formed(
        gates in 50usize..1_500,
        seed in 0u64..1_000,
        ff in 0.05f64..0.5,
        max_depth in 4u32..24,
    ) {
        let d = module(gates, seed, ff, max_depth);
        prop_assert_eq!(d.validate(), Ok(()));
        prop_assert!(topo_order(&d).is_ok());
        let depth = comb_depth(&d);
        prop_assert!(
            depth <= max_depth as usize,
            "comb depth {depth} exceeds bound {max_depth}"
        );
    }

    /// Disconnect followed by reconnect restores net membership.
    #[test]
    fn disconnect_reconnect_roundtrip(gates in 20usize..200, seed in 0u64..100) {
        let mut d = module(gates, seed, 0.2, 16);
        // pick a net with sinks
        let net = d
            .net_ids()
            .find(|&n| d.sinks(n).count() > 0)
            .expect("some net has sinks");
        let sink = d.sinks(net).next().expect("sink exists");
        let before = d.net(net).pins.len();
        d.disconnect(net, sink);
        prop_assert_eq!(d.net(net).pins.len(), before - 1);
        d.connect(net, sink);
        prop_assert_eq!(d.net(net).pins.len(), before);
        prop_assert_eq!(d.validate(), Ok(()));
    }

    /// Generation is deterministic in (gates, seed).
    #[test]
    fn generation_deterministic(gates in 20usize..300, seed in 0u64..100) {
        let a = module(gates, seed, 0.2, 16);
        let b = module(gates, seed, 0.2, 16);
        prop_assert_eq!(a.num_insts(), b.num_insts());
        prop_assert_eq!(a.num_nets(), b.num_nets());
        for (x, y) in a.inst_ids().zip(b.inst_ids()) {
            prop_assert_eq!(a.inst(x).master, b.inst(y).master);
        }
    }
}
