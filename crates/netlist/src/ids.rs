//! Typed identifiers into a [`crate::Design`].

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Flat index for slice access.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of an instance (standard cell or macro).
    InstId,
    "i"
);
id_type!(
    /// Identifier of a net.
    NetId,
    "n"
);
id_type!(
    /// Identifier of a top-level port.
    PortId,
    "p"
);
id_type!(
    /// Identifier of a macro master (a [`macro3d_sram::MacroDef`]
    /// registered with the design).
    MacroMasterId,
    "m"
);

/// A reference to a connectable pin: either pin `pin` of an instance's
/// master, or a top-level port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PinRef {
    /// Pin `pin` (index into the master's pin list) of instance
    /// `inst`.
    Inst {
        /// The instance.
        inst: InstId,
        /// Pin index within the master definition.
        pin: u16,
    },
    /// A top-level port.
    Port(PortId),
}

impl PinRef {
    /// Convenience constructor for an instance pin.
    #[inline]
    pub fn inst(inst: InstId, pin: u16) -> PinRef {
        PinRef::Inst { inst, pin }
    }

    /// The instance, if this is an instance pin.
    #[inline]
    pub fn instance(self) -> Option<InstId> {
        match self {
            PinRef::Inst { inst, .. } => Some(inst),
            PinRef::Port(_) => None,
        }
    }
}

impl fmt::Display for PinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinRef::Inst { inst, pin } => write!(f, "{inst}.{pin}"),
            PinRef::Port(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(InstId(3).to_string(), "i3");
        assert_eq!(NetId(7).to_string(), "n7");
        assert_eq!(PinRef::inst(InstId(1), 2).to_string(), "i1.2");
        assert_eq!(PinRef::Port(PortId(4)).to_string(), "p4");
    }

    #[test]
    fn pinref_instance() {
        assert_eq!(PinRef::inst(InstId(1), 0).instance(), Some(InstId(1)));
        assert_eq!(PinRef::Port(PortId(0)).instance(), None);
    }
}
