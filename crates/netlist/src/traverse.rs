//! Combinational-graph traversal helpers.

use crate::design::{Design, Master};
use crate::ids::{InstId, NetId, PinRef};
use std::error::Error;
use std::fmt;

/// Reported when the combinational part of a design contains a cycle
/// (which would make static timing analysis impossible).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CombinationalCycle {
    /// An instance on the cycle.
    pub witness: InstId,
}

impl fmt::Display for CombinationalCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "combinational cycle through instance {}", self.witness)
    }
}

impl Error for CombinationalCycle {}

/// True if an instance breaks combinational paths (flip-flop or
/// macro — both launch/capture at clock edges).
pub fn is_timing_endpoint(design: &Design, inst: InstId) -> bool {
    match design.inst(inst).master {
        Master::Cell(c) => design.library().cell(c).is_sequential(),
        Master::Macro(_) => true,
    }
}

/// Topological order of the *combinational* instances (flip-flops and
/// macros excluded): every combinational instance appears after all
/// combinational instances that drive it.
///
/// # Errors
///
/// Returns [`CombinationalCycle`] if the combinational graph is
/// cyclic.
///
/// # Examples
///
/// ```
/// use macro3d_netlist::{Design, PinRef};
/// use macro3d_netlist::traverse::topo_order;
/// use macro3d_tech::{libgen::n28_library, CellClass};
/// use std::sync::Arc;
///
/// let lib = Arc::new(n28_library(1.0));
/// let inv = lib.smallest(CellClass::Inv).expect("inv");
/// let mut d = Design::new("chain", lib);
/// let a = d.add_cell("a", inv);
/// let b = d.add_cell("b", inv);
/// let n = d.add_net("w");
/// d.connect(n, PinRef::inst(a, 1));
/// d.connect(n, PinRef::inst(b, 0));
/// let order = topo_order(&d)?;
/// assert_eq!(order.len(), 2);
/// assert!(order.iter().position(|&i| i == a) < order.iter().position(|&i| i == b));
/// # Ok::<(), macro3d_netlist::traverse::CombinationalCycle>(())
/// ```
pub fn topo_order(design: &Design) -> Result<Vec<InstId>, CombinationalCycle> {
    let n = design.num_insts();
    let mut indegree = vec![0u32; n];
    let mut is_comb = vec![false; n];
    for id in design.inst_ids() {
        is_comb[id.index()] = !is_timing_endpoint(design, id);
    }

    // indegree = number of combinational fanin instances
    for net in design.net_ids() {
        let Some(driver) = design.driver(net) else {
            continue;
        };
        let Some(drv_inst) = driver.instance() else {
            continue;
        };
        if !is_comb[drv_inst.index()] {
            continue;
        }
        for sink in design.sinks(net) {
            if let Some(s) = sink.instance() {
                if is_comb[s.index()] {
                    indegree[s.index()] += 1;
                }
            }
        }
    }

    let mut queue: Vec<InstId> = design
        .inst_ids()
        .filter(|id| is_comb[id.index()] && indegree[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for net in output_nets(design, u) {
            for sink in design.sinks(net) {
                if let Some(s) = sink.instance() {
                    if is_comb[s.index()] {
                        indegree[s.index()] -= 1;
                        if indegree[s.index()] == 0 {
                            queue.push(s);
                        }
                    }
                }
            }
        }
        queue.truncate(queue.len());
    }

    let comb_total = is_comb.iter().filter(|&&c| c).count();
    if order.len() != comb_total {
        let witness = design
            .inst_ids()
            .find(|id| is_comb[id.index()] && indegree[id.index()] > 0)
            .unwrap_or(InstId(0));
        return Err(CombinationalCycle { witness });
    }
    Ok(order)
}

/// Nets driven by an instance's output pins.
pub fn output_nets(design: &Design, inst: InstId) -> impl Iterator<Item = NetId> + '_ {
    let conns = design.inst(inst).conns.clone();
    conns.into_iter().enumerate().filter_map(move |(p, net)| {
        let net = net?;
        if design.pin_is_driver(PinRef::inst(inst, p as u16)) {
            Some(net)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Design;
    use macro3d_tech::{libgen::n28_library, CellClass};
    use std::sync::Arc;

    #[test]
    fn cycle_is_detected() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("loop", lib);
        let a = d.add_cell("a", inv);
        let b = d.add_cell("b", inv);
        let n1 = d.add_net("n1");
        let n2 = d.add_net("n2");
        d.connect(n1, PinRef::inst(a, 1));
        d.connect(n1, PinRef::inst(b, 0));
        d.connect(n2, PinRef::inst(b, 1));
        d.connect(n2, PinRef::inst(a, 0));
        assert!(topo_order(&d).is_err());
    }

    #[test]
    fn ff_breaks_cycle() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let dff = lib.smallest(CellClass::Dff).expect("dff");
        let mut d = Design::new("reg_loop", lib);
        let a = d.add_cell("a", inv);
        let f = d.add_cell("f", dff);
        let n1 = d.add_net("n1"); // a.Y -> f.D
        let n2 = d.add_net("n2"); // f.Q -> a.A
        d.connect(n1, PinRef::inst(a, 1));
        d.connect(n1, PinRef::inst(f, 0));
        d.connect(n2, PinRef::inst(f, 2));
        d.connect(n2, PinRef::inst(a, 0));
        let order = topo_order(&d).expect("registered loop is fine");
        assert_eq!(order, vec![a]);
        assert!(is_timing_endpoint(&d, f));
        assert!(!is_timing_endpoint(&d, a));
    }

    #[test]
    fn output_nets_skips_inputs() {
        let lib = Arc::new(n28_library(1.0));
        let nand = lib.smallest(CellClass::Nand2).expect("nand");
        let mut d = Design::new("t", lib);
        let g = d.add_cell("g", nand);
        let ni = d.add_net("ni");
        let no = d.add_net("no");
        d.connect(ni, PinRef::inst(g, 0));
        d.connect(no, PinRef::inst(g, 2));
        let outs: Vec<_> = output_nets(&d, g).collect();
        assert_eq!(outs, vec![no]);
    }
}
