#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Gate-level netlist substrate for the Macro-3D reproduction.
//!
//! A [`Design`] is a flat gate-level netlist: standard-cell and macro
//! instances, single-driver nets, and top-level ports with optional
//! edge (side) constraints — everything the placement, routing and
//! timing engines need, with physical data (coordinates, tiers) kept
//! in the downstream crates.
//!
//! The [`rent`] module generates synthetic random logic with
//! Rent's-rule-like locality, which the `macro3d-soc` crate composes
//! into OpenPiton-style tile netlists.
//!
//! # Examples
//!
//! ```
//! use macro3d_netlist::{Design, PinRef};
//! use macro3d_tech::libgen::n28_library;
//! use macro3d_tech::CellClass;
//! use std::sync::Arc;
//!
//! let lib = Arc::new(n28_library(1.0));
//! let mut d = Design::new("example", lib.clone());
//! let inv = lib.smallest(CellClass::Inv).expect("INV exists");
//! let a = d.add_cell("u1", inv);
//! let b = d.add_cell("u2", inv);
//! let n = d.add_net("w1");
//! d.connect(n, PinRef::inst(a, 1)); // INV output pin
//! d.connect(n, PinRef::inst(b, 0)); // INV input pin
//! assert!(d.validate().is_err()); // u1 input & u2 output still dangle
//! ```

pub mod design;
pub mod ids;
pub mod rent;
pub mod stats;
pub mod traverse;
pub mod verilog;

pub use design::{Design, Instance, Master, Net, NetlistError, Port, Side};
pub use ids::{InstId, MacroMasterId, NetId, PinRef, PortId};
pub use rent::{LogicIo, LogicSpec, ModuleNets};
pub use stats::DesignStats;
