//! Design statistics.

use crate::design::{Design, Master};
use std::fmt;

/// Aggregate statistics of a design, as reported by synthesis logs.
///
/// # Examples
///
/// ```
/// use macro3d_netlist::{Design, DesignStats};
/// use macro3d_tech::libgen::n28_library;
/// use std::sync::Arc;
///
/// let d = Design::new("empty", Arc::new(n28_library(1.0)));
/// let s = DesignStats::compute(&d);
/// assert_eq!(s.num_cells, 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DesignStats {
    /// Standard-cell instance count.
    pub num_cells: usize,
    /// Macro instance count.
    pub num_macros: usize,
    /// Sequential cell count.
    pub num_ffs: usize,
    /// Net count.
    pub num_nets: usize,
    /// Top-level port count.
    pub num_ports: usize,
    /// Total standard-cell area, µm².
    pub cell_area_um2: f64,
    /// Total macro area, µm².
    pub macro_area_um2: f64,
    /// Mean pins per net (degree), over nets with ≥ 2 pins.
    pub avg_net_degree: f64,
    /// Largest net degree.
    pub max_net_degree: usize,
    /// Total connected pin count.
    pub num_pins: usize,
}

impl DesignStats {
    /// Computes statistics for a design.
    pub fn compute(design: &Design) -> Self {
        let mut s = DesignStats {
            num_nets: design.num_nets(),
            num_ports: design.num_ports(),
            ..DesignStats::default()
        };
        for id in design.inst_ids() {
            match design.inst(id).master {
                Master::Cell(c) => {
                    s.num_cells += 1;
                    s.cell_area_um2 += design.library().cell(c).area_um2();
                    if design.library().cell(c).is_sequential() {
                        s.num_ffs += 1;
                    }
                }
                Master::Macro(_) => {
                    s.num_macros += 1;
                    s.macro_area_um2 += design.inst_area_um2(id);
                }
            }
        }
        let mut degree_sum = 0usize;
        let mut multi = 0usize;
        for n in design.net_ids() {
            let deg = design.net(n).pins.len();
            s.num_pins += deg;
            s.max_net_degree = s.max_net_degree.max(deg);
            if deg >= 2 {
                degree_sum += deg;
                multi += 1;
            }
        }
        s.avg_net_degree = if multi > 0 {
            degree_sum as f64 / multi as f64
        } else {
            0.0
        };
        s
    }

    /// Fraction of total instance area occupied by macros. The paper
    /// motivates MoL stacking with this exceeding 50 % even for small
    /// caches.
    pub fn macro_area_fraction(&self) -> f64 {
        let total = self.cell_area_um2 + self.macro_area_um2;
        if total == 0.0 {
            0.0
        } else {
            self.macro_area_um2 / total
        }
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cells: {} (ffs: {}), macros: {}, nets: {}, ports: {}",
            self.num_cells, self.num_ffs, self.num_macros, self.num_nets, self.num_ports
        )?;
        writeln!(
            f,
            "cell area: {:.1} um2, macro area: {:.1} um2 ({:.1}% macro)",
            self.cell_area_um2,
            self.macro_area_um2,
            100.0 * self.macro_area_fraction()
        )?;
        write!(
            f,
            "avg net degree: {:.2}, max: {}, pins: {}",
            self.avg_net_degree, self.max_net_degree, self.num_pins
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PinRef;
    use macro3d_sram::MemoryCompiler;
    use macro3d_tech::{libgen::n28_library, CellClass};
    use std::sync::Arc;

    #[test]
    fn counts_and_areas() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let dff = lib.smallest(CellClass::Dff).expect("dff");
        let mut d = Design::new("t", lib.clone());
        let a = d.add_cell("a", inv);
        let f = d.add_cell("f", dff);
        let mm = d.add_macro_master(MemoryCompiler::n28().sram("s", 512, 64));
        let _ = d.add_macro_in("m0", mm, 0);
        let n = d.add_net("n");
        d.connect(n, PinRef::inst(a, 1));
        d.connect(n, PinRef::inst(f, 0));

        let s = DesignStats::compute(&d);
        assert_eq!(s.num_cells, 2);
        assert_eq!(s.num_ffs, 1);
        assert_eq!(s.num_macros, 1);
        assert_eq!(s.max_net_degree, 2);
        assert!((s.avg_net_degree - 2.0).abs() < 1e-12);
        assert!(s.macro_area_fraction() > 0.9); // one SRAM dwarfs two gates
        let shown = s.to_string();
        assert!(shown.contains("cells: 2"));
    }
}
