//! The flat netlist container.

use crate::ids::{InstId, MacroMasterId, NetId, PinRef, PortId};
use macro3d_sram::MacroDef;
use macro3d_tech::{CellLibrary, LibCellId, PinDir};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// The master definition an instance refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Master {
    /// A standard cell from the design's library.
    Cell(LibCellId),
    /// A macro master registered with the design.
    Macro(MacroMasterId),
}

/// Die edge a top-level port is constrained to — the paper aligns
/// NoC output/input pin pairs on opposite tile edges so tiles abut
/// without extra routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Top edge.
    North,
    /// Bottom edge.
    South,
    /// Right edge.
    East,
    /// Left edge.
    West,
}

impl Side {
    /// The opposite edge (where the abutting tile's matching pin
    /// sits).
    pub fn opposite(self) -> Side {
        match self {
            Side::North => Side::South,
            Side::South => Side::North,
            Side::East => Side::West,
            Side::West => Side::East,
        }
    }
}

/// An instance of a standard cell or macro.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Hierarchical instance name.
    pub name: String,
    /// Master definition.
    pub master: Master,
    /// Net connected to each master pin (`None` = unconnected).
    pub conns: Vec<Option<NetId>>,
    /// Logical group (module) tag, an index into
    /// [`Design::groups`]. Used for floorplan seeding and statistics.
    pub group: u32,
}

/// A single-driver net.
#[derive(Clone, Debug, Default)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// All connected pins (driver and sinks, in connection order).
    pub pins: Vec<PinRef>,
}

/// A top-level port.
#[derive(Clone, Debug)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction as seen from outside (an `Input` port drives
    /// internal logic).
    pub dir: PinDir,
    /// Optional edge constraint.
    pub side: Option<Side>,
    /// Connected net.
    pub net: Option<NetId>,
    /// Pairing key: ports with the same key on opposite edges must be
    /// coordinate-aligned (the paper's inter-tile pin alignment).
    pub align_key: Option<u32>,
}

/// Netlist consistency violations reported by [`Design::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A net has no driving pin.
    UndrivenNet(NetId),
    /// A net has more than one driving pin.
    MultiplyDrivenNet(NetId),
    /// An instance input pin is unconnected.
    DanglingInput(InstId, u16),
    /// A port is not connected to any net.
    DanglingPort(PortId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndrivenNet(n) => write!(f, "net {n} has no driver"),
            NetlistError::MultiplyDrivenNet(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::DanglingInput(i, p) => {
                write!(f, "input pin {p} of instance {i} is unconnected")
            }
            NetlistError::DanglingPort(p) => write!(f, "port {p} is unconnected"),
        }
    }
}

impl Error for NetlistError {}

/// A flat gate-level netlist.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Design {
    name: String,
    library: Arc<CellLibrary>,
    macro_masters: Vec<MacroDef>,
    insts: Vec<Instance>,
    nets: Vec<Net>,
    ports: Vec<Port>,
    /// Group (module) names; `insts[i].group` indexes into this.
    groups: Vec<String>,
}

impl Design {
    /// Creates an empty design over a cell library.
    pub fn new(name: impl Into<String>, library: Arc<CellLibrary>) -> Self {
        Design {
            name: name.into(),
            library,
            macro_masters: Vec::new(),
            insts: Vec::new(),
            nets: Vec::new(),
            ports: Vec::new(),
            groups: vec!["top".to_string()],
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The standard-cell library.
    pub fn library(&self) -> &Arc<CellLibrary> {
        &self.library
    }

    /// Swaps the library for a structurally identical one (same cell
    /// list, different sizing) — used by the Shrunk-2D flow, which
    /// runs its pseudo-2D stage with a 50 %-area library.
    ///
    /// # Panics
    ///
    /// Panics if the new library has a different cell count (cell ids
    /// would be invalidated).
    pub fn set_library(&mut self, library: Arc<CellLibrary>) {
        assert_eq!(
            self.library.len(),
            library.len(),
            "replacement library must be structurally identical"
        );
        self.library = library;
    }

    /// Registers a module/group name and returns its tag.
    pub fn add_group(&mut self, name: impl Into<String>) -> u32 {
        self.groups.push(name.into());
        (self.groups.len() - 1) as u32
    }

    /// Group names.
    pub fn groups(&self) -> &[String] {
        &self.groups
    }

    /// Registers a macro master.
    pub fn add_macro_master(&mut self, def: MacroDef) -> MacroMasterId {
        self.macro_masters.push(def);
        MacroMasterId((self.macro_masters.len() - 1) as u32)
    }

    /// Macro master by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn macro_master(&self, id: MacroMasterId) -> &MacroDef {
        &self.macro_masters[id.index()]
    }

    /// All macro masters.
    pub fn macro_masters(&self) -> &[MacroDef] {
        &self.macro_masters
    }

    /// Adds a standard-cell instance (in the current default group).
    pub fn add_cell(&mut self, name: impl Into<String>, cell: LibCellId) -> InstId {
        self.add_cell_in(name, cell, 0)
    }

    /// Adds a standard-cell instance in a group.
    pub fn add_cell_in(&mut self, name: impl Into<String>, cell: LibCellId, group: u32) -> InstId {
        let pins = self.library.cell(cell).pins.len();
        self.insts.push(Instance {
            name: name.into(),
            master: Master::Cell(cell),
            conns: vec![None; pins],
            group,
        });
        InstId((self.insts.len() - 1) as u32)
    }

    /// Adds a macro instance in a group.
    ///
    /// # Panics
    ///
    /// Panics if `master` is out of range.
    pub fn add_macro_in(
        &mut self,
        name: impl Into<String>,
        master: MacroMasterId,
        group: u32,
    ) -> InstId {
        let pins = self.macro_masters[master.index()].pins.len();
        self.insts.push(Instance {
            name: name.into(),
            master: Master::Macro(master),
            conns: vec![None; pins],
            group,
        });
        InstId((self.insts.len() - 1) as u32)
    }

    /// Adds a top-level port.
    pub fn add_port(&mut self, name: impl Into<String>, dir: PinDir, side: Option<Side>) -> PortId {
        self.ports.push(Port {
            name: name.into(),
            dir,
            side,
            net: None,
            align_key: None,
        });
        PortId((self.ports.len() - 1) as u32)
    }

    /// Marks two ports as an aligned pair (same coordinate on
    /// opposite edges). Assigns and returns the pairing key.
    ///
    /// # Panics
    ///
    /// Panics if either port id is out of range.
    pub fn align_ports(&mut self, a: PortId, b: PortId) -> u32 {
        let key = a.0;
        self.ports[a.index()].align_key = Some(key);
        self.ports[b.index()].align_key = Some(key);
        key
    }

    /// Adds an (initially empty) net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.nets.push(Net {
            name: name.into(),
            pins: Vec::new(),
        });
        NetId((self.nets.len() - 1) as u32)
    }

    /// Connects a pin to a net.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range, or the pin is already
    /// connected to a different net.
    pub fn connect(&mut self, net: NetId, pin: PinRef) {
        match pin {
            PinRef::Inst { inst, pin: p } => {
                let slot = &mut self.insts[inst.index()].conns[p as usize];
                assert!(
                    slot.is_none() || *slot == Some(net),
                    "pin {pin} already connected"
                );
                *slot = Some(net);
            }
            PinRef::Port(port) => {
                let slot = &mut self.ports[port.index()].net;
                assert!(
                    slot.is_none() || *slot == Some(net),
                    "port {port} already connected"
                );
                *slot = Some(net);
            }
        }
        self.nets[net.index()].pins.push(pin);
    }

    /// Disconnects a pin from its net (used by clock-tree synthesis
    /// and repeater insertion to re-home sinks onto new subnets).
    ///
    /// # Panics
    ///
    /// Panics if the pin is not connected to `net` — the asserts
    /// above guarantee the net's pin list agrees with the slot.
    #[allow(clippy::expect_used)]
    pub fn disconnect(&mut self, net: NetId, pin: PinRef) {
        match pin {
            PinRef::Inst { inst, pin: p } => {
                let slot = &mut self.insts[inst.index()].conns[p as usize];
                assert_eq!(*slot, Some(net), "pin {pin} not on net {net}");
                *slot = None;
            }
            PinRef::Port(port) => {
                let slot = &mut self.ports[port.index()].net;
                assert_eq!(*slot, Some(net), "port {port} not on net {net}");
                *slot = None;
            }
        }
        let pins = &mut self.nets[net.index()].pins;
        let pos = pins
            .iter()
            .position(|&q| q == pin)
            .expect("pin listed on net");
        pins.swap_remove(pos);
    }

    /// Number of instances.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Instance by id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn inst(&self, id: InstId) -> &Instance {
        &self.insts[id.index()]
    }

    /// Mutable instance access (used by optimization for cell
    /// resizing).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn inst_mut(&mut self, id: InstId) -> &mut Instance {
        &mut self.insts[id.index()]
    }

    /// Net by id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Port by id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Iterates over instance ids.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.insts.len() as u32).map(InstId)
    }

    /// Iterates over net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Iterates over port ids.
    pub fn port_ids(&self) -> impl Iterator<Item = PortId> {
        (0..self.ports.len() as u32).map(PortId)
    }

    /// Direction of a pin, as seen by the net: a top-level *input*
    /// port behaves as a driver (output) inside the design.
    pub fn pin_is_driver(&self, pin: PinRef) -> bool {
        match pin {
            PinRef::Inst { inst, pin: p } => self.pin_dir(inst, p) == PinDir::Output,
            PinRef::Port(port) => self.ports[port.index()].dir == PinDir::Input,
        }
    }

    /// Direction of an instance pin per its master definition.
    ///
    /// # Panics
    ///
    /// Panics if the pin index is out of range.
    pub fn pin_dir(&self, inst: InstId, pin: u16) -> PinDir {
        match self.insts[inst.index()].master {
            Master::Cell(c) => self.library.cell(c).pins[pin as usize].dir,
            Master::Macro(m) => self.macro_masters[m.index()].pins[pin as usize].dir,
        }
    }

    /// Input capacitance of a pin, fF (zero for outputs and ports).
    pub fn pin_cap(&self, pin: PinRef) -> f64 {
        match pin {
            PinRef::Inst { inst, pin: p } => match self.insts[inst.index()].master {
                Master::Cell(c) => self.library.cell(c).pins[p as usize].cap_ff,
                Master::Macro(m) => self.macro_masters[m.index()].pins[p as usize].cap_ff,
            },
            PinRef::Port(_) => 0.0,
        }
    }

    /// The driving pin of a net, if it has exactly one.
    pub fn driver(&self, net: NetId) -> Option<PinRef> {
        let mut found = None;
        for &p in &self.nets[net.index()].pins {
            if self.pin_is_driver(p) {
                if found.is_some() {
                    return None;
                }
                found = Some(p);
            }
        }
        found
    }

    /// The sink pins of a net (everything that is not a driver).
    pub fn sinks(&self, net: NetId) -> impl Iterator<Item = PinRef> + '_ {
        self.nets[net.index()]
            .pins
            .iter()
            .copied()
            .filter(move |&p| !self.pin_is_driver(p))
    }

    /// True if the instance is a macro.
    pub fn is_macro(&self, id: InstId) -> bool {
        matches!(self.insts[id.index()].master, Master::Macro(_))
    }

    /// Footprint area of an instance, µm².
    pub fn inst_area_um2(&self, id: InstId) -> f64 {
        match self.insts[id.index()].master {
            Master::Cell(c) => self.library.cell(c).area_um2(),
            Master::Macro(m) => self.macro_masters[m.index()].area_um2(),
        }
    }

    /// Checks netlist consistency; returns the first violation.
    ///
    /// # Errors
    ///
    /// See [`NetlistError`] for the reported conditions.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for id in self.net_ids() {
            let mut drivers = 0usize;
            for &p in &self.nets[id.index()].pins {
                if self.pin_is_driver(p) {
                    drivers += 1;
                }
            }
            match drivers {
                0 => return Err(NetlistError::UndrivenNet(id)),
                1 => {}
                _ => return Err(NetlistError::MultiplyDrivenNet(id)),
            }
        }
        for id in self.inst_ids() {
            let inst = &self.insts[id.index()];
            for (p, conn) in inst.conns.iter().enumerate() {
                if conn.is_none() && self.pin_dir(id, p as u16) == PinDir::Input {
                    return Err(NetlistError::DanglingInput(id, p as u16));
                }
            }
        }
        for id in self.port_ids() {
            if self.ports[id.index()].net.is_none() {
                return Err(NetlistError::DanglingPort(id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_sram::MemoryCompiler;
    use macro3d_tech::libgen::n28_library;
    use macro3d_tech::CellClass;

    fn lib() -> Arc<CellLibrary> {
        Arc::new(n28_library(1.0))
    }

    /// Builds `port_in -> INV -> port_out` plus a DFF on the same net.
    fn small_design() -> Design {
        let lib = lib();
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let dff = lib.smallest(CellClass::Dff).expect("dff");
        let mut d = Design::new("t", lib);
        let pi = d.add_port("in", PinDir::Input, Some(Side::West));
        let po = d.add_port("out", PinDir::Output, Some(Side::East));
        let pc = d.add_port("clk", PinDir::Input, None);
        let u1 = d.add_cell("u1", inv);
        let f1 = d.add_cell("f1", dff);
        let n_in = d.add_net("n_in");
        let n_mid = d.add_net("n_mid");
        let n_clk = d.add_net("n_clk");
        d.connect(n_in, PinRef::Port(pi));
        d.connect(n_in, PinRef::inst(u1, 0));
        d.connect(n_mid, PinRef::inst(u1, 1));
        d.connect(n_mid, PinRef::inst(f1, 0)); // D
        d.connect(n_clk, PinRef::Port(pc));
        d.connect(n_clk, PinRef::inst(f1, 1)); // CK
        let n_out = d.add_net("n_out");
        d.connect(n_out, PinRef::inst(f1, 2)); // Q
        d.connect(n_out, PinRef::Port(po));
        d
    }

    #[test]
    fn valid_design_passes() {
        let d = small_design();
        assert_eq!(d.validate(), Ok(()));
        assert_eq!(d.num_insts(), 2);
        assert_eq!(d.num_nets(), 4);
    }

    #[test]
    fn driver_resolution() {
        let d = small_design();
        // n_in driven by the input port
        assert_eq!(d.driver(NetId(0)), Some(PinRef::Port(PortId(0))));
        // n_mid driven by the inverter output
        assert_eq!(d.driver(NetId(1)), Some(PinRef::inst(InstId(0), 1)));
        assert_eq!(d.sinks(NetId(1)).count(), 1);
    }

    #[test]
    fn undriven_net_detected() {
        let mut d = small_design();
        let lib = d.library().clone();
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let u2 = d.add_cell("u2", inv);
        let dead = d.add_net("dead");
        d.connect(dead, PinRef::inst(u2, 0));
        // u2 input is connected but the net has no driver
        assert!(matches!(d.validate(), Err(NetlistError::UndrivenNet(_))));
    }

    #[test]
    fn multiply_driven_net_detected() {
        let mut d = small_design();
        let lib = d.library().clone();
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        // a fresh inverter whose output also drives n_in
        let u2 = d.add_cell("u2", inv);
        d.connect(NetId(0), PinRef::inst(u2, 0)); // input ties to n_in too
        d.connect(NetId(0), PinRef::inst(u2, 1)); // output contends with the port
        assert!(matches!(
            d.validate(),
            Err(NetlistError::MultiplyDrivenNet(_))
        ));
    }

    #[test]
    fn dangling_input_detected() {
        let mut d = small_design();
        let lib = d.library().clone();
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let u2 = d.add_cell("u2", inv);
        // connect only the output
        d.connect(NetId(0), PinRef::inst(u2, 1));
        let e = d.validate();
        assert!(
            matches!(e, Err(NetlistError::MultiplyDrivenNet(_)))
                || matches!(e, Err(NetlistError::DanglingInput(_, _)))
        );
    }

    #[test]
    fn macro_instances() {
        let lib = lib();
        let mut d = Design::new("t", lib);
        let def = MemoryCompiler::n28().sram("s", 256, 32);
        let pins = def.pins.len();
        let mm = d.add_macro_master(def);
        let g = d.add_group("cache");
        let mi = d.add_macro_in("mem0", mm, g);
        assert!(d.is_macro(mi));
        assert_eq!(d.inst(mi).conns.len(), pins);
        assert!(d.inst_area_um2(mi) > 1_000.0);
        assert_eq!(d.inst(mi).group, g);
        assert_eq!(d.groups()[g as usize], "cache");
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut d = small_design();
        let other = d.add_net("other");
        d.connect(other, PinRef::inst(InstId(0), 0));
    }

    #[test]
    fn side_opposite() {
        assert_eq!(Side::North.opposite(), Side::South);
        assert_eq!(Side::East.opposite(), Side::West);
    }

    #[test]
    fn port_alignment() {
        let mut d = small_design();
        let a = d.add_port("noc_n", PinDir::Output, Some(Side::North));
        let b = d.add_port("noc_s", PinDir::Input, Some(Side::South));
        let key = d.align_ports(a, b);
        assert_eq!(d.port(a).align_key, Some(key));
        assert_eq!(d.port(b).align_key, Some(key));
    }
}
