//! Synthetic random-logic generation with Rent's-rule-like locality.
//!
//! Real post-synthesis netlists have short-range connectivity: most
//! nets connect gates that are logically (and after placement,
//! physically) close, with a power-law tail of long connections —
//! the statistical structure summarised by Rent's rule. This module
//! generates gate-level modules with that structure: gate `i` draws
//! its fanins from gate `i - Δ` with `Δ` geometrically distributed,
//! falling back to the module's external input nets for out-of-range
//! draws.
//!
//! Modules compose through [`LogicIo`]: `ext_in` nets (driven
//! elsewhere — other modules' boundary registers, macro data outputs,
//! chip ports) are sampled by the module's gates, and `drive` nets are
//! driven by dedicated boundary flip-flops, mirroring OpenPiton's
//! registered NoC/module boundaries. Cross-module paths are therefore
//! register-to-register, exactly the structure the paper's inter-tile
//! timing constraints assume.
//!
//! Placement/routing quality — everything the Macro-3D evaluation
//! measures — depends on these statistics, not on the Boolean
//! functions, which is why this substitution for OpenPiton synthesis
//! preserves the experiments (see `DESIGN.md` §2).

use crate::design::Design;
use crate::ids::{InstId, NetId, PinRef};
use macro3d_tech::CellClass;
use rand::rngs::SmallRng;
use rand::Rng;

/// Specification of one random-logic module.
#[derive(Clone, Debug)]
pub struct LogicSpec {
    /// Instance-name prefix.
    pub name: String,
    /// Number of standard cells to create (boundary registers for
    /// driven nets come on top).
    pub gates: usize,
    /// Fraction of gates that are flip-flops (~0.15–0.25 for control
    /// logic, higher for datapath pipelines).
    pub ff_fraction: f64,
    /// Mean fanin back-distance as a fraction of `gates` (smaller =
    /// more local). Typical: 0.02–0.08.
    pub locality: f64,
    /// Maximum combinational depth (register to register). Logic
    /// synthesis restructures deep cones; post-synthesis netlists at a
    /// given target frequency sit around 15–25 levels.
    pub max_depth: u32,
    /// Group tag for the created instances.
    pub group: u32,
}

impl LogicSpec {
    /// A reasonable default for control-dominated logic.
    pub fn new(name: impl Into<String>, gates: usize, group: u32) -> Self {
        LogicSpec {
            name: name.into(),
            gates,
            ff_fraction: 0.20,
            locality: 0.04,
            max_depth: 16,
            group,
        }
    }
}

/// Boundary connections of a module.
#[derive(Clone, Copy, Debug, Default)]
pub struct LogicIo<'a> {
    /// Nets driven elsewhere that this module samples. Every net is
    /// guaranteed at least one sink inside the module (via a capture
    /// register if the gate count is too small to absorb them all).
    pub ext_in: &'a [NetId],
    /// Nets this module must drive; each gets a dedicated boundary
    /// flip-flop whose `Q` drives the net.
    pub drive: &'a [NetId],
}

/// The result of generating a module.
#[derive(Clone, Debug)]
pub struct ModuleNets {
    /// All instances created (gates, boundary registers, capture
    /// registers).
    pub insts: Vec<InstId>,
    /// The boundary registers driving the `drive` nets, in order.
    pub boundary_regs: Vec<InstId>,
}

/// Gate-class mix of a synthesised control/datapath blend
/// (weights are relative; DFF fraction is handled separately).
const COMB_MIX: [(CellClass, f64); 10] = [
    (CellClass::Nand2, 0.22),
    (CellClass::Nor2, 0.12),
    (CellClass::Inv, 0.16),
    (CellClass::And2, 0.09),
    (CellClass::Or2, 0.08),
    (CellClass::Xor2, 0.07),
    (CellClass::Aoi21, 0.09),
    (CellClass::Oai21, 0.09),
    (CellClass::Mux2, 0.05),
    (CellClass::Buf, 0.03),
];

/// Generates one random-logic module inside `design`, clocking all
/// flip-flops from `clock`.
///
/// # Panics
///
/// Panics if `spec.gates` is zero, `io.ext_in` is empty (a module
/// needs at least one external signal to sample), or the library
/// lacks a required cell class.
// INVARIANT: the documented panics above cover every `expect` in the
// body — all are "library provides this cell class/pin" lookups.
#[allow(clippy::expect_used)]
pub fn generate_logic(
    design: &mut Design,
    rng: &mut SmallRng,
    spec: &LogicSpec,
    clock: NetId,
    io: LogicIo<'_>,
) -> ModuleNets {
    assert!(spec.gates > 0, "module must contain gates");
    assert!(!io.ext_in.is_empty(), "module needs external inputs");
    let lib = design.library().clone();

    let mut insts = Vec::with_capacity(spec.gates + io.drive.len());
    let mut out_nets: Vec<NetId> = Vec::with_capacity(spec.gates);
    // combinational depth of each local output net (0 at FF outputs)
    let mut out_depth: Vec<u32> = Vec::with_capacity(spec.gates);
    let mean_back = (spec.locality * spec.gates as f64).max(1.0);
    // Force the first `ext_in.len()` fanin slots onto distinct
    // external inputs so every one is sampled.
    let mut forced_ext = 0usize;

    for i in 0..spec.gates {
        let is_ff = rng.gen_bool(spec.ff_fraction.clamp(0.0, 1.0));
        let class = if is_ff {
            CellClass::Dff
        } else {
            pick_class(rng)
        };
        let drive_step = match rng.gen_range(0..100) {
            0..=79 => 0,
            80..=94 => 1,
            _ => 2,
        };
        let mut cell = lib.smallest(class).expect("library has all classes");
        for _ in 0..drive_step {
            if let Some(up) = lib.resize(cell, 1) {
                cell = up;
            }
        }
        let inst = design.add_cell_in(format!("{}_g{}", spec.name, i), cell, spec.group);
        insts.push(inst);

        let master = lib.cell(cell);
        let out_pin = master.output_pin() as u16;
        let out_net = design.add_net(format!("{}_w{}", spec.name, i));
        design.connect(out_net, PinRef::inst(inst, out_pin));

        let data_pins: Vec<usize> = master.data_input_pins().collect();
        let mut depth_in = 0u32;
        for &p in &data_pins {
            let src = if forced_ext < io.ext_in.len() {
                let n = io.ext_in[forced_ext];
                forced_ext += 1;
                n
            } else if is_ff {
                // register inputs may sample arbitrarily deep cones
                pick_driver(rng, i, mean_back, &out_nets, io.ext_in)
            } else {
                // bound the combinational depth: re-draw a few times,
                // then fall back to an external input (depth 0)
                let mut chosen = None;
                for _ in 0..8 {
                    let cand = pick_driver(rng, i, mean_back, &out_nets, io.ext_in);
                    let d = local_depth(cand, &out_nets, &out_depth);
                    if d + 1 < spec.max_depth {
                        chosen = Some(cand);
                        break;
                    }
                }
                chosen.unwrap_or_else(|| io.ext_in[rng.gen_range(0..io.ext_in.len())])
            };
            if !is_ff {
                depth_in = depth_in.max(local_depth(src, &out_nets, &out_depth) + 1);
            }
            design.connect(src, PinRef::inst(inst, p as u16));
        }
        if let Some(ck) = master.clock_pin() {
            design.connect(clock, PinRef::inst(inst, ck as u16));
        }
        out_nets.push(out_net);
        out_depth.push(if is_ff { 0 } else { depth_in });
    }

    // Capture registers for external inputs the gates could not absorb.
    let dff = lib.smallest(CellClass::Dff).expect("library has DFF");
    let dff_cell = lib.cell(dff);
    let (d_pin, ck_pin, q_pin) = (
        dff_cell.data_input_pins().next().expect("DFF has D") as u16,
        dff_cell.clock_pin().expect("DFF has CK") as u16,
        dff_cell.output_pin() as u16,
    );
    while forced_ext < io.ext_in.len() {
        let inst = design.add_cell_in(format!("{}_cap{}", spec.name, forced_ext), dff, spec.group);
        design.connect(io.ext_in[forced_ext], PinRef::inst(inst, d_pin));
        design.connect(clock, PinRef::inst(inst, ck_pin));
        let q = design.add_net(format!("{}_capq{}", spec.name, forced_ext));
        design.connect(q, PinRef::inst(inst, q_pin));
        insts.push(inst);
        forced_ext += 1;
    }

    // Boundary registers driving the module's outputs.
    let mut boundary_regs = Vec::with_capacity(io.drive.len());
    for (k, &net) in io.drive.iter().enumerate() {
        let inst = design.add_cell_in(format!("{}_bnd{}", spec.name, k), dff, spec.group);
        let src = pick_driver(rng, spec.gates, mean_back, &out_nets, io.ext_in);
        design.connect(src, PinRef::inst(inst, d_pin));
        design.connect(clock, PinRef::inst(inst, ck_pin));
        design.connect(net, PinRef::inst(inst, q_pin));
        boundary_regs.push(inst);
        insts.push(inst);
    }

    ModuleNets {
        insts,
        boundary_regs,
    }
}

/// Depth of a net when it is one of this module's outputs, else 0.
///
/// The module's output nets are allocated consecutively (one per
/// gate, nothing in between), so the lookup is a range check.
fn local_depth(net: NetId, out_nets: &[NetId], out_depth: &[u32]) -> u32 {
    let Some(&first) = out_nets.first() else {
        return 0;
    };
    let k = net.0.wrapping_sub(first.0) as usize;
    if k < out_nets.len() {
        debug_assert_eq!(out_nets[k], net);
        out_depth[k]
    } else {
        0
    }
}

fn pick_class(rng: &mut SmallRng) -> CellClass {
    let total: f64 = COMB_MIX.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for (class, w) in COMB_MIX {
        if x < w {
            return class;
        }
        x -= w;
    }
    CellClass::Nand2
}

/// Geometric back-distance draw: gate `i` connects to gate
/// `i - Δ` (Δ ≥ 1); draws landing before gate 0 hit the external
/// input nets.
fn pick_driver(
    rng: &mut SmallRng,
    i: usize,
    mean_back: f64,
    out_nets: &[NetId],
    ext_in: &[NetId],
) -> NetId {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let delta = (1.0 + (-u.ln()) * mean_back) as usize;
    if delta > i || out_nets.is_empty() {
        ext_in[rng.gen_range(0..ext_in.len())]
    } else {
        out_nets[i - delta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DesignStats;
    use crate::traverse::topo_order;
    use macro3d_tech::libgen::n28_library;
    use macro3d_tech::PinDir;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Builds a self-contained design: ports drive `n_ext` external
    /// nets; the module drives `n_out` nets captured by output ports'
    /// nets... (outputs are left as driven, sink-free nets, which is
    /// legal).
    fn build(gates: usize, n_ext: usize, n_out: usize, seed: u64) -> (Design, ModuleNets) {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("rent_test", lib);
        let clk_port = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_port));
        let ext: Vec<NetId> = (0..n_ext)
            .map(|i| {
                let p = d.add_port(format!("in{i}"), PinDir::Input, None);
                let n = d.add_net(format!("ext{i}"));
                d.connect(n, PinRef::Port(p));
                n
            })
            .collect();
        let drive: Vec<NetId> = (0..n_out).map(|i| d.add_net(format!("out{i}"))).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = LogicSpec::new("m", gates, 0);
        let io = LogicIo {
            ext_in: &ext,
            drive: &drive,
        };
        let nets = generate_logic(&mut d, &mut rng, &spec, clk, io);
        (d, nets)
    }

    #[test]
    fn generated_module_validates() {
        let (d, _) = build(500, 16, 16, 42);
        assert_eq!(d.validate(), Ok(()));
    }

    #[test]
    fn module_is_acyclic() {
        let (d, _) = build(1_000, 8, 8, 7);
        assert!(topo_order(&d).is_ok());
    }

    #[test]
    fn drive_nets_have_boundary_registers() {
        let (d, m) = build(200, 4, 10, 3);
        assert_eq!(m.boundary_regs.len(), 10);
        for &r in &m.boundary_regs {
            assert!(crate::traverse::is_timing_endpoint(&d, r));
        }
    }

    #[test]
    fn every_ext_input_is_sampled() {
        // more inputs than the gates can absorb: capture registers kick in
        let (d, m) = build(5, 100, 0, 11);
        assert_eq!(d.validate(), Ok(()));
        // gates + capture registers
        assert!(m.insts.len() > 5);
        for n in d.net_ids() {
            let name = &d.net(n).name;
            if name.starts_with("ext") {
                assert!(d.sinks(n).count() >= 1, "external net {name} has no sink");
            }
        }
    }

    #[test]
    fn statistics_are_plausible() {
        let (d, _) = build(2_000, 32, 32, 1);
        let s = DesignStats::compute(&d);
        assert!(s.num_cells >= 2_000);
        let ff_frac = s.num_ffs as f64 / s.num_cells as f64;
        assert!((0.12..0.35).contains(&ff_frac), "ff fraction {ff_frac}");
        assert!(s.avg_net_degree > 1.5 && s.avg_net_degree < 6.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (d1, _) = build(300, 8, 8, 99);
        let (d2, _) = build(300, 8, 8, 99);
        assert_eq!(d1.num_insts(), d2.num_insts());
        assert_eq!(d1.num_nets(), d2.num_nets());
        for (a, b) in d1.inst_ids().zip(d2.inst_ids()) {
            assert_eq!(d1.inst(a).master, d2.inst(b).master);
        }
    }

    #[test]
    fn locality_shapes_net_span() {
        // tighter locality => shorter index spans between driver and sinks
        let span = |locality: f64| -> f64 {
            let lib = Arc::new(n28_library(1.0));
            let mut d = Design::new("t", lib);
            let clk = d.add_net("clk");
            let p = d.add_port("clk", PinDir::Input, None);
            d.connect(clk, PinRef::Port(p));
            let ext: Vec<NetId> = (0..8)
                .map(|i| {
                    let p = d.add_port(format!("in{i}"), PinDir::Input, None);
                    let n = d.add_net(format!("ext{i}"));
                    d.connect(n, PinRef::Port(p));
                    n
                })
                .collect();
            let mut rng = SmallRng::seed_from_u64(5);
            let mut spec = LogicSpec::new("m", 1_500, 0);
            spec.locality = locality;
            let nets = generate_logic(
                &mut d,
                &mut rng,
                &spec,
                clk,
                LogicIo {
                    ext_in: &ext,
                    drive: &[],
                },
            );
            let pos: std::collections::HashMap<InstId, usize> = nets
                .insts
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, i))
                .collect();
            let mut total = 0usize;
            let mut count = 0usize;
            for n in d.net_ids() {
                let Some(drv) = d.driver(n).and_then(|p| p.instance()) else {
                    continue;
                };
                for s in d.sinks(n) {
                    if let Some(si) = s.instance() {
                        if let (Some(&a), Some(&b)) = (pos.get(&drv), pos.get(&si)) {
                            total += a.abs_diff(b);
                            count += 1;
                        }
                    }
                }
            }
            total as f64 / count.max(1) as f64
        };
        assert!(span(0.01) < span(0.20));
    }
}
