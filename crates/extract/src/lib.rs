#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Parasitic extraction: RC trees and Elmore delays from routed nets.
//!
//! The original flow extracts parasitics with a commercial engine
//! against the foundry `.tch` files; here, each routed net's segments
//! and vias are turned into a distributed RC tree using the stack's
//! per-layer resistance/capacitance and per-via parasitics (including
//! the 44 mΩ / 1.0 fF F2F bumps in combined stacks), and sink delays
//! are computed with the Elmore metric — the standard model for
//! global-routing-stage timing.
//!
//! # Examples
//!
//! ```
//! use macro3d_extract::extract_net;
//! use macro3d_geom::Point;
//! use macro3d_route::{RouteSeg, RoutedNet};
//! use macro3d_tech::stack::{n28_stack, DieRole};
//! use macro3d_tech::Corner;
//!
//! let stack = n28_stack(6, DieRole::Logic);
//! let net = RoutedNet {
//!     segments: vec![RouteSeg {
//!         layer: 0,
//!         from: Point::from_um(0.0, 0.0),
//!         to: Point::from_um(100.0, 0.0),
//!     }],
//!     vias: vec![],
//!     f2f_crossings: 0,
//! };
//! let p = extract_net(
//!     &stack,
//!     &net,
//!     Point::from_um(0.0, 0.0),
//!     &[(Point::from_um(100.0, 0.0), 1.0)],
//!     Corner::Tt,
//! );
//! assert!(p.elmore_ps[0] > 0.0);
//! assert!(p.wire_cap_ff > 15.0); // 100 um of M1 at 0.2 fF/um
//! ```

use macro3d_geom::Point;
use macro3d_route::RoutedNet;
use macro3d_tech::stack::MetalStack;
use macro3d_tech::Corner;
use std::collections::HashMap;

/// Extracted parasitics of one net.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetParasitics {
    /// Total wire + via capacitance, fF.
    pub wire_cap_ff: f64,
    /// Total wire + via resistance, Ω (sum over elements).
    pub total_res_ohm: f64,
    /// Elmore delay driver→sink, ps, in input sink order.
    pub elmore_ps: Vec<f64>,
    /// Capacitance seen by the driver (wire + sink pins), fF.
    pub driver_load_ff: f64,
}

/// Extracts a routed net into Elmore sink delays.
///
/// `sinks` carries each sink's location and pin capacitance (fF).
/// Driver and sink locations are matched to the nearest RC node
/// (routing quantizes pins to GCell centres). Falls back to a lumped
/// model for sinks disconnected from the driver's RC component
/// (possible when a route was only partially recovered).
pub fn extract_net(
    stack: &MetalStack,
    route: &RoutedNet,
    driver: Point,
    sinks: &[(Point, f64)],
    corner: Corner,
) -> NetParasitics {
    NETS_EXTRACTED.inc();
    let tree = RcTree::build(stack, route, corner);
    if tree.nodes.is_empty() {
        // zero-length route: purely pin-cap load
        let load: f64 = sinks.iter().map(|s| s.1).sum();
        return NetParasitics {
            wire_cap_ff: 0.0,
            total_res_ohm: 0.0,
            elmore_ps: vec![0.0; sinks.len()],
            driver_load_ff: load,
        };
    }

    let root = tree.nearest(driver);
    let mut node_cap = tree.cap.clone();
    let mut sink_node = Vec::with_capacity(sinks.len());
    for (p, c) in sinks {
        let n = tree.nearest(*p);
        node_cap[n] += c;
        sink_node.push(n);
    }

    // BFS spanning tree from root
    let n = tree.nodes.len();
    let mut parent: Vec<Option<(usize, f64)>> = vec![None; n]; // (parent, r)
    let mut order = vec![root];
    let mut seen = vec![false; n];
    seen[root] = true;
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for &(v, r) in &tree.adj[u] {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some((u, r));
                order.push(v);
            }
        }
    }

    // subtree capacitance (reverse BFS order)
    let mut subtree = node_cap.clone();
    for &u in order.iter().rev() {
        if let Some((p, _)) = parent[u] {
            subtree[p] += subtree[u];
        }
    }
    // Elmore: delay[u] = delay[parent] + r * subtree_cap[u]
    let mut delay = vec![0.0f64; n];
    for &u in &order {
        if let Some((p, r)) = parent[u] {
            delay[u] = delay[p] + r * subtree[u] * 1e-3; // ohm*fF -> ps
        }
    }

    let wire_cap: f64 = tree.cap.iter().sum();
    let pin_cap: f64 = sinks.iter().map(|s| s.1).sum();
    let lumped = tree.total_res * 0.5 * (wire_cap + pin_cap) * 1e-3;

    let elmore_ps = sink_node
        .iter()
        .map(|&s| if seen[s] { delay[s] } else { lumped })
        .collect();

    NetParasitics {
        wire_cap_ff: wire_cap,
        total_res_ohm: tree.total_res,
        elmore_ps,
        // subtree[root] covers the connected component; unconnected
        // sink caps are still part of the electrical load, hence max
        driver_load_ff: subtree[root].max(wire_cap + pin_cap),
    }
}

/// HPWL-based pre-route estimate for nets without a route (used for
/// the pseudo-2D stages of S2D/C2D, where the paper notes the tools
/// must *guess* parasitics — optionally with a scale factor on RC per
/// unit length, the C2D trick).
pub fn estimate_net(
    stack: &MetalStack,
    driver: Point,
    sinks: &[(Point, f64)],
    rc_scale: f64,
    corner: Corner,
) -> NetParasitics {
    NETS_ESTIMATED.inc();
    // average mid-stack RC
    let mid_ix = (stack.num_layers() / 2).saturating_sub(usize::from(stack.num_layers() > 1));
    let mid = &stack.layers()[mid_ix];
    let r_um = mid.r_per_um * corner.wire_r_derate() * rc_scale;
    let c_um = mid.c_per_um * rc_scale;
    let mut lo = driver;
    let mut hi = driver;
    for (p, _) in sinks {
        lo = lo.min(*p);
        hi = hi.max(*p);
    }
    let hpwl_um = lo.manhattan(hi).to_um();
    let wire_cap = hpwl_um * c_um;
    let total_res = hpwl_um * r_um;
    let pin_cap: f64 = sinks.iter().map(|s| s.1).sum();
    let elmore: Vec<f64> = sinks
        .iter()
        .map(|(p, c)| {
            let d_um = driver.manhattan(*p).to_um();
            let r = d_um * r_um;
            let cw = d_um * c_um;
            r * (cw * 0.5 + c) * 1e-3
        })
        .collect();
    NetParasitics {
        wire_cap_ff: wire_cap,
        total_res_ohm: total_res,
        elmore_ps: elmore,
        driver_load_ff: wire_cap + pin_cap,
    }
}

/// Summary of what changed between two parasitics tables (same
/// design, e.g. before/after a sizing step).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeltaReport {
    /// Indices (by `NetId::index()`) of nets whose parasitics differ,
    /// ascending.
    pub changed: Vec<usize>,
    /// Largest absolute driver-load change, fF.
    pub max_load_delta_ff: f64,
    /// Largest absolute Elmore change over any sink, ps.
    pub max_elmore_delta_ps: f64,
}

/// Compares two parasitics tables net-by-net and reports which nets
/// changed and by how much. Incremental timing consumes `changed` as
/// its touched-net seed; the magnitudes make a cheap sanity gate
/// ("did this step really only nudge loads?") for logs and tests.
/// Tables of different lengths report every index beyond the common
/// prefix as changed.
pub fn diff_parasitics(old: &[NetParasitics], new: &[NetParasitics]) -> DeltaReport {
    let mut rep = DeltaReport::default();
    let common = old.len().min(new.len());
    for (ix, (o, n)) in old.iter().zip(new.iter()).enumerate() {
        if o == n {
            continue;
        }
        rep.changed.push(ix);
        rep.max_load_delta_ff = rep
            .max_load_delta_ff
            .max((o.driver_load_ff - n.driver_load_ff).abs());
        let sinks = o.elmore_ps.len().max(n.elmore_ps.len());
        for s in 0..sinks {
            let eo = o.elmore_ps.get(s).copied().unwrap_or(0.0);
            let en = n.elmore_ps.get(s).copied().unwrap_or(0.0);
            rep.max_elmore_delta_ps = rep.max_elmore_delta_ps.max((eo - en).abs());
        }
    }
    rep.changed.extend(common..old.len().max(new.len()));
    rep
}

/// The RC tree of a routed net.
struct RcTree {
    nodes: Vec<(u16, Point)>,
    cap: Vec<f64>,
    adj: Vec<Vec<(usize, f64)>>,
    total_res: f64,
    index: HashMap<(u16, i64, i64), usize>,
}

impl RcTree {
    fn build(stack: &MetalStack, route: &RoutedNet, corner: Corner) -> Self {
        let mut tree = RcTree {
            nodes: Vec::new(),
            cap: Vec::new(),
            adj: Vec::new(),
            total_res: 0.0,
            index: HashMap::new(),
        };
        let r_derate = corner.wire_r_derate();
        for s in &route.segments {
            let layer = &stack.layers()[s.layer as usize];
            let len = s.length_um();
            let r = len * layer.r_per_um * r_derate;
            let c = len * layer.c_per_um;
            let a = tree.node(s.layer, s.from);
            let b = tree.node(s.layer, s.to);
            tree.cap[a] += c / 2.0;
            tree.cap[b] += c / 2.0;
            tree.adj[a].push((b, r));
            tree.adj[b].push((a, r));
            tree.total_res += r;
        }
        for v in &route.vias {
            let def = stack.via(v.layer as usize);
            let a = tree.node(v.layer, v.at);
            let b = tree.node(v.layer + 1, v.at);
            tree.cap[a] += def.capacitance / 2.0;
            tree.cap[b] += def.capacitance / 2.0;
            let r = def.resistance * r_derate;
            tree.adj[a].push((b, r));
            tree.adj[b].push((a, r));
            tree.total_res += r;
        }
        tree
    }

    fn node(&mut self, layer: u16, p: Point) -> usize {
        let key = (layer, p.x.0, p.y.0);
        if let Some(&n) = self.index.get(&key) {
            return n;
        }
        let n = self.nodes.len();
        self.nodes.push((layer, p));
        self.cap.push(0.0);
        self.adj.push(Vec::new());
        self.index.insert(key, n);
        n
    }

    fn nearest(&self, p: Point) -> usize {
        let mut best = 0;
        let mut best_d = i64::MAX;
        for (i, (_, q)) in self.nodes.iter().enumerate() {
            let d = p.manhattan(*q).0;
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

/// Routed nets fully extracted (RC tree + Elmore). Called from
/// parallel workers; the counter is commutative so totals stay
/// thread-count independent.
static NETS_EXTRACTED: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("extract/nets");
/// Unrouted nets given the HPWL-based parasitic guess.
static NETS_ESTIMATED: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("extract/est_nets");

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_route::{RouteSeg, Via};
    use macro3d_tech::stack::{n28_stack, DieRole};
    use macro3d_tech::{CombinedBeol, F2fSpec};

    fn seg(layer: u16, x0: f64, y0: f64, x1: f64, y1: f64) -> RouteSeg {
        RouteSeg {
            layer,
            from: Point::from_um(x0, y0),
            to: Point::from_um(x1, y1),
        }
    }

    #[test]
    fn single_wire_elmore_matches_hand_calc() {
        let stack = n28_stack(6, DieRole::Logic);
        // 100 um of M1: R = 400 ohm, C = 20 fF; sink cap 1 fF
        let net = RoutedNet {
            segments: vec![seg(0, 0.0, 0.0, 100.0, 0.0)],
            vias: vec![],
            f2f_crossings: 0,
        };
        let p = extract_net(
            &stack,
            &net,
            Point::from_um(0.0, 0.0),
            &[(Point::from_um(100.0, 0.0), 1.0)],
            Corner::Tt,
        );
        // Elmore with half-cap at far node: 400 * (10 + 1) fF = 4.4 ps
        assert!(
            (p.elmore_ps[0] - 4.4).abs() < 0.2,
            "elmore {}",
            p.elmore_ps[0]
        );
        assert!((p.wire_cap_ff - 20.0).abs() < 1e-9);
        assert!((p.driver_load_ff - 21.0).abs() < 1e-9);
    }

    #[test]
    fn corner_derates_resistance() {
        let stack = n28_stack(6, DieRole::Logic);
        let net = RoutedNet {
            segments: vec![seg(0, 0.0, 0.0, 100.0, 0.0)],
            vias: vec![],
            f2f_crossings: 0,
        };
        let sinks = [(Point::from_um(100.0, 0.0), 1.0)];
        let tt = extract_net(&stack, &net, Point::from_um(0.0, 0.0), &sinks, Corner::Tt);
        let ss = extract_net(&stack, &net, Point::from_um(0.0, 0.0), &sinks, Corner::Ss);
        assert!(ss.elmore_ps[0] > tt.elmore_ps[0]);
    }

    #[test]
    fn upper_metal_is_faster() {
        let stack = n28_stack(6, DieRole::Logic);
        let sinks = [(Point::from_um(200.0, 0.0), 1.0)];
        let mk = |layer: u16| RoutedNet {
            segments: vec![seg(layer, 0.0, 0.0, 200.0, 0.0)],
            vias: vec![],
            f2f_crossings: 0,
        };
        let m1 = extract_net(&stack, &mk(0), Point::from_um(0.0, 0.0), &sinks, Corner::Tt);
        let m6 = extract_net(&stack, &mk(5), Point::from_um(0.0, 0.0), &sinks, Corner::Tt);
        assert!(m6.elmore_ps[0] < m1.elmore_ps[0] / 3.0);
    }

    #[test]
    fn f2f_via_adds_its_parasitics() {
        let combined = CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(4, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        );
        let cut = combined.stack().f2f_cut().expect("cut") as u16;
        let net = RoutedNet {
            segments: vec![],
            vias: vec![Via {
                layer: cut,
                at: Point::from_um(0.0, 0.0),
            }],
            f2f_crossings: 1,
        };
        let p = extract_net(
            combined.stack(),
            &net,
            Point::from_um(0.0, 0.0),
            &[],
            Corner::Tt,
        );
        assert!((p.wire_cap_ff - 1.0).abs() < 1e-9, "1 fF per bump");
        assert!(p.total_res_ohm > 0.0 && p.total_res_ohm < 0.1);
    }

    #[test]
    fn branched_tree_orders_sinks() {
        let stack = n28_stack(6, DieRole::Logic);
        // driver at origin, T-junction at (50,0), branches to (50,30) and (100,0)
        let net = RoutedNet {
            segments: vec![
                seg(0, 0.0, 0.0, 50.0, 0.0),
                seg(1, 50.0, 0.0, 50.0, 30.0),
                seg(0, 50.0, 0.0, 100.0, 0.0),
            ],
            vias: vec![Via {
                layer: 0,
                at: Point::from_um(50.0, 0.0),
            }],
            f2f_crossings: 0,
        };
        let p = extract_net(
            &stack,
            &net,
            Point::from_um(0.0, 0.0),
            &[
                (Point::from_um(50.0, 30.0), 1.0),
                (Point::from_um(100.0, 0.0), 1.0),
            ],
            Corner::Tt,
        );
        // the short M2 branch arrives earlier than 50um more of M1
        assert!(p.elmore_ps[0] < p.elmore_ps[1]);
        assert!(p.elmore_ps.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn estimate_tracks_distance() {
        let stack = n28_stack(6, DieRole::Logic);
        let near = estimate_net(
            &stack,
            Point::ORIGIN,
            &[(Point::from_um(50.0, 0.0), 1.0)],
            1.0,
            Corner::Tt,
        );
        let far = estimate_net(
            &stack,
            Point::ORIGIN,
            &[(Point::from_um(500.0, 0.0), 1.0)],
            1.0,
            Corner::Tt,
        );
        assert!(far.elmore_ps[0] > near.elmore_ps[0] * 10.0);
        // C2D-style scaling reduces estimated parasitics
        let scaled = estimate_net(
            &stack,
            Point::ORIGIN,
            &[(Point::from_um(500.0, 0.0), 1.0)],
            1.0 / 2.0_f64.sqrt(),
            Corner::Tt,
        );
        assert!(scaled.wire_cap_ff < far.wire_cap_ff);
    }

    #[test]
    fn diff_reports_changed_nets_and_magnitudes() {
        let base = vec![
            NetParasitics {
                wire_cap_ff: 2.0,
                total_res_ohm: 100.0,
                elmore_ps: vec![5.0, 7.0],
                driver_load_ff: 3.0,
            };
            4
        ];
        // identical tables: clean diff
        let rep = diff_parasitics(&base, &base);
        assert_eq!(rep, DeltaReport::default());

        // bump one load and one elmore
        let mut new = base.clone();
        new[1].driver_load_ff += 0.5;
        new[3].elmore_ps[1] = 9.5;
        let rep = diff_parasitics(&base, &new);
        assert_eq!(rep.changed, vec![1, 3]);
        assert!((rep.max_load_delta_ff - 0.5).abs() < 1e-12);
        assert!((rep.max_elmore_delta_ps - 2.5).abs() < 1e-12);

        // a grown table (e.g. hold-fix nets) reports the tail
        let mut grown = base.clone();
        grown.push(NetParasitics::default());
        let rep = diff_parasitics(&base, &grown);
        assert_eq!(rep.changed, vec![4]);
    }

    #[test]
    fn empty_route_is_pure_pin_load() {
        let stack = n28_stack(6, DieRole::Logic);
        let net = RoutedNet::default();
        let p = extract_net(
            &stack,
            &net,
            Point::ORIGIN,
            &[(Point::from_um(10.0, 0.0), 2.5)],
            Corner::Tt,
        );
        assert_eq!(p.elmore_ps, vec![0.0]);
        assert!((p.driver_load_ff - 2.5).abs() < 1e-9);
    }
}
