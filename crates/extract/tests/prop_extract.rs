//! Property-based tests for parasitic extraction.

use macro3d_extract::extract_net;
use macro3d_geom::Point;
use macro3d_route::{RouteSeg, RoutedNet, Via};
use macro3d_tech::stack::{n28_stack, DieRole};
use macro3d_tech::Corner;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Elmore delay to any sink is bounded by total R × total C (the
    /// lumped worst case) and is non-negative.
    #[test]
    fn elmore_bounded_by_lumped_rc(
        segs in proptest::collection::vec(
            (0u16..6, 0.0f64..300.0, 0.0f64..300.0, 1.0f64..200.0),
            1..8,
        ),
        sink_cap in 0.1f64..20.0,
    ) {
        let stack = n28_stack(6, DieRole::Logic);
        // build a chain of segments starting at the origin
        let mut segments = Vec::new();
        let mut cursor = Point::from_um(0.0, 0.0);
        for &(layer, _, _, len) in &segs {
            let next = Point::from_um(cursor.x.to_um() + len, cursor.y.to_um());
            segments.push(RouteSeg {
                layer,
                from: cursor,
                to: next,
            });
            cursor = next;
        }
        let net = RoutedNet {
            segments,
            vias: vec![],
            f2f_crossings: 0,
        };
        let p = extract_net(&stack, &net, Point::from_um(0.0, 0.0), &[(cursor, sink_cap)], Corner::Tt);
        prop_assert!(p.elmore_ps[0] >= 0.0);
        let lumped_bound = p.total_res_ohm * (p.wire_cap_ff + sink_cap) * 1e-3;
        prop_assert!(
            p.elmore_ps[0] <= lumped_bound + 1e-9,
            "elmore {} exceeds lumped bound {lumped_bound}",
            p.elmore_ps[0]
        );
    }

    /// Capacitance accounting: wire cap equals the sum of per-segment
    /// and per-via contributions regardless of topology.
    #[test]
    fn cap_accounting_exact(
        n_vias in 0usize..6,
        len in 1.0f64..500.0,
        layer in 0u16..5,
    ) {
        let stack = n28_stack(6, DieRole::Logic);
        let seg = RouteSeg {
            layer,
            from: Point::from_um(0.0, 0.0),
            to: Point::from_um(len, 0.0),
        };
        let vias: Vec<Via> = (0..n_vias)
            .map(|i| Via {
                layer: (i % 5) as u16,
                at: Point::from_um(i as f64, 0.0),
            })
            .collect();
        let net = RoutedNet {
            segments: vec![seg],
            vias,
            f2f_crossings: 0,
        };
        let p = extract_net(&stack, &net, Point::from_um(0.0, 0.0), &[], Corner::Tt);
        let expected = len * stack.layer(layer as usize).c_per_um
            + n_vias as f64 * 0.05;
        prop_assert!((p.wire_cap_ff - expected).abs() < 1e-3); // nm rounding
    }

    /// Driver load always covers wire plus all sink pin caps.
    #[test]
    fn driver_load_covers_everything(
        sinks in proptest::collection::vec((1.0f64..400.0, 0.1f64..10.0), 1..6),
    ) {
        let stack = n28_stack(6, DieRole::Logic);
        let mut segments = Vec::new();
        let mut sink_list = Vec::new();
        for &(x, cap) in &sinks {
            segments.push(RouteSeg {
                layer: 1,
                from: Point::from_um(0.0, 0.0),
                to: Point::from_um(0.0, x),
            });
            sink_list.push((Point::from_um(0.0, x), cap));
        }
        let net = RoutedNet {
            segments,
            vias: vec![],
            f2f_crossings: 0,
        };
        let p = extract_net(&stack, &net, Point::from_um(0.0, 0.0), &sink_list, Corner::Tt);
        let pin_total: f64 = sinks.iter().map(|s| s.1).sum();
        prop_assert!(p.driver_load_ff >= p.wire_cap_ff + pin_total - 1e-6);
    }
}
