//! Rectilinear Steiner topology construction.

use macro3d_geom::{Dbu, Point};

/// Decomposes a pin set into two-pin edges forming a rectilinear
/// Steiner tree approximation.
///
/// * 1 pin → no edges;
/// * 2 pins → one edge;
/// * 3 pins → the median Steiner point (RSMT-optimal for 3 pins)
///   connected to all three;
/// * ≥ 4 pins → Manhattan-distance Prim MST (a ≤ 1.5× RSMT
///   approximation, adequate for global routing and the wirelength
///   comparisons in the evaluation).
///
/// # Examples
///
/// ```
/// use macro3d_geom::Point;
/// use macro3d_route::steiner_edges;
///
/// let pins = vec![
///     Point::from_um(0.0, 0.0),
///     Point::from_um(10.0, 0.0),
///     Point::from_um(5.0, 8.0),
/// ];
/// let edges = steiner_edges(&pins);
/// assert_eq!(edges.len(), 3); // three legs to the median point
/// ```
pub fn steiner_edges(pins: &[Point]) -> Vec<(Point, Point)> {
    match pins.len() {
        0 | 1 => Vec::new(),
        2 => vec![(pins[0], pins[1])],
        3 => {
            let m = median_point(pins);
            pins.iter().filter(|&&p| p != m).map(|&p| (p, m)).collect()
        }
        _ => prim_mst(pins),
    }
}

/// Total Manhattan length of the Steiner topology.
pub fn steiner_length(pins: &[Point]) -> Dbu {
    steiner_edges(pins)
        .iter()
        .map(|(a, b)| a.manhattan(*b))
        .sum()
}

/// The component-wise median of three points (the optimal Steiner
/// point).
fn median_point(pins: &[Point]) -> Point {
    let mut xs: Vec<Dbu> = pins.iter().map(|p| p.x).collect();
    let mut ys: Vec<Dbu> = pins.iter().map(|p| p.y).collect();
    xs.sort();
    ys.sort();
    Point::new(xs[1], ys[1])
}

/// Prim MST over Manhattan distance, O(n²) — fine for net degrees in
/// the hundreds.
fn prim_mst(pins: &[Point]) -> Vec<(Point, Point)> {
    let n = pins.len();
    let mut in_tree = vec![false; n];
    let mut dist = vec![Dbu::MAX; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        dist[i] = pins[0].manhattan(pins[i]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = Dbu::MAX;
        for i in 0..n {
            if !in_tree[i] && dist[i] < best_d {
                best = i;
                best_d = dist[i];
            }
        }
        edges.push((pins[parent[best]], pins[best]));
        in_tree[best] = true;
        for i in 0..n {
            if !in_tree[i] {
                let d = pins[best].manhattan(pins[i]);
                if d < dist[i] {
                    dist[i] = d;
                    parent[i] = best;
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::from_um(x, y)
    }

    #[test]
    fn degenerate_nets() {
        assert!(steiner_edges(&[]).is_empty());
        assert!(steiner_edges(&[p(1.0, 1.0)]).is_empty());
        assert_eq!(steiner_edges(&[p(0.0, 0.0), p(3.0, 4.0)]).len(), 1);
        assert_eq!(
            steiner_length(&[p(0.0, 0.0), p(3.0, 4.0)]),
            Dbu::from_um(7.0)
        );
    }

    #[test]
    fn three_pin_median_beats_mst() {
        // a Y-shape: MST would cost 10+10=20+, Steiner 5+5+8+5=...
        let pins = [p(0.0, 0.0), p(10.0, 0.0), p(5.0, 8.0)];
        let len = steiner_length(&pins);
        // median point (5,0): legs 5 + 5 + 8 = 18
        assert_eq!(len, Dbu::from_um(18.0));
        // MST: (0,0)-(10,0)=10, (5,8) to nearer = 13 -> 23
        assert!(len < Dbu::from_um(23.0));
    }

    #[test]
    fn mst_spans_all_pins() {
        let pins: Vec<Point> = (0..17)
            .map(|i| p((i * 7 % 13) as f64, (i * 5 % 11) as f64))
            .collect();
        let edges = steiner_edges(&pins);
        assert_eq!(edges.len(), pins.len() - 1);
        // connectivity: union-find over edges
        let mut parent: Vec<usize> = (0..pins.len()).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        let ix = |pt: Point, pins: &[Point]| pins.iter().position(|&q| q == pt).expect("pin");
        for (a, b) in &edges {
            let (ra, rb) = (
                find(&mut parent, ix(*a, &pins)),
                find(&mut parent, ix(*b, &pins)),
            );
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for i in 1..pins.len() {
            assert_eq!(find(&mut parent, i), root, "pin {i} disconnected");
        }
    }

    #[test]
    fn mst_length_bounded_by_star() {
        let pins: Vec<Point> = (0..20)
            .map(|i| p((i * 13 % 29) as f64, (i * 17 % 23) as f64))
            .collect();
        let mst = steiner_length(&pins);
        let star: Dbu = pins[1..].iter().map(|q| pins[0].manhattan(*q)).sum();
        assert!(mst <= star);
    }
}
