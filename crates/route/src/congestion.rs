//! Congestion reporting.

use crate::gcell::RouteGrid;

/// Per-layer congestion summary of a routing grid after routing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CongestionReport {
    /// Per-layer: (overflowed edges, total overflow, peak utilization).
    pub layers: Vec<LayerCongestion>,
    /// Total overflow across layers.
    pub total_overflow: f64,
}

/// Congestion of one routing layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LayerCongestion {
    /// Layer index within the routing stack.
    pub layer: usize,
    /// Edges whose usage exceeds capacity.
    pub overflowed_edges: usize,
    /// Sum of usage beyond capacity.
    pub overflow: f64,
    /// Peak usage / capacity over edges with capacity.
    pub peak_utilization: f64,
}

impl CongestionReport {
    /// Builds the per-layer report from a routed grid.
    pub fn from_grid(grid: &RouteGrid) -> Self {
        let mut layers = Vec::with_capacity(grid.layers());
        let mut total = 0.0;
        for l in 0..grid.layers() {
            let mut lc = LayerCongestion {
                layer: l,
                ..Default::default()
            };
            for (u, c) in grid.layer_edges(l) {
                if c > 0.0 {
                    lc.peak_utilization = lc.peak_utilization.max((u / c) as f64);
                    if u > c {
                        lc.overflowed_edges += 1;
                        lc.overflow += (u - c) as f64;
                    }
                }
            }
            total += lc.overflow;
            layers.push(lc);
        }
        CongestionReport {
            layers,
            total_overflow: total,
        }
    }

    /// The most congested layer, if any overflow exists.
    pub fn hotspot_layer(&self) -> Option<usize> {
        self.layers
            .iter()
            .filter(|l| l.overflow > 0.0)
            .max_by(|a, b| a.overflow.total_cmp(&b.overflow))
            .map(|l| l.layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_geom::{Dbu, Rect};
    use macro3d_tech::stack::{n28_stack, DieRole};

    #[test]
    fn empty_grid_reports_clean() {
        let grid = RouteGrid::new(
            Rect::from_um(0.0, 0.0, 100.0, 100.0),
            &n28_stack(6, DieRole::Logic),
            Dbu::from_um(10.0),
            0.5,
        );
        let r = CongestionReport::from_grid(&grid);
        assert_eq!(r.layers.len(), 6);
        assert_eq!(r.total_overflow, 0.0);
        assert_eq!(r.hotspot_layer(), None);
    }
}
