#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Layer-aware global routing engine.
//!
//! The back half of the shared "2D P&R engine": a negotiated-
//! congestion (PathFinder-style) global router over a GCell grid with
//! per-layer track capacities derived from the metal stack. The same
//! router serves every flow in the reproduction; what changes between
//! flows is the *stack* it is given:
//!
//! * 2D flow: the single-die six-metal stack;
//! * Macro-3D: the combined two-die stack, where crossing the
//!   `F2F_VIA` cut instantiates an F2F bump (counted per net) and
//!   macro pins sit on `_MD` layers — the router pays the true cost
//!   of reaching the upper die and may even route *through* it to
//!   dodge congestion, exactly as the paper describes;
//! * S2D/C2D: first a single-die stack during the pseudo-2D stage,
//!   then a per-die re-route after tier partitioning.
//!
//! Multi-pin nets are decomposed into two-pin edges over a rectilinear
//! Steiner topology ([`steiner`]); each edge is routed by a windowed,
//! guided A* over a dense per-edge cost grid (`search`); overflowed
//! edges trigger rip-up and re-route.
//!
//! The entry point is the incremental [`Router`] session ([`global`]):
//! build it once from a [`RouteRequest`], call [`Router::route`] for
//! the initial result, and [`Router::update`] to re-route only the
//! nets a caller perturbed.

pub mod congestion;
pub mod gcell;
pub mod global;
pub mod routed;
mod search;
pub mod steiner;

pub use congestion::{CongestionReport, LayerCongestion};
pub use gcell::RouteGrid;
pub use global::{
    RouteConfig, RouteConfigBuilder, RouteConfigError, RoutePin, RouteRequest, Router,
};
pub use macro3d_par::Parallelism;
pub use routed::{RouteSeg, RoutedDesign, RoutedNet, Via};
pub use steiner::{steiner_edges, steiner_length};
