//! Negotiated-congestion global routing (PathFinder-style), with a
//! batched-commit parallel inner loop.
//!
//! Each rip-up iteration partitions its nets into fixed-size chunks.
//! A chunk is routed against a *frozen* congestion snapshot — workers
//! search in parallel, each reusing its own A* scratch buffers — and
//! then usage is committed serially in chunk order before the next
//! chunk starts. Because the chunk partition and commit order depend
//! only on [`RouteConfig`] (never on the thread count), the routed
//! result is bit-identical for any `parallelism.threads`.

use crate::gcell::RouteGrid;
use crate::routed::{RouteSeg, RoutedDesign, RoutedNet, Via};
use crate::steiner::steiner_edges;
use macro3d_geom::{BinIx, Dbu, Point, Rect};
use macro3d_netlist::NetId;
use macro3d_par::{parallel_map_with, Parallelism};
use macro3d_tech::stack::{Direction, MetalStack};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Router configuration.
#[derive(Clone, Copy, Debug)]
pub struct RouteConfig {
    /// GCell pitch, µm.
    pub gcell_um: f64,
    /// Fraction of raw tracks available to global routing.
    pub utilization: f64,
    /// Rip-up and re-route iterations.
    pub iterations: usize,
    /// Cost of one via transition (in GCell-step units).
    pub via_cost: f64,
    /// Nets with more pins than this are skipped (pre-CTS clock nets
    /// are routed by CTS instead).
    pub max_net_degree: usize,
    /// F2F bond pitch, µm — bounds how many bumps fit per GCell; the
    /// result reports GCells exceeding it. `None` disables the check.
    pub f2f_pitch_um: Option<f64>,
    /// Worker threads and batch size for the chunked inner loop. The
    /// chunk size changes routing results (it sets the commit
    /// granularity); the thread count never does.
    pub parallelism: Parallelism,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            gcell_um: 10.0,
            utilization: 0.5,
            iterations: 3,
            via_cost: 2.0,
            max_net_degree: 512,
            f2f_pitch_um: Some(1.0),
            parallelism: Parallelism::default(),
        }
    }
}

/// A pin handed to the router: location plus routing-stack layer.
pub type RoutePin = (Point, u16);

/// Routes a set of nets over a die and stack.
///
/// `nets` carries, per net, its pins with their layer in the given
/// stack (the flows map macro-die pins to `_MD` layers here).
/// `obstacles` are (layer, rect) capacity reductions (macro internal
/// routing). `num_nets` sizes the result's per-net table.
///
/// Every net is guaranteed a route (possibly through overflowed
/// edges, reported in the result); the negotiated-congestion loop
/// spreads overflow across iterations.
pub fn route_design(
    die: Rect,
    stack: &MetalStack,
    obstacles: &[(usize, Rect)],
    nets: &[(NetId, Vec<RoutePin>)],
    num_nets: usize,
    cfg: &RouteConfig,
) -> RoutedDesign {
    let mut grid = RouteGrid::new(die, stack, Dbu::from_um(cfg.gcell_um), cfg.utilization);
    for &(layer, rect) in obstacles {
        grid.add_obstacle(layer, rect);
    }
    let f2f_cut = stack.f2f_cut();
    let dirs: Vec<Direction> = stack.layers().iter().map(|l| l.direction).collect();
    // upper (thicker, lower-R) metals are cheaper per GCell, so long
    // nets are pulled up the stack as real global routers do
    let r_max = stack
        .layers()
        .iter()
        .map(|l| l.r_per_um)
        .fold(f64::MIN, f64::max);
    let layer_cost: Vec<f64> = stack
        .layers()
        .iter()
        .map(|l| 0.55 + 0.45 * (l.r_per_um / r_max))
        .collect();

    // per-cut via costs: the F2F hybrid bond is electrically trivial
    // (44 mOhm / 1 fF), so crossing it costs far less than a regular
    // via stack — this is what lets the router use the macro die's
    // thick metals for logic-die nets (paper Sec. III: "routing paths
    // starting and ending in the same die but still traversing the
    // other die to avoid congestions")
    let via_costs: Vec<f64> = stack
        .vias()
        .iter()
        .map(|v| if v.is_f2f { 0.6 } else { cfg.via_cost })
        .collect();
    let par = cfg.parallelism;
    let new_router = |g: &RouteGrid| {
        AStar::new(
            g,
            dirs.clone(),
            layer_cost.clone(),
            via_costs.clone(),
            cfg.via_cost,
        )
    };
    // Serial runs keep one router for the whole design (scratch reuse
    // across chunks); parallel runs build one per worker per chunk.
    let mut serial_router = (par.effective_threads() <= 1).then(|| new_router(&grid));

    // order: short nets first (they have the least flexibility)
    let mut order: Vec<usize> = (0..nets.len())
        .filter(|&i| nets[i].1.len() >= 2 && nets[i].1.len() <= cfg.max_net_degree)
        .collect();
    order.sort_by_key(|&i| {
        let pins = &nets[i].1;
        let mut lo = pins[0].0;
        let mut hi = pins[0].0;
        for p in pins {
            lo = lo.min(p.0);
            hi = hi.max(p.0);
        }
        lo.manhattan(hi)
    });

    let mut routes: Vec<Option<RoutedNet>> = vec![None; nets.len()];
    let mut net_edges: Vec<Vec<u32>> = vec![Vec::new(); nets.len()];

    for iter in 0..cfg.iterations.max(1) {
        let _iter_span = macro3d_obs::span_full!("route/iter{iter}");
        ROUTE_ITERATIONS.inc();
        let reroute: Vec<usize> = if iter == 0 {
            order.clone()
        } else {
            // rip up nets crossing overflowed edges
            let over: std::collections::HashSet<u32> = grid
                .usage
                .iter()
                .enumerate()
                .filter(|&(e, &u)| u > grid.capacity(e))
                .map(|(e, _)| e as u32)
                .collect();
            if over.is_empty() {
                break;
            }
            RIPUP_ROUNDS.inc();
            let victims: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| net_edges[i].iter().any(|e| over.contains(e)))
                .collect();
            grid.accumulate_history(1.0);
            for &i in &victims {
                for &e in &net_edges[i] {
                    grid.usage[e as usize] -= 1.0;
                }
                net_edges[i].clear();
                routes[i] = None;
            }
            victims
        };

        // Batched commit: each chunk routes against the congestion
        // state frozen at its start, then usage lands serially in
        // chunk order. Identical results for any thread count.
        NETS_REROUTED.add(reroute.len() as u64);
        for chunk in reroute.chunks(par.chunk_size.max(1)) {
            CHUNK_NETS.record(chunk.len() as u64);
            let results: Vec<(RoutedNet, Vec<u32>)> = match serial_router.as_mut() {
                Some(router) => chunk
                    .iter()
                    .map(|&i| route_net(router, &grid, &nets[i].1, f2f_cut))
                    .collect(),
                None => parallel_map_with(
                    chunk,
                    &par,
                    || new_router(&grid),
                    |router, _k, &i| route_net(router, &grid, &nets[i].1, f2f_cut),
                ),
            };
            for (&i, (net_route, edges)) in chunk.iter().zip(results) {
                for &e in &edges {
                    grid.usage[e as usize] += 1.0;
                }
                net_edges[i] = edges;
                routes[i] = Some(net_route);
            }
        }
        // serial commit section, so the per-iteration overflow history
        // is deterministic for any thread count
        if macro3d_obs::enabled(macro3d_obs::ObsLevel::Summary) {
            macro3d_obs::registry()
                .series("route/overflow")
                .push(grid.total_overflow());
        }
    }

    // assemble result indexed by NetId
    let mut result = RoutedDesign {
        nets: vec![None; num_nets],
        ..Default::default()
    };
    for (k, (net_id, _)) in nets.iter().enumerate() {
        if let Some(r) = routes[k].take() {
            result.total_wirelength_um += r.wirelength_um();
            result.f2f_bumps += r.f2f_crossings as u64;
            result.nets[net_id.index()] = Some(r);
        }
    }
    result.overflow = grid.total_overflow();
    result.overflowed_edges = grid.overflowed_edges();
    result.max_utilization = grid.max_utilization();
    // bump-density check: crossings per GCell vs the pitch budget
    if let (Some(pitch), Some(cut)) = (cfg.f2f_pitch_um, f2f_cut) {
        let per_gcell = (cfg.gcell_um / pitch).max(1.0).powi(2) as u32;
        let mut counts: std::collections::HashMap<(i64, i64), u32> =
            std::collections::HashMap::new();
        for r in result.nets.iter().flatten() {
            for v in &r.vias {
                if v.layer as usize == cut {
                    let b = grid.gcell_of(v.at);
                    *counts.entry((b.x as i64, b.y as i64)).or_insert(0) += 1;
                }
            }
        }
        result.f2f_overcrowded_gcells = counts.values().filter(|&&c| c > per_gcell).count();
    }
    result
}

/// Negotiation iterations executed (first pass included).
static ROUTE_ITERATIONS: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("route/iterations");
/// Iterations that actually ripped up overflowed nets.
static RIPUP_ROUNDS: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("route/ripup_rounds");
/// Nets (re)routed across all iterations.
static NETS_REROUTED: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("route/nets_rerouted");
/// Nets per batched-commit chunk.
static CHUNK_NETS: macro3d_obs::SiteHistogram = macro3d_obs::SiteHistogram::new("route/chunk_nets");

/// Routes one net: Steiner decomposition into 2-pin edges, each A*-
/// routed; returns the merged route and the wire-edge indices used.
fn route_net(
    router: &mut AStar,
    grid: &RouteGrid,
    pins: &[RoutePin],
    f2f_cut: Option<usize>,
) -> (RoutedNet, Vec<u32>) {
    let points: Vec<Point> = pins.iter().map(|p| p.0).collect();
    let layer_of = |pt: Point| -> u16 { pins.iter().find(|p| p.0 == pt).map(|p| p.1).unwrap_or(0) };
    let mut net = RoutedNet::default();
    let mut edges = Vec::new();
    for (a, b) in steiner_edges(&points) {
        let src = (grid.gcell_of(a), layer_of(a));
        let dst = (grid.gcell_of(b), layer_of(b));
        let path = router.search(grid, src, dst);
        append_path(grid, &path, &mut net, &mut edges, f2f_cut);
    }
    (net, edges)
}

/// Converts a node path into merged segments, vias and edge usage.
fn append_path(
    grid: &RouteGrid,
    path: &[(u16, u16, u16)], // (layer, x, y)
    net: &mut RoutedNet,
    edges: &mut Vec<u32>,
    f2f_cut: Option<usize>,
) {
    if path.len() < 2 {
        return;
    }
    let mut seg_start = 0usize;
    for k in 1..path.len() {
        let (pl, px, py) = path[k - 1];
        let (cl, cx, cy) = path[k];
        if cl != pl {
            // via step: flush any open segment
            flush_segment(grid, path, seg_start, k - 1, net);
            seg_start = k;
            let lo = cl.min(pl) as usize;
            net.vias.push(Via {
                layer: lo as u16,
                at: grid.gcell_center(BinIx::new(cx as u32, cy as u32)),
            });
            if f2f_cut == Some(lo) {
                net.f2f_crossings += 1;
            }
        } else {
            // wire step: record edge usage
            let horizontal = cy == py;
            let (ex, ey) = (cx.min(px) as usize, cy.min(py) as usize);
            if let Some(e) = grid.edge_ix(cl as usize, ex, ey, horizontal) {
                edges.push(e as u32);
            }
            // direction change on same layer: split segment
            if k >= 2 {
                let (ql, _qx, qy) = path[k - 2];
                if ql == pl {
                    let prev_horiz = py == qy;
                    if prev_horiz != horizontal {
                        flush_segment(grid, path, seg_start, k - 1, net);
                        seg_start = k - 1;
                    }
                }
            }
        }
    }
    flush_segment(grid, path, seg_start, path.len() - 1, net);
}

fn flush_segment(
    grid: &RouteGrid,
    path: &[(u16, u16, u16)],
    from: usize,
    to: usize,
    net: &mut RoutedNet,
) {
    if to <= from {
        return;
    }
    let (l, x0, y0) = path[from];
    let (_, x1, y1) = path[to];
    if x0 == x1 && y0 == y1 {
        return;
    }
    net.segments.push(RouteSeg {
        layer: l,
        from: grid.gcell_center(BinIx::new(x0 as u32, y0 as u32)),
        to: grid.gcell_center(BinIx::new(x1 as u32, y1 as u32)),
    });
}

/// Reusable A* state over the (layer, x, y) graph.
struct AStar {
    nx: usize,
    ny: usize,
    layers: usize,
    dirs: Vec<Direction>,
    layer_cost: Vec<f64>,
    /// cost of crossing cut `i` (between layers i and i+1)
    via_costs: Vec<f64>,
    /// minimum via cost (admissible heuristic term)
    via_cost: f64,
    dist: Vec<f32>,
    parent: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl AStar {
    fn new(
        grid: &RouteGrid,
        dirs: Vec<Direction>,
        layer_cost: Vec<f64>,
        via_costs: Vec<f64>,
        default_via_cost: f64,
    ) -> Self {
        let nx = grid.bins().nx() as usize;
        let ny = grid.bins().ny() as usize;
        let n = nx * ny * grid.layers();
        let min_via = via_costs.iter().fold(default_via_cost, |a, &b| a.min(b));
        AStar {
            nx,
            ny,
            layers: grid.layers(),
            dirs,
            layer_cost,
            via_costs,
            via_cost: min_via,
            dist: vec![0.0; n],
            parent: vec![u32::MAX; n],
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    #[inline]
    fn node(&self, l: usize, x: usize, y: usize) -> usize {
        (l * self.ny + y) * self.nx + x
    }

    #[inline]
    fn unpack(&self, n: usize) -> (u16, u16, u16) {
        let x = n % self.nx;
        let y = (n / self.nx) % self.ny;
        let l = n / (self.nx * self.ny);
        (l as u16, x as u16, y as u16)
    }

    /// Wire-step congestion cost multiplier for an edge.
    #[inline]
    fn edge_cost(&self, grid: &RouteGrid, e: usize) -> f64 {
        let u = grid.usage[e];
        let c = grid.capacity(e);
        let h = grid.history[e];
        debug_assert!(c > 0.0, "blocked edges are filtered before costing");
        let base = if u + 1.0 > c {
            (4.0 + 4.0 * (u + 1.0 - c) as f64).min(16.0)
        } else {
            1.0 + 0.3 * (u / c) as f64
        };
        (base + h as f64).min(24.0)
    }

    /// A* from `(gcell, layer)` to `(gcell, layer)`. Returns the node
    /// path (start to goal inclusive).
    fn search(
        &mut self,
        grid: &RouteGrid,
        src: (BinIx, u16),
        dst: (BinIx, u16),
    ) -> Vec<(u16, u16, u16)> {
        self.epoch += 1;
        let epoch = self.epoch;
        let start = self.node(
            (src.1 as usize).min(self.layers - 1),
            src.0.x as usize,
            src.0.y as usize,
        );
        let goal = self.node(
            (dst.1 as usize).min(self.layers - 1),
            dst.0.x as usize,
            dst.0.y as usize,
        );
        let (gl, gx, gy) = self.unpack(goal);

        let min_layer_cost = self.layer_cost.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        // Weighted A* (epsilon = 1.25): bounded suboptimality for a
        // large reduction in explored nodes under congestion — the
        // standard engineering trade in global routers.
        const EPSILON: f64 = 1.25;
        let h = move |s: &Self, n: usize| -> f64 {
            let (l, x, y) = s.unpack(n);
            let dx = (x as i64 - gx as i64).abs() as f64;
            let dy = (y as i64 - gy as i64).abs() as f64;
            let dl = (l as i64 - gl as i64).abs() as f64;
            ((dx + dy) * min_layer_cost + dl * s.via_cost) * EPSILON
        };

        let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
        self.dist[start] = 0.0;
        self.stamp[start] = epoch;
        self.parent[start] = u32::MAX;
        heap.push((Reverse(to_millis(h(self, start))), start as u32));

        let mut explored = 0usize;
        // exploration budget proportional to the path length: stuck
        // searches fall back to an L-route whose overflow is reported
        let (sl, sx, sy) = self.unpack(start);
        let span = (sx as i64 - gx as i64).abs()
            + (sy as i64 - gy as i64).abs()
            + (sl as i64 - gl as i64).abs();
        let explore_cap = ((span as usize + 24) * 512).min(self.nx * self.ny * self.layers);
        while let Some((Reverse(f), n)) = heap.pop() {
            let n = n as usize;
            if self.stamp[n] != epoch {
                continue;
            }
            let g = self.dist[n];
            let _ = f;
            let _ = g;
            if n == goal {
                return self.reconstruct(goal);
            }
            explored += 1;
            if explored > explore_cap {
                break;
            }
            let (l, x, y) = self.unpack(n);
            let (l, x, y) = (l as usize, x as usize, y as usize);

            // wire steps along the preferred direction
            let steps: [(i64, i64); 2] = match self.dirs[l] {
                Direction::Horizontal => [(-1, 0), (1, 0)],
                Direction::Vertical => [(0, -1), (0, 1)],
            };
            for (dx, dy) in steps {
                let nx2 = x as i64 + dx;
                let ny2 = y as i64 + dy;
                if nx2 < 0 || ny2 < 0 || nx2 >= self.nx as i64 || ny2 >= self.ny as i64 {
                    continue;
                }
                let horizontal = dy == 0;
                let (ex, ey) = ((x as i64).min(nx2) as usize, (y as i64).min(ny2) as usize);
                let Some(e) = grid.edge_ix(l, ex, ey, horizontal) else {
                    continue;
                };
                if grid.capacity(e) <= 0.0 {
                    // fully blocked (macro internal routing): climb the
                    // stack or detour; vias remain available
                    continue;
                }
                let cost = self.edge_cost(grid, e) * self.layer_cost[l];
                self.relax(
                    n,
                    self.node(l, nx2 as usize, ny2 as usize),
                    g as f64 + cost,
                    epoch,
                    &mut heap,
                    &h,
                );
            }
            // via steps (per-cut costs; the F2F bond is cheap)
            if l + 1 < self.layers {
                let c = self.via_costs.get(l).copied().unwrap_or(self.via_cost);
                self.relax(
                    n,
                    self.node(l + 1, x, y),
                    g as f64 + c,
                    epoch,
                    &mut heap,
                    &h,
                );
            }
            if l > 0 {
                let c = self.via_costs.get(l - 1).copied().unwrap_or(self.via_cost);
                self.relax(
                    n,
                    self.node(l - 1, x, y),
                    g as f64 + c,
                    epoch,
                    &mut heap,
                    &h,
                );
            }
        }
        // fallback: direct L path on the src layer pair (router always
        // produces a connection)
        self.l_fallback(src, dst)
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn relax(
        &mut self,
        from: usize,
        to: usize,
        g: f64,
        epoch: u32,
        heap: &mut BinaryHeap<(Reverse<u64>, u32)>,
        h: &impl Fn(&Self, usize) -> f64,
    ) {
        if self.stamp[to] != epoch || (g as f32) < self.dist[to] {
            self.stamp[to] = epoch;
            self.dist[to] = g as f32;
            self.parent[to] = from as u32;
            heap.push((Reverse(to_millis(g + h(self, to))), to as u32));
        }
    }

    fn reconstruct(&self, goal: usize) -> Vec<(u16, u16, u16)> {
        let mut path = Vec::new();
        let mut n = goal;
        loop {
            path.push(self.unpack(n));
            let p = self.parent[n];
            if p == u32::MAX {
                break;
            }
            n = p as usize;
        }
        path.reverse();
        path
    }

    /// Degenerate L-shaped fallback path (x then y on the source
    /// layer, then via stack to the goal layer).
    fn l_fallback(&self, src: (BinIx, u16), dst: (BinIx, u16)) -> Vec<(u16, u16, u16)> {
        let mut path = Vec::new();
        let l0 = src.1;
        let (x0, y0) = (src.0.x as i64, src.0.y as i64);
        let (x1, y1) = (dst.0.x as i64, dst.0.y as i64);
        let mut x = x0;
        let mut y = y0;
        path.push((l0, x as u16, y as u16));
        while x != x1 {
            x += (x1 - x).signum();
            path.push((l0, x as u16, y as u16));
        }
        while y != y1 {
            y += (y1 - y).signum();
            path.push((l0, x as u16, y as u16));
        }
        let mut l = l0 as i64;
        while l != dst.1 as i64 {
            l += (dst.1 as i64 - l).signum();
            path.push((l as u16, x as u16, y as u16));
        }
        path
    }
}

#[inline]
fn to_millis(c: f64) -> u64 {
    (c * 1024.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::stack::{n28_stack, DieRole};
    use macro3d_tech::{CombinedBeol, F2fSpec};

    fn die() -> Rect {
        Rect::from_um(0.0, 0.0, 200.0, 200.0)
    }

    fn two_pin_net(a: (f64, f64, u16), b: (f64, f64, u16)) -> Vec<(NetId, Vec<RoutePin>)> {
        vec![(
            NetId(0),
            vec![
                (Point::from_um(a.0, a.1), a.2),
                (Point::from_um(b.0, b.1), b.2),
            ],
        )]
    }

    #[test]
    fn routes_simple_net() {
        let stack = n28_stack(6, DieRole::Logic);
        let nets = two_pin_net((10.0, 10.0, 0), (150.0, 150.0, 0));
        let r = route_design(die(), &stack, &[], &nets, 1, &RouteConfig::default());
        let net = r.net(NetId(0)).expect("routed");
        // manhattan distance is 280um; routed length must be at least
        // that (minus one gcell of quantization) and not wildly more
        assert!(net.wirelength_um() >= 260.0, "wl {}", net.wirelength_um());
        assert!(net.wirelength_um() <= 400.0, "wl {}", net.wirelength_um());
        assert!(!net.vias.is_empty(), "needs layer changes to go diagonal");
        assert_eq!(net.f2f_crossings, 0);
        assert_eq!(r.f2f_bumps, 0);
    }

    #[test]
    fn f2f_crossings_counted_in_combined_stack() {
        let combined = CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(4, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        );
        // pin on logic M1 to pin on macro-die M4_MD (layer 9)
        let nets = two_pin_net((10.0, 10.0, 0), (100.0, 100.0, 9));
        let r = route_design(
            die(),
            combined.stack(),
            &[],
            &nets,
            1,
            &RouteConfig::default(),
        );
        let net = r.net(NetId(0)).expect("routed");
        assert!(net.f2f_crossings >= 1, "must cross the F2F cut");
        assert_eq!(r.f2f_bumps as u32, net.f2f_crossings);
    }

    #[test]
    fn congestion_spreads_nets() {
        let stack = n28_stack(2, DieRole::Logic);
        // many parallel nets through a narrow channel
        let mut nets = Vec::new();
        for i in 0..40 {
            nets.push((
                NetId(i),
                vec![
                    (Point::from_um(5.0, 100.0), 0u16),
                    (Point::from_um(195.0, 100.0), 0u16),
                ],
            ));
        }
        // tiny capacity: forces spreading
        let cfg = RouteConfig {
            utilization: 0.02,
            ..RouteConfig::default()
        };
        let r = route_design(die(), &stack, &[], &nets, 40, &cfg);
        // all nets routed
        assert!(r.nets.iter().filter(|n| n.is_some()).count() == 40);
        assert!(r.total_wirelength_um >= 40.0 * 180.0);
    }

    #[test]
    fn obstacle_forces_detour_or_layer_change() {
        let stack = n28_stack(6, DieRole::Logic);
        let wall = Rect::from_um(90.0, 0.0, 110.0, 200.0);
        // wall blocks M1..M4 fully
        let obstacles: Vec<(usize, Rect)> = (0..4).map(|l| (l, wall)).collect();
        let nets = two_pin_net((10.0, 100.0, 0), (190.0, 100.0, 0));
        let r = route_design(die(), &stack, &obstacles, &nets, 1, &RouteConfig::default());
        let net = r.net(NetId(0)).expect("routed");
        // must hop to M5/M6 to cross the wall
        let by_layer = net.wirelength_by_layer(6);
        assert!(
            by_layer[4] + by_layer[5] > 0.0,
            "crossing uses upper metals: {by_layer:?}"
        );
    }

    #[test]
    fn degenerate_and_oversize_nets_skipped() {
        let stack = n28_stack(6, DieRole::Logic);
        let nets = vec![
            (NetId(0), vec![(Point::from_um(1.0, 1.0), 0u16)]), // single pin
            (
                NetId(1),
                (0..600)
                    .map(|i| (Point::from_um(i as f64 % 100.0, 1.0), 0u16))
                    .collect(),
            ), // oversized
        ];
        let r = route_design(die(), &stack, &[], &nets, 2, &RouteConfig::default());
        assert!(r.net(NetId(0)).is_none());
        assert!(r.net(NetId(1)).is_none());
    }

    #[test]
    fn bump_density_check_counts_hotspots() {
        let combined = CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(4, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        );
        // many nets forced through the same area to the macro die
        let mut nets = Vec::new();
        for i in 0..300u32 {
            nets.push((
                NetId(i),
                vec![
                    (Point::from_um(100.0, 100.0), 0u16),
                    (Point::from_um(105.0, 105.0), 9u16),
                ],
            ));
        }
        // a coarse bond pitch makes per-gcell capacity tiny
        let mut cfg = RouteConfig {
            f2f_pitch_um: Some(5.0),
            ..RouteConfig::default()
        };
        let r = route_design(die(), combined.stack(), &[], &nets, 300, &cfg);
        assert!(r.f2f_bumps >= 300);
        assert!(
            r.f2f_overcrowded_gcells > 0,
            "300 bumps in one spot overflow a 4-bump gcell"
        );
        // with the real 1um pitch the same pattern fits
        cfg.f2f_pitch_um = Some(1.0);
        let r2 = route_design(die(), combined.stack(), &[], &nets, 300, &cfg);
        assert!(r2.f2f_overcrowded_gcells <= r.f2f_overcrowded_gcells);
    }

    #[test]
    fn thread_count_never_changes_routes() {
        let stack = n28_stack(4, DieRole::Logic);
        // congested fan pattern: enough contention that history and
        // batching actually matter
        let mut nets = Vec::new();
        for i in 0..120u32 {
            let x = 5.0 + (i % 12) as f64 * 16.0;
            let y = 5.0 + (i / 12) as f64 * 19.0;
            nets.push((
                NetId(i),
                vec![
                    (Point::from_um(x, y), 0u16),
                    (Point::from_um(100.0, 100.0), 0u16),
                ],
            ));
        }
        let mut cfg = RouteConfig {
            utilization: 0.05,
            parallelism: Parallelism::serial().with_chunk_size(8),
            ..RouteConfig::default()
        };
        let reference = route_design(die(), &stack, &[], &nets, 120, &cfg);
        for threads in [2, 4, 8] {
            cfg.parallelism = Parallelism::threads(threads).with_chunk_size(8);
            let got = route_design(die(), &stack, &[], &nets, 120, &cfg);
            assert_eq!(got.total_wirelength_um, reference.total_wirelength_um);
            assert_eq!(got.overflow, reference.overflow);
            for (a, b) in got.nets.iter().zip(reference.nets.iter()) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.segments, b.segments, "threads={threads}");
                assert_eq!(a.vias, b.vias);
            }
        }
    }

    #[test]
    fn multi_pin_net_connects_all_pins() {
        let stack = n28_stack(6, DieRole::Logic);
        let pins: Vec<RoutePin> = [(10.0, 10.0), (190.0, 10.0), (10.0, 190.0), (100.0, 100.0)]
            .iter()
            .map(|&(x, y)| (Point::from_um(x, y), 0u16))
            .collect();
        let nets = vec![(NetId(0), pins)];
        let r = route_design(die(), &stack, &[], &nets, 1, &RouteConfig::default());
        let net = r.net(NetId(0)).expect("routed");
        // spanning 3 edges worth of wire
        assert!(net.wirelength_um() > 300.0);
    }
}
