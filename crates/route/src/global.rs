//! Negotiated-congestion global routing (PathFinder-style) as an
//! incremental [`Router`] session with a batched-commit parallel
//! inner loop.
//!
//! The session is constructed once from a [`RouteRequest`] and keeps
//! everything that survives between routing calls: the GCell grid
//! with its maintained per-edge cost array and overflow bitset, the
//! per-net Steiner topologies, and the committed paths. The first
//! [`Router::route`] pays full cost; [`Router::update`] rips up only
//! the nets whose pins changed and renegotiates from the existing
//! committed state — the same shape `StaSession` gave static timing.
//!
//! Each rip-up iteration partitions its nets into fixed-size chunks.
//! A chunk is routed against a *frozen* congestion snapshot — workers
//! search in parallel, each borrowing pooled A* scratch buffers — and
//! then usage is committed serially in chunk order before the next
//! chunk starts. Because the chunk partition and commit order depend
//! only on [`RouteConfig`] (never on the thread count), the routed
//! result is bit-identical for any `parallelism.threads`.

use crate::gcell::RouteGrid;
use crate::routed::{RouteSeg, RoutedDesign, RoutedNet, Via};
use crate::search::{route_leg, ScratchPool, SearchShared};
use crate::steiner::steiner_edges;
use macro3d_geom::{BinIx, Dbu, Point, Rect};
use macro3d_netlist::NetId;
use macro3d_par::{checkpoint, note_degradation, parallel_map_with, Checkpoint, Parallelism};
use macro3d_tech::stack::MetalStack;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Router configuration.
#[derive(Clone, Copy, Debug)]
pub struct RouteConfig {
    /// GCell pitch, µm.
    pub gcell_um: f64,
    /// Fraction of raw tracks available to global routing.
    pub utilization: f64,
    /// Rip-up and re-route iterations.
    pub iterations: usize,
    /// Cost of one via transition (in GCell-step units).
    pub via_cost: f64,
    /// Nets with more pins than this are skipped (pre-CTS clock nets
    /// are routed by CTS instead).
    pub max_net_degree: usize,
    /// F2F bond pitch, µm — bounds how many bumps fit per GCell; the
    /// result reports GCells exceeding it. `None` disables the check.
    pub f2f_pitch_um: Option<f64>,
    /// Worker threads and batch size for the chunked inner loop. The
    /// chunk size changes routing results (it sets the commit
    /// granularity); the thread count never does.
    pub parallelism: Parallelism,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            gcell_um: 10.0,
            utilization: 0.5,
            iterations: 3,
            via_cost: 2.0,
            max_net_degree: 512,
            f2f_pitch_um: Some(1.0),
            parallelism: Parallelism::default(),
        }
    }
}

impl RouteConfig {
    /// Starts a validating builder from the defaults (the router
    /// sibling of `FlowConfig::builder`).
    pub fn builder() -> RouteConfigBuilder {
        RouteConfigBuilder {
            cfg: RouteConfig::default(),
        }
    }
}

/// A rejected [`RouteConfig`] field (see [`RouteConfigBuilder::build`]).
#[derive(Clone, Debug, PartialEq)]
pub enum RouteConfigError {
    /// A length that must be strictly positive was not.
    NonPositive {
        /// Offending field.
        field: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// `utilization` fell outside `(0, 1]`.
    Utilization {
        /// Rejected value.
        value: f64,
    },
    /// `iterations` was zero (the router must run at least one pass).
    ZeroIterations,
}

impl fmt::Display for RouteConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be > 0, got {value}")
            }
            RouteConfigError::Utilization { value } => {
                write!(f, "utilization must be in (0, 1], got {value}")
            }
            RouteConfigError::ZeroIterations => {
                write!(f, "iterations must be >= 1")
            }
        }
    }
}

impl std::error::Error for RouteConfigError {}

/// Builds a [`RouteConfig`] with range validation. Obtain one via
/// [`RouteConfig::builder`].
///
/// # Examples
///
/// ```
/// use macro3d_route::RouteConfig;
///
/// let cfg = RouteConfig::builder()
///     .gcell_um(5.0)
///     .iterations(4)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.iterations, 4);
///
/// assert!(RouteConfig::builder().utilization(1.5).build().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct RouteConfigBuilder {
    cfg: RouteConfig,
}

impl RouteConfigBuilder {
    /// GCell pitch, µm.
    pub fn gcell_um(mut self, um: f64) -> Self {
        self.cfg.gcell_um = um;
        self
    }

    /// Fraction of raw tracks available to global routing, `(0, 1]`.
    pub fn utilization(mut self, u: f64) -> Self {
        self.cfg.utilization = u;
        self
    }

    /// Rip-up and re-route iterations (at least 1).
    pub fn iterations(mut self, n: usize) -> Self {
        self.cfg.iterations = n;
        self
    }

    /// Cost of one via transition, in GCell-step units.
    pub fn via_cost(mut self, cost: f64) -> Self {
        self.cfg.via_cost = cost;
        self
    }

    /// Maximum routed net degree (bigger nets are skipped).
    pub fn max_net_degree(mut self, degree: usize) -> Self {
        self.cfg.max_net_degree = degree;
        self
    }

    /// F2F bond pitch for the bump-density check (`None` disables).
    pub fn f2f_pitch_um(mut self, pitch: Option<f64>) -> Self {
        self.cfg.f2f_pitch_um = pitch;
        self
    }

    /// Worker threads and commit chunk size.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.cfg.parallelism = par;
        self
    }

    /// Validates every range and returns the config.
    ///
    /// # Errors
    ///
    /// Returns the first [`RouteConfigError`] encountered: a
    /// non-positive (or NaN) `gcell_um`, a `utilization` outside
    /// `(0, 1]`, or zero `iterations`.
    pub fn build(self) -> Result<RouteConfig, RouteConfigError> {
        let cfg = self.cfg;
        if cfg.gcell_um.is_nan() || cfg.gcell_um <= 0.0 {
            return Err(RouteConfigError::NonPositive {
                field: "gcell_um",
                value: cfg.gcell_um,
            });
        }
        if !(cfg.utilization > 0.0 && cfg.utilization <= 1.0) {
            return Err(RouteConfigError::Utilization {
                value: cfg.utilization,
            });
        }
        if cfg.iterations == 0 {
            return Err(RouteConfigError::ZeroIterations);
        }
        Ok(cfg)
    }
}

/// A pin handed to the router: location plus routing-stack layer.
pub type RoutePin = (Point, u16);

/// Everything the router needs to start a session.
///
/// `nets` carries, per net, its pins with their layer in the given
/// stack (the flows map macro-die pins to `_MD` layers here).
/// `obstacles` are (layer, rect) capacity reductions (macro internal
/// routing). `num_nets` sizes the result's per-net table.
#[derive(Clone, Copy, Debug)]
pub struct RouteRequest<'a> {
    /// Die (routing area) outline.
    pub die: Rect,
    /// The metal stack routed over (single-die or combined F2F).
    pub stack: &'a MetalStack,
    /// Capacity reductions: (layer, rect) pairs.
    pub obstacles: &'a [(usize, Rect)],
    /// The nets to route, each with its pins.
    pub nets: &'a [(NetId, Vec<RoutePin>)],
    /// Size of the result's per-net table (`>= max NetId + 1`).
    pub num_nets: usize,
}

/// One leg of a net's Steiner topology: two (GCell, layer) endpoints.
type Leg = ((BinIx, u16), (BinIx, u16));

/// An incremental global-routing session.
///
/// Construct once with [`Router::new`], then call [`Router::route`]
/// for the initial result. After the caller perturbs some nets (pin
/// moves from sizing, repeater or hold-fix insertion, a DSE step),
/// [`Router::update`] re-routes only those nets — every other net
/// keeps its committed path, and the negotiation loop then rips up
/// just what overflows. Grid, costs, congestion history, Steiner
/// topologies, and search scratch all persist across calls.
///
/// Every net is guaranteed a route (possibly through overflowed
/// edges, reported in the result).
///
/// # Examples
///
/// ```
/// use macro3d_geom::{Point, Rect};
/// use macro3d_netlist::NetId;
/// use macro3d_route::{RouteConfig, RouteRequest, Router};
/// use macro3d_tech::stack::{n28_stack, DieRole};
///
/// let stack = n28_stack(6, DieRole::Logic);
/// let nets = vec![(
///     NetId(0),
///     vec![(Point::from_um(10.0, 10.0), 0), (Point::from_um(90.0, 50.0), 0)],
/// )];
/// let mut router = Router::new(
///     &RouteRequest {
///         die: Rect::from_um(0.0, 0.0, 100.0, 100.0),
///         stack: &stack,
///         obstacles: &[],
///         nets: &nets,
///         num_nets: 1,
///     },
///     &RouteConfig::default(),
/// );
/// let first = router.route();
/// assert!(first.net(NetId(0)).is_some());
///
/// // move a pin and re-route just that net
/// let moved = vec![(
///     NetId(0),
///     vec![(Point::from_um(10.0, 10.0), 0), (Point::from_um(50.0, 90.0), 0)],
/// )];
/// let second = router.update(&moved);
/// assert!(second.net(NetId(0)).is_some());
/// ```
pub struct Router {
    cfg: RouteConfig,
    grid: RouteGrid,
    f2f_cut: Option<usize>,
    shared: Arc<SearchShared>,
    pool: ScratchPool,
    /// owned copy of the request's nets (pins are replaced by
    /// `update`).
    nets: Vec<(NetId, Vec<RoutePin>)>,
    /// `NetId` → index into the parallel per-net tables.
    index: HashMap<NetId, usize>,
    num_nets: usize,
    /// routable nets sorted by bounding-box span (short first — they
    /// have the least flexibility).
    order: Vec<usize>,
    /// cached Steiner decomposition per net (empty for skipped nets).
    topo: Vec<Vec<Leg>>,
    routes: Vec<Option<RoutedNet>>,
    /// wire edges committed by each net's current route.
    net_edges: Vec<Vec<u32>>,
    /// nets awaiting (re-)routing in the next negotiation.
    pending: Vec<bool>,
}

/// Cloning snapshots the whole session — grid usage/history, committed
/// routes, pending set — so a cached router can be deep-copied and
/// driven forward (e.g. `update`) without disturbing the original.
/// The scratch pool is per-clone (its contents never affect results);
/// the immutable search constants are shared by `Arc`.
impl Clone for Router {
    fn clone(&self) -> Self {
        Router {
            cfg: self.cfg,
            grid: self.grid.clone(),
            f2f_cut: self.f2f_cut,
            shared: Arc::clone(&self.shared),
            pool: ScratchPool::new(),
            nets: self.nets.clone(),
            index: self.index.clone(),
            num_nets: self.num_nets,
            order: self.order.clone(),
            topo: self.topo.clone(),
            routes: self.routes.clone(),
            net_edges: self.net_edges.clone(),
            pending: self.pending.clone(),
        }
    }
}

impl Router {
    /// Builds the session: grid, obstacles, search constants, and the
    /// Steiner topology of every routable net.
    pub fn new(req: &RouteRequest<'_>, cfg: &RouteConfig) -> Self {
        let mut grid = RouteGrid::new(
            req.die,
            req.stack,
            Dbu::from_um(cfg.gcell_um),
            cfg.utilization,
        );
        for &(layer, rect) in req.obstacles {
            grid.add_obstacle(layer, rect);
        }
        // per-cut via costs: the F2F hybrid bond is electrically
        // trivial (44 mOhm / 1 fF), so crossing it costs far less than
        // a regular via stack — this is what lets the router use the
        // macro die's thick metals for logic-die nets (paper Sec. III:
        // "routing paths starting and ending in the same die but still
        // traversing the other die to avoid congestions")
        let via_costs: Vec<f32> = req
            .stack
            .vias()
            .iter()
            .map(|v| if v.is_f2f { 0.6 } else { cfg.via_cost as f32 })
            .collect();
        let dirs = req.stack.layers().iter().map(|l| l.direction).collect();
        let shared = Arc::new(SearchShared::new(
            &grid,
            dirs,
            via_costs,
            cfg.via_cost as f32,
        ));

        let nets: Vec<(NetId, Vec<RoutePin>)> = req.nets.to_vec();
        let index = nets
            .iter()
            .enumerate()
            .map(|(k, (id, _))| (*id, k))
            .collect();
        let topo = nets
            .iter()
            .map(|(_, pins)| {
                if routable(pins, cfg.max_net_degree) {
                    topo_of(&grid, pins)
                } else {
                    Vec::new()
                }
            })
            .collect();
        let n = nets.len();
        let mut router = Router {
            cfg: *cfg,
            grid,
            f2f_cut: req.stack.f2f_cut(),
            shared,
            pool: ScratchPool::new(),
            nets,
            index,
            num_nets: req.num_nets,
            order: Vec::new(),
            topo,
            routes: vec![None; n],
            net_edges: vec![Vec::new(); n],
            pending: vec![false; n],
        };
        router.rebuild_order();
        router
    }

    /// Routes every net that does not yet have a committed path, then
    /// runs the negotiation loop over whatever overflows. The first
    /// call routes the whole design; calling it again is cheap when
    /// nothing is pending and nothing overflows.
    pub fn route(&mut self) -> RoutedDesign {
        for &i in &self.order {
            if self.routes[i].is_none() {
                self.pending[i] = true;
            }
        }
        self.negotiate();
        self.assemble()
    }

    /// Replaces the pins of `changed` nets (new `NetId`s are added to
    /// the session), rips up exactly those nets, and renegotiates
    /// incrementally: every unaffected net keeps its committed path
    /// unless a later iteration finds it crossing an overflowed edge.
    pub fn update(&mut self, changed: &[(NetId, Vec<RoutePin>)]) -> RoutedDesign {
        INCREMENTAL_UPDATES.inc();
        NETS_UPDATED.add(changed.len() as u64);
        for (id, pins) in changed {
            let k = match self.index.get(id) {
                Some(&k) => k,
                None => {
                    let k = self.nets.len();
                    self.nets.push((*id, Vec::new()));
                    self.topo.push(Vec::new());
                    self.routes.push(None);
                    self.net_edges.push(Vec::new());
                    self.pending.push(false);
                    self.index.insert(*id, k);
                    k
                }
            };
            for &e in &self.net_edges[k] {
                self.grid.release(e as usize);
            }
            self.net_edges[k].clear();
            self.routes[k] = None;
            self.nets[k].1.clone_from(pins);
            if routable(pins, self.cfg.max_net_degree) {
                self.topo[k] = topo_of(&self.grid, pins);
                self.pending[k] = true;
            } else {
                self.topo[k] = Vec::new();
                self.pending[k] = false;
            }
            self.num_nets = self.num_nets.max(id.index() + 1);
        }
        self.rebuild_order();
        self.negotiate();
        self.assemble()
    }

    /// The congestion grid (for reporting, e.g.
    /// [`crate::CongestionReport::from_grid`]).
    pub fn grid(&self) -> &RouteGrid {
        &self.grid
    }

    fn rebuild_order(&mut self) {
        let nets = &self.nets;
        let cfg_degree = self.cfg.max_net_degree;
        let mut order: Vec<usize> = (0..nets.len())
            .filter(|&i| routable(&nets[i].1, cfg_degree))
            .collect();
        order.sort_by_key(|&i| {
            let pins = &nets[i].1;
            let mut lo = pins[0].0;
            let mut hi = pins[0].0;
            for p in pins {
                lo = lo.min(p.0);
                hi = hi.max(p.0);
            }
            lo.manhattan(hi)
        });
        self.order = order;
    }

    /// The PathFinder loop: iteration 0 routes pending nets, later
    /// iterations rip up and re-route whatever crosses an overflowed
    /// edge (found via the grid's maintained bitset). Chunked batched
    /// commit keeps results thread-count invariant.
    fn negotiate(&mut self) {
        let par = self.cfg.parallelism;
        let max_iters = self.cfg.iterations.max(1);
        for iter in 0..max_iters {
            // budget checkpoint: stopping keeps every committed route
            // (best-so-far); the residual overflow is reported by
            // `assemble`
            if let Checkpoint::Stop(reason) = checkpoint("route/iterations") {
                note_degradation(
                    "route/iterations",
                    reason,
                    format!(
                        "stopped at rip-up iteration {iter} of {max_iters} \
                         with overflow {}",
                        self.grid.total_overflow()
                    ),
                );
                break;
            }
            let _iter_span = macro3d_obs::span_full!("route/iter{iter}");
            ROUTE_ITERATIONS.inc();
            let reroute: Vec<usize> = if iter == 0 {
                self.order
                    .iter()
                    .copied()
                    .filter(|&i| self.pending[i])
                    .collect()
            } else {
                if self.grid.overflow_count() == 0 {
                    break;
                }
                RIPUP_ROUNDS.inc();
                let victims: Vec<usize> = self
                    .order
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.net_edges[i]
                            .iter()
                            .any(|&e| self.grid.is_overflowed(e as usize))
                    })
                    .collect();
                self.grid.accumulate_history(1.0);
                for &i in &victims {
                    for &e in &self.net_edges[i] {
                        self.grid.release(e as usize);
                    }
                    self.net_edges[i].clear();
                    self.routes[i] = None;
                }
                victims
            };

            // Batched commit: each chunk routes against the congestion
            // state frozen at its start, then usage lands serially in
            // chunk order. Identical results for any thread count.
            NETS_REROUTED.add(reroute.len() as u64);
            for chunk in reroute.chunks(par.chunk_size.max(1)) {
                CHUNK_NETS.record(chunk.len() as u64);
                let grid = &self.grid;
                let shared = &*self.shared;
                let topo = &self.topo;
                let pool = &self.pool;
                let f2f_cut = self.f2f_cut;
                let results: Vec<(RoutedNet, Vec<u32>)> = parallel_map_with(
                    chunk,
                    &par,
                    || pool.checkout(shared),
                    |scratch, _k, &i| route_legs(shared, grid, scratch.get(), &topo[i], f2f_cut),
                );
                for (&i, (net_route, edges)) in chunk.iter().zip(results) {
                    for &e in &edges {
                        self.grid.commit(e as usize);
                    }
                    self.net_edges[i] = edges;
                    self.routes[i] = Some(net_route);
                }
            }
            // serial commit section, so the per-iteration overflow
            // history is deterministic for any thread count
            if macro3d_obs::enabled(macro3d_obs::ObsLevel::Summary) {
                macro3d_obs::registry()
                    .series("route/overflow")
                    .push(self.grid.total_overflow());
            }
        }
        self.pending.iter_mut().for_each(|p| *p = false);
    }

    /// Snapshots the session state into a [`RoutedDesign`] indexed by
    /// `NetId`.
    fn assemble(&self) -> RoutedDesign {
        let mut result = RoutedDesign {
            nets: vec![None; self.num_nets],
            ..Default::default()
        };
        for (k, (net_id, _)) in self.nets.iter().enumerate() {
            if let Some(r) = &self.routes[k] {
                result.total_wirelength_um += r.wirelength_um();
                result.f2f_bumps += r.f2f_crossings as u64;
                result.nets[net_id.index()] = Some(r.clone());
            }
        }
        result.overflow = self.grid.total_overflow();
        result.overflowed_edges = self.grid.overflowed_edges();
        result.max_utilization = self.grid.max_utilization();
        // Non-convergent routing is an explicit, named condition: any
        // residual overflow after the negotiation loop gave up (cap,
        // deadline, or plain iteration limit) lands in the flow's
        // degradation report with the nets still crossing overflowed
        // edges.
        if result.overflow > 0.0 {
            use std::fmt::Write as _;
            let offenders: Vec<NetId> = self
                .nets
                .iter()
                .enumerate()
                .filter(|(k, _)| {
                    self.net_edges[*k]
                        .iter()
                        .any(|&e| self.grid.is_overflowed(e as usize))
                })
                .map(|(_, (net_id, _))| *net_id)
                .collect();
            let mut detail = format!(
                "routing left residual overflow {} on {} edges: nets",
                result.overflow, result.overflowed_edges
            );
            for (k, n) in offenders.iter().enumerate() {
                if k == 8 {
                    let _ = write!(detail, " … (+{})", offenders.len() - 8);
                    break;
                }
                let _ = write!(detail, " {}", n.0);
            }
            note_degradation(
                "route/iterations",
                macro3d_par::StopReason::IterationCap,
                detail,
            );
        }
        // bump-density check: crossings per GCell vs the pitch budget
        if let (Some(pitch), Some(cut)) = (self.cfg.f2f_pitch_um, self.f2f_cut) {
            let per_gcell = (self.cfg.gcell_um / pitch).max(1.0).powi(2) as u32;
            let mut counts: HashMap<(i64, i64), u32> = HashMap::new();
            for r in result.nets.iter().flatten() {
                for v in &r.vias {
                    if v.layer as usize == cut {
                        let b = self.grid.gcell_of(v.at);
                        *counts.entry((b.x as i64, b.y as i64)).or_insert(0) += 1;
                    }
                }
            }
            result.f2f_overcrowded_gcells = counts.values().filter(|&&c| c > per_gcell).count();
        }
        result
    }
}

/// Whether the router handles a net (2 pins up to the degree cap;
/// pre-CTS clock nets are routed by CTS instead).
fn routable(pins: &[RoutePin], max_net_degree: usize) -> bool {
    pins.len() >= 2 && pins.len() <= max_net_degree
}

/// Decomposes a net into routed legs: Steiner topology over the pin
/// locations, each edge annotated with its endpoints' layers (Steiner
/// points introduced by the decomposition route from layer 0).
fn topo_of(grid: &RouteGrid, pins: &[RoutePin]) -> Vec<Leg> {
    let points: Vec<Point> = pins.iter().map(|p| p.0).collect();
    let layer_of = |pt: Point| -> u16 { pins.iter().find(|p| p.0 == pt).map(|p| p.1).unwrap_or(0) };
    steiner_edges(&points)
        .into_iter()
        .map(|(a, b)| {
            (
                (grid.gcell_of(a), layer_of(a)),
                (grid.gcell_of(b), layer_of(b)),
            )
        })
        .collect()
}

/// Routes one net's cached legs; returns the merged route and the
/// wire-edge indices used.
fn route_legs(
    shared: &SearchShared,
    grid: &RouteGrid,
    scratch: &mut crate::search::SearchScratch,
    legs: &[Leg],
    f2f_cut: Option<usize>,
) -> (RoutedNet, Vec<u32>) {
    let mut net = RoutedNet::default();
    let mut edges = Vec::new();
    for &(src, dst) in legs {
        let path = route_leg(shared, grid, scratch, src, dst);
        append_path(grid, &path, &mut net, &mut edges, f2f_cut);
    }
    (net, edges)
}

/// Negotiation iterations executed (first pass included).
static ROUTE_ITERATIONS: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("route/iterations");
/// Iterations that actually ripped up overflowed nets.
static RIPUP_ROUNDS: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("route/ripup_rounds");
/// Nets (re)routed across all iterations.
static NETS_REROUTED: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("route/nets_rerouted");
/// Nets per batched-commit chunk.
static CHUNK_NETS: macro3d_obs::SiteHistogram = macro3d_obs::SiteHistogram::new("route/chunk_nets");
/// `Router::update` calls served by a live session.
static INCREMENTAL_UPDATES: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("route/incremental_updates");
/// Nets handed to `Router::update` across all calls.
static NETS_UPDATED: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("route/nets_updated");

/// Converts a node path into merged segments, vias and edge usage.
fn append_path(
    grid: &RouteGrid,
    path: &[(u16, u16, u16)], // (layer, x, y)
    net: &mut RoutedNet,
    edges: &mut Vec<u32>,
    f2f_cut: Option<usize>,
) {
    if path.len() < 2 {
        return;
    }
    let mut seg_start = 0usize;
    for k in 1..path.len() {
        let (pl, px, py) = path[k - 1];
        let (cl, cx, cy) = path[k];
        if cl != pl {
            // via step: flush any open segment
            flush_segment(grid, path, seg_start, k - 1, net);
            seg_start = k;
            let lo = cl.min(pl) as usize;
            net.vias.push(Via {
                layer: lo as u16,
                at: grid.gcell_center(BinIx::new(cx as u32, cy as u32)),
            });
            if f2f_cut == Some(lo) {
                net.f2f_crossings += 1;
            }
        } else {
            // wire step: record edge usage
            let horizontal = cy == py;
            let (ex, ey) = (cx.min(px) as usize, cy.min(py) as usize);
            if let Some(e) = grid.edge_ix(cl as usize, ex, ey, horizontal) {
                edges.push(e as u32);
            }
            // direction change on same layer: split segment
            if k >= 2 {
                let (ql, _qx, qy) = path[k - 2];
                if ql == pl {
                    let prev_horiz = py == qy;
                    if prev_horiz != horizontal {
                        flush_segment(grid, path, seg_start, k - 1, net);
                        seg_start = k - 1;
                    }
                }
            }
        }
    }
    flush_segment(grid, path, seg_start, path.len() - 1, net);
}

fn flush_segment(
    grid: &RouteGrid,
    path: &[(u16, u16, u16)],
    from: usize,
    to: usize,
    net: &mut RoutedNet,
) {
    if to <= from {
        return;
    }
    let (l, x0, y0) = path[from];
    let (_, x1, y1) = path[to];
    if x0 == x1 && y0 == y1 {
        return;
    }
    net.segments.push(RouteSeg {
        layer: l,
        from: grid.gcell_center(BinIx::new(x0 as u32, y0 as u32)),
        to: grid.gcell_center(BinIx::new(x1 as u32, y1 as u32)),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::stack::{n28_stack, DieRole};
    use macro3d_tech::{CombinedBeol, F2fSpec};

    fn die() -> Rect {
        Rect::from_um(0.0, 0.0, 200.0, 200.0)
    }

    fn route_once(
        die: Rect,
        stack: &MetalStack,
        obstacles: &[(usize, Rect)],
        nets: &[(NetId, Vec<RoutePin>)],
        num_nets: usize,
        cfg: &RouteConfig,
    ) -> RoutedDesign {
        Router::new(
            &RouteRequest {
                die,
                stack,
                obstacles,
                nets,
                num_nets,
            },
            cfg,
        )
        .route()
    }

    fn two_pin_net(a: (f64, f64, u16), b: (f64, f64, u16)) -> Vec<(NetId, Vec<RoutePin>)> {
        vec![(
            NetId(0),
            vec![
                (Point::from_um(a.0, a.1), a.2),
                (Point::from_um(b.0, b.1), b.2),
            ],
        )]
    }

    #[test]
    fn routes_simple_net() {
        let stack = n28_stack(6, DieRole::Logic);
        let nets = two_pin_net((10.0, 10.0, 0), (150.0, 150.0, 0));
        let r = route_once(die(), &stack, &[], &nets, 1, &RouteConfig::default());
        let net = r.net(NetId(0)).expect("routed");
        // manhattan distance is 280um; routed length must be at least
        // that (minus one gcell of quantization) and not wildly more
        assert!(net.wirelength_um() >= 260.0, "wl {}", net.wirelength_um());
        assert!(net.wirelength_um() <= 400.0, "wl {}", net.wirelength_um());
        assert!(!net.vias.is_empty(), "needs layer changes to go diagonal");
        assert_eq!(net.f2f_crossings, 0);
        assert_eq!(r.f2f_bumps, 0);
    }

    #[test]
    fn builder_validates_ranges() {
        assert!(RouteConfig::builder().build().is_ok());
        let cfg = RouteConfig::builder()
            .gcell_um(5.0)
            .utilization(0.25)
            .iterations(7)
            .via_cost(1.0)
            .max_net_degree(64)
            .f2f_pitch_um(None)
            .parallelism(Parallelism::serial())
            .build()
            .expect("valid");
        assert_eq!(cfg.gcell_um, 5.0);
        assert_eq!(cfg.iterations, 7);
        assert_eq!(cfg.max_net_degree, 64);
        assert!(cfg.f2f_pitch_um.is_none());

        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                RouteConfig::builder().gcell_um(bad).build().unwrap_err(),
                RouteConfigError::NonPositive {
                    field: "gcell_um",
                    ..
                }
            ));
        }
        for bad in [0.0, -0.5, 1.01, f64::NAN] {
            assert!(matches!(
                RouteConfig::builder().utilization(bad).build().unwrap_err(),
                RouteConfigError::Utilization { .. }
            ));
        }
        assert_eq!(
            RouteConfig::builder().iterations(0).build().unwrap_err(),
            RouteConfigError::ZeroIterations
        );
        // errors render the offending field/value
        let msg = RouteConfig::builder()
            .gcell_um(-2.0)
            .build()
            .unwrap_err()
            .to_string();
        assert!(msg.contains("gcell_um") && msg.contains("-2"), "{msg}");
    }

    #[test]
    fn update_reroutes_changed_net_and_keeps_others() {
        let stack = n28_stack(6, DieRole::Logic);
        let mut nets = Vec::new();
        for i in 0..20u32 {
            let y = 5.0 + i as f64 * 9.0;
            nets.push((
                NetId(i),
                vec![
                    (Point::from_um(10.0, y), 0u16),
                    (Point::from_um(190.0, y), 0u16),
                ],
            ));
        }
        let mut router = Router::new(
            &RouteRequest {
                die: die(),
                stack: &stack,
                obstacles: &[],
                nets: &nets,
                num_nets: 20,
            },
            &RouteConfig::default(),
        );
        let first = router.route();
        let wl0 = first.net(NetId(0)).expect("routed").wirelength_um();

        // move net 0's sink much closer; everyone else is untouched
        let changed = vec![(
            NetId(0),
            vec![
                (Point::from_um(10.0, 5.0), 0u16),
                (Point::from_um(50.0, 5.0), 0u16),
            ],
        )];
        let second = router.update(&changed);
        let wl1 = second.net(NetId(0)).expect("rerouted").wirelength_um();
        assert!(
            wl1 < wl0 / 2.0,
            "shorter pins give a shorter route: {wl1} vs {wl0}"
        );
        for i in 1..20u32 {
            assert_eq!(
                first.net(NetId(i)),
                second.net(NetId(i)),
                "unchanged net {i} keeps its committed path"
            );
        }
        assert!(second.total_wirelength_um < first.total_wirelength_um);
    }

    #[test]
    fn update_accepts_new_nets() {
        let stack = n28_stack(6, DieRole::Logic);
        let nets = two_pin_net((10.0, 10.0, 0), (150.0, 150.0, 0));
        let mut router = Router::new(
            &RouteRequest {
                die: die(),
                stack: &stack,
                obstacles: &[],
                nets: &nets,
                num_nets: 1,
            },
            &RouteConfig::default(),
        );
        router.route();
        let added = vec![(
            NetId(5),
            vec![
                (Point::from_um(20.0, 180.0), 0u16),
                (Point::from_um(180.0, 20.0), 0u16),
            ],
        )];
        let r = router.update(&added);
        assert!(r.nets.len() >= 6, "table grew to hold the new NetId");
        assert!(r.net(NetId(5)).is_some(), "new net routed");
        assert!(r.net(NetId(0)).is_some(), "original net kept");
    }

    #[test]
    fn f2f_crossings_counted_in_combined_stack() {
        let combined = CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(4, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        );
        // pin on logic M1 to pin on macro-die M4_MD (layer 9)
        let nets = two_pin_net((10.0, 10.0, 0), (100.0, 100.0, 9));
        let r = route_once(
            die(),
            combined.stack(),
            &[],
            &nets,
            1,
            &RouteConfig::default(),
        );
        let net = r.net(NetId(0)).expect("routed");
        assert!(net.f2f_crossings >= 1, "must cross the F2F cut");
        assert_eq!(r.f2f_bumps as u32, net.f2f_crossings);
    }

    #[test]
    fn congestion_spreads_nets() {
        let stack = n28_stack(2, DieRole::Logic);
        // many parallel nets through a narrow channel
        let mut nets = Vec::new();
        for i in 0..40 {
            nets.push((
                NetId(i),
                vec![
                    (Point::from_um(5.0, 100.0), 0u16),
                    (Point::from_um(195.0, 100.0), 0u16),
                ],
            ));
        }
        // tiny capacity: forces spreading
        let cfg = RouteConfig {
            utilization: 0.02,
            ..RouteConfig::default()
        };
        let r = route_once(die(), &stack, &[], &nets, 40, &cfg);
        // all nets routed
        assert!(r.nets.iter().filter(|n| n.is_some()).count() == 40);
        assert!(r.total_wirelength_um >= 40.0 * 180.0);
    }

    #[test]
    fn obstacle_forces_detour_or_layer_change() {
        let stack = n28_stack(6, DieRole::Logic);
        let wall = Rect::from_um(90.0, 0.0, 110.0, 200.0);
        // wall blocks M1..M4 fully
        let obstacles: Vec<(usize, Rect)> = (0..4).map(|l| (l, wall)).collect();
        let nets = two_pin_net((10.0, 100.0, 0), (190.0, 100.0, 0));
        let r = route_once(die(), &stack, &obstacles, &nets, 1, &RouteConfig::default());
        let net = r.net(NetId(0)).expect("routed");
        // must hop to M5/M6 to cross the wall
        let by_layer = net.wirelength_by_layer(6);
        assert!(
            by_layer[4] + by_layer[5] > 0.0,
            "crossing uses upper metals: {by_layer:?}"
        );
    }

    #[test]
    fn degenerate_and_oversize_nets_skipped() {
        let stack = n28_stack(6, DieRole::Logic);
        let nets = vec![
            (NetId(0), vec![(Point::from_um(1.0, 1.0), 0u16)]), // single pin
            (
                NetId(1),
                (0..600)
                    .map(|i| (Point::from_um(i as f64 % 100.0, 1.0), 0u16))
                    .collect(),
            ), // oversized
        ];
        let r = route_once(die(), &stack, &[], &nets, 2, &RouteConfig::default());
        assert!(r.net(NetId(0)).is_none());
        assert!(r.net(NetId(1)).is_none());
    }

    #[test]
    fn bump_density_check_counts_hotspots() {
        let combined = CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(4, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        );
        // many nets forced through the same area to the macro die
        let mut nets = Vec::new();
        for i in 0..300u32 {
            nets.push((
                NetId(i),
                vec![
                    (Point::from_um(100.0, 100.0), 0u16),
                    (Point::from_um(105.0, 105.0), 9u16),
                ],
            ));
        }
        // a coarse bond pitch makes per-gcell capacity tiny
        let mut cfg = RouteConfig {
            f2f_pitch_um: Some(5.0),
            ..RouteConfig::default()
        };
        let r = route_once(die(), combined.stack(), &[], &nets, 300, &cfg);
        assert!(r.f2f_bumps >= 300);
        assert!(
            r.f2f_overcrowded_gcells > 0,
            "300 bumps in one spot overflow a 4-bump gcell"
        );
        // with the real 1um pitch the same pattern fits
        cfg.f2f_pitch_um = Some(1.0);
        let r2 = route_once(die(), combined.stack(), &[], &nets, 300, &cfg);
        assert!(r2.f2f_overcrowded_gcells <= r.f2f_overcrowded_gcells);
    }

    #[test]
    fn thread_count_never_changes_routes() {
        let stack = n28_stack(4, DieRole::Logic);
        // congested fan pattern: enough contention that history and
        // batching actually matter
        let mut nets = Vec::new();
        for i in 0..120u32 {
            let x = 5.0 + (i % 12) as f64 * 16.0;
            let y = 5.0 + (i / 12) as f64 * 19.0;
            nets.push((
                NetId(i),
                vec![
                    (Point::from_um(x, y), 0u16),
                    (Point::from_um(100.0, 100.0), 0u16),
                ],
            ));
        }
        let mut cfg = RouteConfig {
            utilization: 0.05,
            parallelism: Parallelism::serial().with_chunk_size(8),
            ..RouteConfig::default()
        };
        let reference = route_once(die(), &stack, &[], &nets, 120, &cfg);
        for threads in [2, 4, 8] {
            cfg.parallelism = Parallelism::threads(threads).with_chunk_size(8);
            let got = route_once(die(), &stack, &[], &nets, 120, &cfg);
            assert_eq!(got.total_wirelength_um, reference.total_wirelength_um);
            assert_eq!(got.overflow, reference.overflow);
            for (a, b) in got.nets.iter().zip(reference.nets.iter()) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.segments, b.segments, "threads={threads}");
                assert_eq!(a.vias, b.vias);
            }
        }
    }

    #[test]
    fn multi_pin_net_connects_all_pins() {
        let stack = n28_stack(6, DieRole::Logic);
        let pins: Vec<RoutePin> = [(10.0, 10.0), (190.0, 10.0), (10.0, 190.0), (100.0, 100.0)]
            .iter()
            .map(|&(x, y)| (Point::from_um(x, y), 0u16))
            .collect();
        let nets = vec![(NetId(0), pins)];
        let r = route_once(die(), &stack, &[], &nets, 1, &RouteConfig::default());
        let net = r.net(NetId(0)).expect("routed");
        // spanning 3 edges worth of wire
        assert!(net.wirelength_um() > 300.0);
    }
}
