//! Windowed weighted A* over the dense per-edge cost grid.
//!
//! The search engine is split into two parts so the router session
//! can share one and pool the other:
//!
//! * [`SearchShared`] — immutable per-design constants (grid shape,
//!   layer directions, via costs, heuristic floors). Built once per
//!   session and shared across workers behind an `Arc`; the
//!   first-generation router cloned these vectors into every worker
//!   on every chunk.
//! * [`SearchScratch`] — the mutable per-worker state (distance /
//!   parent / stamp arrays and the open heap), recycled through a
//!   [`ScratchPool`] so repeated chunks and repeated `update()` calls
//!   never reallocate.
//!
//! Each two-pin search runs inside a bounding-box *window* around the
//! source and target GCells, expanded on failure through a fixed
//! margin schedule ([`WINDOW_MARGINS`], then the full grid). The
//! guide is an admissible lower bound — remaining Manhattan distance
//! priced at the cheapest layer plus remaining layer changes priced
//! at the cheapest via — inflated by `EPSILON` for bounded-
//! suboptimality speed, the standard global-router trade.

use crate::gcell::RouteGrid;
use macro3d_geom::BinIx;
use macro3d_tech::stack::Direction;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

/// Window half-margins (in GCells) tried around the two-pin bounding
/// box before falling back to the whole grid. Nearly every net routes
/// inside the first window; only searches squeezed by congestion or
/// obstacles pay for a wider one.
pub(crate) const WINDOW_MARGINS: [usize; 2] = [8, 32];

/// Weighted-A* inflation factor: bounded suboptimality (≤ 1.25× the
/// cheapest path) for a large reduction in explored nodes.
const EPSILON: f32 = 1.25;

/// Searches that had to retry with a wider window (or the full grid).
static WINDOW_EXPANSIONS: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("route/window_expansions");
/// Nodes expanded across all searches.
static SEARCH_NODES: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("route/search_nodes");
/// Legs settled by a clean L-pattern, no search needed.
static PATTERN_CLEAN: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("route/pattern_clean");
/// Legs whose best pattern would overflow, escalated to bounded A*.
static PATTERN_DIRTY: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("route/pattern_dirty");

/// Immutable search constants, shared by every worker of a session.
pub(crate) struct SearchShared {
    pub nx: usize,
    pub ny: usize,
    pub layers: usize,
    /// preferred routing direction per layer.
    pub dirs: Vec<Direction>,
    /// cost of crossing cut `i` (between layers `i` and `i+1`).
    pub via_costs: Vec<f32>,
    /// prefix sums of `via_costs`: stack cost between layers `a < b`
    /// is `via_prefix[b] - via_prefix[a]` (pattern-route scoring).
    pub via_prefix: Vec<f32>,
    /// per-layer wire cost factors (copied out of the grid).
    pub layer_costs: Vec<f32>,
    /// layers routing horizontally / vertically, for the pattern menu.
    pub h_layers: Vec<usize>,
    pub v_layers: Vec<usize>,
    /// minimum via cost (admissible heuristic term).
    pub min_via_cost: f32,
    /// minimum per-layer wire cost factor (admissible heuristic term:
    /// every wire edge costs at least `1.0 × min_layer_cost`).
    pub min_layer_cost: f32,
}

impl SearchShared {
    pub fn new(grid: &RouteGrid, dirs: Vec<Direction>, via_costs: Vec<f32>, via_cost: f32) -> Self {
        let nx = grid.bins().nx() as usize;
        let ny = grid.bins().ny() as usize;
        let layers = grid.layers();
        assert!(
            nx <= 4096 && ny <= 4096 && layers <= 256,
            "packed search coordinates hold 12+12+8 bits"
        );
        let min_via_cost = via_costs.iter().fold(via_cost, |a, &b| a.min(b));
        let layer_costs = grid.layer_costs().to_vec();
        let min_layer_cost = layer_costs.iter().fold(f32::INFINITY, |a, &b| a.min(b));
        let mut via_prefix = Vec::with_capacity(layers);
        let mut acc = 0.0f32;
        via_prefix.push(0.0);
        for l in 0..layers.saturating_sub(1) {
            acc += via_costs.get(l).copied().unwrap_or(via_cost);
            via_prefix.push(acc);
        }
        let h_layers: Vec<usize> = (0..layers)
            .filter(|&l| dirs[l] == Direction::Horizontal)
            .collect();
        let v_layers: Vec<usize> = (0..layers)
            .filter(|&l| dirs[l] == Direction::Vertical)
            .collect();
        SearchShared {
            nx,
            ny,
            layers,
            dirs,
            via_costs,
            via_prefix,
            layer_costs,
            h_layers,
            v_layers,
            min_via_cost,
            min_layer_cost,
        }
    }

    /// Via-stack cost between two layers (sum of the crossed cuts).
    #[inline]
    fn stack_cost(&self, a: usize, b: usize) -> f32 {
        (self.via_prefix[a.max(b)] - self.via_prefix[a.min(b)]).abs()
    }

    /// Dense node index of `(layer, x, y)`.
    #[inline]
    fn node(&self, l: usize, x: usize, y: usize) -> usize {
        (l * self.ny + y) * self.nx + x
    }
}

/// Heap/parent coordinates packed as `l << 24 | y << 12 | x` — no
/// divisions anywhere in the inner loop (the first-generation search
/// unpacked node indices with two integer divisions per heuristic
/// evaluation).
#[inline]
fn pack(l: usize, x: usize, y: usize) -> u32 {
    ((l as u32) << 24) | ((y as u32) << 12) | x as u32
}

#[inline]
fn unpack(p: u32) -> (usize, usize, usize) {
    (
        (p >> 24) as usize,
        (p & 0xfff) as usize,
        ((p >> 12) & 0xfff) as usize,
    )
}

/// Per-worker mutable search state. Arrays are epoch-stamped so
/// clearing between searches is O(1).
pub(crate) struct SearchScratch {
    dist: Vec<f32>,
    /// packed coordinates of the parent node (`u32::MAX` = none).
    parent: Vec<u32>,
    /// epoch stamp validating `dist`/`parent`.
    stamp: Vec<u32>,
    /// epoch stamp marking expanded (closed) nodes.
    closed: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<(Reverse<u64>, u32)>,
}

impl SearchScratch {
    pub fn new(shared: &SearchShared) -> Self {
        let n = shared.nx * shared.ny * shared.layers;
        SearchScratch {
            dist: vec![0.0; n],
            parent: vec![u32::MAX; n],
            stamp: vec![0; n],
            closed: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }
}

/// A recycling pool of [`SearchScratch`] buffers. Parallel workers
/// check one out per chunk and return it on drop, so steady-state
/// routing performs no scratch allocation at all.
pub(crate) struct ScratchPool {
    free: Mutex<Vec<SearchScratch>>,
}

impl ScratchPool {
    pub fn new() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    pub fn checkout<'p>(&'p self, shared: &SearchShared) -> PooledScratch<'p> {
        let scratch = self
            .free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_else(|| SearchScratch::new(shared));
        PooledScratch {
            scratch: Some(scratch),
            pool: self,
        }
    }
}

/// RAII checkout from a [`ScratchPool`].
pub(crate) struct PooledScratch<'p> {
    scratch: Option<SearchScratch>,
    pool: &'p ScratchPool,
}

impl PooledScratch<'_> {
    // INVARIANT: `scratch` is `Some` from construction until `drop`
    // takes it back to the pool; `get` cannot run after `drop`.
    #[allow(clippy::expect_used)]
    pub fn get(&mut self) -> &mut SearchScratch {
        self.scratch.as_mut().expect("present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            self.pool
                .free
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(s);
        }
    }
}

#[inline]
fn to_millis(c: f32) -> u64 {
    (c * 1024.0) as u64
}

/// Outcome of the L-pattern pre-route of one leg.
pub(crate) enum Pattern {
    /// A finite candidate that commits no edge over capacity — take
    /// it, no search needed.
    Clean(Vec<(u16, u16, u16)>),
    /// The cheapest finite candidate would overflow somewhere; its
    /// cost is a valid upper bound for the A* search, and the path a
    /// fallback if the search fails.
    Dirty(Vec<(u16, u16, u16)>, f32),
    /// Every candidate hit a blocked edge.
    Blocked,
}

/// Candidate L-routes tried per leg, in lower-bound order. The menu
/// is small: nearly all of a candidate's cost spread comes from the
/// layer pair, which the bound already prices exactly.
const PATTERN_CANDIDATES: usize = 6;

/// Congestion-aware L-pattern routing: both corner orders over every
/// (horizontal, vertical) layer pair, scored by an exact-via /
/// floor-wire lower bound, the best few evaluated against the live
/// cost grid. `O(span)` per evaluation — the fast path that spares
/// the A* machinery for contested regions.
pub(crate) fn pattern_route(
    shared: &SearchShared,
    grid: &RouteGrid,
    src: (BinIx, u16),
    dst: (BinIx, u16),
) -> Pattern {
    let sl = (src.1 as usize).min(shared.layers - 1);
    let gl = (dst.1 as usize).min(shared.layers - 1);
    let (sx, sy) = (src.0.x as usize, src.0.y as usize);
    let (gx, gy) = (dst.0.x as usize, dst.0.y as usize);

    if sx == gx && sy == gy {
        // pure via stack; vias are uncapacitated
        let mut path = vec![(sl as u16, sx as u16, sy as u16)];
        push_via_run(&mut path, sl, gl, sx, sy);
        return Pattern::Clean(path);
    }

    // (bound, lh, lv, x_first); unused direction encoded as the
    // start layer so degenerate runs produce no spurious via stacks
    let dx = sx.abs_diff(gx) as f32;
    let dy = sy.abs_diff(gy) as f32;
    let mut cands: Vec<(f32, usize, usize, bool)> =
        Vec::with_capacity(2 * (shared.h_layers.len().max(1)) * (shared.v_layers.len().max(1)));
    if sy == gy {
        for &lh in &shared.h_layers {
            let bound =
                shared.stack_cost(sl, lh) + shared.stack_cost(lh, gl) + dx * shared.layer_costs[lh];
            cands.push((bound, lh, lh, true));
        }
    } else if sx == gx {
        for &lv in &shared.v_layers {
            let bound =
                shared.stack_cost(sl, lv) + shared.stack_cost(lv, gl) + dy * shared.layer_costs[lv];
            cands.push((bound, lv, lv, true));
        }
    } else {
        for &lh in &shared.h_layers {
            for &lv in &shared.v_layers {
                let wire = dx * shared.layer_costs[lh] + dy * shared.layer_costs[lv];
                let x_first = shared.stack_cost(sl, lh)
                    + shared.stack_cost(lh, lv)
                    + shared.stack_cost(lv, gl)
                    + wire;
                let y_first = shared.stack_cost(sl, lv)
                    + shared.stack_cost(lv, lh)
                    + shared.stack_cost(lh, gl)
                    + wire;
                cands.push((x_first, lh, lv, true));
                cands.push((y_first, lh, lv, false));
            }
        }
    }
    if cands.is_empty() {
        return Pattern::Blocked;
    }
    // deterministic order: bound, then layer pair, then corner
    cands.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
            .then(a.3.cmp(&b.3))
    });

    let mut best_dirty: Option<(f32, usize, usize, bool)> = None;
    for &(_, lh, lv, x_first) in cands.iter().take(PATTERN_CANDIDATES) {
        let Some((cost, dirty)) =
            eval_candidate(shared, grid, (sl, sx, sy), (gl, gx, gy), lh, lv, x_first)
        else {
            continue;
        };
        if !dirty {
            return Pattern::Clean(build_candidate((sl, sx, sy), (gl, gx, gy), lh, lv, x_first));
        }
        if best_dirty.is_none_or(|(c, ..)| cost < c) {
            best_dirty = Some((cost, lh, lv, x_first));
        }
    }
    match best_dirty {
        Some((cost, lh, lv, x_first)) => Pattern::Dirty(
            build_candidate((sl, sx, sy), (gl, gx, gy), lh, lv, x_first),
            cost,
        ),
        None => Pattern::Blocked,
    }
}

/// Exact cost of one L-candidate against the live grid; `None` when
/// a run crosses a blocked edge, otherwise `(cost, would_overflow)`.
fn eval_candidate(
    shared: &SearchShared,
    grid: &RouteGrid,
    (sl, sx, sy): (usize, usize, usize),
    (gl, gx, gy): (usize, usize, usize),
    lh: usize,
    lv: usize,
    x_first: bool,
) -> Option<(f32, bool)> {
    let mut cost = 0.0f32;
    let mut dirty = false;
    let h_run = |l: usize, y: usize, cost: &mut f32, dirty: &mut bool| -> bool {
        for x in sx.min(gx)..sx.max(gx) {
            let e = grid.h_edge(l, x, y);
            let c = grid.cost(e);
            if !c.is_finite() {
                return false;
            }
            *cost += c;
            *dirty |= grid.would_overflow(e);
        }
        true
    };
    let v_run = |l: usize, x: usize, cost: &mut f32, dirty: &mut bool| -> bool {
        for y in sy.min(gy)..sy.max(gy) {
            let e = grid.v_edge(l, x, y);
            let c = grid.cost(e);
            if !c.is_finite() {
                return false;
            }
            *cost += c;
            *dirty |= grid.would_overflow(e);
        }
        true
    };
    if sy == gy {
        cost += shared.stack_cost(sl, lh) + shared.stack_cost(lh, gl);
        if !h_run(lh, sy, &mut cost, &mut dirty) {
            return None;
        }
    } else if sx == gx {
        cost += shared.stack_cost(sl, lv) + shared.stack_cost(lv, gl);
        if !v_run(lv, sx, &mut cost, &mut dirty) {
            return None;
        }
    } else if x_first {
        cost += shared.stack_cost(sl, lh) + shared.stack_cost(lh, lv) + shared.stack_cost(lv, gl);
        if !h_run(lh, sy, &mut cost, &mut dirty) || !v_run(lv, gx, &mut cost, &mut dirty) {
            return None;
        }
    } else {
        cost += shared.stack_cost(sl, lv) + shared.stack_cost(lv, lh) + shared.stack_cost(lh, gl);
        if !v_run(lv, sx, &mut cost, &mut dirty) || !h_run(lh, gy, &mut cost, &mut dirty) {
            return None;
        }
    }
    Some((cost, dirty))
}

/// Node path of one L-candidate (same shape `search` returns).
fn build_candidate(
    (sl, sx, sy): (usize, usize, usize),
    (gl, gx, gy): (usize, usize, usize),
    lh: usize,
    lv: usize,
    x_first: bool,
) -> Vec<(u16, u16, u16)> {
    let mut path = vec![(sl as u16, sx as u16, sy as u16)];
    if sy == gy {
        push_via_run(&mut path, sl, lh, sx, sy);
        push_wire_run(&mut path, lh, sx, sy, gx, sy);
        push_via_run(&mut path, lh, gl, gx, gy);
    } else if sx == gx {
        push_via_run(&mut path, sl, lv, sx, sy);
        push_wire_run(&mut path, lv, sx, sy, gx, gy);
        push_via_run(&mut path, lv, gl, gx, gy);
    } else if x_first {
        push_via_run(&mut path, sl, lh, sx, sy);
        push_wire_run(&mut path, lh, sx, sy, gx, sy);
        push_via_run(&mut path, lh, lv, gx, sy);
        push_wire_run(&mut path, lv, gx, sy, gx, gy);
        push_via_run(&mut path, lv, gl, gx, gy);
    } else {
        push_via_run(&mut path, sl, lv, sx, sy);
        push_wire_run(&mut path, lv, sx, sy, sx, gy);
        push_via_run(&mut path, lv, lh, sx, gy);
        push_wire_run(&mut path, lh, sx, gy, gx, gy);
        push_via_run(&mut path, lh, gl, gx, gy);
    }
    path
}

fn push_via_run(path: &mut Vec<(u16, u16, u16)>, from: usize, to: usize, x: usize, y: usize) {
    let mut l = from as i64;
    while l != to as i64 {
        l += (to as i64 - l).signum();
        path.push((l as u16, x as u16, y as u16));
    }
}

fn push_wire_run(
    path: &mut Vec<(u16, u16, u16)>,
    l: usize,
    x0: usize,
    y0: usize,
    x1: usize,
    y1: usize,
) {
    let (mut x, mut y) = (x0 as i64, y0 as i64);
    while x != x1 as i64 {
        x += (x1 as i64 - x).signum();
        path.push((l as u16, x as u16, y as u16));
    }
    while y != y1 as i64 {
        y += (y1 as i64 - y).signum();
        path.push((l as u16, x as u16, y as u16));
    }
}

/// Route one two-pin leg. The congestion-aware L-pattern runs first;
/// a clean candidate (no edge pushed over capacity) is final. When
/// the best finite pattern would overflow, its cost becomes a
/// branch-and-bound upper bound for a windowed A* — and the pattern
/// path itself the fallback if the bounded search cannot beat it.
/// Only fully blocked legs pay for an unbounded search.
pub(crate) fn route_leg(
    shared: &SearchShared,
    grid: &RouteGrid,
    scratch: &mut SearchScratch,
    src: (BinIx, u16),
    dst: (BinIx, u16),
) -> Vec<(u16, u16, u16)> {
    match pattern_route(shared, grid, src, dst) {
        Pattern::Clean(path) => {
            PATTERN_CLEAN.inc();
            path
        }
        // small slack over the pattern cost so f32 summation-order
        // noise cannot prune the pattern-equivalent path itself
        Pattern::Dirty(path, cost) => {
            PATTERN_DIRTY.inc();
            search(shared, grid, scratch, src, dst, to_millis(cost) + 8).unwrap_or(path)
        }
        Pattern::Blocked => search(shared, grid, scratch, src, dst, u64::MAX)
            .unwrap_or_else(|| l_fallback(src, dst, shared.layers)),
    }
}

/// A* from `(gcell, layer)` to `(gcell, layer)`. Returns the node
/// path (start to goal inclusive) as `(layer, x, y)` steps.
///
/// `ub_millis` is a branch-and-bound upper bound (usually the best
/// dirty pattern candidate's cost): states whose admissible `g + h`
/// exceeds it cannot beat the known path and are never pushed. Pass
/// `u64::MAX` for an unbounded search.
///
/// Tries the window schedule, then the full grid; `None` when every
/// attempt exhausts its exploration budget (heavily blocked region)
/// or the upper bound prunes the goal.
fn search(
    shared: &SearchShared,
    grid: &RouteGrid,
    scratch: &mut SearchScratch,
    src: (BinIx, u16),
    dst: (BinIx, u16),
    ub_millis: u64,
) -> Option<Vec<(u16, u16, u16)>> {
    let sl = (src.1 as usize).min(shared.layers - 1);
    let gl = (dst.1 as usize).min(shared.layers - 1);
    let (sx, sy) = (src.0.x as usize, src.0.y as usize);
    let (gx, gy) = (dst.0.x as usize, dst.0.y as usize);

    let (bx0, bx1) = (sx.min(gx), sx.max(gx));
    let (by0, by1) = (sy.min(gy), sy.max(gy));
    for (attempt, &margin) in WINDOW_MARGINS
        .iter()
        .chain(std::iter::once(&usize::MAX))
        .enumerate()
    {
        let window = (
            bx0.saturating_sub(margin),
            by0.saturating_sub(margin),
            bx1.saturating_add(margin).min(shared.nx - 1),
            by1.saturating_add(margin).min(shared.ny - 1),
        );
        if attempt > 0 {
            WINDOW_EXPANSIONS.inc();
            // a strictly larger window is a different search; a
            // same-size one (bbox already hit the grid edge) is not
            if window
                == (
                    bx0.saturating_sub(WINDOW_MARGINS[attempt - 1]),
                    by0.saturating_sub(WINDOW_MARGINS[attempt - 1]),
                    bx1.saturating_add(WINDOW_MARGINS[attempt - 1])
                        .min(shared.nx - 1),
                    by1.saturating_add(WINDOW_MARGINS[attempt - 1])
                        .min(shared.ny - 1),
                )
            {
                continue;
            }
        }
        if let Some(path) = attempt_search(
            shared,
            grid,
            scratch,
            (sl, sx, sy),
            (gl, gx, gy),
            window,
            ub_millis,
        ) {
            return Some(path);
        }
    }
    None
}

/// One windowed A* attempt; `None` when the exploration budget runs
/// out before reaching the goal.
#[allow(clippy::too_many_arguments)]
fn attempt_search(
    shared: &SearchShared,
    grid: &RouteGrid,
    scratch: &mut SearchScratch,
    (sl, sx, sy): (usize, usize, usize),
    (gl, gx, gy): (usize, usize, usize),
    (wx0, wy0, wx1, wy1): (usize, usize, usize, usize),
    ub_millis: u64,
) -> Option<Vec<(u16, u16, u16)>> {
    scratch.epoch += 1;
    let epoch = scratch.epoch;
    scratch.heap.clear();

    let min_wire = shared.min_layer_cost;
    let min_via = shared.min_via_cost;
    // admissible remaining-cost floor; EPSILON inflates it only in
    // the heap ordering, never in the upper-bound prune
    let h = |l: usize, x: usize, y: usize| -> f32 {
        let dx = x.abs_diff(gx) as f32;
        let dy = y.abs_diff(gy) as f32;
        let dl = l.abs_diff(gl) as f32;
        (dx + dy) * min_wire + dl * min_via
    };

    let start = shared.node(sl, sx, sy);
    scratch.dist[start] = 0.0;
    scratch.stamp[start] = epoch;
    scratch.parent[start] = u32::MAX;
    scratch.heap.push((
        Reverse(to_millis(h(sl, sx, sy) * EPSILON)),
        pack(sl, sx, sy),
    ));

    // exploration budget proportional to the path length, capped by
    // the window volume: stuck searches fail fast and retry wider
    let span = sx.abs_diff(gx) + sy.abs_diff(gy) + sl.abs_diff(gl);
    let window_nodes = (wx1 - wx0 + 1) * (wy1 - wy0 + 1) * shared.layers;
    let explore_cap = ((span + 24) * 512).min(window_nodes);

    let mut explored = 0usize;
    while let Some((_, packed)) = scratch.heap.pop() {
        let (l, x, y) = unpack(packed);
        let n = shared.node(l, x, y);
        if scratch.closed[n] == epoch {
            continue;
        }
        scratch.closed[n] = epoch;
        if l == gl && x == gx && y == gy {
            SEARCH_NODES.add(explored as u64);
            return Some(reconstruct(shared, scratch, packed));
        }
        explored += 1;
        if explored > explore_cap {
            break;
        }
        let g = scratch.dist[n];

        // wire steps along the layer's preferred direction, clipped
        // to the window
        match shared.dirs[l] {
            Direction::Horizontal => {
                if x > wx0 {
                    let e = grid.h_edge(l, x - 1, y);
                    relax(
                        shared,
                        scratch,
                        packed,
                        (l, x - 1, y),
                        g + grid.cost(e),
                        &h,
                        ub_millis,
                    );
                }
                if x < wx1 {
                    let e = grid.h_edge(l, x, y);
                    relax(
                        shared,
                        scratch,
                        packed,
                        (l, x + 1, y),
                        g + grid.cost(e),
                        &h,
                        ub_millis,
                    );
                }
            }
            Direction::Vertical => {
                if y > wy0 {
                    let e = grid.v_edge(l, x, y - 1);
                    relax(
                        shared,
                        scratch,
                        packed,
                        (l, x, y - 1),
                        g + grid.cost(e),
                        &h,
                        ub_millis,
                    );
                }
                if y < wy1 {
                    let e = grid.v_edge(l, x, y);
                    relax(
                        shared,
                        scratch,
                        packed,
                        (l, x, y + 1),
                        g + grid.cost(e),
                        &h,
                        ub_millis,
                    );
                }
            }
        }
        // via steps (per-cut costs; the F2F bond is cheap)
        if l + 1 < shared.layers {
            let c = shared.via_costs.get(l).copied().unwrap_or(min_via);
            relax(shared, scratch, packed, (l + 1, x, y), g + c, &h, ub_millis);
        }
        if l > 0 {
            let c = shared.via_costs.get(l - 1).copied().unwrap_or(min_via);
            relax(shared, scratch, packed, (l - 1, x, y), g + c, &h, ub_millis);
        }
    }
    SEARCH_NODES.add(explored as u64);
    None
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn relax(
    shared: &SearchShared,
    scratch: &mut SearchScratch,
    from: u32,
    (l, x, y): (usize, usize, usize),
    g: f32,
    h: &impl Fn(usize, usize, usize) -> f32,
    ub_millis: u64,
) {
    if !g.is_finite() {
        return; // blocked edge
    }
    let to = shared.node(l, x, y);
    let epoch = scratch.epoch;
    if scratch.stamp[to] != epoch || g < scratch.dist[to] {
        let hv = h(l, x, y);
        // branch-and-bound: a state whose admissible f already
        // exceeds the known pattern path cannot improve on it
        if to_millis(g + hv) > ub_millis {
            return;
        }
        scratch.stamp[to] = epoch;
        scratch.dist[to] = g;
        scratch.parent[to] = from;
        scratch
            .heap
            .push((Reverse(to_millis(g + hv * EPSILON)), pack(l, x, y)));
    }
}

fn reconstruct(shared: &SearchShared, scratch: &SearchScratch, goal: u32) -> Vec<(u16, u16, u16)> {
    let mut path = Vec::new();
    let mut p = goal;
    loop {
        let (l, x, y) = unpack(p);
        path.push((l as u16, x as u16, y as u16));
        let up = scratch.parent[shared.node(l, x, y)];
        if up == u32::MAX {
            break;
        }
        p = up;
    }
    path.reverse();
    path
}

/// Degenerate L-shaped fallback path (x then y on the source layer,
/// then via stack to the goal layer).
fn l_fallback(src: (BinIx, u16), dst: (BinIx, u16), layers: usize) -> Vec<(u16, u16, u16)> {
    let mut path = Vec::new();
    let l0 = src.1.min(layers as u16 - 1);
    let l1 = dst.1.min(layers as u16 - 1);
    let (x0, y0) = (src.0.x as i64, src.0.y as i64);
    let (x1, y1) = (dst.0.x as i64, dst.0.y as i64);
    let mut x = x0;
    let mut y = y0;
    path.push((l0, x as u16, y as u16));
    while x != x1 {
        x += (x1 - x).signum();
        path.push((l0, x as u16, y as u16));
    }
    while y != y1 {
        y += (y1 - y).signum();
        path.push((l0, x as u16, y as u16));
    }
    let mut l = l0 as i64;
    while l != l1 as i64 {
        l += (l1 as i64 - l).signum();
        path.push((l as u16, x as u16, y as u16));
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips() {
        for (l, x, y) in [(0, 0, 0), (9, 4095, 4095), (255, 17, 2049)] {
            assert_eq!(unpack(pack(l, x, y)), (l, x, y));
        }
    }

    #[test]
    fn l_fallback_connects_and_changes_layer() {
        let p = l_fallback((BinIx::new(1, 1), 0), (BinIx::new(4, 3), 2), 6);
        assert_eq!(p.first(), Some(&(0u16, 1u16, 1u16)));
        assert_eq!(p.last(), Some(&(2u16, 4u16, 3u16)));
        // contiguous steps
        for w in p.windows(2) {
            let d = w[0].0.abs_diff(w[1].0) + w[0].1.abs_diff(w[1].1) + w[0].2.abs_diff(w[1].2);
            assert_eq!(d, 1, "single-step path: {w:?}");
        }
    }
}
