//! Routing results.

use macro3d_geom::Point;

/// One routed wire segment on a single layer, between GCell centres.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteSeg {
    /// Layer index within the routing stack.
    pub layer: u16,
    /// Segment start.
    pub from: Point,
    /// Segment end.
    pub to: Point,
}

impl RouteSeg {
    /// Manhattan length of the segment, µm.
    pub fn length_um(&self) -> f64 {
        self.from.manhattan(self.to).to_um()
    }
}

/// A via between adjacent layers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Via {
    /// Lower layer of the cut (`layer` → `layer + 1`).
    pub layer: u16,
    /// Location.
    pub at: Point,
}

/// One routed net.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoutedNet {
    /// Wire segments.
    pub segments: Vec<RouteSeg>,
    /// Vias (including F2F crossings).
    pub vias: Vec<Via>,
    /// Number of vias crossing the F2F cut (bumps used by this net).
    pub f2f_crossings: u32,
}

impl RoutedNet {
    /// Total wire length, µm.
    pub fn wirelength_um(&self) -> f64 {
        self.segments.iter().map(RouteSeg::length_um).sum()
    }

    /// Wire length per layer, µm (indexed by layer).
    pub fn wirelength_by_layer(&self, layers: usize) -> Vec<f64> {
        let mut out = vec![0.0; layers];
        for s in &self.segments {
            out[s.layer as usize] += s.length_um();
        }
        out
    }
}

/// The routing result for a whole design.
#[derive(Clone, Debug, Default)]
pub struct RoutedDesign {
    /// Per-net routes, indexed by `NetId` (None for skipped or
    /// degenerate nets).
    pub nets: Vec<Option<RoutedNet>>,
    /// Total wire length, µm.
    pub total_wirelength_um: f64,
    /// Total F2F bumps used.
    pub f2f_bumps: u64,
    /// Residual overflow after the final iteration.
    pub overflow: f64,
    /// GCells whose F2F crossing count exceeds the bond-pitch bump
    /// capacity (0 when no F2F layer or no pitch given).
    pub f2f_overcrowded_gcells: usize,
    /// Overflowed edge count after the final iteration.
    pub overflowed_edges: usize,
    /// Peak edge utilization.
    pub max_utilization: f64,
}

impl RoutedDesign {
    /// The route of a net, if any.
    pub fn net(&self, id: macro3d_netlist::NetId) -> Option<&RoutedNet> {
        self.nets.get(id.index()).and_then(|n| n.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wirelength_sums_segments() {
        let net = RoutedNet {
            segments: vec![
                RouteSeg {
                    layer: 0,
                    from: Point::from_um(0.0, 0.0),
                    to: Point::from_um(10.0, 0.0),
                },
                RouteSeg {
                    layer: 1,
                    from: Point::from_um(10.0, 0.0),
                    to: Point::from_um(10.0, 5.0),
                },
            ],
            vias: vec![Via {
                layer: 0,
                at: Point::from_um(10.0, 0.0),
            }],
            f2f_crossings: 0,
        };
        assert!((net.wirelength_um() - 15.0).abs() < 1e-9);
        let by_layer = net.wirelength_by_layer(3);
        assert_eq!(by_layer, vec![10.0, 5.0, 0.0]);
    }
}
