//! The GCell routing grid: per-layer capacities and usage.

use macro3d_geom::{BinGrid, BinIx, Dbu, Point, Rect};
use macro3d_tech::stack::{Direction, MetalStack};

/// Index of an undirected routing-graph edge (for usage/capacity
/// bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeIx(pub u32);

/// The global-routing grid over one stack (single-die or combined).
///
/// Wire edges connect adjacent GCells along each layer's preferred
/// direction with a capacity of `tracks × utilization`; via edges
/// connect vertically adjacent layers (uncapacitated but costed).
/// Macro internal-routing obstacles reduce wire capacity in
/// proportion to their overlap with each GCell.
#[derive(Clone, Debug)]
pub struct RouteGrid {
    grid: BinGrid,
    layers: usize,
    /// capacity per wire edge (see `edge_ix`).
    cap: Vec<f32>,
    /// current usage per wire edge.
    pub(crate) usage: Vec<f32>,
    /// congestion history per wire edge (negotiated congestion).
    pub(crate) history: Vec<f32>,
    h_edges_per_layer: usize,
    v_edges_per_layer: usize,
}

impl RouteGrid {
    /// Builds the grid for a die area and stack.
    ///
    /// `gcell` is the GCell pitch; `utilization` the fraction of raw
    /// tracks available for global routing (the rest is reserved for
    /// local/pin-access wiring, as real global routers do).
    ///
    /// # Panics
    ///
    /// Panics if `gcell` is non-positive or the die is empty.
    pub fn new(die: Rect, stack: &MetalStack, gcell: Dbu, utilization: f64) -> Self {
        let grid = BinGrid::with_bin_size(die, gcell);
        let (nx, ny) = (grid.nx() as usize, grid.ny() as usize);
        let layers = stack.num_layers();
        let h_edges_per_layer = nx.saturating_sub(1) * ny;
        let v_edges_per_layer = nx * ny.saturating_sub(1);
        let per_layer = h_edges_per_layer + v_edges_per_layer;
        let mut cap = vec![0.0f32; per_layer * layers];

        for (l, layer) in stack.layers().iter().enumerate() {
            // tracks crossing a gcell boundary
            let tracks = (gcell.to_um() / layer.pitch.to_um() * utilization).max(0.0) as f32;
            match layer.direction {
                Direction::Horizontal => {
                    for e in 0..h_edges_per_layer {
                        cap[l * per_layer + e] = tracks;
                    }
                }
                Direction::Vertical => {
                    for e in 0..v_edges_per_layer {
                        cap[l * per_layer + h_edges_per_layer + e] = tracks;
                    }
                }
            }
        }

        RouteGrid {
            grid,
            layers,
            usage: vec![0.0; per_layer * layers],
            history: vec![0.0; per_layer * layers],
            cap,
            h_edges_per_layer,
            v_edges_per_layer,
        }
    }

    /// The underlying bin grid.
    pub fn bins(&self) -> &BinGrid {
        &self.grid
    }

    /// Number of routing layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// GCell containing a point.
    pub fn gcell_of(&self, p: Point) -> BinIx {
        self.grid.bin_of(p)
    }

    /// Center of a GCell.
    pub fn gcell_center(&self, ix: BinIx) -> Point {
        self.grid.bin_rect(ix).center()
    }

    fn per_layer(&self) -> usize {
        self.h_edges_per_layer + self.v_edges_per_layer
    }

    /// Edge between `(x,y)` and the next GCell in +x (horizontal) or
    /// +y (vertical) on `layer`; `None` at the grid boundary.
    pub(crate) fn edge_ix(
        &self,
        layer: usize,
        x: usize,
        y: usize,
        horizontal: bool,
    ) -> Option<usize> {
        let nx = self.grid.nx() as usize;
        let ny = self.grid.ny() as usize;
        if horizontal {
            if x + 1 >= nx || y >= ny {
                return None;
            }
            Some(layer * self.per_layer() + y * (nx - 1) + x)
        } else {
            if y + 1 >= ny || x >= nx {
                return None;
            }
            Some(layer * self.per_layer() + self.h_edges_per_layer + y * nx + x)
        }
    }

    /// Capacity of a wire edge.
    pub(crate) fn capacity(&self, e: usize) -> f32 {
        self.cap[e]
    }

    /// Reduces capacity under an obstacle on `layer` (macro internal
    /// routing): every wire edge whose GCell span overlaps the rect
    /// loses capacity in proportion to the overlap fraction.
    pub fn add_obstacle(&mut self, layer: usize, rect: Rect) {
        if layer >= self.layers {
            return;
        }
        let Some((lo, hi)) = self.grid.bins_overlapping(rect) else {
            return;
        };
        for y in lo.y..=hi.y {
            for x in lo.x..=hi.x {
                let bin = self.grid.bin_rect(BinIx::new(x, y));
                let frac = rect
                    .intersection(bin)
                    .map(|i| i.area_um2() / bin.area_um2())
                    .unwrap_or(0.0) as f32;
                for horiz in [true, false] {
                    if let Some(e) = self.edge_ix(layer, x as usize, y as usize, horiz) {
                        self.cap[e] = (self.cap[e] * (1.0 - frac)).max(0.0);
                    }
                }
            }
        }
    }

    /// Total overflow (usage beyond capacity) over all wire edges.
    pub fn total_overflow(&self) -> f64 {
        self.usage
            .iter()
            .zip(&self.cap)
            .map(|(&u, &c)| (u - c).max(0.0) as f64)
            .sum()
    }

    /// Number of overflowed edges.
    pub fn overflowed_edges(&self) -> usize {
        self.usage
            .iter()
            .zip(&self.cap)
            .filter(|&(&u, &c)| u > c)
            .count()
    }

    /// Maximum edge utilization (usage / capacity) over edges with
    /// non-zero capacity.
    pub fn max_utilization(&self) -> f64 {
        self.usage
            .iter()
            .zip(&self.cap)
            .filter(|&(_, &c)| c > 0.0)
            .map(|(&u, &c)| (u / c) as f64)
            .fold(0.0, f64::max)
    }

    /// Iterates (usage, capacity) over all wire edges of one layer.
    pub fn layer_edges(&self, layer: usize) -> impl Iterator<Item = (f32, f32)> + '_ {
        let per = self.per_layer();
        let start = layer * per;
        self.usage[start..start + per]
            .iter()
            .zip(&self.cap[start..start + per])
            .map(|(&u, &c)| (u, c))
    }

    /// Accumulates congestion history from current overflow.
    pub(crate) fn accumulate_history(&mut self, weight: f32) {
        for ((h, &u), &c) in self.history.iter_mut().zip(&self.usage).zip(&self.cap) {
            if u > c {
                *h += weight * (u - c + 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::stack::{n28_stack, DieRole};

    fn grid() -> RouteGrid {
        RouteGrid::new(
            Rect::from_um(0.0, 0.0, 100.0, 100.0),
            &n28_stack(6, DieRole::Logic),
            Dbu::from_um(10.0),
            0.5,
        )
    }

    #[test]
    fn capacities_follow_layer_direction() {
        let g = grid();
        // M1 horizontal: pitch 0.1um, gcell 10um, util 0.5 -> 50 tracks
        let e = g.edge_ix(0, 0, 0, true).expect("edge");
        assert!((g.capacity(e) - 50.0).abs() < 1e-3);
        // M1 has no vertical capacity
        let ev = g.edge_ix(0, 0, 0, false).expect("edge");
        assert_eq!(g.capacity(ev), 0.0);
        // M2 vertical has capacity
        let e2 = g.edge_ix(1, 0, 0, false).expect("edge");
        assert!(g.capacity(e2) > 0.0);
        // M5 has fewer tracks than M1 (bigger pitch)
        let e5 = g.edge_ix(4, 0, 0, true).expect("edge");
        assert!(g.capacity(e5) < g.capacity(e));
    }

    #[test]
    fn boundary_edges_do_not_exist() {
        let g = grid();
        assert!(g.edge_ix(0, 9, 0, true).is_none());
        assert!(g.edge_ix(0, 0, 9, false).is_none());
        assert!(g.edge_ix(0, 8, 0, true).is_some());
    }

    #[test]
    fn obstacles_reduce_capacity() {
        let mut g = grid();
        let e = g.edge_ix(0, 2, 2, true).expect("edge");
        let before = g.capacity(e);
        g.add_obstacle(0, Rect::from_um(20.0, 20.0, 30.0, 30.0));
        let after = g.capacity(e);
        assert!(after < before * 0.2, "full overlap nearly zeroes capacity");
        // different layer untouched
        let e2 = g.edge_ix(2, 2, 2, true).expect("edge");
        assert!((g.capacity(e2) - before).abs() < 1e-3);
    }

    #[test]
    fn overflow_accounting() {
        let mut g = grid();
        assert_eq!(g.total_overflow(), 0.0);
        let e = g.edge_ix(0, 0, 0, true).expect("edge");
        g.usage[e] = g.capacity(e) + 3.0;
        assert!((g.total_overflow() - 3.0).abs() < 1e-3);
        assert_eq!(g.overflowed_edges(), 1);
        assert!(g.max_utilization() > 1.0);
        g.accumulate_history(1.0);
        assert!(g.history[e] > 0.0);
    }
}
