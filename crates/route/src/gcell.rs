//! The GCell routing grid: per-layer capacities, usage, and the dense
//! per-edge cost model the windowed A* search reads.
//!
//! The grid is stored structure-of-arrays, one contiguous block per
//! layer (`[horizontal edges][vertical edges]`), so the search touches
//! a single `f32` load per candidate step. Costs are *maintained*, not
//! recomputed: every usage or history mutation goes through
//! `RouteGrid::commit` / `RouteGrid::release` /
//! `RouteGrid::accumulate_history`, which update the affected edge's
//! cost and its overflow bit in place. The per-iteration overflow scan
//! the first-generation router did (rebuilding a `HashSet` of
//! overflowed edges) is gone; overflow membership is a dense bitset
//! kept current by the same mutators.

use macro3d_geom::{BinGrid, BinIx, Dbu, Point, Rect};
use macro3d_tech::stack::{Direction, MetalStack};

/// Index of an undirected routing-graph edge (for usage/capacity
/// bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeIx(pub u32);

/// The global-routing grid over one stack (single-die or combined).
///
/// Wire edges connect adjacent GCells along each layer's preferred
/// direction with a capacity of `tracks × utilization`; via edges
/// connect vertically adjacent layers (uncapacitated but costed).
/// Macro internal-routing obstacles reduce wire capacity in
/// proportion to their overlap with each GCell.
#[derive(Clone, Debug)]
pub struct RouteGrid {
    grid: BinGrid,
    layers: usize,
    /// capacity per wire edge (see `edge_ix`).
    cap: Vec<f32>,
    /// current usage per wire edge.
    pub(crate) usage: Vec<f32>,
    /// congestion history per wire edge (negotiated congestion).
    pub(crate) history: Vec<f32>,
    /// total search cost per wire edge: congestion multiplier × layer
    /// cost, `f32::INFINITY` for blocked edges. Maintained by
    /// `commit`/`release`/`accumulate_history`.
    cost: Vec<f32>,
    /// per-layer wire cost factor (upper, lower-resistance metals are
    /// cheaper, pulling long nets up the stack).
    layer_cost: Vec<f32>,
    /// dense overflow-membership bitset over wire edges.
    overflow_bits: Vec<u64>,
    /// number of set bits in `overflow_bits`.
    overflowed: usize,
    h_edges_per_layer: usize,
    v_edges_per_layer: usize,
}

impl RouteGrid {
    /// Builds the grid for a die area and stack.
    ///
    /// `gcell` is the GCell pitch; `utilization` the fraction of raw
    /// tracks available for global routing (the rest is reserved for
    /// local/pin-access wiring, as real global routers do).
    ///
    /// # Panics
    ///
    /// Panics if `gcell` is non-positive or the die is empty.
    pub fn new(die: Rect, stack: &MetalStack, gcell: Dbu, utilization: f64) -> Self {
        let grid = BinGrid::with_bin_size(die, gcell);
        let (nx, ny) = (grid.nx() as usize, grid.ny() as usize);
        let layers = stack.num_layers();
        let h_edges_per_layer = nx.saturating_sub(1) * ny;
        let v_edges_per_layer = nx * ny.saturating_sub(1);
        let per_layer = h_edges_per_layer + v_edges_per_layer;
        let mut cap = vec![0.0f32; per_layer * layers];

        for (l, layer) in stack.layers().iter().enumerate() {
            // tracks crossing a gcell boundary
            let tracks = (gcell.to_um() / layer.pitch.to_um() * utilization).max(0.0) as f32;
            match layer.direction {
                Direction::Horizontal => {
                    for e in 0..h_edges_per_layer {
                        cap[l * per_layer + e] = tracks;
                    }
                }
                Direction::Vertical => {
                    for e in 0..v_edges_per_layer {
                        cap[l * per_layer + h_edges_per_layer + e] = tracks;
                    }
                }
            }
        }

        // upper (thicker, lower-R) metals are cheaper per GCell, so
        // long nets are pulled up the stack as real global routers do
        let r_max = stack
            .layers()
            .iter()
            .map(|l| l.r_per_um)
            .fold(f64::MIN, f64::max);
        let layer_cost: Vec<f32> = stack
            .layers()
            .iter()
            .map(|l| (0.55 + 0.45 * (l.r_per_um / r_max)) as f32)
            .collect();

        let n = per_layer * layers;
        let mut g = RouteGrid {
            grid,
            layers,
            usage: vec![0.0; n],
            history: vec![0.0; n],
            cost: vec![0.0; n],
            layer_cost,
            overflow_bits: vec![0; n.div_ceil(64)],
            overflowed: 0,
            cap,
            h_edges_per_layer,
            v_edges_per_layer,
        };
        for e in 0..n {
            g.cost[e] = g.compute_cost(e);
        }
        g
    }

    /// The underlying bin grid.
    pub fn bins(&self) -> &BinGrid {
        &self.grid
    }

    /// Number of routing layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// GCell containing a point.
    pub fn gcell_of(&self, p: Point) -> BinIx {
        self.grid.bin_of(p)
    }

    /// Center of a GCell.
    pub fn gcell_center(&self, ix: BinIx) -> Point {
        self.grid.bin_rect(ix).center()
    }

    fn per_layer(&self) -> usize {
        self.h_edges_per_layer + self.v_edges_per_layer
    }

    /// Per-layer wire cost factors (each ≥ the minimum the search
    /// heuristic uses).
    pub(crate) fn layer_costs(&self) -> &[f32] {
        &self.layer_cost
    }

    /// Edge between `(x,y)` and the next GCell in +x (horizontal) or
    /// +y (vertical) on `layer`; `None` at the grid boundary.
    pub(crate) fn edge_ix(
        &self,
        layer: usize,
        x: usize,
        y: usize,
        horizontal: bool,
    ) -> Option<usize> {
        let nx = self.grid.nx() as usize;
        let ny = self.grid.ny() as usize;
        if horizontal {
            if x + 1 >= nx || y >= ny {
                return None;
            }
            Some(layer * self.per_layer() + y * (nx - 1) + x)
        } else {
            if y + 1 >= ny || x >= nx {
                return None;
            }
            Some(layer * self.per_layer() + self.h_edges_per_layer + y * nx + x)
        }
    }

    /// Horizontal edge `(x,y)→(x+1,y)` on `layer`; bounds unchecked
    /// (the windowed search guarantees in-grid coordinates).
    #[inline]
    pub(crate) fn h_edge(&self, layer: usize, x: usize, y: usize) -> usize {
        debug_assert!(x + 1 < self.grid.nx() as usize && y < self.grid.ny() as usize);
        layer * self.per_layer() + y * (self.grid.nx() as usize - 1) + x
    }

    /// Vertical edge `(x,y)→(x,y+1)` on `layer`; bounds unchecked.
    #[inline]
    pub(crate) fn v_edge(&self, layer: usize, x: usize, y: usize) -> usize {
        debug_assert!(y + 1 < self.grid.ny() as usize && x < self.grid.nx() as usize);
        layer * self.per_layer() + self.h_edges_per_layer + y * self.grid.nx() as usize + x
    }

    /// Capacity of a wire edge.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn capacity(&self, e: usize) -> f32 {
        self.cap[e]
    }

    /// Maintained search cost of a wire edge (`INFINITY` when
    /// blocked).
    #[inline]
    pub(crate) fn cost(&self, e: usize) -> f32 {
        self.cost[e]
    }

    /// Wire-step cost: congestion multiplier (the marginal cost of
    /// one more track through this edge, steep once over capacity,
    /// plus accumulated negotiation history) times the layer factor.
    fn compute_cost(&self, e: usize) -> f32 {
        let c = self.cap[e];
        if c <= 0.0 {
            return f32::INFINITY;
        }
        let u = self.usage[e];
        let h = self.history[e];
        let base = if u + 1.0 > c {
            (4.0 + 4.0 * (u + 1.0 - c)).min(16.0)
        } else {
            1.0 + 0.3 * (u / c)
        };
        (base + h).min(24.0) * self.layer_cost[e / self.per_layer()]
    }

    #[inline]
    fn set_overflow_bit(&mut self, e: usize) {
        let (w, b) = (e / 64, e % 64);
        if self.overflow_bits[w] & (1 << b) == 0 {
            self.overflow_bits[w] |= 1 << b;
            self.overflowed += 1;
        }
    }

    #[inline]
    fn clear_overflow_bit(&mut self, e: usize) {
        let (w, b) = (e / 64, e % 64);
        if self.overflow_bits[w] & (1 << b) != 0 {
            self.overflow_bits[w] &= !(1 << b);
            self.overflowed -= 1;
        }
    }

    /// Whether committing one more track would push the edge over
    /// capacity — the pattern-route acceptance test.
    #[inline]
    pub(crate) fn would_overflow(&self, e: usize) -> bool {
        self.usage[e] + 1.0 > self.cap[e]
    }

    /// Whether a wire edge is currently overflowed (usage beyond
    /// capacity), from the maintained bitset.
    #[inline]
    pub(crate) fn is_overflowed(&self, e: usize) -> bool {
        self.overflow_bits[e / 64] & (1 << (e % 64)) != 0
    }

    /// Number of currently overflowed wire edges (maintained).
    pub(crate) fn overflow_count(&self) -> usize {
        self.overflowed
    }

    /// Adds one track of usage to a wire edge and refreshes its cost
    /// and overflow bit.
    #[inline]
    pub(crate) fn commit(&mut self, e: usize) {
        self.usage[e] += 1.0;
        self.cost[e] = self.compute_cost(e);
        if self.usage[e] > self.cap[e] {
            self.set_overflow_bit(e);
        }
    }

    /// Removes one track of usage from a wire edge (rip-up) and
    /// refreshes its cost and overflow bit.
    #[inline]
    pub(crate) fn release(&mut self, e: usize) {
        self.usage[e] -= 1.0;
        self.cost[e] = self.compute_cost(e);
        if self.usage[e] <= self.cap[e] {
            self.clear_overflow_bit(e);
        }
    }

    /// Reduces capacity under an obstacle on `layer` (macro internal
    /// routing): every wire edge whose GCell span overlaps the rect
    /// loses capacity in proportion to the overlap fraction.
    pub fn add_obstacle(&mut self, layer: usize, rect: Rect) {
        if layer >= self.layers {
            return;
        }
        let Some((lo, hi)) = self.grid.bins_overlapping(rect) else {
            return;
        };
        for y in lo.y..=hi.y {
            for x in lo.x..=hi.x {
                let bin = self.grid.bin_rect(BinIx::new(x, y));
                let frac = rect
                    .intersection(bin)
                    .map(|i| i.area_um2() / bin.area_um2())
                    .unwrap_or(0.0) as f32;
                for horiz in [true, false] {
                    if let Some(e) = self.edge_ix(layer, x as usize, y as usize, horiz) {
                        self.cap[e] = (self.cap[e] * (1.0 - frac)).max(0.0);
                        self.cost[e] = self.compute_cost(e);
                        if self.usage[e] > self.cap[e] {
                            self.set_overflow_bit(e);
                        }
                    }
                }
            }
        }
    }

    /// Total overflow (usage beyond capacity) over all wire edges.
    pub fn total_overflow(&self) -> f64 {
        self.usage
            .iter()
            .zip(&self.cap)
            .map(|(&u, &c)| (u - c).max(0.0) as f64)
            .sum()
    }

    /// Number of overflowed edges.
    pub fn overflowed_edges(&self) -> usize {
        self.overflowed
    }

    /// Maximum edge utilization (usage / capacity) over edges with
    /// non-zero capacity.
    pub fn max_utilization(&self) -> f64 {
        self.usage
            .iter()
            .zip(&self.cap)
            .filter(|&(_, &c)| c > 0.0)
            .map(|(&u, &c)| (u / c) as f64)
            .fold(0.0, f64::max)
    }

    /// Iterates (usage, capacity) over all wire edges of one layer.
    pub fn layer_edges(&self, layer: usize) -> impl Iterator<Item = (f32, f32)> + '_ {
        let per = self.per_layer();
        let start = layer * per;
        self.usage[start..start + per]
            .iter()
            .zip(&self.cap[start..start + per])
            .map(|(&u, &c)| (u, c))
    }

    /// Accumulates congestion history from current overflow. Only
    /// overflowed edges (tracked by the bitset) are visited; each
    /// one's cost is refreshed in place.
    pub(crate) fn accumulate_history(&mut self, weight: f32) {
        for w in 0..self.overflow_bits.len() {
            let mut bits = self.overflow_bits[w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let e = w * 64 + b;
                self.history[e] += weight * (self.usage[e] - self.cap[e] + 1.0);
                self.cost[e] = self.compute_cost(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::stack::{n28_stack, DieRole};

    fn grid() -> RouteGrid {
        RouteGrid::new(
            Rect::from_um(0.0, 0.0, 100.0, 100.0),
            &n28_stack(6, DieRole::Logic),
            Dbu::from_um(10.0),
            0.5,
        )
    }

    #[test]
    fn capacities_follow_layer_direction() {
        let g = grid();
        // M1 horizontal: pitch 0.1um, gcell 10um, util 0.5 -> 50 tracks
        let e = g.edge_ix(0, 0, 0, true).expect("edge");
        assert!((g.capacity(e) - 50.0).abs() < 1e-3);
        // M1 has no vertical capacity
        let ev = g.edge_ix(0, 0, 0, false).expect("edge");
        assert_eq!(g.capacity(ev), 0.0);
        assert_eq!(g.cost(ev), f32::INFINITY, "no capacity means blocked");
        // M2 vertical has capacity
        let e2 = g.edge_ix(1, 0, 0, false).expect("edge");
        assert!(g.capacity(e2) > 0.0);
        // M5 has fewer tracks than M1 (bigger pitch)
        let e5 = g.edge_ix(4, 0, 0, true).expect("edge");
        assert!(g.capacity(e5) < g.capacity(e));
        // ... but a cheaper per-gcell cost (lower resistance)
        assert!(g.cost(e5) < g.cost(e));
    }

    #[test]
    fn boundary_edges_do_not_exist() {
        let g = grid();
        assert!(g.edge_ix(0, 9, 0, true).is_none());
        assert!(g.edge_ix(0, 0, 9, false).is_none());
        assert!(g.edge_ix(0, 8, 0, true).is_some());
    }

    #[test]
    fn obstacles_reduce_capacity() {
        let mut g = grid();
        let e = g.edge_ix(0, 2, 2, true).expect("edge");
        let before = g.capacity(e);
        g.add_obstacle(0, Rect::from_um(20.0, 20.0, 30.0, 30.0));
        let after = g.capacity(e);
        assert!(after < before * 0.2, "full overlap nearly zeroes capacity");
        // different layer untouched
        let e2 = g.edge_ix(2, 2, 2, true).expect("edge");
        assert!((g.capacity(e2) - before).abs() < 1e-3);
    }

    #[test]
    fn overflow_accounting_tracks_commits() {
        let mut g = grid();
        assert_eq!(g.total_overflow(), 0.0);
        let e = g.edge_ix(0, 0, 0, true).expect("edge");
        let cap = g.capacity(e) as usize;
        for _ in 0..cap + 3 {
            g.commit(e);
        }
        assert!((g.total_overflow() - 3.0).abs() < 1e-3);
        assert_eq!(g.overflowed_edges(), 1);
        assert!(g.is_overflowed(e));
        assert!(g.max_utilization() > 1.0);
        g.accumulate_history(1.0);
        assert!(g.history[e] > 0.0);
        // releasing back below capacity clears the bit
        for _ in 0..4 {
            g.release(e);
        }
        assert_eq!(g.overflowed_edges(), 0);
        assert!(!g.is_overflowed(e));
        assert_eq!(g.total_overflow(), 0.0);
    }

    #[test]
    fn cost_rises_with_usage_and_history() {
        let mut g = grid();
        let e = g.edge_ix(0, 1, 1, true).expect("edge");
        let c0 = g.cost(e);
        g.commit(e);
        let c1 = g.cost(e);
        assert!(c1 > c0, "usage raises cost: {c0} -> {c1}");
        // saturate beyond capacity: cost jumps to the overflow regime
        let cap = g.capacity(e) as usize;
        for _ in 0..cap {
            g.commit(e);
        }
        assert!(g.cost(e) > 4.0 * c0);
        g.accumulate_history(1.0);
        assert!(g.cost(e) > c1, "history raises cost further");
    }
}
