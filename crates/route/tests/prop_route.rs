//! Property-based tests for the global router.

use macro3d_geom::{Point, Rect};
use macro3d_netlist::NetId;
use macro3d_route::{steiner_length, RouteConfig, RoutePin, RouteRequest, RoutedDesign, Router};
use macro3d_tech::stack::MetalStack;
use macro3d_tech::stack::{n28_stack, DieRole};
use proptest::prelude::*;

fn die() -> Rect {
    Rect::from_um(0.0, 0.0, 300.0, 300.0)
}

fn route(stack: &MetalStack, nets: &[(NetId, Vec<RoutePin>)], cfg: &RouteConfig) -> RoutedDesign {
    Router::new(
        &RouteRequest {
            die: die(),
            stack,
            obstacles: &[],
            nets,
            num_nets: nets.len(),
        },
        cfg,
    )
    .route()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every routed two-pin net's length is bounded below by (gcell-
    /// quantized) Manhattan distance and above by a small detour
    /// factor in an uncongested die.
    #[test]
    fn route_length_bounds(
        x0 in 10.0f64..290.0, y0 in 10.0f64..290.0,
        x1 in 10.0f64..290.0, y1 in 10.0f64..290.0,
    ) {
        let stack = n28_stack(6, DieRole::Logic);
        let a = Point::from_um(x0, y0);
        let b = Point::from_um(x1, y1);
        let nets = vec![(NetId(0), vec![(a, 0u16), (b, 0u16)])];
        let cfg = RouteConfig::default();
        let r = route(&stack, &nets, &cfg);
        let net = r.net(NetId(0)).expect("routed");
        let manhattan = a.manhattan(b).to_um();
        let quant = 2.0 * cfg.gcell_um; // endpoint quantization slack
        prop_assert!(
            net.wirelength_um() + quant >= manhattan - quant,
            "wl {} vs manhattan {manhattan}",
            net.wirelength_um()
        );
        prop_assert!(
            net.wirelength_um() <= manhattan * 1.6 + 4.0 * cfg.gcell_um,
            "wl {} vs manhattan {manhattan}",
            net.wirelength_um()
        );
    }

    /// Via counts and segment layers are always consistent with the
    /// stack (no out-of-range layers), for random multi-pin nets.
    #[test]
    fn layers_always_in_range(
        pins in proptest::collection::vec((10.0f64..290.0, 10.0f64..290.0), 2..10),
    ) {
        let stack = n28_stack(6, DieRole::Logic);
        let net_pins: Vec<(Point, u16)> =
            pins.iter().map(|&(x, y)| (Point::from_um(x, y), 0u16)).collect();
        let nets = vec![(NetId(0), net_pins)];
        let r = route(&stack, &nets, &RouteConfig::default());
        let net = r.net(NetId(0)).expect("routed");
        for s in &net.segments {
            prop_assert!((s.layer as usize) < stack.num_layers());
        }
        for v in &net.vias {
            prop_assert!((v.layer as usize) < stack.num_layers() - 1);
        }
        prop_assert_eq!(net.f2f_crossings, 0, "single-die stack has no F2F cut");
    }

    /// The Steiner topology never exceeds the star topology and never
    /// undercuts half the bounding-box perimeter.
    #[test]
    fn steiner_bounds(
        pins in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 2..20),
    ) {
        let pts: Vec<Point> = pins.iter().map(|&(x, y)| Point::from_um(x, y)).collect();
        let len = steiner_length(&pts);
        let mut lo = pts[0];
        let mut hi = pts[0];
        for &p in &pts[1..] {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let hpwl = lo.manhattan(hi);
        prop_assert!(len >= hpwl, "steiner {len:?} < hpwl {hpwl:?}");
        let star: macro3d_geom::Dbu = pts[1..].iter().map(|p| pts[0].manhattan(*p)).sum();
        prop_assert!(len <= star.max(hpwl));
    }
}
