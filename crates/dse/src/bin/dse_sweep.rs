//! One-shot design-space sweep CLI.
//!
//! Expands a knob grid over a base spec, runs every point through the
//! DSE service, and prints a results table with the Pareto front
//! marked. With `--bench-out` it runs the sweep **twice** against the
//! same persisted cache — cold, restart, warm — verifies per-point
//! fingerprints are bit-identical, and writes a `BENCH_dse.json`
//! style throughput report.
//!
//! ```text
//! dse_sweep --flow Macro-3D --tile mini --set sizing_rounds=1 \
//!           --axis l2_kb=8,16 --axis macro_metals=4,6 \
//!           --workers 4 --cache-dir .dse-cache
//! ```

use macro3d::jsonio;
use macro3d_dse::sweep::{run_sweep, SweepAxis, SweepSpec};
use macro3d_dse::{
    tile_preset, DseConfig, DseService, DseStats, JobSpec, SweepOutcome, SCHEMA_VERSION,
};
use macro3d_json::Json;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dse_sweep [options]
  --flow NAME       flow to run (default Macro-3D)
  --tile PRESET     mini | small_cache | large_cache (default mini)
  --set K=V         set one base knob (repeatable)
  --axis K=V1,V2..  sweep one knob over values (repeatable)
  --workers N       worker threads (default 0 = one per hardware thread)
  --cache-dir P     persist results under P
  --no-stage-reuse  disable the workers' stage caches (every point cold)
  --out FILE        write the table to FILE instead of stdout
  --bench-out FILE  run cold+warm passes, write throughput JSON to FILE
                    (requires --cache-dir)";

struct Args {
    sweep: SweepSpec,
    service: DseConfig,
    out: Option<PathBuf>,
    bench_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut flow = "Macro-3D".to_string();
    let mut tile = "mini".to_string();
    let mut sets: Vec<(String, String)> = Vec::new();
    let mut axes: Vec<SweepAxis> = Vec::new();
    let mut service = DseConfig {
        workers: 0,
        ..DseConfig::default()
    };
    let mut out = None;
    let mut bench_out = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--flow" => flow = value("--flow")?,
            "--tile" => tile = value("--tile")?,
            "--set" => {
                let kv = value("--set")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set wants K=V, got '{kv}'"))?;
                sets.push((k.to_string(), v.to_string()));
            }
            "--axis" => {
                let kv = value("--axis")?;
                let (k, vs) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--axis wants K=V1,V2,…, got '{kv}'"))?;
                axes.push(SweepAxis {
                    knob: k.to_string(),
                    values: vs.split(',').map(str::to_string).collect(),
                });
            }
            "--workers" => {
                service.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: not a number".to_string())?;
            }
            "--cache-dir" => service.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-stage-reuse" => service.stage_reuse = false,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--bench-out" => bench_out = Some(PathBuf::from(value("--bench-out")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }

    if bench_out.is_some() && service.cache_dir.is_none() {
        return Err("--bench-out requires --cache-dir (the warm pass reads it)".to_string());
    }
    let tile =
        tile_preset(&tile).ok_or_else(|| format!("unknown tile preset '{tile}'\n{USAGE}"))?;
    let mut base = JobSpec::new(flow, tile);
    for (knob, value) in &sets {
        macro3d_dse::sweep::apply_knob(&mut base, knob, value).map_err(|e| e.to_string())?;
    }
    Ok(Args {
        sweep: SweepSpec { base, axes },
        service,
        out,
        bench_out,
    })
}

/// One full pass: fresh service, run sweep (streaming progress to
/// stderr), shut the service down, return the outcome + stats.
fn run_pass(args: &Args, tag: &str) -> Result<(SweepOutcome, DseStats, usize), String> {
    let service =
        DseService::start(args.service.clone()).map_err(|e| format!("service start: {e}"))?;
    let workers = service.workers();
    let client = service.client();
    let outcome = run_sweep(&client, &args.sweep, |point| match &point.result {
        Ok(r) => eprintln!(
            "[{tag}] {}: fclk {:.1} MHz, {} ({:.2}s)",
            point.label,
            r.ppa.fclk_mhz,
            if r.cache_hit { "cache hit" } else { "cold run" },
            r.wall_s
        ),
        Err(e) => eprintln!("[{tag}] {}: FAILED: {e}", point.label),
    })
    .map_err(|e| e.to_string())?;
    let stats = client.stats();
    service.shutdown();
    Ok((outcome, stats, workers))
}

fn fingerprints(outcome: &SweepOutcome) -> Vec<Option<u64>> {
    outcome
        .points
        .iter()
        .map(|p| p.ok().map(|r| jsonio::ppa_fingerprint(&r.ppa)))
        .collect()
}

fn write_table(outcome: &SweepOutcome, mut sink: impl Write) -> std::io::Result<()> {
    writeln!(
        sink,
        "{:<40} {:>10} {:>12} {:>10} {:>8} {:>6} {:>5} {:>16}  pareto",
        "point", "fclk_mhz", "emean_fj", "fp_mm2", "wl_m", "hit", "reuse", "fingerprint"
    )?;
    for (i, point) in outcome.points.iter().enumerate() {
        match &point.result {
            Ok(r) => writeln!(
                sink,
                "{:<40} {:>10.1} {:>12.1} {:>10.4} {:>8.4} {:>6} {:>5} {:>16}  {}",
                point.label,
                r.ppa.fclk_mhz,
                r.ppa.emean_fj,
                r.ppa.footprint_mm2,
                r.ppa.total_wirelength_m,
                if r.cache_hit { "yes" } else { "no" },
                r.reuse_depth,
                format!("{:016x}", jsonio::ppa_fingerprint(&r.ppa)),
                if outcome.pareto.contains(&i) { "*" } else { "" }
            )?,
            Err(e) => writeln!(sink, "{:<40} FAILED: {e}", point.label)?,
        }
    }
    writeln!(
        sink,
        "\n{} points, {} on the Pareto front, {:.2}s wall",
        outcome.points.len(),
        outcome.pareto.len(),
        outcome.wall_s
    )
}

fn bench_json(
    points: usize,
    cold: &(SweepOutcome, DseStats, usize),
    warm: &(SweepOutcome, DseStats, usize),
    identical: bool,
) -> Json {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (cold_s, warm_s) = (cold.0.wall_s, warm.0.wall_s);
    Json::obj()
        .field("schema_version", Json::from_u64(SCHEMA_VERSION))
        .field("bench", Json::str("dse_service"))
        .field("crate_version", Json::str(macro3d_dse::crate_version()))
        .field("host_cpus", Json::from_usize(host_cpus))
        .field("effective_threads", Json::from_usize(cold.2))
        .field("points", Json::from_usize(points))
        .field("cold_s", Json::from_f64(cold_s))
        .field("warm_s", Json::from_f64(warm_s))
        .field(
            "speedup",
            Json::from_f64(if warm_s > 0.0 {
                cold_s / warm_s
            } else {
                f64::NAN
            }),
        )
        .field(
            "cold_jobs_per_s",
            Json::from_f64(if cold_s > 0.0 {
                points as f64 / cold_s
            } else {
                f64::NAN
            }),
        )
        .field(
            "warm_jobs_per_s",
            Json::from_f64(if warm_s > 0.0 {
                points as f64 / warm_s
            } else {
                f64::NAN
            }),
        )
        .field("cold_flows_executed", Json::from_u64(cold.1.flows_executed))
        .field("warm_flows_executed", Json::from_u64(warm.1.flows_executed))
        .field("warm_cache_hits", Json::from_u64(warm.1.cache.hits))
        .field("warm_disk_hits", Json::from_u64(warm.1.cache.disk_hits))
        .field("cold_stage_hits", Json::from_u64(cold.1.stage_hits))
        .field("cold_stage_misses", Json::from_u64(cold.1.stage_misses))
        .field(
            "reuse_depths",
            Json::Arr(
                cold.0
                    .points
                    .iter()
                    .map(|p| Json::from_usize(p.ok().map_or(0, |r| r.reuse_depth)))
                    .collect(),
            ),
        )
        .field(
            "fingerprints",
            Json::Arr(
                cold.0
                    .points
                    .iter()
                    .map(|p| {
                        Json::str(p.ok().map_or_else(
                            || "failed".to_string(),
                            |r| format!("{:016x}", jsonio::ppa_fingerprint(&r.ppa)),
                        ))
                    })
                    .collect(),
            ),
        )
        .field("fingerprints_identical", Json::Bool(identical))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let cold = run_pass(&args, "cold")?;

    let bench = if let Some(bench_path) = &args.bench_out {
        // warm pass: a *fresh* service against the same cache dir —
        // only what persisted to disk can answer
        let warm = run_pass(&args, "warm")?;
        let identical = fingerprints(&cold.0) == fingerprints(&warm.0);
        if !identical {
            return Err("cold and warm fingerprints differ — determinism broken".to_string());
        }
        if warm.1.cache.hits == 0 {
            return Err("warm pass had zero cache hits — persistence broken".to_string());
        }
        let json = bench_json(cold.0.points.len(), &cold, &warm, identical);
        let mut text = json.emit();
        text.push('\n');
        std::fs::write(bench_path, text).map_err(|e| format!("write {bench_path:?}: {e}"))?;
        eprintln!(
            "[bench] cold {:.2}s, warm {:.2}s ({:.1}x), wrote {}",
            cold.0.wall_s,
            warm.0.wall_s,
            cold.0.wall_s / warm.0.wall_s.max(1e-9),
            bench_path.display()
        );
        Some(warm)
    } else {
        None
    };
    // report the warm pass when we ran one (same numbers, hit flags on)
    let reported = bench.as_ref().unwrap_or(&cold);

    match &args.out {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
            write_table(&reported.0, std::io::BufWriter::new(file))
                .map_err(|e| format!("write table: {e}"))?;
        }
        None => {
            let stdout = std::io::stdout();
            write_table(&reported.0, stdout.lock()).map_err(|e| format!("write table: {e}"))?;
        }
    }

    let failed = reported
        .0
        .points
        .iter()
        .filter(|p| p.ok().is_none())
        .count();
    if failed > 0 {
        return Err(format!("{failed} sweep point(s) failed"));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
