//! The DSE job service over stdin/stdout: one NDJSON request per
//! input line, responses on stdout (see `macro3d_dse::server` for the
//! protocol). Intended to sit behind a pipe or a socket wrapper:
//!
//! ```text
//! printf '%s\n' '{"cmd":"ping"}' | dse_server --workers 4 --cache-dir .dse-cache
//! ```

use macro3d_dse::server::serve;
use macro3d_dse::{DseConfig, DseService};
use std::io::{self, BufReader};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dse_server [--workers N] [--queue N] [--cache-dir PATH]
  --workers N     worker threads (default 1; 0 = one per hardware thread)
  --queue N       queue capacity, submits block when full (default 64)
  --cache-dir P   persist results under P (default: in-memory only)";

fn parse_args() -> Result<DseConfig, String> {
    let mut cfg = DseConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: not a number".to_string())?;
            }
            "--queue" => {
                let capacity: usize = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue: not a number".to_string())?;
                if capacity == 0 {
                    return Err("--queue must be >= 1".to_string());
                }
                cfg.queue_capacity = capacity;
            }
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let service = match DseService::start(cfg) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("dse_server: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let client = service.client();
    let stdin = io::stdin();
    let mut stdout = io::stdout().lock();
    let outcome = serve(BufReader::new(stdin.lock()), &mut stdout, &client);
    service.shutdown();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dse_server: transport error: {e}");
            ExitCode::FAILURE
        }
    }
}
