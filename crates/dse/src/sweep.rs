//! Sweep planning: knob grids → jobs → streamed results → Pareto.
//!
//! A [`SweepSpec`] is a base [`JobSpec`] plus axes; [`expand`] takes
//! the cartesian product in a fixed, documented order (first axis
//! slowest, last axis fastest — an odometer), so point indices and
//! labels are stable across runs, which the determinism tests rely
//! on. [`run_sweep`] submits every point up front (the executor's
//! bounded queue provides backpressure), then collects results *in
//! point order*, invoking a streaming callback per point, and
//! finishes with a Pareto front over the classic PPA triple:
//! maximize `fclk_mhz`, minimize `emean_fj`, minimize
//! `footprint_mm2`.

use crate::executor::{DseClient, JobError, JobResult, SubmitError};
use crate::{flow_by_name, tile_preset, JobSpec};
use macro3d::{FaultAction, FaultPlan, PlacerBackend, StaMode};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One swept knob and the values it takes (as CLI-style strings).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepAxis {
    /// Knob name; see [`apply_knob`] for the vocabulary.
    pub knob: String,
    /// Values, applied verbatim through [`apply_knob`].
    pub values: Vec<String>,
}

impl SweepAxis {
    /// Convenience constructor.
    pub fn new(knob: impl Into<String>, values: &[&str]) -> Self {
        SweepAxis {
            knob: knob.into(),
            values: values.iter().map(|v| v.to_string()).collect(),
        }
    }
}

/// A base spec and the grid swept around it.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Applied first; every point starts from a clone of this.
    pub base: JobSpec,
    /// The grid. Empty axes list = the single base point.
    pub axes: Vec<SweepAxis>,
}

/// One expanded grid point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// `"l2_kb=16,macro_metals=4"` — or `"base"` for an axis-free
    /// sweep.
    pub label: String,
    /// The fully-knobbed spec.
    pub spec: JobSpec,
}

/// A bad knob name or value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnobError(String);

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "knob error: {}", self.0)
    }
}

impl std::error::Error for KnobError {}

fn bad(msg: impl Into<String>) -> KnobError {
    KnobError(msg.into())
}

/// Applies one `knob=value` setting to a spec. The vocabulary covers
/// the paper's headline sweep dimensions (cache sizes, metal/BEOL
/// stacks, F2F pitch) plus flow/backend selection and the knobs the
/// smoke tests turn down for speed.
pub fn apply_knob(spec: &mut JobSpec, knob: &str, value: &str) -> Result<(), KnobError> {
    fn num<T: std::str::FromStr>(knob: &str, value: &str) -> Result<T, KnobError> {
        value
            .parse::<T>()
            .map_err(|_| bad(format!("'{value}' is not a valid value for {knob}")))
    }
    match knob {
        "flow" => {
            if flow_by_name(value).is_none() {
                return Err(bad(format!("unknown flow '{value}'")));
            }
            spec.flow = value.to_string();
        }
        "tile" => {
            spec.tile =
                tile_preset(value).ok_or_else(|| bad(format!("unknown tile preset '{value}'")))?;
        }
        "l1i_kb" => spec.tile.l1i_kb = num(knob, value)?,
        "l1d_kb" => spec.tile.l1d_kb = num(knob, value)?,
        "l2_kb" => spec.tile.l2_kb = num(knob, value)?,
        "l3_kb" => spec.tile.l3_kb = num(knob, value)?,
        "scale" => {
            let scale: f64 = num(knob, value)?;
            if scale < 1.0 {
                return Err(bad("scale must be >= 1"));
            }
            spec.tile.scale = scale;
        }
        "seed" => spec.tile.seed = num(knob, value)?,
        "logic_metals" => spec.config.logic_metals = nonzero(num(knob, value)?, knob)?,
        "macro_metals" => spec.config.macro_metals = nonzero(num(knob, value)?, knob)?,
        "util_logic" => spec.config.util_logic = unit_open(num(knob, value)?, knob)?,
        "util_macro" => spec.config.util_macro = unit_open(num(knob, value)?, knob)?,
        "halo_um" => spec.config.halo_um = num(knob, value)?,
        "sizing_rounds" => spec.config.sizing_rounds = num(knob, value)?,
        "route_iterations" => spec.config.route.iterations = num(knob, value)?,
        "f2f_pitch_um" => {
            spec.config.route.f2f_pitch_um = if value == "none" {
                None
            } else {
                Some(num(knob, value)?)
            };
        }
        "placer" => {
            spec.config.place.backend = match value {
                "bisection" => PlacerBackend::Bisection,
                "analytical" => PlacerBackend::Analytical,
                _ => return Err(bad(format!("unknown placer '{value}'"))),
            };
        }
        "sta_mode" => {
            spec.config.sta_mode = match value {
                "probe" => StaMode::Probe,
                "parametric" => StaMode::Parametric,
                _ => return Err(bad(format!("unknown sta_mode '{value}'"))),
            };
        }
        "threads" => {
            let threads: usize = num(knob, value)?;
            spec.config.parallelism.threads = threads;
            spec.config.route.parallelism.threads = threads;
            spec.config.place.parallelism.threads = threads;
        }
        "budget_wall_s" => {
            // budgets key every stage and disable stage reuse (see
            // macro3d::stage); `none` restores the unlimited default
            spec.config.budget.wall_clock = if value == "none" {
                None
            } else {
                let secs: f64 = num(knob, value)?;
                if secs <= 0.0 {
                    return Err(bad("budget_wall_s must be > 0 (or 'none')"));
                }
                Some(std::time::Duration::from_secs_f64(secs))
            };
        }
        "fault_site" => {
            // plant a deterministic budget-exhaust fault at a
            // checkpoint site; the run completes degraded, not failed
            spec.config.fault_plan = if value == "none" {
                None
            } else {
                Some(FaultPlan::new().with_fault(value, 1, FaultAction::Exhaust))
            };
        }
        _ => return Err(bad(format!("unknown knob '{knob}'"))),
    }
    Ok(())
}

fn nonzero(v: usize, knob: &str) -> Result<usize, KnobError> {
    if v == 0 {
        Err(bad(format!("{knob} must be >= 1")))
    } else {
        Ok(v)
    }
}

fn unit_open(v: f64, knob: &str) -> Result<f64, KnobError> {
    if v > 0.0 && v <= 1.0 {
        Ok(v)
    } else {
        Err(bad(format!("{knob} must be in (0, 1]")))
    }
}

/// Expands the grid into points, odometer order (last axis fastest).
///
/// # Errors
///
/// Any invalid knob name/value in any axis.
pub fn expand(sweep: &SweepSpec) -> Result<Vec<SweepPoint>, KnobError> {
    for axis in &sweep.axes {
        if axis.values.is_empty() {
            return Err(bad(format!("axis '{}' has no values", axis.knob)));
        }
    }
    let total: usize = sweep.axes.iter().map(|a| a.values.len()).product();
    let mut points = Vec::with_capacity(total);
    let mut odometer = vec![0usize; sweep.axes.len()];
    loop {
        let mut spec = sweep.base.clone();
        let mut label_parts = Vec::with_capacity(sweep.axes.len());
        for (axis, &digit) in sweep.axes.iter().zip(&odometer) {
            let value = &axis.values[digit];
            apply_knob(&mut spec, &axis.knob, value)?;
            label_parts.push(format!("{}={value}", axis.knob));
        }
        let label = if label_parts.is_empty() {
            "base".to_string()
        } else {
            label_parts.join(",")
        };
        points.push(SweepPoint { label, spec });
        // increment, last axis fastest
        let mut pos = sweep.axes.len();
        loop {
            if pos == 0 {
                return Ok(points);
            }
            pos -= 1;
            odometer[pos] += 1;
            if odometer[pos] < sweep.axes[pos].values.len() {
                break;
            }
            odometer[pos] = 0;
        }
    }
}

/// One sweep point's outcome: the result, or the failure message.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Stable point label from [`expand`].
    pub label: String,
    /// Outcome; `Err` carries the executor's failure message.
    pub result: Result<Arc<JobResult>, String>,
}

impl PointResult {
    /// The successful result, if any.
    pub fn ok(&self) -> Option<&Arc<JobResult>> {
        self.result.as_ref().ok()
    }
}

/// The full sweep's outcome.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per-point results, in grid order.
    pub points: Vec<PointResult>,
    /// Indices into `points` on the Pareto front (max `fclk_mhz`,
    /// min `emean_fj`, min `footprint_mm2`), in grid order.
    pub pareto: Vec<usize>,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
}

/// Expands the sweep, submits every point, and streams results back
/// in grid order through `on_point`. Individual point failures do not
/// abort the sweep — they surface as `Err` point results (and are
/// excluded from the Pareto front).
///
/// # Errors
///
/// A knob error during expansion, or a submit-side error (unknown
/// flow, service shutdown).
pub fn run_sweep(
    client: &DseClient,
    sweep: &SweepSpec,
    mut on_point: impl FnMut(&PointResult),
) -> Result<SweepOutcome, SweepError> {
    let points = expand(sweep)?;
    let started = Instant::now();
    // submit everything first: the bounded queue gives backpressure,
    // and workers overlap point execution with this loop. Points go
    // in stage-key order (late-stage knobs vary fastest within a
    // shared prefix), so consecutive submissions to the same worker
    // maximize stage-cache prefix reuse; results are still collected
    // in grid order below, and the order never changes any result.
    let mut order: Vec<usize> = (0..points.len()).collect();
    let keys: Vec<[u64; macro3d::stage::NUM_STAGES]> =
        points.iter().map(|p| p.spec.stage_keys().prefix).collect();
    order.sort_by_key(|&i| (keys[i], i));
    let mut ids = vec![None; points.len()];
    for &i in &order {
        ids[i] = Some(client.submit(points[i].spec.clone())?);
    }
    let ids: Vec<_> = ids.into_iter().flatten().collect();
    let mut results = Vec::with_capacity(points.len());
    for (point, id) in points.iter().zip(ids) {
        let result = match client.wait(id) {
            Ok(r) => Ok(r),
            Err(JobError::Failed(msg)) => Err(msg),
            Err(e) => Err(e.to_string()),
        };
        let point_result = PointResult {
            label: point.label.clone(),
            result,
        };
        on_point(&point_result);
        results.push(point_result);
    }
    let pareto = pareto_front(&results);
    Ok(SweepOutcome {
        points: results,
        pareto,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

/// Why [`run_sweep`] aborted (distinct from per-point failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepError {
    /// Grid expansion failed.
    Knob(KnobError),
    /// A submission was rejected.
    Submit(SubmitError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Knob(e) => e.fmt(f),
            SweepError::Submit(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<KnobError> for SweepError {
    fn from(e: KnobError) -> Self {
        SweepError::Knob(e)
    }
}

impl From<SubmitError> for SweepError {
    fn from(e: SubmitError) -> Self {
        SweepError::Submit(e)
    }
}

/// Indices of non-dominated successful points. `a` dominates `b`
/// when it is no worse on all three objectives and strictly better
/// on at least one.
fn pareto_front(points: &[PointResult]) -> Vec<usize> {
    let objectives: Vec<(usize, f64, f64, f64)> = points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            let r = p.ok()?;
            Some((i, r.ppa.fclk_mhz, r.ppa.emean_fj, r.ppa.footprint_mm2))
        })
        .collect();
    pareto_indices(&objectives)
}

/// The dominance filter over `(index, fclk↑, energy↓, footprint↓)`
/// tuples.
fn pareto_indices(objectives: &[(usize, f64, f64, f64)]) -> Vec<usize> {
    let dominates = |a: &(usize, f64, f64, f64), b: &(usize, f64, f64, f64)| {
        a.1 >= b.1 && a.2 <= b.2 && a.3 <= b.3 && (a.1 > b.1 || a.2 < b.2 || a.3 < b.3)
    };
    objectives
        .iter()
        .filter(|cand| !objectives.iter().any(|other| dominates(other, cand)))
        .map(|(i, ..)| *i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_soc::TileConfig;

    fn base() -> JobSpec {
        JobSpec::new("Macro-3D", TileConfig::mini())
    }

    #[test]
    fn expansion_is_cartesian_and_ordered() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![
                SweepAxis::new("l2_kb", &["8", "16"]),
                SweepAxis::new("macro_metals", &["4", "6", "8"]),
            ],
        };
        let points = expand(&sweep).unwrap();
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].label, "l2_kb=8,macro_metals=4");
        assert_eq!(
            points[1].label, "l2_kb=8,macro_metals=6",
            "last axis fastest"
        );
        assert_eq!(points[5].label, "l2_kb=16,macro_metals=8");
        assert_eq!(points[3].spec.tile.l2_kb, 16);
        assert_eq!(points[3].spec.config.macro_metals, 4);
        // repeat expansion is identical (stable labels and keys)
        let again = expand(&sweep).unwrap();
        for (a, b) in points.iter().zip(&again) {
            assert_eq!(a.spec.spec_key(), b.spec.spec_key());
        }
    }

    #[test]
    fn knob_vocabulary_rejects_garbage() {
        let mut spec = base();
        assert!(apply_knob(&mut spec, "l2_kb", "16").is_ok());
        assert!(apply_knob(&mut spec, "f2f_pitch_um", "none").is_ok());
        assert_eq!(spec.config.route.f2f_pitch_um, None);
        assert!(apply_knob(&mut spec, "warp_factor", "9").is_err());
        assert!(apply_knob(&mut spec, "util_logic", "1.5").is_err());
        assert!(apply_knob(&mut spec, "scale", "0.5").is_err());
        assert!(apply_knob(&mut spec, "placer", "quantum").is_err());
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let objectives = vec![
            (0, 1000.0, 500.0, 0.2), // fastest
            (1, 900.0, 600.0, 0.3),  // dominated by 0
            (2, 800.0, 300.0, 0.25), // most efficient
            (4, 1000.0, 500.0, 0.2), // tie with 0: both survive
        ];
        assert_eq!(pareto_indices(&objectives), vec![0, 2, 4]);
        assert!(pareto_indices(&[]).is_empty(), "failed-only sweep");
    }
}
