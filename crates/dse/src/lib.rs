#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Design-space exploration over the Macro-3D flows.
//!
//! This crate turns the four flows into a **multi-tenant job
//! service**: clients submit a [`JobSpec`] (tile + flow + config
//! knobs), receive a [`executor::JobId`] immediately, and collect the
//! [`macro3d::PpaResult`], degradation report and optional
//! observability trace when the job completes. On top of the raw job
//! API sits a sweep planner ([`sweep`]) that expands a knob grid into
//! jobs and streams per-point results plus a Pareto summary.
//!
//! The pieces:
//!
//! * [`executor`] — deterministic worker-pool executor: bounded queue
//!   with submit-side backpressure, per-job panic isolation, and
//!   single-flight deduplication so identical specs run the flow at
//!   most once no matter how many tenants race.
//! * [`cache`] — content-keyed **persisted** result cache. Keys are
//!   [`JobSpec::spec_key`] hashes (same FNV discipline as the in-
//!   process `BuildCache`); records live on disk as JSON so warm hits
//!   survive service restarts and skip the flow entirely.
//! * [`sweep`] — grid expansion, knob application, Pareto front.
//! * [`server`] — newline-delimited-JSON protocol for the
//!   `dse_server` binary; `dse_sweep` is the one-shot CLI.
//!
//! Determinism contract: the flows are deterministic functions of
//! `(TileConfig, FlowConfig)` minus wall-clock (`stage_times`), so a
//! job's [`macro3d::jsonio::ppa_fingerprint`] is identical across
//! worker counts, cache temperature, and service restarts. The
//! workspace test `dse_service.rs` and the `dse_smoke` CI gate hold
//! this line.

pub mod cache;
pub mod executor;
pub mod server;
pub mod sweep;

use macro3d::flows::Flow;
use macro3d::jsonio;
use macro3d::FlowConfig;
use macro3d_json::Json;
use macro3d_soc::TileConfig;

pub use cache::{CacheStats, ResultCache};
pub use executor::{
    DseClient, DseConfig, DseService, DseStats, JobError, JobId, JobResult, JobStatus, SubmitError,
};
pub use sweep::{PointResult, SweepAxis, SweepOutcome, SweepSpec};

/// Version stamp written into every persisted record and bench JSON
/// this crate emits; bump it when a record's shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// The crate version embedded in cache keys and persisted records —
/// a version bump invalidates every persisted result.
pub fn crate_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// One unit of work: implement `tile` with flow `flow` under
/// `config`.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Flow name, as listed by [`macro3d::flows::all_flows`]
    /// (`"2D"`, `"MoL S2D"`, `"BF S2D"`, `"C2D"`, `"Macro-3D"`).
    pub flow: String,
    /// The tile to generate and implement.
    pub tile: TileConfig,
    /// Flow knobs.
    pub config: FlowConfig,
}

impl JobSpec {
    /// A spec with the default config.
    pub fn new(flow: impl Into<String>, tile: TileConfig) -> Self {
        JobSpec {
            flow: flow.into(),
            tile,
            config: FlowConfig::default(),
        }
    }

    /// Canonical JSON form — the content the cache key hashes.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("flow", Json::str(self.flow.clone()))
            .field("tile", jsonio::tile_config_to_json(&self.tile))
            .field("config", jsonio::flow_config_to_json(&self.config))
    }

    /// Decodes a spec written by [`JobSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`jsonio::CodecError`] naming the first missing or
    /// mistyped field.
    pub fn from_json(v: &Json) -> Result<JobSpec, jsonio::CodecError> {
        let flow = v
            .get("flow")
            .and_then(Json::as_str)
            .ok_or_else(|| jsonio::CodecError::new("missing string field 'flow'"))?;
        let tile = v
            .get("tile")
            .ok_or_else(|| jsonio::CodecError::new("missing field 'tile'"))?;
        let config = v
            .get("config")
            .ok_or_else(|| jsonio::CodecError::new("missing field 'config'"))?;
        Ok(JobSpec {
            flow: flow.to_string(),
            tile: jsonio::tile_config_from_json(tile)?,
            config: jsonio::flow_config_from_json(config)?,
        })
    }

    /// Content key of this spec: 16 hex digits of FNV-1a 64 over the
    /// crate version and the canonical spec JSON. Same spec → same
    /// key, across processes and restarts; any knob change or crate
    /// version bump → different key. The persisted result cache and
    /// the executor's single-flight table are both keyed by this.
    pub fn spec_key(&self) -> String {
        let payload = format!("{}\u{1f}{}", crate_version(), self.to_json().emit());
        format!("{:016x}", jsonio::fnv1a_64(payload.as_bytes()))
    }

    /// The chained per-stage content keys of this spec (see
    /// [`macro3d::stage`]). Two specs sharing a key prefix share that
    /// prefix of flow work; the executor routes same-prefix specs to
    /// the same worker and the sweep planner orders submissions to
    /// maximize shared prefixes.
    pub fn stage_keys(&self) -> macro3d::StageKeys {
        macro3d::stage_keys(&self.flow, &self.tile, &self.config)
    }
}

/// Looks up a flow implementation by its public name.
pub fn flow_by_name(name: &str) -> Option<&'static dyn Flow> {
    macro3d::flows::all_flows()
        .into_iter()
        .find(|f| f.name() == name)
}

/// Tile presets addressable by name in the NDJSON protocol and the
/// `dse_sweep` CLI.
pub fn tile_preset(name: &str) -> Option<TileConfig> {
    match name {
        "mini" => Some(TileConfig::mini()),
        "small_cache" => Some(TileConfig::small_cache()),
        "large_cache" => Some(TileConfig::large_cache()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_key_is_stable_and_content_sensitive() {
        let spec = JobSpec::new("Macro-3D", TileConfig::mini());
        let key = spec.spec_key();
        assert_eq!(key.len(), 16);
        assert_eq!(key, spec.clone().spec_key(), "same content, same key");

        let mut other = spec.clone();
        other.config.sizing_rounds += 1;
        assert_ne!(key, other.spec_key(), "knob change changes the key");

        let mut retiled = spec.clone();
        retiled.tile.l2_kb *= 2;
        assert_ne!(key, retiled.spec_key(), "tile change changes the key");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = JobSpec::new("BF S2D", TileConfig::small_cache());
        spec.config.sizing_rounds = 3;
        let text = spec.to_json().emit();
        let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.flow, spec.flow);
        assert_eq!(back.tile, spec.tile);
        assert_eq!(back.spec_key(), spec.spec_key());
    }

    #[test]
    fn flow_lookup_covers_all_flows() {
        for f in macro3d::flows::all_flows() {
            assert!(flow_by_name(f.name()).is_some(), "{}", f.name());
        }
        assert!(flow_by_name("definitely-not-a-flow").is_none());
    }
}
