//! The multi-tenant worker-pool executor.
//!
//! [`DseService::start`] spawns a configurable number of worker
//! threads over a bounded job queue. [`DseClient`] is the cheap,
//! cloneable tenant handle: `submit` enqueues (blocking when the
//! queue is full — backpressure, not rejection), `wait` blocks until
//! a terminal state, `cancel` withdraws a still-queued job.
//!
//! Isolation guarantees, in the order they matter:
//!
//! * **One job cannot take down the service.** The flow runs under
//!   `catch_unwind`; a panic (or a [`macro3d::FlowError`], e.g. an
//!   injected fault) marks that job `Failed` and the worker moves on.
//! * **Budget exhaustion is a *result*, not a failure.** Flows absorb
//!   deadline/cap exhaustion internally and return a degraded
//!   [`macro3d::PpaResult`]; the job completes `Done` with a
//!   populated degradation report, siblings unaffected.
//! * **Identical specs execute at most once.** A cache hit skips the
//!   flow; concurrent identical misses dedup through a single-flight
//!   table — one leader runs, followers block on its cell and share
//!   the `Arc`'d result (marked `cache_hit`). A leader *failure*
//!   propagates to its followers and is not cached, so a later
//!   resubmit retries.
//! * **Observability stays coherent.** The obs registry is
//!   process-global, so workers take the [`macro3d_obs::session_permit`]
//!   around obs-*enabled* jobs; obs-off jobs (sessions inert) run
//!   fully concurrently.

use crate::cache::{CacheStats, CachedResult, ResultCache};
use crate::{flow_by_name, JobSpec};
use macro3d::{DegradationReport, FlowTrace, PpaResult};
use macro3d_soc::generate_tile;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Instant;

/// Service parameters.
#[derive(Clone, Debug)]
pub struct DseConfig {
    /// Worker threads. `0` means one per available hardware thread.
    pub workers: usize,
    /// Queue capacity; `submit` blocks while the queue is full.
    pub queue_capacity: usize,
    /// Persist results here; `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Give each worker a [`macro3d::StageCache`] so consecutive jobs
    /// sharing a stage-key prefix re-enter the flow mid-way (see
    /// `macro3d::stage`). Off = every job runs fully cold. Results
    /// are bit-identical either way; this only trades memory for
    /// wall-clock.
    pub stage_reuse: bool,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            workers: 1,
            queue_capacity: 64,
            cache_dir: None,
            stage_reuse: true,
        }
    }
}

impl DseConfig {
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        }
    }
}

/// Handle to a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// A worker is on it.
    Running,
    /// Finished with a result (possibly degraded).
    Done,
    /// Flow error or panic; see [`JobError::Failed`].
    Failed,
    /// Withdrawn before a worker picked it up.
    Cancelled,
}

impl JobStatus {
    /// Protocol token (`"queued"`, `"running"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// A finished job's payload.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Content key of the spec ([`JobSpec::spec_key`]).
    pub spec_key: String,
    /// The PPA row.
    pub ppa: PpaResult,
    /// Budget/fault degradations absorbed (empty = clean).
    pub degradation: DegradationReport,
    /// Observability trace — only for a cold execution with obs
    /// enabled; cache hits return `None`.
    pub obs: Option<FlowTrace>,
    /// True when the result came from the cache (memory, disk, or a
    /// concurrent leader) rather than a fresh flow execution.
    pub cache_hit: bool,
    /// Wall-clock seconds this job took inside the worker.
    pub wall_s: f64,
    /// Leading flow stages restored from the worker's stage cache
    /// (`0` = fully cold; see [`macro3d::stage`]). Always `0` for a
    /// result-cache hit — the whole flow was skipped, not re-entered.
    pub reuse_depth: usize,
}

/// Why `submit` refused a spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The flow name matches none of [`macro3d::flows::all_flows`].
    UnknownFlow(String),
    /// The service is shutting down.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownFlow(name) => write!(f, "unknown flow '{name}'"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why `wait` returned without a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// No such job id.
    Unknown(JobId),
    /// The flow errored or panicked; the message says which.
    Failed(String),
    /// The job was cancelled before running.
    Cancelled,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Unknown(id) => write!(f, "unknown job {id}"),
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

/// Aggregate service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Result-cache counters (memory + disk).
    pub cache: CacheStats,
    /// Cold flow executions actually performed.
    pub flows_executed: u64,
    /// Jobs that reached `Done`.
    pub jobs_done: u64,
    /// Jobs that reached `Failed`.
    pub jobs_failed: u64,
    /// Jobs withdrawn while queued.
    pub jobs_cancelled: u64,
    /// Flow stages restored from worker stage caches, summed over
    /// every executed job (a depth-3 re-entry adds 3).
    pub stage_hits: u64,
    /// Cacheable flow stages executed cold (the STA stage is never
    /// cached and never counted).
    pub stage_misses: u64,
}

enum JobState {
    Queued,
    Running,
    Done(Arc<JobResult>),
    Failed(String),
    Cancelled,
}

impl JobState {
    fn status(&self) -> JobStatus {
        match self {
            JobState::Queued => JobStatus::Queued,
            JobState::Running => JobStatus::Running,
            JobState::Done(_) => JobStatus::Done,
            JobState::Failed(_) => JobStatus::Failed,
            JobState::Cancelled => JobStatus::Cancelled,
        }
    }
}

/// Single-flight rendezvous cell: the leader publishes exactly once,
/// followers block on the condvar until it does.
struct InflightCell {
    done: Mutex<Option<Result<Arc<JobResult>, String>>>,
    cv: Condvar,
}

impl InflightCell {
    fn new() -> Self {
        InflightCell {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, outcome: Result<Arc<JobResult>, String>) {
        *lock(&self.done) = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Arc<JobResult>, String> {
        let mut done = lock(&self.done);
        loop {
            if let Some(outcome) = done.as_ref() {
                return outcome.clone();
            }
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct QueueState {
    /// One deque per worker. `submit` routes each spec to the queue
    /// of its affinity worker (place-stage key modulo worker count),
    /// so same-prefix sweep points land on the same worker's stage
    /// cache; an idle worker steals from the *back* of the longest
    /// other queue, which is the job least likely to extend that
    /// worker's current prefix run. Affinity is best-effort — results
    /// are identical wherever a job runs.
    queues: Vec<VecDeque<(u64, JobSpec)>>,
    /// Total queued jobs across all deques (capacity accounting).
    queued: usize,
    shutdown: bool,
}

struct Inner {
    cfg: DseConfig,
    cache: ResultCache,
    workers: usize,
    queue: Mutex<QueueState>,
    /// Workers sleep here when the queue is empty.
    queue_cv: Condvar,
    /// Submitters sleep here when the queue is full.
    space_cv: Condvar,
    states: Mutex<HashMap<u64, JobState>>,
    /// `wait` sleeps here; every terminal transition notifies.
    states_cv: Condvar,
    inflight: Mutex<HashMap<String, Arc<InflightCell>>>,
    next_id: AtomicU64,
    flows_executed: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    stage_hits: AtomicU64,
    stage_misses: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The running service: owns the worker threads. Get tenant handles
/// via [`DseService::client`]; dropping the service (or calling
/// [`DseService::shutdown`]) drains nothing — queued jobs the workers
/// have not reached are left `Queued` forever, so shut down only
/// after the waits you care about have returned.
pub struct DseService {
    client: DseClient,
    handles: Vec<thread::JoinHandle<()>>,
}

/// Cloneable tenant handle; see [`DseService`].
#[derive(Clone)]
pub struct DseClient {
    inner: Arc<Inner>,
}

impl DseService {
    /// Opens the result cache and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directory cannot be
    /// created.
    pub fn start(cfg: DseConfig) -> io::Result<DseService> {
        let cache = ResultCache::open(cfg.cache_dir.clone())?;
        let workers = cfg.effective_workers();
        let inner = Arc::new(Inner {
            cfg,
            cache,
            workers,
            queue: Mutex::new(QueueState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                queued: 0,
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            space_cv: Condvar::new(),
            states: Mutex::new(HashMap::new()),
            states_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            flows_executed: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            stage_hits: AtomicU64::new(0),
            stage_misses: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("dse-worker-{i}"))
                    .spawn(move || worker_loop(&inner, i))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(DseService {
            client: DseClient { inner },
            handles,
        })
    }

    /// A new tenant handle.
    pub fn client(&self) -> DseClient {
        self.client.clone()
    }

    /// Number of worker threads actually running.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Stops accepting work, wakes every worker, and joins them.
    /// Jobs already queued are abandoned in `Queued` state.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut q = lock(&self.client.inner.queue);
            q.shutdown = true;
        }
        self.client.inner.queue_cv.notify_all();
        self.client.inner.space_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for DseService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl DseClient {
    /// Enqueues a job and returns its id immediately. Blocks while
    /// the queue is at capacity (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownFlow`] for an unrecognized flow name,
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        if flow_by_name(&spec.flow).is_none() {
            return Err(SubmitError::UnknownFlow(spec.flow));
        }
        // route the job to the worker whose stage cache its place-key
        // prefix maps to; stage 1 covers floorplan+place, the
        // expensive reusable prefix
        let slot = (spec.stage_keys().prefix[1] % self.inner.workers as u64) as usize;
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut q = lock(&self.inner.queue);
            loop {
                if q.shutdown {
                    return Err(SubmitError::ShuttingDown);
                }
                if q.queued < self.inner.cfg.queue_capacity {
                    break;
                }
                q = self
                    .inner
                    .space_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            q.queues[slot].push_back((id, spec));
            q.queued += 1;
        }
        lock(&self.inner.states).insert(id, JobState::Queued);
        self.inner.queue_cv.notify_one();
        Ok(JobId(id))
    }

    /// Blocks until the job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// [`JobError::Unknown`] for an id this service never issued,
    /// [`JobError::Failed`] when the flow errored or panicked,
    /// [`JobError::Cancelled`] when the job was withdrawn.
    pub fn wait(&self, id: JobId) -> Result<Arc<JobResult>, JobError> {
        let mut states = lock(&self.inner.states);
        loop {
            match states.get(&id.0) {
                None => return Err(JobError::Unknown(id)),
                Some(JobState::Done(result)) => return Ok(Arc::clone(result)),
                Some(JobState::Failed(msg)) => return Err(JobError::Failed(msg.clone())),
                Some(JobState::Cancelled) => return Err(JobError::Cancelled),
                Some(JobState::Queued | JobState::Running) => {
                    states = self
                        .inner
                        .states_cv
                        .wait(states)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Current status, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        lock(&self.inner.states).get(&id.0).map(JobState::status)
    }

    /// Withdraws a job that is still queued. Returns `true` on
    /// success; a job already running (or finished) is not touched —
    /// running jobs are bounded by their own
    /// [`macro3d::FlowBudget`] deadline, which is the supported way
    /// to limit one.
    pub fn cancel(&self, id: JobId) -> bool {
        let removed = {
            let mut q = lock(&self.inner.queue);
            let before = q.queued;
            for queue in &mut q.queues {
                queue.retain(|(queued_id, _)| *queued_id != id.0);
            }
            q.queued = q.queues.iter().map(VecDeque::len).sum();
            q.queued != before
        };
        if removed {
            self.inner.space_cv.notify_one();
            lock(&self.inner.states).insert(id.0, JobState::Cancelled);
            self.inner.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            self.inner.states_cv.notify_all();
        }
        removed
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DseStats {
        DseStats {
            cache: self.inner.cache.stats(),
            flows_executed: self.inner.flows_executed.load(Ordering::Relaxed),
            jobs_done: self.inner.jobs_done.load(Ordering::Relaxed),
            jobs_failed: self.inner.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: self.inner.jobs_cancelled.load(Ordering::Relaxed),
            stage_hits: self.inner.stage_hits.load(Ordering::Relaxed),
            stage_misses: self.inner.stage_misses.load(Ordering::Relaxed),
        }
    }
}

fn worker_loop(inner: &Inner, me: usize) {
    // worker-local stage cache: one previous run's boundary artifacts,
    // keyed by chained stage keys (see macro3d::stage)
    let mut stage_cache = macro3d::StageCache::new();
    loop {
        let (id, spec) = {
            let mut q = lock(&inner.queue);
            loop {
                let job = q.queues[me].pop_front().or_else(|| {
                    // own queue dry: steal the back of the longest
                    // other queue (least likely to extend that
                    // worker's prefix run)
                    (0..q.queues.len())
                        .filter(|&i| i != me && !q.queues[i].is_empty())
                        .max_by_key(|&i| q.queues[i].len())
                        .and_then(|i| q.queues[i].pop_back())
                });
                if let Some(job) = job {
                    q.queued -= 1;
                    inner.space_cv.notify_one();
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner
                    .queue_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        lock(&inner.states).insert(id, JobState::Running);
        let outcome = run_one(inner, &spec, &mut stage_cache);
        let mut states = lock(&inner.states);
        match outcome {
            Ok(result) => {
                inner.jobs_done.fetch_add(1, Ordering::Relaxed);
                states.insert(id, JobState::Done(result));
            }
            Err(msg) => {
                inner.jobs_failed.fetch_add(1, Ordering::Relaxed);
                states.insert(id, JobState::Failed(msg));
            }
        }
        drop(states);
        inner.states_cv.notify_all();
    }
}

/// Executes one job to a shareable outcome: cache lookup, then
/// single-flight leader election, then the flow itself.
fn run_one(
    inner: &Inner,
    spec: &JobSpec,
    stage_cache: &mut macro3d::StageCache,
) -> Result<Arc<JobResult>, String> {
    let key = spec.spec_key();
    if let Some(cached) = inner.cache.lookup(&key) {
        return Ok(Arc::new(JobResult {
            spec_key: key,
            ppa: cached.ppa.clone(),
            degradation: cached.degradation.clone(),
            obs: None,
            cache_hit: true,
            wall_s: 0.0,
            reuse_depth: 0,
        }));
    }

    // single-flight: exactly one leader per key at a time
    let (cell, leader) = {
        let mut inflight = lock(&inner.inflight);
        match inflight.get(&key) {
            Some(cell) => (Arc::clone(cell), false),
            None => {
                let cell = Arc::new(InflightCell::new());
                inflight.insert(key.clone(), Arc::clone(&cell));
                (cell, true)
            }
        }
    };
    if !leader {
        return cell.wait().map(|result| {
            Arc::new(JobResult {
                cache_hit: true,
                obs: None,
                wall_s: 0.0,
                reuse_depth: 0,
                ..(*result).clone()
            })
        });
    }

    let outcome = execute_flow(inner, spec, &key, stage_cache);
    if let Ok(result) = &outcome {
        inner.cache.insert(
            &key,
            &Arc::new(CachedResult {
                ppa: result.ppa.clone(),
                degradation: result.degradation.clone(),
            }),
        );
    }
    cell.publish(outcome.clone());
    lock(&inner.inflight).remove(&key);
    outcome
}

/// The cold path: generate the tile and run the flow, isolated by
/// `catch_unwind` and serialized against other obs-enabled jobs. The
/// worker's stage cache (when enabled) lets the flow re-enter after
/// its longest key-matched stage prefix; a panic mid-run is safe —
/// cache slots are only written at completed stage boundaries.
fn execute_flow(
    inner: &Inner,
    spec: &JobSpec,
    key: &str,
    stage_cache: &mut macro3d::StageCache,
) -> Result<Arc<JobResult>, String> {
    let flow = flow_by_name(&spec.flow).ok_or_else(|| format!("unknown flow '{}'", spec.flow))?;
    // the obs registry/level are process-global: hold the process's
    // one session permit for the whole obs-enabled execution
    let _obs_permit = if spec.config.obs.is_off() {
        None
    } else {
        Some(macro3d_obs::session_permit())
    };
    inner.flows_executed.fetch_add(1, Ordering::Relaxed);
    let stage_reuse = inner.cfg.stage_reuse;
    let started = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| {
        let tile = generate_tile(&spec.tile);
        let mut reuse = if stage_reuse {
            macro3d::StageReuse::begin(stage_cache, &spec.flow, &spec.tile, &spec.config)
        } else {
            None
        };
        flow.try_run_reusing(&tile, &spec.config, reuse.as_mut())
    }));
    let wall_s = started.elapsed().as_secs_f64();
    match run {
        Ok(Ok(outcome)) => {
            let cacheable = macro3d::stage::NUM_STAGES - 1; // STA never cached
            inner
                .stage_hits
                .fetch_add(outcome.reuse_depth as u64, Ordering::Relaxed);
            inner
                .stage_misses
                .fetch_add((cacheable - outcome.reuse_depth) as u64, Ordering::Relaxed);
            Ok(Arc::new(JobResult {
                spec_key: key.to_string(),
                ppa: outcome.ppa,
                degradation: outcome.degradation,
                obs: outcome.obs,
                cache_hit: false,
                wall_s,
                reuse_depth: outcome.reuse_depth,
            }))
        }
        Ok(Err(flow_err)) => Err(flow_err.to_string()),
        Err(panic) => Err(format!("flow panicked: {}", panic_message(&panic))),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "<non-string payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_soc::TileConfig;

    fn fast_spec() -> JobSpec {
        let mut spec = JobSpec::new("2D", TileConfig::mini());
        spec.config.sizing_rounds = 1;
        spec.config.route.iterations = 1;
        spec
    }

    #[test]
    fn submit_wait_roundtrip_and_cache_dedup() {
        let service = DseService::start(DseConfig::default()).unwrap();
        let client = service.client();
        let a = client.submit(fast_spec()).unwrap();
        let b = client.submit(fast_spec()).unwrap();
        let ra = client.wait(a).unwrap();
        let rb = client.wait(b).unwrap();
        assert!(!ra.cache_hit, "first execution is cold");
        assert!(rb.cache_hit, "identical spec is served from cache");
        assert_eq!(
            macro3d::ppa_fingerprint(&ra.ppa),
            macro3d::ppa_fingerprint(&rb.ppa)
        );
        assert_eq!(client.stats().flows_executed, 1);
        service.shutdown();
    }

    #[test]
    fn unknown_flow_is_rejected_at_submit() {
        let service = DseService::start(DseConfig::default()).unwrap();
        let err = service
            .client()
            .submit(JobSpec::new("nope", TileConfig::mini()))
            .unwrap_err();
        assert_eq!(err, SubmitError::UnknownFlow("nope".into()));
    }

    #[test]
    fn cancel_only_hits_queued_jobs() {
        // zero-capacity trick is impossible (submit would deadlock);
        // instead occupy the single worker with a real job and cancel
        // one that is still behind it
        let service = DseService::start(DseConfig::default()).unwrap();
        let client = service.client();
        let first = client.submit(fast_spec()).unwrap();
        let mut other = fast_spec();
        other.config.sizing_rounds = 2; // different key, would run cold
        let second = client.submit(other).unwrap();
        // depending on timing `second` may already be running; only
        // assert the invariant, not the race
        let cancelled = client.cancel(second);
        if cancelled {
            assert_eq!(client.wait(second).unwrap_err(), JobError::Cancelled);
        } else {
            assert!(client.wait(second).is_ok());
        }
        assert!(client.wait(first).is_ok());
        service.shutdown();
    }
}
