//! Newline-delimited-JSON protocol.
//!
//! One request object per input line, one (or, for sweeps, several)
//! response objects per request, each on its own output line. Every
//! response carries `"ok": true|false`; errors never kill the
//! session. The protocol is transport-agnostic — the `dse_server`
//! binary wires it to stdin/stdout, the tests to in-memory buffers.
//!
//! Requests (`cmd` selects):
//!
//! | cmd        | fields                                   | reply |
//! |------------|------------------------------------------|-------|
//! | `ping`     | —                                        | `{"ok":true,"reply":"pong"}` |
//! | `submit`   | `spec`                                   | `{"ok":true,"job":N}` |
//! | `wait`     | `job`                                    | full result line |
//! | `status`   | `job`                                    | `{"ok":true,"status":"queued"…}` |
//! | `cancel`   | `job`                                    | `{"ok":true,"cancelled":bool}` |
//! | `sweep`    | `spec`, `axes`                           | one line per point + summary |
//! | `stats`    | —                                        | counters |
//! | `shutdown` | —                                        | `{"ok":true,"bye":true}`, ends session |
//!
//! A `spec` is `{"flow": "...", "tile": <preset-name or full tile
//! object>, "config": <config object, optional>, "knobs": {"name":
//! "value", ...} (optional)}` — knobs go through
//! [`crate::sweep::apply_knob`] after the base config loads, so
//! clients can tweak without shipping a full config document.

use crate::executor::{DseClient, JobId, JobResult, JobStatus};
use crate::sweep::{self, PointResult, SweepAxis, SweepSpec};
use crate::{tile_preset, JobSpec};
use macro3d::jsonio;
use macro3d::FlowConfig;
use macro3d_json::Json;
use std::io::{self, BufRead, Write};
use std::sync::Arc;

/// Serves the protocol over any line-oriented transport until EOF or
/// a `shutdown` command. Malformed lines produce `"ok": false`
/// responses; only transport-level I/O errors abort the session.
///
/// # Errors
///
/// Propagates read/write errors from the transport.
pub fn serve<R: BufRead, W: Write>(
    reader: R,
    writer: &mut W,
    client: &DseClient,
) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let shutdown = handle_line(&line, writer, client)?;
        if shutdown {
            break;
        }
    }
    writer.flush()
}

fn respond<W: Write>(writer: &mut W, json: &Json) -> io::Result<()> {
    writer.write_all(json.emit().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn error_json(msg: &str) -> Json {
    Json::obj()
        .field("ok", Json::Bool(false))
        .field("error", Json::str(msg))
}

/// Handles one request line; returns `true` when the session should
/// end.
fn handle_line<W: Write>(line: &str, writer: &mut W, client: &DseClient) -> io::Result<bool> {
    let request = match Json::parse(line) {
        Ok(json) => json,
        Err(e) => {
            respond(writer, &error_json(&format!("bad JSON: {e}")))?;
            return Ok(false);
        }
    };
    let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or("");
    match cmd {
        "ping" => respond(
            writer,
            &Json::obj()
                .field("ok", Json::Bool(true))
                .field("reply", Json::str("pong")),
        )?,
        "submit" => match parse_spec(&request) {
            Ok(spec) => match client.submit(spec) {
                Ok(id) => respond(
                    writer,
                    &Json::obj()
                        .field("ok", Json::Bool(true))
                        .field("job", Json::from_u64(id.0)),
                )?,
                Err(e) => respond(writer, &error_json(&e.to_string()))?,
            },
            Err(msg) => respond(writer, &error_json(&msg))?,
        },
        "wait" => match job_id(&request) {
            Ok(id) => match client.wait(id) {
                Ok(result) => respond(writer, &result_json(id, &result))?,
                Err(e) => respond(writer, &error_json(&e.to_string()))?,
            },
            Err(msg) => respond(writer, &error_json(&msg))?,
        },
        "status" => match job_id(&request) {
            Ok(id) => match client.status(id) {
                Some(status) => respond(
                    writer,
                    &Json::obj()
                        .field("ok", Json::Bool(true))
                        .field("job", Json::from_u64(id.0))
                        .field("status", Json::str(status.as_str())),
                )?,
                None => respond(writer, &error_json(&format!("unknown job {id}")))?,
            },
            Err(msg) => respond(writer, &error_json(&msg))?,
        },
        "cancel" => match job_id(&request) {
            Ok(id) => respond(
                writer,
                &Json::obj()
                    .field("ok", Json::Bool(true))
                    .field("job", Json::from_u64(id.0))
                    .field("cancelled", Json::Bool(client.cancel(id))),
            )?,
            Err(msg) => respond(writer, &error_json(&msg))?,
        },
        "sweep" => {
            match parse_sweep(&request) {
                Ok(spec) => {
                    // stream each point as it completes
                    let mut stream_err = None;
                    let outcome = sweep::run_sweep(client, &spec, |point| {
                        if stream_err.is_none() {
                            stream_err = respond(writer, &point_json(point)).err();
                        }
                    });
                    if let Some(e) = stream_err {
                        return Err(e);
                    }
                    match outcome {
                        Ok(done) => {
                            let pareto = done
                                .pareto
                                .iter()
                                .map(|&i| Json::str(done.points[i].label.clone()))
                                .collect();
                            respond(
                                writer,
                                &Json::obj()
                                    .field("ok", Json::Bool(true))
                                    .field("sweep_done", Json::Bool(true))
                                    .field("points", Json::from_usize(done.points.len()))
                                    .field("pareto", Json::Arr(pareto))
                                    .field("wall_s", Json::from_f64(done.wall_s))
                                    .field("stats", stats_json(client)),
                            )?;
                        }
                        Err(e) => respond(writer, &error_json(&e.to_string()))?,
                    }
                }
                Err(msg) => respond(writer, &error_json(&msg))?,
            }
        }
        "stats" => respond(
            writer,
            &Json::obj()
                .field("ok", Json::Bool(true))
                .field("stats", stats_json(client)),
        )?,
        "shutdown" => {
            respond(
                writer,
                &Json::obj()
                    .field("ok", Json::Bool(true))
                    .field("bye", Json::Bool(true)),
            )?;
            return Ok(true);
        }
        other => respond(writer, &error_json(&format!("unknown cmd '{other}'")))?,
    }
    Ok(false)
}

fn job_id(request: &Json) -> Result<JobId, String> {
    request
        .get("job")
        .and_then(Json::as_u64)
        .map(JobId)
        .ok_or_else(|| "missing integer field 'job'".to_string())
}

/// Decodes the protocol's spec shape (preset tiles, optional config,
/// knob overlay).
pub fn parse_spec(request: &Json) -> Result<JobSpec, String> {
    let spec = request
        .get("spec")
        .ok_or_else(|| "missing field 'spec'".to_string())?;
    let flow = spec
        .get("flow")
        .and_then(Json::as_str)
        .ok_or_else(|| "spec: missing string field 'flow'".to_string())?
        .to_string();
    let tile = match spec.get("tile") {
        None => return Err("spec: missing field 'tile'".to_string()),
        Some(t) => match t.as_str() {
            Some(preset) => {
                tile_preset(preset).ok_or_else(|| format!("unknown tile preset '{preset}'"))?
            }
            None => jsonio::tile_config_from_json(t).map_err(|e| e.to_string())?,
        },
    };
    let config = match spec.get("config") {
        None => FlowConfig::default(),
        Some(c) => jsonio::flow_config_from_json(c).map_err(|e| e.to_string())?,
    };
    let mut job = JobSpec { flow, tile, config };
    if let Some(knobs) = spec.get("knobs") {
        let members = knobs
            .as_obj()
            .ok_or_else(|| "spec: 'knobs' must be an object".to_string())?;
        for (knob, value) in members {
            let value = value
                .as_str()
                .map(str::to_string)
                .unwrap_or_else(|| value.emit());
            sweep::apply_knob(&mut job, knob, &value).map_err(|e| e.to_string())?;
        }
    }
    Ok(job)
}

fn parse_sweep(request: &Json) -> Result<SweepSpec, String> {
    let base = parse_spec(request)?;
    let mut axes = Vec::new();
    if let Some(raw) = request.get("axes") {
        let list = raw
            .as_arr()
            .ok_or_else(|| "'axes' must be an array".to_string())?;
        for axis in list {
            let knob = axis
                .get("knob")
                .and_then(Json::as_str)
                .ok_or_else(|| "axis: missing string field 'knob'".to_string())?;
            let values = axis
                .get("values")
                .and_then(Json::as_arr)
                .ok_or_else(|| "axis: missing array field 'values'".to_string())?
                .iter()
                .map(|v| v.as_str().map(str::to_string).unwrap_or_else(|| v.emit()))
                .collect();
            axes.push(SweepAxis {
                knob: knob.to_string(),
                values,
            });
        }
    }
    Ok(SweepSpec { base, axes })
}

/// The full result line `wait` and sweep streaming share.
fn result_json(id: JobId, result: &Arc<JobResult>) -> Json {
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("job", Json::from_u64(id.0))
        .field("status", Json::str(JobStatus::Done.as_str()))
        .field("spec_key", Json::str(result.spec_key.clone()))
        .field("cache_hit", Json::Bool(result.cache_hit))
        .field(
            "fingerprint",
            Json::str(format!("{:016x}", jsonio::ppa_fingerprint(&result.ppa))),
        )
        .field("wall_s", Json::from_f64(result.wall_s))
        .field("reuse_depth", Json::from_usize(result.reuse_depth))
        .field(
            "stage_times",
            jsonio::stage_times_to_json(&result.ppa.stage_times),
        )
        .field("ppa", jsonio::ppa_to_json(&result.ppa))
        .field(
            "degradation",
            jsonio::degradation_to_json(&result.degradation),
        )
}

fn point_json(point: &PointResult) -> Json {
    match &point.result {
        Ok(result) => Json::obj()
            .field("ok", Json::Bool(true))
            .field("point", Json::str(point.label.clone()))
            .field("spec_key", Json::str(result.spec_key.clone()))
            .field("cache_hit", Json::Bool(result.cache_hit))
            .field("reuse_depth", Json::from_usize(result.reuse_depth))
            .field(
                "fingerprint",
                Json::str(format!("{:016x}", jsonio::ppa_fingerprint(&result.ppa))),
            )
            .field("degraded", Json::Bool(result.degradation.is_degraded()))
            .field("fclk_mhz", Json::from_f64(result.ppa.fclk_mhz))
            .field("emean_fj", Json::from_f64(result.ppa.emean_fj))
            .field("footprint_mm2", Json::from_f64(result.ppa.footprint_mm2))
            .field(
                "total_wirelength_m",
                Json::from_f64(result.ppa.total_wirelength_m),
            ),
        Err(msg) => Json::obj()
            .field("ok", Json::Bool(false))
            .field("point", Json::str(point.label.clone()))
            .field("error", Json::str(msg.clone())),
    }
}

fn stats_json(client: &DseClient) -> Json {
    let stats = client.stats();
    Json::obj()
        .field("schema_version", Json::from_u64(crate::SCHEMA_VERSION))
        .field("cache_hits", Json::from_u64(stats.cache.hits))
        .field("cache_misses", Json::from_u64(stats.cache.misses))
        .field("disk_hits", Json::from_u64(stats.cache.disk_hits))
        .field("flows_executed", Json::from_u64(stats.flows_executed))
        .field("jobs_done", Json::from_u64(stats.jobs_done))
        .field("jobs_failed", Json::from_u64(stats.jobs_failed))
        .field("jobs_cancelled", Json::from_u64(stats.jobs_cancelled))
        .field("stage_hits", Json::from_u64(stats.stage_hits))
        .field("stage_misses", Json::from_u64(stats.stage_misses))
}
