//! Content-keyed, disk-persisted result cache.
//!
//! Keys are [`crate::JobSpec::spec_key`] hashes; values are the
//! deterministic part of a finished job ([`macro3d::PpaResult`] +
//! [`macro3d::DegradationReport`]). The cache has two layers:
//!
//! * an in-memory map for hits within one service lifetime, and
//! * an optional on-disk layer — one `<key>.json` record per result,
//!   written atomically (temp file + rename) — that makes warm hits
//!   survive restarts and lets concurrent services share results.
//!
//! Invalidation is structural: the crate version participates in the
//! spec key *and* is re-checked inside every record at load, so stale
//! records from an older build are ignored (and eventually
//! overwritten), never served. Failed jobs are never cached;
//! observability traces are never cached (a warm hit returns
//! `obs: None` — traces describe an execution, not a result).

use crate::SCHEMA_VERSION;
use macro3d::jsonio;
use macro3d::{DegradationReport, PpaResult};
use macro3d_json::Json;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The deterministic payload of one finished job.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// PPA row of the implemented design.
    pub ppa: PpaResult,
    /// Budget/fault degradations the run absorbed (empty = clean).
    pub degradation: DegradationReport,
}

/// Hit/miss counters, split by layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that fell through to a flow execution.
    pub misses: u64,
    /// The subset of `hits` that came off disk (i.e. survived a
    /// restart or arrived from another service instance).
    pub disk_hits: u64,
}

/// See the [module docs](self).
pub struct ResultCache {
    dir: Option<PathBuf>,
    memory: Mutex<HashMap<String, Arc<CachedResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
}

impl ResultCache {
    /// An in-memory-only cache (results die with the service).
    pub fn in_memory() -> Self {
        ResultCache {
            dir: None,
            memory: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    /// A cache persisted under `dir` (created if absent).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn persistent(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir: Some(dir),
            ..ResultCache::in_memory()
        })
    }

    /// Opens `dir` when given, else an in-memory cache.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(dir: Option<PathBuf>) -> io::Result<Self> {
        match dir {
            Some(d) => ResultCache::persistent(d),
            None => Ok(ResultCache::in_memory()),
        }
    }

    /// Where this cache persists, if anywhere.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn memory(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<CachedResult>>> {
        self.memory.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks `key` up in memory, then on disk. A disk hit is promoted
    /// into memory. Counts a hit or miss either way.
    pub fn lookup(&self, key: &str) -> Option<Arc<CachedResult>> {
        if let Some(hit) = self.memory().get(key) {
            let hit = Arc::clone(hit);
            self.hits.fetch_add(1, Ordering::Relaxed);
            record_obs(true);
            return Some(hit);
        }
        if let Some(loaded) = self.load_record(key) {
            let loaded = Arc::new(loaded);
            self.memory()
                .entry(key.to_string())
                .or_insert_with(|| Arc::clone(&loaded));
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            record_obs(true);
            return Some(loaded);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        record_obs(false);
        None
    }

    /// Stores a finished result under `key`, in memory and (when
    /// persistent) on disk. Disk write failures are swallowed — the
    /// cache is an accelerator, not a durability contract — but the
    /// in-memory layer always takes the result.
    pub fn insert(&self, key: &str, result: &Arc<CachedResult>) {
        self.memory()
            .entry(key.to_string())
            .or_insert_with(|| Arc::clone(result));
        if let Some(dir) = &self.dir {
            let _ = write_record_atomically(dir, key, result);
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }

    fn load_record(&self, key: &str) -> Option<CachedResult> {
        let dir = self.dir.as_ref()?;
        let text = fs::read_to_string(record_path(dir, key)).ok()?;
        parse_record(&text, key)
    }
}

fn record_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.json"))
}

/// Serializes one persisted record. The envelope re-states the key
/// and versions so a record is self-describing and verifiable without
/// trusting its filename.
fn record_json(key: &str, result: &CachedResult) -> Json {
    Json::obj()
        .field("schema_version", Json::from_u64(SCHEMA_VERSION))
        .field("crate_version", Json::str(crate::crate_version()))
        .field("key", Json::str(key))
        .field("flow", Json::str(result.ppa.flow.clone()))
        .field("ppa", jsonio::ppa_to_json(&result.ppa))
        .field(
            "degradation",
            jsonio::degradation_to_json(&result.degradation),
        )
}

/// Strict record validation: wrong schema version, wrong crate
/// version, mismatched key, or any decode error → `None` (treated as
/// a miss, never an error).
fn parse_record(text: &str, key: &str) -> Option<CachedResult> {
    let json = Json::parse(text).ok()?;
    if json.get("schema_version")?.as_u64()? != SCHEMA_VERSION {
        return None;
    }
    if json.get("crate_version")?.as_str()? != crate::crate_version() {
        return None;
    }
    if json.get("key")?.as_str()? != key {
        return None;
    }
    Some(CachedResult {
        ppa: jsonio::ppa_from_json(json.get("ppa")?).ok()?,
        degradation: jsonio::degradation_from_json(json.get("degradation")?).ok()?,
    })
}

/// Write-to-temp + rename, so concurrent services sharing a cache
/// directory only ever observe complete records. The temp name
/// includes the pid so two writers never collide; last rename wins,
/// which is harmless because both wrote identical content (the key is
/// a content hash).
fn write_record_atomically(dir: &Path, key: &str, result: &CachedResult) -> io::Result<()> {
    let tmp = dir.join(format!("{key}.tmp.{}", std::process::id()));
    let mut text = record_json(key, result).emit();
    text.push('\n');
    fs::write(&tmp, text)?;
    let out = fs::rename(&tmp, record_path(dir, key));
    if out.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    out
}

/// One branch when observability is off, mirroring the BuildCache
/// counters (`cache/…`) under a service-scoped prefix.
fn record_obs(hit: bool) {
    if !macro3d_obs::enabled(macro3d_obs::ObsLevel::Summary) {
        return;
    }
    let outcome = if hit { "hits" } else { "misses" };
    macro3d_obs::registry()
        .counter(&format!("dse/results/{outcome}"))
        .inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d::flows::Flow;
    use macro3d_soc::{generate_tile, TileConfig};

    /// `CARGO_TARGET_TMPDIR` only exists for integration tests, so
    /// unit tests use the system temp dir, scoped by pid so parallel
    /// `cargo test` invocations cannot collide.
    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("macro3d_{tag}_{}", std::process::id()))
    }

    fn small_result() -> CachedResult {
        // a real (tiny) flow result so the codec sees realistic data
        let tile = generate_tile(&TileConfig::mini());
        let mut cfg = macro3d::FlowConfig {
            sizing_rounds: 1,
            ..macro3d::FlowConfig::default()
        };
        cfg.route.iterations = 1;
        let out = macro3d::flows::Flow2d.run(&tile, &cfg);
        CachedResult {
            ppa: out.ppa,
            degradation: out.degradation,
        }
    }

    #[test]
    fn memory_layer_hits_and_counts() {
        let cache = ResultCache::in_memory();
        assert!(cache.lookup("00ff").is_none());
        let result = Arc::new(small_result());
        cache.insert("00ff", &result);
        let hit = cache.lookup("00ff").expect("hit after insert");
        assert_eq!(
            jsonio::ppa_fingerprint(&hit.ppa),
            jsonio::ppa_fingerprint(&result.ppa)
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                disk_hits: 0
            }
        );
    }

    #[test]
    fn disk_layer_survives_reopen_bit_exactly() {
        let dir = scratch("dse_cache_reopen");
        let _ = fs::remove_dir_all(&dir);
        let result = Arc::new(small_result());
        let key = "deadbeef00000001";
        {
            let cache = ResultCache::persistent(&dir).unwrap();
            cache.insert(key, &result);
        }
        let cache = ResultCache::persistent(&dir).unwrap();
        let hit = cache.lookup(key).expect("disk hit after reopen");
        assert_eq!(
            jsonio::ppa_to_json(&hit.ppa).emit(),
            jsonio::ppa_to_json(&result.ppa).emit(),
            "persisted record round-trips byte-exactly"
        );
        assert_eq!(cache.stats().disk_hits, 1);
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let dir = scratch("dse_cache_version");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::persistent(&dir).unwrap();
        let key = "deadbeef00000002";
        let mut record = record_json(key, &small_result());
        if let Json::Obj(members) = &mut record {
            for (k, v) in members.iter_mut() {
                if k == "crate_version" {
                    *v = Json::str("99.0.0");
                }
            }
        }
        fs::write(dir.join(format!("{key}.json")), record.emit()).unwrap();
        assert!(
            cache.lookup(key).is_none(),
            "foreign-version record must not be served"
        );
    }
}
