//! Property-based tests for the timing/power engine.

use macro3d_extract::NetParasitics;
use macro3d_netlist::{Design, NetId, PinRef};
use macro3d_sta::{analyze, analyze_power, ClockArrivals, PowerInput, StaConstraints, StaInput};
use macro3d_tech::{libgen::n28_library, CellClass, Corner, PinDir};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Builds an FF → INV-chain → FF design with uniform per-net Elmore.
fn chain_design(chain: usize, elmore: f64) -> (Design, Vec<NetParasitics>, StaConstraints) {
    let lib = Arc::new(n28_library(1.0));
    let inv = lib.smallest(CellClass::Inv).expect("inv");
    let dff = lib.smallest(CellClass::Dff).expect("dff");
    let mut d = Design::new("t", lib);
    let clk_p = d.add_port("clk", PinDir::Input, None);
    let clk = d.add_net("clk");
    d.connect(clk, PinRef::Port(clk_p));
    let f0 = d.add_cell("f0", dff);
    let f1 = d.add_cell("f1", dff);
    d.connect(clk, PinRef::inst(f0, 1));
    d.connect(clk, PinRef::inst(f1, 1));
    let dp = d.add_port("d", PinDir::Input, None);
    let dn = d.add_net("dn");
    d.connect(dn, PinRef::Port(dp));
    d.connect(dn, PinRef::inst(f0, 0));
    let mut prev = d.add_net("q0");
    d.connect(prev, PinRef::inst(f0, 2));
    for i in 0..chain {
        let c = d.add_cell(format!("c{i}"), inv);
        d.connect(prev, PinRef::inst(c, 0));
        prev = d.add_net(format!("w{i}"));
        d.connect(prev, PinRef::inst(c, 1));
    }
    d.connect(prev, PinRef::inst(f1, 0));
    let mut parasitics = vec![NetParasitics::default(); d.num_nets()];
    for n in d.net_ids() {
        let sinks = d.sinks(n).count();
        parasitics[n.index()] = NetParasitics {
            wire_cap_ff: 2.0,
            total_res_ohm: 50.0,
            elmore_ps: vec![elmore; sinks],
            driver_load_ff: 4.0,
        };
    }
    let c = StaConstraints::new(clk);
    (d, parasitics, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Min period grows monotonically with chain length and with wire
    /// delay, and the analysis is deterministic.
    #[test]
    fn min_period_monotone(chain in 1usize..12, elmore in 0.0f64..80.0) {
        let run = |n: usize, e: f64| -> f64 {
            let (d, p, c) = chain_design(n, e);
            let clock = ClockArrivals::ideal(&d);
            analyze(&StaInput {
                design: &d,
                parasitics: &p,
                routed: None,
                constraints: &c,
                clock: &clock,
                corner: Corner::Ss,
            })
            .min_period_ps
        };
        let base = run(chain, elmore);
        prop_assert!(base > 0.0);
        prop_assert!(run(chain + 2, elmore) > base);
        prop_assert!(run(chain, elmore + 40.0) > base);
        // determinism
        prop_assert!((run(chain, elmore) - base).abs() < 1e-6);
    }

    /// Power decomposition always sums to the total, and every
    /// component is non-negative.
    #[test]
    fn power_decomposition_consistent(freq in 50.0f64..2_000.0, toggle in 0.01f64..1.0) {
        let (d, p, c) = chain_design(6, 10.0);
        let clocks: HashSet<NetId> = [c.clock_net].into_iter().collect();
        let r = analyze_power(&PowerInput {
            design: &d,
            parasitics: &p,
            clock_nets: &clocks,
            freq_mhz: freq,
            toggle,
            corner: Corner::Tt,
        });
        let sum = r.switching_mw + r.internal_mw + r.leakage_mw + r.macro_mw;
        prop_assert!((sum - r.total_mw).abs() < 1e-9);
        prop_assert!(r.switching_mw >= 0.0);
        prop_assert!(r.internal_mw >= 0.0);
        prop_assert!(r.leakage_mw > 0.0);
        // Emean consistency: total power / f
        let emean = r.total_mw * 1e-3 / (freq * 1e6) * 1e15;
        prop_assert!((emean - r.emean_fj_per_cycle).abs() < 1e-6);
    }

    /// The SS corner never reports a faster clock than TT.
    #[test]
    fn signoff_corner_is_pessimistic(chain in 1usize..10) {
        let (d, p, c) = chain_design(chain, 15.0);
        let clock = ClockArrivals::ideal(&d);
        let f = |corner: Corner| {
            analyze(&StaInput {
                design: &d,
                parasitics: &p,
                routed: None,
                constraints: &c,
                clock: &clock,
                corner,
            })
            .fclk_mhz
        };
        prop_assert!(f(Corner::Ss) < f(Corner::Tt));
        prop_assert!(f(Corner::Tt) < f(Corner::Ff));
    }
}
