//! Observability contract of the parametric engine: an analyze is at
//! most 3 full propagations (1 pass + confirmation, vs the legacy 32+
//! probes), and incremental updates record their cone sizes.
//!
//! Single `#[test]` on purpose: the obs level and registry are
//! process-global, and this integration-test binary is its own
//! process, so the counters observed here are exactly the ones this
//! test produced.

use macro3d_extract::NetParasitics;
use macro3d_netlist::{Design, PinRef};
use macro3d_obs::{ObsConfig, Session};
use macro3d_par::Parallelism;
use macro3d_sta::{
    analyze_with, apply_sizing_to_parasitics, upsize_critical_path, ClockArrivals, StaConstraints,
    StaInput, StaMode, StaSession,
};
use macro3d_tech::{libgen::n28_library, CellClass, Corner, PinDir};
use std::sync::Arc;

/// FF → gates → FF/port design; with `half_cycle` the input port gets
/// a half-cycle budget and its cone merges with the flop cone at a
/// NAND, forcing mixed period coefficients (the confirmation pass has
/// to iterate instead of accepting the first solve).
fn design(half_cycle: bool) -> (Design, Vec<NetParasitics>, StaConstraints) {
    let lib = Arc::new(n28_library(1.0));
    let inv = lib.smallest(CellClass::Inv).expect("inv");
    let nand = lib.smallest(CellClass::Nand2).expect("nand2");
    let dff = lib.smallest(CellClass::Dff).expect("dff");
    let mut d = Design::new("obs", lib);
    let clk_p = d.add_port("clk", PinDir::Input, None);
    let clk = d.add_net("clk");
    d.connect(clk, PinRef::Port(clk_p));
    let mut c = StaConstraints::new(clk);

    let f0 = d.add_cell("f0", dff);
    let f1 = d.add_cell("f1", dff);
    d.connect(clk, PinRef::inst(f0, 1));
    d.connect(clk, PinRef::inst(f1, 1));
    let q0 = d.add_net("q0");
    d.connect(q0, PinRef::inst(f0, 2));

    let hp = d.add_port("h", PinDir::Input, None);
    let hn = d.add_net("hn");
    d.connect(hn, PinRef::Port(hp));
    if half_cycle {
        c.half_cycle_ports.insert(hp);
    }

    // merge the port cone with the flop cone
    let g = d.add_cell("g", nand);
    d.connect(q0, PinRef::inst(g, 0));
    d.connect(hn, PinRef::inst(g, 1));
    let gn = d.add_net("gn");
    d.connect(gn, PinRef::inst(g, 2));

    let mut prev = gn;
    for i in 0..4 {
        let c = d.add_cell(format!("c{i}"), inv);
        d.connect(prev, PinRef::inst(c, 0));
        prev = d.add_net(format!("w{i}"));
        d.connect(prev, PinRef::inst(c, 1));
    }
    d.connect(prev, PinRef::inst(f1, 0));
    let op = d.add_port("o", PinDir::Output, None);
    d.connect(prev, PinRef::Port(op));

    let mut parasitics = vec![NetParasitics::default(); d.num_nets()];
    for n in d.net_ids() {
        let sinks = d.sinks(n).count();
        parasitics[n.index()] = NetParasitics {
            wire_cap_ff: 2.0,
            total_res_ohm: 60.0,
            elmore_ps: vec![12.0; sinks],
            driver_load_ff: 4.0,
        };
    }
    (d, parasitics, c)
}

fn input<'a>(
    d: &'a Design,
    p: &'a [NetParasitics],
    c: &'a StaConstraints,
    clock: &'a ClockArrivals,
) -> StaInput<'a> {
    StaInput {
        design: d,
        parasitics: p,
        routed: None,
        constraints: c,
        clock,
        corner: Corner::Ss,
    }
}

#[test]
fn parametric_analyze_stays_within_propagation_budget() {
    let obs = Session::start(ObsConfig::summary(), "sta-obs");
    let reg = macro3d_obs::registry();
    let propagations = reg.counter("sta/propagations");
    let par = Parallelism::serial();

    // unmixed design: all arrivals share the same period coefficient,
    // so the single pass is globally exact — exactly 1 propagation
    let (d, p, c) = design(false);
    let clock = ClockArrivals::ideal(&d);
    let before = propagations.get();
    analyze_with(&input(&d, &p, &c, &clock), &par, StaMode::Parametric);
    let unmixed = propagations.get() - before;
    assert_eq!(unmixed, 1, "unmixed design should need exactly 1 pass");

    // mixed design (half-cycle port merging into the flop cone): the
    // confirmation may iterate, but never back to probe-search scale
    let (d, p, c) = design(true);
    let clock = ClockArrivals::ideal(&d);
    let before = propagations.get();
    analyze_with(&input(&d, &p, &c, &clock), &par, StaMode::Parametric);
    let mixed = propagations.get() - before;
    assert!(
        (1..=3).contains(&mixed),
        "mixed design took {mixed} propagations (budget ≤ 3)"
    );

    // the legacy probe path really is what we are saving: one analyze
    // burns a propagation per bisection probe
    let before = propagations.get();
    analyze_with(&input(&d, &p, &c, &clock), &par, StaMode::Probe);
    let probe = propagations.get() - before;
    assert!(probe > 30, "probe mode ran only {probe} propagations?");

    // incremental update: records its cone size and no full repass on
    // an unmixed design
    let (mut d, mut p, c) = design(false);
    let clock = ClockArrivals::ideal(&d);
    let mut session = StaSession::new(&input(&d, &p, &c, &clock));
    let timing = session.analyze(&input(&d, &p, &c, &clock), &par);
    let changes = upsize_critical_path(&mut d, &timing);
    assert!(!changes.is_empty());
    let touched = apply_sizing_to_parasitics(&d, &changes, &mut p);
    let before = propagations.get();
    session.update(&input(&d, &p, &c, &clock), &touched, &par);
    let update = propagations.get() - before;
    assert_eq!(update, 0, "unmixed cone update needs no full propagation");

    let snap = reg.snapshot();
    assert_eq!(snap.counters["sta/incremental_updates"], 1);
    let cone = snap.histograms["sta/cone_nets"];
    assert_eq!(cone.count, 1);
    assert!(
        cone.max as usize <= d.num_nets(),
        "cone ({}) cannot exceed the design ({} nets)",
        cone.max,
        d.num_nets()
    );
    assert!(
        cone.sum > 0,
        "the touched cone re-evaluated at least one net"
    );

    obs.finish();
}
