//! Parametric ↔ probe equivalence properties.
//!
//! The parametric engine (one affine propagation + confirmation) must
//! reproduce the legacy 32-probe binary search: same minimum period
//! to within the probe grid resolution, same critical path. The
//! incremental `StaSession` must match a cold analysis after sizing
//! edits. Designs are randomized reg2reg / half-cycle-port DAGs —
//! half-cycle input ports feeding merge gates exercise the mixed
//! period-coefficient case where the confirmation pass has to iterate.

use macro3d_extract::NetParasitics;
use macro3d_netlist::{Design, NetId, PinRef};
use macro3d_par::Parallelism;
use macro3d_sta::{
    analyze_with, apply_sizing_to_parasitics, upsize_critical_path, ClockArrivals, StaConstraints,
    StaInput, StaMode, StaSession, PROBE_RESOLUTION_PS,
};
use macro3d_tech::{libgen::n28_library, CellClass, Corner, PinDir};
use proptest::prelude::*;
use std::sync::Arc;

/// Tiny deterministic generator for connectivity choices, seeded per
/// proptest case (keeps the design a DAG: gates only read nets that
/// already exist).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() as f64 / (u64::MAX >> 11) as f64) * (hi - lo)
    }
}

/// Builds a randomized reg2reg + port design: `n_ffs` flops, `n_gates`
/// two-input/one-input gates wired to already-created signal nets,
/// every flop D and a couple of output ports as endpoints. With
/// `half_cycle` the first input and output port get half-cycle
/// budgets, so gates merging that port's cone with a flop cone see
/// arrivals with different period coefficients.
fn rand_design(
    n_ffs: usize,
    n_gates: usize,
    half_cycle: bool,
    seed: u64,
) -> (Design, Vec<NetParasitics>, StaConstraints) {
    let lib = Arc::new(n28_library(1.0));
    let inv = lib.smallest(CellClass::Inv).expect("inv");
    let nand = lib.smallest(CellClass::Nand2).expect("nand2");
    let dff = lib.smallest(CellClass::Dff).expect("dff");
    let mut d = Design::new("rand", lib);
    let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));

    let clk_p = d.add_port("clk", PinDir::Input, None);
    let clk = d.add_net("clk");
    d.connect(clk, PinRef::Port(clk_p));

    let mut c = StaConstraints::new(clk);

    // signal sources: input ports (one optionally half-cycle) + FF Qs
    let mut pool: Vec<NetId> = Vec::new();
    for i in 0..2 {
        let p = d.add_port(format!("in{i}"), PinDir::Input, None);
        let n = d.add_net(format!("inn{i}"));
        d.connect(n, PinRef::Port(p));
        if half_cycle && i == 0 {
            c.half_cycle_ports.insert(p);
        }
        pool.push(n);
    }
    let mut ffs = Vec::new();
    for i in 0..n_ffs {
        let f = d.add_cell(format!("f{i}"), dff);
        d.connect(clk, PinRef::inst(f, 1));
        let q = d.add_net(format!("q{i}"));
        d.connect(q, PinRef::inst(f, 2));
        pool.push(q);
        ffs.push(f);
    }

    // gate DAG over the growing pool
    for i in 0..n_gates {
        let two_input = rng.pick(2) == 0;
        let out = d.add_net(format!("g{i}"));
        if two_input {
            let g = d.add_cell(format!("n{i}"), nand);
            d.connect(pool[rng.pick(pool.len())], PinRef::inst(g, 0));
            d.connect(pool[rng.pick(pool.len())], PinRef::inst(g, 1));
            d.connect(out, PinRef::inst(g, 2));
        } else {
            let g = d.add_cell(format!("i{i}"), inv);
            d.connect(pool[rng.pick(pool.len())], PinRef::inst(g, 0));
            d.connect(out, PinRef::inst(g, 1));
        }
        pool.push(out);
    }

    // endpoints: every flop D, plus two output ports (one optionally
    // half-cycle) on late nets
    for &f in &ffs {
        d.connect(pool[rng.pick(pool.len())], PinRef::inst(f, 0));
    }
    for i in 0..2 {
        let p = d.add_port(format!("out{i}"), PinDir::Output, None);
        d.connect(
            pool[pool.len() - 1 - rng.pick(pool.len().min(3))],
            PinRef::Port(p),
        );
        if half_cycle && i == 0 {
            c.half_cycle_ports.insert(p);
        }
    }

    let mut parasitics = vec![NetParasitics::default(); d.num_nets()];
    for n in d.net_ids() {
        let sinks = d.sinks(n).count();
        let base = rng.f64_in(0.0, 60.0);
        parasitics[n.index()] = NetParasitics {
            wire_cap_ff: rng.f64_in(1.0, 4.0),
            total_res_ohm: rng.f64_in(20.0, 120.0),
            elmore_ps: (0..sinks)
                .map(|s| base + s as f64 * rng.f64_in(0.0, 8.0))
                .collect(),
            driver_load_ff: rng.f64_in(2.0, 6.0),
        };
    }
    (d, parasitics, c)
}

fn input<'a>(
    d: &'a Design,
    p: &'a [NetParasitics],
    c: &'a StaConstraints,
    clock: &'a ClockArrivals,
) -> StaInput<'a> {
    StaInput {
        design: d,
        parasitics: p,
        routed: None,
        constraints: c,
        clock,
        corner: Corner::Ss,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One parametric pass (+ confirmation) lands on the same grid
    /// point and critical path as 32 binary-search probes.
    #[test]
    fn parametric_matches_probe(
        n_ffs in 2usize..6,
        n_gates in 1usize..24,
        half_cycle in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let (d, p, c) = rand_design(n_ffs, n_gates, half_cycle, seed);
        let clock = ClockArrivals::ideal(&d);
        let par = Parallelism::serial();
        let probe = analyze_with(&input(&d, &p, &c, &clock), &par, StaMode::Probe);
        let param = analyze_with(&input(&d, &p, &c, &clock), &par, StaMode::Parametric);
        prop_assert!(
            (probe.min_period_ps - param.min_period_ps).abs() <= 2.0 * PROBE_RESOLUTION_PS,
            "probe {} vs parametric {} (diff {})",
            probe.min_period_ps,
            param.min_period_ps,
            (probe.min_period_ps - param.min_period_ps).abs()
        );
        prop_assert_eq!(&probe.crit_path_nets, &param.crit_path_nets);
        prop_assert_eq!(probe.crit_path_stages, param.crit_path_stages);
    }

    /// Re-timing only the touched cones after a sizing edit matches a
    /// cold parametric analysis of the edited design.
    #[test]
    fn incremental_update_matches_cold_analysis(
        n_ffs in 2usize..5,
        n_gates in 4usize..20,
        half_cycle in proptest::bool::ANY,
        seed in 0u64..1_000_000,
        rounds in 1usize..4,
    ) {
        let (mut d, mut p, c) = rand_design(n_ffs, n_gates, half_cycle, seed);
        let clock = ClockArrivals::ideal(&d);
        let par = Parallelism::serial();
        let mut session = StaSession::new(&input(&d, &p, &c, &clock));
        let mut timing = session.analyze(&input(&d, &p, &c, &clock), &par);
        for _ in 0..rounds {
            let changes = upsize_critical_path(&mut d, &timing);
            if changes.is_empty() {
                break;
            }
            let touched = apply_sizing_to_parasitics(&d, &changes, &mut p);
            prop_assert!(!touched.is_empty());
            timing = session.update(&input(&d, &p, &c, &clock), &touched, &par);
            let cold = analyze_with(&input(&d, &p, &c, &clock), &par, StaMode::Parametric);
            prop_assert!(
                (timing.min_period_ps - cold.min_period_ps).abs() <= 1e-6,
                "incremental {} vs cold {}",
                timing.min_period_ps,
                cold.min_period_ps
            );
            prop_assert_eq!(&timing.crit_path_nets, &cold.crit_path_nets);
        }
    }

    /// Thread count never changes the parametric answer.
    #[test]
    fn parametric_thread_count_invariant(
        n_ffs in 2usize..5,
        n_gates in 1usize..16,
        half_cycle in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let (d, p, c) = rand_design(n_ffs, n_gates, half_cycle, seed);
        let clock = ClockArrivals::ideal(&d);
        let serial = analyze_with(
            &input(&d, &p, &c, &clock),
            &Parallelism::serial(),
            StaMode::Parametric,
        );
        for threads in [2usize, 4] {
            let par = Parallelism::threads(threads).with_chunk_size(1);
            let t = analyze_with(&input(&d, &p, &c, &clock), &par, StaMode::Parametric);
            prop_assert_eq!(serial.min_period_ps.to_bits(), t.min_period_ps.to_bits());
            prop_assert_eq!(&serial.crit_path_nets, &t.crit_path_nets);
        }
    }
}
