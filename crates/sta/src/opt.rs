//! Timing optimization: repeater insertion and gate sizing.

use crate::analysis::TimingReport;
use macro3d_geom::Point;
use macro3d_netlist::{Design, InstId, Master, NetId, PinRef};

use macro3d_place::{pin_position, Placement, PortPlan};
use macro3d_tech::CellClass;
use std::collections::HashSet;

/// Inserts a repeater (strongest `BUF`) on every net whose HPWL
/// exceeds `max_len_um`, splitting driver from sinks at the bounding-
/// box centre. Returns the inserted buffers. Call before
/// legalization; repeat to split very long nets further.
///
/// Nets in `skip` (e.g. the clock, which CTS owns) and high-fanout
/// nets are left alone.
pub fn insert_repeaters(
    design: &mut Design,
    placement: &mut Placement,
    ports: &PortPlan,
    max_len_um: f64,
    skip: &HashSet<NetId>,
) -> Vec<InstId> {
    // scoped borrow: only the buffer's id and pin indices survive, so
    // the design stays mutable below without cloning the library.
    // INVARIANT: generated buffer cells always expose an input pin.
    #[allow(clippy::expect_used)]
    let (buf_cell, buf_in, buf_out) = {
        let lib = design.library();
        let buffers = lib.buffers();
        if buffers.is_empty() {
            // a heterogeneous tile library may lack buffers entirely;
            // long nets then stay unsplit rather than panicking
            NO_BUFFERS.inc();
            return Vec::new();
        }
        let buf_cell = buffers[1.min(buffers.len() - 1)]; // X2: repeater strength without the area blow-up
        let buf = lib.cell(buf_cell);
        (
            buf_cell,
            buf.data_input_pins().next().expect("buffer input") as u16,
            buf.output_pin() as u16,
        )
    };

    let mut inserted = Vec::new();
    let original_nets: Vec<NetId> = design.net_ids().collect();
    for net in original_nets {
        if skip.contains(&net) {
            continue;
        }
        let n_pins = design.net(net).pins.len();
        if !(2..=64).contains(&n_pins) {
            continue;
        }
        // Multi-sink nets driven by a repeater are not split again:
        // the buffer already sits at the sink centroid, and another
        // level cannot shrink the sink spread. Two-pin segments keep
        // splitting until they fit the threshold.
        if n_pins > 2 {
            if let Some(PinRef::Inst { inst, .. }) = design.driver(net) {
                if design.inst(inst).name.starts_with("rep_") {
                    continue;
                }
            }
        }
        // bounding box over the pins (borrowed: nothing mutates until
        // the split below)
        let (lo, hi) = {
            let pins = &design.net(net).pins;
            let mut lo = pin_position(design, placement, ports, pins[0]);
            let mut hi = lo;
            for &p in &pins[1..] {
                let pt = pin_position(design, placement, ports, p);
                lo = lo.min(pt);
                hi = hi.max(pt);
            }
            (lo, hi)
        };
        if lo.manhattan(hi).to_um() <= max_len_um {
            continue;
        }
        let sinks: Vec<PinRef> = design.sinks(net).collect();
        if sinks.is_empty() {
            continue;
        }
        // the buffer sits at the sink centroid (for a 2-pin net that
        // is the midpoint side of the sink), so each split makes
        // real progress
        let mut sx = 0i64;
        let mut sy = 0i64;
        for &p in &sinks {
            let pt = pin_position(design, placement, ports, p);
            sx += pt.x.0;
            sy += pt.y.0;
        }
        let n_sinks = sinks.len() as i64;
        let drv_pos = design
            .driver(net)
            .map(|d| pin_position(design, placement, ports, d))
            .unwrap_or(lo);
        let sink_c = Point::new(
            macro3d_geom::Dbu(sx / n_sinks),
            macro3d_geom::Dbu(sy / n_sinks),
        );
        let center = Point::new(
            macro3d_geom::Dbu((drv_pos.x.0 + sink_c.x.0) / 2),
            macro3d_geom::Dbu((drv_pos.y.0 + sink_c.y.0) / 2),
        );
        let inst = design.add_cell(format!("rep_{}", design.num_insts()), buf_cell);
        placement.pos.push(center);
        placement.orient.push(macro3d_geom::Orientation::N);
        placement.die_of.push(macro3d_tech::stack::DieRole::Logic);
        let new_net = design.add_net(format!("rep_n{}", design.num_nets()));
        for &s in &sinks {
            design.disconnect(net, s);
            design.connect(new_net, s);
        }
        design.connect(net, PinRef::inst(inst, buf_in));
        design.connect(new_net, PinRef::inst(inst, buf_out));
        inserted.push(inst);
    }
    inserted
}

/// Upsizes the cells driving the critical path's nets by one drive
/// step. Returns `(inst, input-cap delta in fF per input pin)` for the
/// caller to fold into its parasitics (`driver_load_ff` of fanin
/// nets). No geometric update is performed (in-place sizing).
pub fn upsize_critical_path(design: &mut Design, report: &TimingReport) -> Vec<(InstId, f64)> {
    let lib = design.library().clone();
    let mut changed = Vec::new();
    for &net in &report.crit_path_nets {
        let Some(PinRef::Inst { inst, .. }) = design.driver(net) else {
            continue;
        };
        let Master::Cell(c) = design.inst(inst).master else {
            continue;
        };
        // never resize CTS clock buffers
        if lib.cell(c).class == CellClass::ClkBuf {
            continue;
        }
        let Some(up) = lib.resize(c, 1) else { continue };
        let delta = lib.cell(up).pins[0].cap_ff - lib.cell(c).pins[0].cap_ff;
        design.inst_mut(inst).master = Master::Cell(up);
        changed.push((inst, delta));
    }
    changed
}

/// Fixes hold violations by splicing delay-buffer chains in front of
/// the violating register data pins (the standard post-CTS hold-fix
/// step). Returns the inserted buffers; the caller re-extracts or
/// accepts the (conservative) zero-parasitic model for the new nets.
///
/// Each weakest-drive buffer contributes its FF-corner intrinsic
/// delay; the chain length covers the shortfall with one buffer of
/// margin.
pub fn fix_hold(
    design: &mut Design,
    placement: &mut Placement,
    report: &crate::analysis::HoldReport,
    max_endpoints: usize,
) -> Vec<InstId> {
    // INVARIANT: generated buffer cells always expose an input pin.
    #[allow(clippy::expect_used)]
    let (buf_cell, buf_in, buf_out, d_min) = {
        let lib = design.library();
        let buffers = lib.buffers();
        if buffers.is_empty() {
            NO_BUFFERS.inc();
            return Vec::new();
        }
        let buf_cell = buffers[0]; // weakest buffer = most delay per area
        let buf = lib.cell(buf_cell);
        let (d_min, _) = crate::dcalc::cell_arc_delay(buf, 0, 30.0, 2.0, macro3d_tech::Corner::Ff);
        (
            buf_cell,
            buf.data_input_pins().next().expect("buffer input") as u16,
            buf.output_pin() as u16,
            d_min,
        )
    };

    let mut inserted = Vec::new();
    for &(inst, pin, shortfall) in report.endpoints.iter().take(max_endpoints) {
        let Some(net) = design.inst(inst).conns[pin as usize] else {
            continue;
        };
        let chain = (shortfall / d_min).ceil() as usize + 1;
        let at = placement.pos[inst.index()];
        design.disconnect(net, PinRef::inst(inst, pin));
        let mut prev = net;
        for k in 0..chain {
            let b = design.add_cell(format!("hold_{}_{k}", inst.index()), buf_cell);
            placement.pos.push(at);
            placement.orient.push(macro3d_geom::Orientation::N);
            placement.die_of.push(placement.die_of[inst.index()]);
            design.connect(prev, PinRef::inst(b, buf_in));
            let out = design.add_net(format!("hold_n{}", design.num_nets()));
            design.connect(out, PinRef::inst(b, buf_out));
            prev = out;
            inserted.push(b);
        }
        design.connect(prev, PinRef::inst(inst, pin));
    }
    inserted
}

/// Applies pin-capacitance deltas from sizing to the parasitics
/// table: every net driving a resized instance's input sees its
/// driver load grow.
///
/// Returns the nets whose timing changed — the fanin nets (driver
/// load grew) and the output net (the resized drive changes its
/// delay) of every resized instance, deduplicated in first-touch
/// order — exactly the seed set [`crate::StaSession::update`] needs
/// to re-time the affected cone incrementally.
pub fn apply_sizing_to_parasitics(
    design: &Design,
    changes: &[(InstId, f64)],
    parasitics: &mut [macro3d_extract::NetParasitics],
) -> Vec<NetId> {
    let mut touched = Vec::new();
    let mut seen = HashSet::new();
    for &(inst, delta) in changes {
        let Master::Cell(c) = design.inst(inst).master else {
            continue;
        };
        let cell = design.library().cell(c);
        for p in cell.data_input_pins().collect::<Vec<_>>() {
            if let Some(net) = design.inst(inst).conns[p] {
                if let Some(par) = parasitics.get_mut(net.index()) {
                    par.driver_load_ff += delta;
                }
                if seen.insert(net) {
                    touched.push(net);
                }
            }
        }
        if let Some(net) = design.inst(inst).conns[cell.output_pin()] {
            if seen.insert(net) {
                touched.push(net);
            }
        }
    }
    touched
}

/// Optimization steps skipped because the cell library offers no
/// buffers (repeater insertion and hold fixing both need one).
static NO_BUFFERS: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("opt/no_buffers");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TimingReport;
    use macro3d_tech::{libgen::n28_library, PinDir};
    use std::sync::Arc;

    fn long_net_design() -> (Design, Placement, PortPlan, NetId) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let a = d.add_cell("a", inv);
        let b = d.add_cell("b", inv);
        let n = d.add_net("n");
        d.connect(n, PinRef::inst(a, 1));
        d.connect(n, PinRef::inst(b, 0));
        // feed a's input from a port so the design stays valid
        let p = d.add_port("in", PinDir::Input, None);
        let pn = d.add_net("pn");
        d.connect(pn, PinRef::Port(p));
        d.connect(pn, PinRef::inst(a, 0));
        let mut pl = Placement::new(&d);
        pl.pos[b.index()] = Point::from_um(500.0, 0.0);
        (
            d,
            pl,
            PortPlan {
                pos: vec![Point::ORIGIN],
            },
            n,
        )
    }

    #[test]
    fn repeater_splits_long_net() {
        let (mut d, mut pl, ports, n) = long_net_design();
        let before_nets = d.num_nets();
        let ins = insert_repeaters(&mut d, &mut pl, &ports, 200.0, &HashSet::new());
        assert_eq!(ins.len(), 1, "only the 500um net splits: {ins:?}");
        assert!(d.num_nets() > before_nets);
        assert!(d.validate().is_ok());
        // original net now has exactly one sink: the repeater input
        assert_eq!(d.sinks(n).count(), 1);
        // repeater sits mid-span
        let x = pl.pos[ins[0].index()].x.to_um();
        assert!(x > 100.0 && x < 400.0);
    }

    #[test]
    fn short_nets_untouched() {
        let (mut d, mut pl, ports, _) = long_net_design();
        pl.pos = vec![Point::ORIGIN; pl.pos.len()];
        let ins = insert_repeaters(&mut d, &mut pl, &ports, 200.0, &HashSet::new());
        assert!(ins.is_empty());
    }

    #[test]
    fn skip_list_respected() {
        let (mut d, mut pl, ports, n) = long_net_design();
        let skip: HashSet<NetId> = [n].into_iter().collect();
        let ins = insert_repeaters(&mut d, &mut pl, &ports, 200.0, &skip);
        assert!(ins.len() <= 1); // only the port net may split
        assert!(d.sinks(n).count() == 1);
    }

    #[test]
    fn upsize_walks_crit_path() {
        let (mut d, _, _, n) = long_net_design();
        let report = TimingReport {
            min_period_ps: 1000.0,
            fclk_mhz: 1000.0,
            crit_path_nets: vec![n],
            crit_path_wirelength_mm: 0.5,
            crit_path_stages: 1,
            clock_tree_depth: 0,
            clock_skew_ps: 0.0,
        };
        let changes = upsize_critical_path(&mut d, &report);
        assert_eq!(changes.len(), 1);
        let (inst, delta) = changes[0];
        assert_eq!(d.inst(inst).name, "a");
        assert!(delta > 0.0);
        // applying to parasitics bumps the fanin net's load
        let mut parasitics = vec![macro3d_extract::NetParasitics::default(); d.num_nets()];
        let touched = apply_sizing_to_parasitics(&d, &changes, &mut parasitics);
        // net "pn" (a's input) grew
        let pn = d.net_ids().find(|&x| d.net(x).name == "pn").expect("pn");
        assert!(parasitics[pn.index()].driver_load_ff > 0.0);
        // touched set = fanin net (load changed) + output net (drive
        // changed), deduplicated
        assert!(touched.contains(&pn), "fanin net reported: {touched:?}");
        assert!(touched.contains(&n), "output net reported: {touched:?}");
        assert_eq!(touched.len(), 2);
    }

    /// The n28 library minus its buffers: repeater insertion and hold
    /// fixing must degrade to no-ops instead of panicking on
    /// `buffers()[..]`.
    fn bufferless_long_net_design() -> (Design, Placement, PortPlan) {
        let full = n28_library(1.0);
        let cells: Vec<macro3d_tech::LibCell> = full
            .cells()
            .iter()
            .filter(|c| c.class != CellClass::Buf)
            .cloned()
            .collect();
        let lib = Arc::new(macro3d_tech::CellLibrary::new(
            "n28-nobuf",
            cells,
            full.row_height(),
            full.site_width(),
            full.voltage(),
        ));
        let inv = lib.smallest(CellClass::Inv).expect("inv survives filter");
        let mut d = Design::new("t", lib);
        let a = d.add_cell("a", inv);
        let b = d.add_cell("b", inv);
        let n = d.add_net("n");
        d.connect(n, PinRef::inst(a, 1));
        d.connect(n, PinRef::inst(b, 0));
        let p = d.add_port("in", PinDir::Input, None);
        let pn = d.add_net("pn");
        d.connect(pn, PinRef::Port(p));
        d.connect(pn, PinRef::inst(a, 0));
        let mut pl = Placement::new(&d);
        pl.pos[b.index()] = Point::from_um(500.0, 0.0);
        (
            d,
            pl,
            PortPlan {
                pos: vec![Point::ORIGIN],
            },
        )
    }

    #[test]
    fn no_buffers_in_library_is_a_noop_not_a_panic() {
        let (mut d, mut pl, ports) = bufferless_long_net_design();
        let before = d.num_insts();
        let ins = insert_repeaters(&mut d, &mut pl, &ports, 200.0, &HashSet::new());
        assert!(ins.is_empty(), "no buffer to insert: {ins:?}");
        assert_eq!(d.num_insts(), before, "design untouched");

        let hold = crate::analysis::HoldReport {
            worst_slack_ps: -50.0,
            violations: 1,
            endpoints: vec![(macro3d_netlist::InstId(0), 0, 50.0)],
        };
        let fixed = fix_hold(&mut d, &mut pl, &hold, 8);
        assert!(fixed.is_empty());
        assert_eq!(d.num_insts(), before);
    }
}
