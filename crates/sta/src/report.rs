//! Human-readable timing reports (`report_timing`-style).

use crate::analysis::TimingReport;
use macro3d_extract::NetParasitics;
use macro3d_netlist::{Design, Master, PinRef};
use macro3d_route::RoutedDesign;
use std::fmt::Write as _;

/// Formats the critical path of a timing report as a stage-by-stage
/// table: driver cell, net, routed length, worst Elmore, load.
///
/// The path is printed launch-to-capture (the report stores it
/// endpoint-first).
///
/// Typical use: after `analyze`, print
/// `format_critical_path(&design, &parasitics, Some(&routed), &timing)`.
pub fn format_critical_path(
    design: &Design,
    parasitics: &[NetParasitics],
    routed: Option<&RoutedDesign>,
    report: &TimingReport,
) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "critical path: min period {:.0} ps (fclk {:.1} MHz), {} stages, {:.3} mm routed",
        report.min_period_ps,
        report.fclk_mhz,
        report.crit_path_stages,
        report.crit_path_wirelength_mm
    );
    let _ = writeln!(
        s,
        "{:<4} {:<28} {:<14} {:>9} {:>10} {:>9}",
        "#", "net", "driver", "wl[um]", "elmore[ps]", "load[fF]"
    );
    for (k, &net) in report.crit_path_nets.iter().rev().enumerate() {
        let n = design.net(net);
        let par = parasitics.get(net.index());
        let wl = routed
            .and_then(|r| r.net(net))
            .map(|r| r.wirelength_um())
            .unwrap_or(0.0);
        let elmore = par
            .map(|p| p.elmore_ps.iter().cloned().fold(0.0, f64::max))
            .unwrap_or(0.0);
        let load = par.map(|p| p.driver_load_ff).unwrap_or(0.0);
        let driver = match design.driver(net) {
            Some(PinRef::Inst { inst, .. }) => {
                let i = design.inst(inst);
                match i.master {
                    Master::Cell(c) => design.library().cell(c).name.clone(),
                    Master::Macro(m) => design.macro_master(m).name.clone(),
                }
            }
            Some(PinRef::Port(p)) => format!("port {}", design.port(p).name),
            None => "?".to_string(),
        };
        let _ = writeln!(
            s,
            "{:<4} {:<28} {:<14} {:>9.1} {:>10.1} {:>9.1}",
            k,
            truncate(&n.name, 28),
            truncate(&driver, 14),
            wl,
            elmore,
            load
        );
    }
    let _ = writeln!(
        s,
        "clock: tree depth {}, skew {:.0} ps",
        report.clock_tree_depth, report.clock_skew_ps
    );
    s
}

fn truncate(raw: &str, n: usize) -> String {
    if raw.len() <= n {
        raw.to_string()
    } else {
        format!("{}…", &raw[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, StaInput};
    use crate::constraints::StaConstraints;
    use crate::cts::ClockArrivals;
    use macro3d_netlist::{Design, PinRef};
    use macro3d_tech::{libgen::n28_library, CellClass, Corner, PinDir};
    use std::sync::Arc;

    #[test]
    fn formats_a_real_path() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let dff = lib.smallest(CellClass::Dff).expect("dff");
        let mut d = Design::new("t", lib);
        let clk_p = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_p));
        let f0 = d.add_cell("f0", dff);
        let f1 = d.add_cell("f1", dff);
        d.connect(clk, PinRef::inst(f0, 1));
        d.connect(clk, PinRef::inst(f1, 1));
        let dp = d.add_port("d", PinDir::Input, None);
        let dn = d.add_net("dn");
        d.connect(dn, PinRef::Port(dp));
        d.connect(dn, PinRef::inst(f0, 0));
        let q = d.add_net("q0");
        d.connect(q, PinRef::inst(f0, 2));
        let g = d.add_cell("g", inv);
        d.connect(q, PinRef::inst(g, 0));
        let w = d.add_net("w0");
        d.connect(w, PinRef::inst(g, 1));
        d.connect(w, PinRef::inst(f1, 0));

        let parasitics = vec![NetParasitics::default(); d.num_nets()];
        let clock = ClockArrivals::ideal(&d);
        let constraints = StaConstraints::new(clk);
        let timing = analyze(&StaInput {
            design: &d,
            parasitics: &parasitics,
            routed: None,
            constraints: &constraints,
            clock: &clock,
            corner: Corner::Tt,
        });
        let text = format_critical_path(&d, &parasitics, None, &timing);
        assert!(text.contains("critical path: min period"));
        assert!(text.contains("DFF_X1"), "launch register shown");
        assert!(text.contains("w0"), "path net shown");
        assert!(text.contains("clock: tree depth"));
    }

    #[test]
    fn truncation_is_safe() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("a_very_long_net_name_indeed", 10);
        assert!(t.chars().count() <= 10);
    }
}
