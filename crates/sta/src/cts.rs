//! Clock-tree synthesis: recursive geometric clustering with
//! distance-driven repeater chains.
//!
//! The tree is built top-down: the sink set (flip-flop `CK` pins and
//! macro `clk` pins) is recursively median-split until clusters fit
//! the fanout limit; every split inserts a clock buffer at the child
//! cluster's centroid, plus a repeater chain when the parent-to-child
//! distance exceeds the repeater spacing. Tree *depth* — a paper
//! Table II metric — is therefore driven by die size: the half-
//! footprint MoL die needs fewer chained repeaters, which is exactly
//! how the large-cache design drops from depth 20 (2D) to 16 (3D) in
//! the paper.

use crate::dcalc::cell_arc_delay;
use macro3d_extract::NetParasitics;
use macro3d_geom::{Dbu, Point};
use macro3d_netlist::{Design, InstId, Master, NetId, PinRef};
use macro3d_place::Placement;
use macro3d_tech::Corner;

/// CTS tuning.
#[derive(Clone, Copy, Debug)]
pub struct CtsConfig {
    /// Maximum sinks per buffer.
    pub max_fanout: usize,
    /// Repeater spacing along long tree edges, µm.
    pub repeater_spacing_um: f64,
}

impl Default for CtsConfig {
    fn default() -> Self {
        CtsConfig {
            max_fanout: 24,
            repeater_spacing_um: 200.0,
        }
    }
}

/// A synthesized clock tree.
#[derive(Clone, Debug)]
pub struct ClockTree {
    /// All inserted clock buffers.
    pub buffers: Vec<InstId>,
    /// All tree nets (the pre-existing clock net is the root).
    pub nets: Vec<NetId>,
    /// Maximum number of buffers on any root→sink path (the clock
    /// tree depth).
    pub depth: usize,
    /// The root net (driven by the clock port).
    pub root_net: NetId,
}

/// Synthesizes a buffered clock tree below `clock_net`, re-homing all
/// existing sinks onto tree subnets and placing buffers in the
/// placement (at centroids; legalize afterwards).
///
/// # Panics
///
/// Panics if the library has no clock buffers.
pub fn synthesize_clock_tree(
    design: &mut Design,
    placement: &mut Placement,
    clock_net: NetId,
    cfg: &CtsConfig,
) -> ClockTree {
    let lib = design.library().clone();
    // INVARIANT: generated libraries always provide clock buffers
    // with an input pin (CTS is unusable without them).
    #[allow(clippy::expect_used)]
    let buf_cell = *lib
        .clock_buffers()
        .first()
        .expect("library provides clock buffers");
    let buf = lib.cell(buf_cell);
    #[allow(clippy::expect_used)]
    let buf_in = buf
        .data_input_pins()
        .next()
        .expect("clock buffer has input") as u16;
    let buf_out = buf.output_pin() as u16;

    // Gather and detach existing sinks.
    let sinks: Vec<PinRef> = design.sinks(clock_net).collect();
    let mut items: Vec<(PinRef, Point)> = sinks
        .iter()
        .map(|&p| (p, sink_pos(design, placement, p)))
        .collect();
    for &p in &sinks {
        design.disconnect(clock_net, p);
    }

    let mut tree = ClockTree {
        buffers: Vec::new(),
        nets: vec![clock_net],
        depth: 0,
        root_net: clock_net,
    };

    let root_pos = centroid(&items);
    build(
        design, placement, &mut tree, &mut items, clock_net, root_pos, 0, cfg, buf_cell, buf_in,
        buf_out,
    );
    if macro3d_obs::enabled(macro3d_obs::ObsLevel::Summary) {
        let reg = macro3d_obs::registry();
        reg.gauge("sta/cts_levels").set(tree.depth as f64);
        reg.counter("sta/cts_buffers")
            .add(tree.buffers.len() as u64);
    }
    tree
}

#[allow(clippy::too_many_arguments)]
fn build(
    design: &mut Design,
    placement: &mut Placement,
    tree: &mut ClockTree,
    items: &mut Vec<(PinRef, Point)>,
    driver_net: NetId,
    driver_pos: Point,
    depth: usize,
    cfg: &CtsConfig,
    buf_cell: macro3d_tech::LibCellId,
    buf_in: u16,
    buf_out: u16,
) {
    if items.is_empty() {
        tree.depth = tree.depth.max(depth);
        return;
    }
    if items.len() <= cfg.max_fanout {
        for (pin, _) in items.iter() {
            design.connect(driver_net, *pin);
        }
        tree.depth = tree.depth.max(depth);
        return;
    }

    // median split along the wider axis
    let (lo, hi) = bbox(items);
    let horizontal = (hi.x - lo.x) >= (hi.y - lo.y);
    items.sort_by_key(|(_, p)| if horizontal { p.x } else { p.y });
    let mid = items.len() / 2;
    let mut right = items.split_off(mid);
    let mut left = std::mem::take(items);

    // balance the two branches: both use the larger chain length so
    // sibling subtrees see matched insertion delay (skew control)
    let hops_for = |half: &Vec<(PinRef, Point)>| {
        let c = centroid(half);
        (driver_pos.manhattan(c).to_um() / cfg.repeater_spacing_um).floor() as usize
    };
    let hops = hops_for(&left).max(hops_for(&right));

    for half in [&mut left, &mut right] {
        let c = centroid(half);
        let mut net = driver_net;
        let mut pos = driver_pos;
        let mut d = depth;
        for h in 0..=hops {
            let t = (h + 1) as f64 / (hops + 1) as f64;
            let at = lerp_point(driver_pos, c, t);
            let inst = add_buffer(design, placement, buf_cell, at);
            design.connect(net, PinRef::inst(inst, buf_in));
            let out = design.add_net(format!("cts_n{}", design.num_nets()));
            design.connect(out, PinRef::inst(inst, buf_out));
            tree.buffers.push(inst);
            tree.nets.push(out);
            net = out;
            pos = at;
            d += 1;
        }
        build(
            design, placement, tree, half, net, pos, d, cfg, buf_cell, buf_in, buf_out,
        );
    }
}

fn add_buffer(
    design: &mut Design,
    placement: &mut Placement,
    cell: macro3d_tech::LibCellId,
    at: Point,
) -> InstId {
    let inst = design.add_cell(format!("cts_buf{}", design.num_insts()), cell);
    placement.pos.push(at);
    placement.orient.push(macro3d_geom::Orientation::N);
    placement.die_of.push(macro3d_tech::stack::DieRole::Logic);
    debug_assert_eq!(placement.pos.len(), design.num_insts());
    inst
}

fn sink_pos(design: &Design, placement: &Placement, pin: PinRef) -> Point {
    match pin {
        PinRef::Inst { inst, pin } => match design.inst(inst).master {
            Master::Cell(_) => placement.center(design, inst),
            Master::Macro(m) => {
                placement.pos[inst.index()]
                    + (design.macro_master(m).pins[pin as usize].offset - Point::ORIGIN)
            }
        },
        PinRef::Port(_) => Point::ORIGIN,
    }
}

fn centroid(items: &[(PinRef, Point)]) -> Point {
    if items.is_empty() {
        return Point::ORIGIN;
    }
    let sx: i64 = items.iter().map(|(_, p)| p.x.0).sum();
    let sy: i64 = items.iter().map(|(_, p)| p.y.0).sum();
    Point::new(Dbu(sx / items.len() as i64), Dbu(sy / items.len() as i64))
}

fn bbox(items: &[(PinRef, Point)]) -> (Point, Point) {
    let mut lo = items[0].1;
    let mut hi = items[0].1;
    for (_, p) in items {
        lo = lo.min(*p);
        hi = hi.max(*p);
    }
    (lo, hi)
}

fn lerp_point(a: Point, b: Point, t: f64) -> Point {
    Point::new(
        Dbu(a.x.0 + ((b.x.0 - a.x.0) as f64 * t) as i64),
        Dbu(a.y.0 + ((b.y.0 - a.y.0) as f64 * t) as i64),
    )
}

/// Per-instance clock arrival times computed from the synthesized
/// tree and extracted parasitics.
#[derive(Clone, Debug)]
pub struct ClockArrivals {
    /// Clock arrival per instance, ps (zero for unclocked instances).
    pub arrival_ps: Vec<f64>,
    /// Tree depth (max buffers on a root→sink path).
    pub depth: usize,
    /// Max minus min sink arrival, ps.
    pub skew_ps: f64,
    /// Total clock-tree wire capacitance, fF.
    pub wire_cap_ff: f64,
    /// Common insertion delay (the padded arrival), ps. IO paths use
    /// this as the virtual-clock offset: the abutting tile instance
    /// has an identical tree, so the common mode cancels.
    pub insertion_ps: f64,
}

impl ClockArrivals {
    /// An ideal (zero insertion delay) clock for pre-CTS analyses.
    pub fn ideal(design: &Design) -> Self {
        ClockArrivals {
            arrival_ps: vec![0.0; design.num_insts()],
            depth: 0,
            skew_ps: 0.0,
            wire_cap_ff: 0.0,
            insertion_ps: 0.0,
        }
    }
}

/// Propagates insertion delays through the tree using extracted
/// parasitics (indexed by `NetId`, sink order = `design.sinks`).
pub fn clock_arrivals(
    design: &Design,
    tree: &ClockTree,
    parasitics: &[NetParasitics],
    corner: Corner,
) -> ClockArrivals {
    let lib = design.library().clone();
    let buffer_set: std::collections::HashSet<InstId> = tree.buffers.iter().copied().collect();
    let mut arrival = vec![0.0f64; design.num_insts()];
    let mut min_sink = f64::INFINITY;
    let mut max_sink: f64 = 0.0;
    let mut wire_cap = 0.0;

    // BFS over tree nets: (net, arrival at driver output, slew)
    let mut queue = vec![(tree.root_net, 0.0f64, 40.0f64)];
    let mut head = 0;
    while head < queue.len() {
        let (net, arr, slew) = queue[head];
        head += 1;
        let Some(par) = parasitics.get(net.index()) else {
            continue;
        };
        wire_cap += par.wire_cap_ff;
        for (six, sink) in design.sinks(net).enumerate() {
            let elmore = par.elmore_ps.get(six).copied().unwrap_or(0.0);
            let sink_arr = arr + elmore;
            let sink_slew = crate::dcalc::wire_slew(slew, elmore);
            match sink {
                PinRef::Inst { inst, .. } => {
                    if buffer_set.contains(&inst) {
                        // buffer: propagate through its output net
                        let Master::Cell(c) = design.inst(inst).master else {
                            continue;
                        };
                        let cell = lib.cell(c);
                        let out_pin = cell.output_pin();
                        if let Some(out_net) = design.inst(inst).conns[out_pin] {
                            let load = parasitics
                                .get(out_net.index())
                                .map(|p| p.driver_load_ff)
                                .unwrap_or(1.0);
                            let (d, s) = cell_arc_delay(cell, 0, sink_slew, load, corner);
                            queue.push((out_net, sink_arr + d, s));
                        }
                    } else {
                        // leaf sink (FF or macro)
                        arrival[inst.index()] = sink_arr;
                        min_sink = min_sink.min(sink_arr);
                        max_sink = max_sink.max(sink_arr);
                    }
                }
                PinRef::Port(_) => {}
            }
        }
    }

    // Delay-pad balancing: CTS engines equalise insertion delays by
    // padding early branches, typically repairing ~90 % of the raw
    // spread. Model the repair by pulling every sink toward the
    // latest arrival; the residual spread is the reported skew.
    const REPAIR: f64 = 0.97;
    let mut skew = 0.0;
    if min_sink.is_finite() && max_sink > min_sink {
        for a in arrival.iter_mut() {
            if *a > 0.0 {
                *a += REPAIR * (max_sink - *a);
            }
        }
        skew = (1.0 - REPAIR) * (max_sink - min_sink);
    }
    ClockArrivals {
        arrival_ps: arrival,
        depth: tree.depth,
        skew_ps: skew,
        wire_cap_ff: wire_cap,
        insertion_ps: if max_sink.is_finite() {
            max_sink.max(0.0)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::{libgen::n28_library, CellClass, PinDir};
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    /// A design with `n` flip-flops scattered over a `w x h` µm area.
    fn ff_field(n: usize, w: f64, h: f64, seed: u64) -> (Design, Placement, NetId) {
        let lib = Arc::new(n28_library(1.0));
        let dff = lib.smallest(CellClass::Dff).expect("dff");
        let mut d = Design::new("cts_test", lib);
        let clk_p = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_p));
        let src_p = d.add_port("d", PinDir::Input, None);
        let dnet = d.add_net("dnet");
        d.connect(dnet, PinRef::Port(src_p));
        for i in 0..n {
            let f = d.add_cell(format!("f{i}"), dff);
            d.connect(dnet, PinRef::inst(f, 0));
            d.connect(clk, PinRef::inst(f, 1));
            let q = d.add_net(format!("q{i}"));
            d.connect(q, PinRef::inst(f, 2));
        }
        let mut p = Placement::new(&d);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for i in d.inst_ids() {
            p.pos[i.index()] = Point::from_um(rng.gen_range(0.0..w), rng.gen_range(0.0..h));
        }
        (d, p, clk)
    }

    #[test]
    fn tree_covers_all_sinks() {
        let (mut d, mut p, clk) = ff_field(500, 400.0, 400.0, 1);
        let before_sinks = d.sinks(clk).count();
        assert_eq!(before_sinks, 500);
        let tree = synthesize_clock_tree(&mut d, &mut p, clk, &CtsConfig::default());
        assert!(d.validate().is_ok());
        assert!(!tree.buffers.is_empty());
        // every FF CK pin is connected to some tree net
        let tree_nets: std::collections::HashSet<NetId> = tree.nets.iter().copied().collect();
        let mut covered = 0;
        for &n in &tree.nets {
            covered += d
                .sinks(n)
                .filter(|s| {
                    s.instance()
                        .map(|i| !tree.buffers.contains(&i))
                        .unwrap_or(false)
                })
                .count();
            assert!(tree_nets.contains(&n));
        }
        assert_eq!(covered, 500);
    }

    #[test]
    fn fanout_limit_respected() {
        let (mut d, mut p, clk) = ff_field(300, 300.0, 300.0, 2);
        let cfg = CtsConfig {
            max_fanout: 16,
            repeater_spacing_um: 200.0,
        };
        let tree = synthesize_clock_tree(&mut d, &mut p, clk, &cfg);
        for &n in &tree.nets {
            assert!(
                d.sinks(n).count() <= 16,
                "net {} exceeds fanout",
                d.net(n).name
            );
        }
    }

    #[test]
    fn bigger_die_means_deeper_tree() {
        let (mut d1, mut p1, c1) = ff_field(400, 300.0, 300.0, 3);
        let (mut d2, mut p2, c2) = ff_field(400, 1_600.0, 1_600.0, 3);
        let cfg = CtsConfig::default();
        let t_small = synthesize_clock_tree(&mut d1, &mut p1, c1, &cfg);
        let t_large = synthesize_clock_tree(&mut d2, &mut p2, c2, &cfg);
        assert!(
            t_large.depth > t_small.depth,
            "large {} vs small {}",
            t_large.depth,
            t_small.depth
        );
    }

    #[test]
    fn arrivals_with_ideal_parasitics() {
        let (mut d, mut p, clk) = ff_field(100, 200.0, 200.0, 4);
        let tree = synthesize_clock_tree(&mut d, &mut p, clk, &CtsConfig::default());
        // zero-parasitic extraction: arrivals = pure buffer delays
        let parasitics = vec![NetParasitics::default(); d.num_nets()];
        let arr = clock_arrivals(&d, &tree, &parasitics, Corner::Tt);
        assert_eq!(arr.depth, tree.depth);
        // every FF has a positive insertion delay (at least one buffer)
        for i in d.inst_ids() {
            if !tree.buffers.contains(&i) && !d.is_macro(i) {
                let name = &d.inst(i).name;
                if name.starts_with('f') {
                    assert!(arr.arrival_ps[i.index()] > 0.0, "{name} has no arrival");
                }
            }
        }
    }
}
