#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Static timing analysis, clock-tree synthesis, optimization and
//! power analysis.
//!
//! This crate closes the loop of the shared "2D engine": given a
//! placed, routed and extracted design it computes
//!
//! * [`analysis`] — NLDM + Elmore arrival propagation over the
//!   combinational graph, honouring the paper's constraints (one
//!   clock, half-cycle budgets on inter-tile NoC ports, sign-off at
//!   the SS corner) and reporting the maximum clock frequency and the
//!   critical path *with its routed wirelength* (a Table II row);
//! * [`cts`] — clock-tree synthesis by recursive geometric clustering
//!   with clock buffers, reporting tree depth (a Table II row) and
//!   per-sink insertion delays used for skew-aware setup checks;
//! * [`parametric`] — the default minimum-period engine: affine
//!   arrival propagation with closed-form endpoint solves (one pass
//!   plus a confirmation instead of a 32-probe binary search) and the
//!   incremental [`StaSession`] the sizing loops re-time cones with;
//! * [`opt`] — pre-route repeater insertion on long nets and
//!   post-route critical-path gate sizing;
//! * [`power`] — switching/internal/leakage/macro power at the TT
//!   corner with the paper's 0.2 toggle ratio, reporting `Emean`
//!   (fJ/cycle) and the total pin/wire capacitances (Table II rows).

pub mod analysis;
pub mod constraints;
pub mod cts;
pub mod dcalc;
mod graph;
pub mod opt;
pub mod parametric;
pub mod power;
pub mod report;

pub use analysis::{
    analyze, analyze_par, analyze_with, check_hold, HoldReport, StaInput, StaMode, TimingReport,
};
pub use constraints::StaConstraints;
pub use cts::{clock_arrivals, synthesize_clock_tree, ClockArrivals, ClockTree, CtsConfig};
pub use macro3d_par::Parallelism;
pub use opt::{apply_sizing_to_parasitics, fix_hold, insert_repeaters, upsize_critical_path};
pub use parametric::{StaSession, PROBE_RESOLUTION_PS};
pub use power::{analyze_power, PowerInput, PowerReport};
pub use report::format_critical_path;
