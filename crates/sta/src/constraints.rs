//! Timing constraints as seen by the analyzer.

use macro3d_netlist::{NetId, PortId};
use std::collections::HashSet;

/// Constraints for one analysis run (the paper's design setup:
/// single clock, half-cycle budgets on inter-tile ports, fixed input
/// slew and output load).
#[derive(Clone, Debug)]
pub struct StaConstraints {
    /// The clock net (at the clock port; CTS subnets hang below it).
    pub clock_net: NetId,
    /// Ports with a half-cycle timing budget.
    pub half_cycle_ports: HashSet<PortId>,
    /// Slew assumed at input ports, ps.
    pub input_slew_ps: f64,
    /// Load assumed at output ports, fF.
    pub port_load_ff: f64,
    /// Toggle ratio per cycle (power).
    pub toggle_rate: f64,
}

impl StaConstraints {
    /// Constraints with the paper's defaults.
    pub fn new(clock_net: NetId) -> Self {
        StaConstraints {
            clock_net,
            half_cycle_ports: HashSet::new(),
            input_slew_ps: 50.0,
            port_load_ff: 5.0,
            toggle_rate: 0.2,
        }
    }

    /// Launch offset of an input port as a fraction of the period.
    pub fn launch_frac(&self, port: PortId) -> f64 {
        if self.half_cycle_ports.contains(&port) {
            0.5
        } else {
            0.0
        }
    }

    /// Required-time fraction of the period for an output port.
    pub fn required_frac(&self, port: PortId) -> f64 {
        if self.half_cycle_ports.contains(&port) {
            0.5
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_fractions() {
        let mut c = StaConstraints::new(NetId(0));
        c.half_cycle_ports.insert(PortId(2));
        assert_eq!(c.launch_frac(PortId(2)), 0.5);
        assert_eq!(c.launch_frac(PortId(3)), 0.0);
        assert_eq!(c.required_frac(PortId(2)), 0.5);
        assert_eq!(c.required_frac(PortId(3)), 1.0);
    }
}
