//! Stage delay calculation: NLDM cell delays + Elmore wire delays.

use macro3d_tech::{Corner, LibCell};

/// Cell arc delay and output slew at a corner, ps.
///
/// # Panics
///
/// Panics if `arc_ix` is out of range.
pub fn cell_arc_delay(
    cell: &LibCell,
    arc_ix: usize,
    in_slew_ps: f64,
    load_ff: f64,
    corner: Corner,
) -> (f64, f64) {
    let arc = &cell.arcs[arc_ix];
    let d = arc.delay.eval(in_slew_ps, load_ff) * corner.delay_derate();
    let s = arc.out_slew.eval(in_slew_ps, load_ff) * corner.delay_derate();
    (d.max(0.0), s.max(1.0))
}

/// Slew at a wire's far end given the driver output slew and the
/// Elmore delay to that sink (PERI-style degradation:
/// `s_out² = s_in² + (ln 9 · elmore)²`).
pub fn wire_slew(drv_slew_ps: f64, elmore_ps: f64) -> f64 {
    let k = 2.2 * elmore_ps;
    (drv_slew_ps * drv_slew_ps + k * k).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::{libgen::n28_library, CellClass};

    #[test]
    fn delay_grows_with_load_and_corner() {
        let lib = n28_library(1.0);
        let inv = lib.cell(lib.smallest(CellClass::Inv).expect("inv"));
        let (d1, s1) = cell_arc_delay(inv, 0, 30.0, 2.0, Corner::Tt);
        let (d2, _) = cell_arc_delay(inv, 0, 30.0, 50.0, Corner::Tt);
        let (d3, _) = cell_arc_delay(inv, 0, 30.0, 2.0, Corner::Ss);
        assert!(d2 > d1);
        assert!(d3 > d1);
        assert!(s1 >= 1.0);
    }

    #[test]
    fn wire_slew_degrades_quadratically() {
        assert!((wire_slew(30.0, 0.0) - 30.0).abs() < 1e-9);
        let s = wire_slew(30.0, 100.0);
        assert!(s > 220.0 && s < 223.0, "slew {s}");
    }
}
