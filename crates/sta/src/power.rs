//! Power analysis at the TT corner.
//!
//! Reproduces the paper's reporting: toggle ratio 0.2 per cycle for
//! registers and inputs, power at the typical corner, `Emean`
//! (fJ/cycle, "power-per-megahertz") as the energy metric, and the
//! total pin/wire capacitances of Table II.

use macro3d_extract::NetParasitics;
use macro3d_netlist::{Design, Master, NetId};
use macro3d_tech::Corner;
use std::collections::HashSet;

/// Inputs for a power run.
pub struct PowerInput<'a> {
    /// The netlist.
    pub design: &'a Design,
    /// Extracted parasitics indexed by `NetId`.
    pub parasitics: &'a [NetParasitics],
    /// Nets belonging to the clock tree (toggle twice per cycle).
    pub clock_nets: &'a HashSet<NetId>,
    /// Operating frequency, MHz.
    pub freq_mhz: f64,
    /// Toggle ratio per cycle for signal nets.
    pub toggle: f64,
    /// Report corner (the paper uses TT).
    pub corner: Corner,
}

/// Power analysis result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PowerReport {
    /// Total power, mW.
    pub total_mw: f64,
    /// Net-switching power, mW.
    pub switching_mw: f64,
    /// Cell-internal power, mW.
    pub internal_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
    /// Macro access + leakage power, mW.
    pub macro_mw: f64,
    /// Mean energy per cycle, fJ (total power / frequency).
    pub emean_fj_per_cycle: f64,
    /// Total connected pin capacitance, nF.
    pub cpin_total_nf: f64,
    /// Total wire capacitance, nF.
    pub cwire_total_nf: f64,
}

/// Runs power analysis.
///
/// Energy accounting per cycle: signal nets toggle `toggle` times
/// (`E = toggle · ½ C V²`), clock nets toggle twice (`E = C V²`),
/// combinational cells spend their internal energy per output toggle,
/// sequential cells add clock-pin activity, macros are charged one
/// access per `toggle`.
pub fn analyze_power(input: &PowerInput<'_>) -> PowerReport {
    let design = input.design;
    let lib = design.library().clone();
    let v = lib.voltage();
    let f_hz = input.freq_mhz * 1e6;
    let alpha = input.toggle;

    let mut cwire_ff = 0.0;
    let mut cpin_ff = 0.0;
    let mut e_switch_fj = 0.0; // per cycle
    for net in design.net_ids() {
        let wire = input
            .parasitics
            .get(net.index())
            .map(|p| p.wire_cap_ff)
            .unwrap_or(0.0);
        let pin_cap: f64 = design
            .net(net)
            .pins
            .iter()
            .map(|&p| design.pin_cap(p))
            .sum();
        cwire_ff += wire;
        cpin_ff += pin_cap;
        let c = wire + pin_cap;
        if input.clock_nets.contains(&net) {
            e_switch_fj += c * v * v; // two transitions per cycle
        } else {
            e_switch_fj += alpha * 0.5 * c * v * v;
        }
    }

    let mut e_internal_fj = 0.0;
    let mut leak_nw = 0.0;
    let mut e_macro_fj = 0.0;
    let mut macro_leak_nw = 0.0;
    for inst in design.inst_ids() {
        match design.inst(inst).master {
            Master::Cell(c) => {
                let cell = lib.cell(c);
                leak_nw += cell.leakage_nw;
                if cell.is_sequential() {
                    // clock pin activity every cycle + data at alpha
                    e_internal_fj += cell.internal_energy_fj * (0.5 + 0.5 * alpha);
                } else if cell.class == macro3d_tech::CellClass::ClkBuf {
                    e_internal_fj += cell.internal_energy_fj * 2.0;
                } else {
                    e_internal_fj += cell.internal_energy_fj * alpha;
                }
            }
            Master::Macro(m) => {
                let def = design.macro_master(m);
                e_macro_fj += alpha * def.access_energy_fj;
                macro_leak_nw += def.leakage_nw;
            }
        }
    }
    leak_nw *= input.corner.leakage_derate();
    macro_leak_nw *= input.corner.leakage_derate();

    let fj_per_cycle_to_mw = f_hz * 1e-15 * 1e3; // fJ/cycle * Hz -> mW
    let switching_mw = e_switch_fj * fj_per_cycle_to_mw;
    let internal_mw = e_internal_fj * fj_per_cycle_to_mw;
    let leakage_mw = leak_nw * 1e-6;
    let macro_mw = e_macro_fj * fj_per_cycle_to_mw + macro_leak_nw * 1e-6;
    let total_mw = switching_mw + internal_mw + leakage_mw + macro_mw;
    PowerReport {
        total_mw,
        switching_mw,
        internal_mw,
        leakage_mw,
        macro_mw,
        emean_fj_per_cycle: total_mw * 1e-3 / f_hz * 1e15,
        cpin_total_nf: cpin_ff * 1e-6,
        cwire_total_nf: cwire_ff * 1e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_netlist::PinRef;
    use macro3d_tech::{libgen::n28_library, CellClass, PinDir};
    use std::sync::Arc;

    fn small() -> (Design, Vec<NetParasitics>, NetId) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let dff = lib.smallest(CellClass::Dff).expect("dff");
        let mut d = Design::new("t", lib);
        let clk_p = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_p));
        let f = d.add_cell("f", dff);
        d.connect(clk, PinRef::inst(f, 1));
        let dp = d.add_port("d", PinDir::Input, None);
        let dn = d.add_net("dn");
        d.connect(dn, PinRef::Port(dp));
        d.connect(dn, PinRef::inst(f, 0));
        let q = d.add_net("q");
        d.connect(q, PinRef::inst(f, 2));
        let g = d.add_cell("g", inv);
        d.connect(q, PinRef::inst(g, 0));
        let o = d.add_net("o");
        d.connect(o, PinRef::inst(g, 1));
        let mut parasitics = vec![NetParasitics::default(); d.num_nets()];
        for n in d.net_ids() {
            parasitics[n.index()].wire_cap_ff = 10.0;
        }
        (d, parasitics, clk)
    }

    #[test]
    fn power_scales_with_frequency() {
        let (d, p, clk) = small();
        let clocks: HashSet<NetId> = [clk].into_iter().collect();
        let run = |f: f64| {
            analyze_power(&PowerInput {
                design: &d,
                parasitics: &p,
                clock_nets: &clocks,
                freq_mhz: f,
                toggle: 0.2,
                corner: Corner::Tt,
            })
        };
        let p400 = run(400.0);
        let p800 = run(800.0);
        // dynamic doubles, leakage constant
        assert!(p800.switching_mw / p400.switching_mw > 1.99);
        assert!((p800.leakage_mw - p400.leakage_mw).abs() < 1e-12);
        // Emean nearly frequency-independent (dominated by dynamic)
        let rel =
            (p800.emean_fj_per_cycle - p400.emean_fj_per_cycle).abs() / p400.emean_fj_per_cycle;
        assert!(rel < 0.5);
    }

    #[test]
    fn clock_nets_burn_more() {
        let (d, p, clk) = small();
        let with_clk: HashSet<NetId> = [clk].into_iter().collect();
        let without: HashSet<NetId> = HashSet::new();
        let a = analyze_power(&PowerInput {
            design: &d,
            parasitics: &p,
            clock_nets: &with_clk,
            freq_mhz: 400.0,
            toggle: 0.2,
            corner: Corner::Tt,
        });
        let b = analyze_power(&PowerInput {
            design: &d,
            parasitics: &p,
            clock_nets: &without,
            freq_mhz: 400.0,
            toggle: 0.2,
            corner: Corner::Tt,
        });
        assert!(a.switching_mw > b.switching_mw);
    }

    #[test]
    fn capacitance_totals_reported() {
        let (d, p, clk) = small();
        let clocks: HashSet<NetId> = [clk].into_iter().collect();
        let r = analyze_power(&PowerInput {
            design: &d,
            parasitics: &p,
            clock_nets: &clocks,
            freq_mhz: 400.0,
            toggle: 0.2,
            corner: Corner::Tt,
        });
        // 4 nets x 10 fF wire
        assert!((r.cwire_total_nf - 40.0e-6).abs() < 1e-9);
        assert!(r.cpin_total_nf > 0.0);
        assert!(r.total_mw > 0.0);
        assert!(r.emean_fj_per_cycle > 0.0);
    }
}
