//! Flattened timing graph: the period-independent structure one
//! analysis session walks.
//!
//! [`super::analysis`]'s probe passes resolved every arc input through
//! a `HashMap<(inst, pin), (net, sink)>` on every propagation — 34
//! lookups per arc per analyze. This module flattens the combinational
//! netlist once into CSR arrays (eval nodes in topological order,
//! their arcs with the input net and sink index inlined, launch
//! sources and endpoint checks as plain slices, plus reverse
//! net→consumer indices for incremental cone updates), so a
//! propagation pass is a linear scan over dense arrays and an
//! incremental update can seed a worklist from touched nets in O(1)
//! per net.
//!
//! The graph stores *ids only* — no borrowed library or design data —
//! so it stays valid across in-place cell resizing (masters are
//! re-read from the design at evaluation time; drive variants of a
//! class share their pin and arc layout).

use crate::constraints::StaConstraints;
use macro3d_netlist::traverse::{is_timing_endpoint, topo_order};
use macro3d_netlist::{Design, InstId, Master, NetId, PinRef, PortId};
use macro3d_tech::PinDir;

/// Sentinel for "no node" in the per-net driver-node index.
pub(crate) const NO_NODE: u32 = u32::MAX;

/// One combinational evaluation node: a cell instance with a driven
/// output net. Nodes are stored in topological order.
#[derive(Clone, Copy, Debug)]
pub(crate) struct GraphNode {
    /// The cell instance (master re-read per evaluation, so in-place
    /// resizing is picked up without a rebuild).
    pub inst: InstId,
    /// The net at the cell output.
    pub out_net: NetId,
    /// Range into [`TimingGraph::arcs`].
    pub arcs: (u32, u32),
}

/// One timing arc of a node, with its input net and the sink index of
/// the cell pin on that net resolved at build time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct GraphArc {
    /// Arc index within the cell master.
    pub arc_ix: u16,
    /// Net at the arc's input pin.
    pub in_net: NetId,
    /// Index of the input pin among `in_net`'s sinks (parasitic sink
    /// order).
    pub six: u32,
}

/// A clocked launch source (register Q or macro output).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RegLaunch {
    /// Launching sequential instance.
    pub inst: InstId,
    /// Net at the launching output pin.
    pub net: NetId,
    /// True for macro outputs (access-time launch), false for
    /// flip-flop Q pins (clock-to-Q arc 0).
    pub is_macro: bool,
}

/// An input-port launch source.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PortLaunch {
    /// The launching port (its half-cycle budget is read from the
    /// constraints at pass time).
    pub port: PortId,
    /// The port's net.
    pub net: NetId,
}

/// What a setup check compares the data arrival against.
#[derive(Clone, Copy, Debug)]
pub(crate) enum EndpointKind {
    /// Register / macro data pin: required = `T + clk − setup·derate`.
    Reg {
        /// Capturing instance (indexes the clock-arrival table).
        clk_inst: InstId,
        /// Setup requirement before corner derating, ps.
        setup_ps: f64,
    },
    /// Output port: required = `frac·T + insertion`.
    Port {
        /// The captured port (its budget fraction is read from the
        /// constraints at pass time).
        port: PortId,
    },
}

/// One flattened setup check.
#[derive(Clone, Copy, Debug)]
pub(crate) struct GraphEndpoint {
    /// The net whose sink arrival is checked.
    pub net: NetId,
    /// Sink index of the endpoint pin on `net`.
    pub six: u32,
    /// The requirement side.
    pub kind: EndpointKind,
}

/// The flattened, period-independent timing graph.
///
/// Built once per design revision; every propagation (probe or
/// parametric) and every incremental cone update walks these arrays.
/// `Clone` deep-copies the arrays so a cached session can be
/// snapshotted and resumed independently.
#[derive(Clone)]
pub(crate) struct TimingGraph {
    /// Evaluation nodes in topological order.
    pub nodes: Vec<GraphNode>,
    /// Arc storage (CSR payload for [`GraphNode::arcs`]).
    pub arcs: Vec<GraphArc>,
    /// Clocked launches in instance order.
    pub reg_launches: Vec<RegLaunch>,
    /// Port launches in port order (clock port excluded).
    pub port_launches: Vec<PortLaunch>,
    /// Setup checks: registers/macros first (instance order), then
    /// output ports (port order) — the serial probe scan order, which
    /// tie-breaking must reproduce.
    pub endpoints: Vec<GraphEndpoint>,
    /// Per net: index of the node driving it, or [`NO_NODE`].
    pub driver_node_of_net: Vec<u32>,
    /// Per net: consumer node indices (CSR offsets; nodes with an arc
    /// reading the net).
    consumer_off: Vec<u32>,
    consumer_nodes: Vec<u32>,
    /// Per net: indices into `endpoints` checked against the net (CSR
    /// offsets).
    endpoint_off: Vec<u32>,
    endpoint_ix: Vec<u32>,
    /// Per net: range into `reg_launches` (launches are grouped by
    /// net after a stable sort); empty for most nets.
    reg_launch_off: Vec<u32>,
    /// Per net: range into `port_launches`.
    port_launch_off: Vec<u32>,
    /// The clock net from the constraints the graph was built under.
    pub clock_net: NetId,
    /// True when an input port drives the clock net (the probe pass
    /// then pins its arrival to 0; CTS arrivals carry the real tree).
    pub clock_from_port: bool,
    /// Design shape at build time, for staleness detection.
    pub num_nets: usize,
    /// Instance count at build time.
    pub num_insts: usize,
}

/// Index of `pin` among `net`'s sinks (the parasitic sink order), or
/// `None` when the pin is not a sink of the net — an inconsistent
/// netlist state that callers must skip rather than mis-time.
pub(crate) fn sink_index_of(design: &Design, net: NetId, pin: PinRef) -> Option<usize> {
    design.sinks(net).position(|s| s == pin)
}

fn csr<T, F: Fn(&T) -> usize>(items: &[T], buckets: usize, key: F) -> (Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32; buckets + 1];
    for it in items {
        off[key(it) + 1] += 1;
    }
    for i in 0..buckets {
        off[i + 1] += off[i];
    }
    let mut slots = off.clone();
    let mut payload = vec![0u32; items.len()];
    for (ix, it) in items.iter().enumerate() {
        let b = key(it);
        payload[slots[b] as usize] = ix as u32;
        slots[b] += 1;
    }
    (off, payload)
}

impl TimingGraph {
    /// Flattens `design` under `constraints`. The graph holds no
    /// borrowed data and survives in-place resizing; structural edits
    /// (new instances or nets) require a rebuild (see
    /// [`TimingGraph::is_stale`]).
    pub fn build(design: &Design, constraints: &StaConstraints) -> TimingGraph {
        let clock_net = constraints.clock_net;
        let lib = design.library();
        let order = match topo_order(design) {
            Ok(o) => o,
            Err(_) => design
                .inst_ids()
                .filter(|&i| !is_timing_endpoint(design, i))
                .collect(),
        };

        // per-pin sink indices, built once (the probe path rebuilt
        // this map per StaContext; here it dies with the build)
        let mut pin_net_six = std::collections::HashMap::new();
        for net in design.net_ids() {
            for (six, sink) in design.sinks(net).enumerate() {
                if let PinRef::Inst { inst, pin } = sink {
                    pin_net_six.insert((inst.0, pin), (net, six as u32));
                }
            }
        }

        let nn = design.num_nets();
        let mut nodes = Vec::with_capacity(order.len());
        let mut arcs = Vec::new();
        let mut driver_node_of_net = vec![NO_NODE; nn];
        for &inst in &order {
            let Master::Cell(c) = design.inst(inst).master else {
                continue;
            };
            let cell = lib.cell(c);
            let out = cell.output_pin();
            let Some(out_net) = design.inst(inst).conns[out] else {
                continue;
            };
            let start = arcs.len() as u32;
            for (arc_ix, arc) in cell.arcs.iter().enumerate() {
                let pin = arc.from_pin as u16;
                let Some(&(in_net, six)) = pin_net_six.get(&(inst.0, pin)) else {
                    continue;
                };
                arcs.push(GraphArc {
                    arc_ix: arc_ix as u16,
                    in_net,
                    six,
                });
            }
            driver_node_of_net[out_net.index()] = nodes.len() as u32;
            nodes.push(GraphNode {
                inst,
                out_net,
                arcs: (start, arcs.len() as u32),
            });
        }

        // launches
        let mut port_launches = Vec::new();
        let mut clock_from_port = false;
        for pid in design.port_ids() {
            let port = design.port(pid);
            if port.dir != PinDir::Input {
                continue;
            }
            let Some(net) = port.net else { continue };
            if net == clock_net {
                clock_from_port = true;
                continue;
            }
            port_launches.push(PortLaunch { port: pid, net });
        }
        let mut reg_launches = Vec::new();
        let mut endpoints = Vec::new();
        for inst in design.inst_ids() {
            if !is_timing_endpoint(design, inst) {
                continue;
            }
            match design.inst(inst).master {
                Master::Cell(c) => {
                    let cell = lib.cell(c);
                    if !cell.is_sequential() {
                        continue;
                    }
                    if let Some(qnet) = design.inst(inst).conns[cell.output_pin()] {
                        reg_launches.push(RegLaunch {
                            inst,
                            net: qnet,
                            is_macro: false,
                        });
                    }
                    for pin in cell.data_input_pins() {
                        if let Some(&(net, six)) = pin_net_six.get(&(inst.0, pin as u16)) {
                            endpoints.push(GraphEndpoint {
                                net,
                                six,
                                kind: EndpointKind::Reg {
                                    clk_inst: inst,
                                    setup_ps: cell.setup_ps,
                                },
                            });
                        }
                    }
                }
                Master::Macro(m) => {
                    let def = design.macro_master(m);
                    for (p, pin) in def.pins.iter().enumerate() {
                        match pin.dir {
                            PinDir::Output => {
                                if let Some(net) = design.inst(inst).conns[p] {
                                    reg_launches.push(RegLaunch {
                                        inst,
                                        net,
                                        is_macro: true,
                                    });
                                }
                            }
                            PinDir::Input => {
                                if pin.class == macro3d_sram::PinClass::Clock {
                                    continue;
                                }
                                let Some(&(net, six)) = pin_net_six.get(&(inst.0, p as u16)) else {
                                    continue;
                                };
                                if net == clock_net {
                                    continue;
                                }
                                endpoints.push(GraphEndpoint {
                                    net,
                                    six,
                                    kind: EndpointKind::Reg {
                                        clk_inst: inst,
                                        setup_ps: def.setup_ps,
                                    },
                                });
                            }
                        }
                    }
                }
            }
        }
        for pid in design.port_ids() {
            let port = design.port(pid);
            if port.dir != PinDir::Output {
                continue;
            }
            let Some(net) = port.net else { continue };
            let Some(six) = sink_index_of(design, net, PinRef::Port(pid)) else {
                debug_assert!(
                    false,
                    "output port {pid:?} listed on net {net:?} but absent from its sinks"
                );
                continue;
            };
            endpoints.push(GraphEndpoint {
                net,
                six: six as u32,
                kind: EndpointKind::Port { port: pid },
            });
        }

        // reverse indices for cone seeding
        let (consumer_off, consumer_arc_ix) = csr(&arcs, nn, |a| a.in_net.index());
        // map arc payload to its owning node (dedup is unnecessary:
        // duplicate node entries only cost a set-insert at update
        // time)
        let mut arc_owner = vec![0u32; arcs.len()];
        for (node_ix, node) in nodes.iter().enumerate() {
            for a in node.arcs.0..node.arcs.1 {
                arc_owner[a as usize] = node_ix as u32;
            }
        }
        let consumer_nodes: Vec<u32> = consumer_arc_ix
            .iter()
            .map(|&a| arc_owner[a as usize])
            .collect();
        let (endpoint_off, endpoint_ix) = csr(&endpoints, nn, |e| e.net.index());
        reg_launches.sort_by_key(|l| (l.net, l.inst));
        let (reg_launch_off, reg_launch_ix) = csr(&reg_launches, nn, |l| l.net.index());
        // CSR payload is an identity permutation after the sort; keep
        // the launches themselves grouped so a range walk suffices
        let reg_launches: Vec<RegLaunch> = reg_launch_ix
            .iter()
            .map(|&i| reg_launches[i as usize])
            .collect();
        port_launches.sort_by_key(|l| (l.net, l.port));
        let (port_launch_off, port_launch_ix) = csr(&port_launches, nn, |l| l.net.index());
        let port_launches: Vec<PortLaunch> = port_launch_ix
            .iter()
            .map(|&i| port_launches[i as usize])
            .collect();

        TimingGraph {
            nodes,
            arcs,
            reg_launches,
            port_launches,
            endpoints,
            driver_node_of_net,
            consumer_off,
            consumer_nodes,
            endpoint_off,
            endpoint_ix,
            reg_launch_off,
            port_launch_off,
            clock_net,
            clock_from_port,
            num_nets: nn,
            num_insts: design.num_insts(),
        }
    }

    /// True when the design changed shape since the build (new
    /// instances or nets) and the graph must be rebuilt.
    pub fn is_stale(&self, design: &Design) -> bool {
        design.num_nets() != self.num_nets || design.num_insts() != self.num_insts
    }

    /// Arcs of a node.
    pub fn node_arcs(&self, node: &GraphNode) -> &[GraphArc] {
        &self.arcs[node.arcs.0 as usize..node.arcs.1 as usize]
    }

    /// Nodes consuming a net (owners of arcs reading it; may repeat a
    /// node once per arc).
    pub fn consumers(&self, net: NetId) -> &[u32] {
        let (a, b) = (
            self.consumer_off[net.index()] as usize,
            self.consumer_off[net.index() + 1] as usize,
        );
        &self.consumer_nodes[a..b]
    }

    /// Endpoint indices checked against a net.
    pub fn endpoints_of(&self, net: NetId) -> &[u32] {
        let (a, b) = (
            self.endpoint_off[net.index()] as usize,
            self.endpoint_off[net.index() + 1] as usize,
        );
        &self.endpoint_ix[a..b]
    }

    /// Clocked launches driving a net.
    pub fn reg_launches_of(&self, net: NetId) -> &[RegLaunch] {
        let (a, b) = (
            self.reg_launch_off[net.index()] as usize,
            self.reg_launch_off[net.index() + 1] as usize,
        );
        &self.reg_launches[a..b]
    }

    /// Port launches driving a net.
    pub fn port_launches_of(&self, net: NetId) -> &[PortLaunch] {
        let (a, b) = (
            self.port_launch_off[net.index()] as usize,
            self.port_launch_off[net.index() + 1] as usize,
        );
        &self.port_launches[a..b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::{libgen::n28_library, CellClass};
    use std::sync::Arc;

    /// clk port → 2 FFs, FF0 → inv → FF1, plus an output port.
    fn small() -> (Design, StaConstraints) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let dff = lib.smallest(CellClass::Dff).expect("dff");
        let mut d = Design::new("t", lib);
        let clk_p = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_p));
        let f0 = d.add_cell("f0", dff);
        let f1 = d.add_cell("f1", dff);
        d.connect(clk, PinRef::inst(f0, 1));
        d.connect(clk, PinRef::inst(f1, 1));
        let dp = d.add_port("d", PinDir::Input, None);
        let dn = d.add_net("dn");
        d.connect(dn, PinRef::Port(dp));
        d.connect(dn, PinRef::inst(f0, 0));
        let q0 = d.add_net("q0");
        d.connect(q0, PinRef::inst(f0, 2));
        let c = d.add_cell("c", inv);
        d.connect(q0, PinRef::inst(c, 0));
        let w = d.add_net("w");
        d.connect(w, PinRef::inst(c, 1));
        d.connect(w, PinRef::inst(f1, 0));
        let po = d.add_port("out", PinDir::Output, Some(macro3d_netlist::Side::North));
        d.connect(w, PinRef::Port(po));
        let c = StaConstraints::new(clk);
        (d, c)
    }

    #[test]
    fn build_flattens_structure() {
        let (d, c) = small();
        let g = TimingGraph::build(&d, &c);
        assert_eq!(g.nodes.len(), 1, "one combinational inverter");
        assert_eq!(g.node_arcs(&g.nodes[0]).len(), 1);
        // launches: f0.Q only (f1's Q pin is unconnected), one
        // non-clock input port
        assert_eq!(g.reg_launches.len(), 1);
        assert_eq!(g.port_launches.len(), 1);
        // endpoints: two FF D pins + the output port, ports last
        assert_eq!(g.endpoints.len(), 3);
        assert!(matches!(g.endpoints[2].kind, EndpointKind::Port { .. }));
        // the inverter consumes q0 and drives w
        let q0 = d.net_ids().find(|&n| d.net(n).name == "q0").expect("q0");
        let w = d.net_ids().find(|&n| d.net(n).name == "w").expect("w");
        assert_eq!(g.consumers(q0), &[0]);
        assert_eq!(g.driver_node_of_net[w.index()], 0);
        assert_eq!(g.driver_node_of_net[q0.index()], NO_NODE);
        // w is checked by f1.D and the output port
        assert_eq!(g.endpoints_of(w).len(), 2);
        assert!(!g.is_stale(&d));
    }

    #[test]
    fn sink_index_handles_missing_pin() {
        let (d, _) = small();
        let po = d
            .port_ids()
            .find(|&p| d.port(p).name == "out")
            .expect("out port");
        let w = d.net_ids().find(|&n| d.net(n).name == "w").expect("w");
        let q0 = d.net_ids().find(|&n| d.net(n).name == "q0").expect("q0");
        // the port is a sink of w…
        assert!(sink_index_of(&d, w, PinRef::Port(po)).is_some());
        // …but not of q0: callers must get None, not index 0
        assert_eq!(sink_index_of(&d, q0, PinRef::Port(po)), None);
    }

    #[test]
    fn stale_after_structural_edit() {
        let (mut d, c) = small();
        let g = TimingGraph::build(&d, &c);
        d.add_net("fresh");
        assert!(g.is_stale(&d));
    }
}
